//! Checkpoint snapshots and crash recovery.
//!
//! A snapshot is a full, self-contained image of one [`Catalog`]: every
//! plain table (schema, secondary-index specs, and the raw slot vector —
//! tombstones included, because [`crate::row::RowId`]s in the WAL suffix
//! and in factorized pointer lists are slot positions), every factorized
//! structure (both members plus the link pairs), and the metadata area
//! (which is where the upper layers keep the E/R schema, the installed
//! mapping, and the version log — so those ride along for free). Gathered
//! statistics ride along too: an optional trailing section carries the
//! [`CatalogStats`] registry, so a recovered database keeps its cost-based
//! optimizer passes armed instead of silently degrading to the no-stats
//! no-op paths. The section is emitted only when the registry is
//! non-empty, which keeps stat-less snapshots byte-identical to the
//! original `ERBSNAP1` layout (backward- and forward-compatible decode:
//! old files simply have no trailing section).
//!
//! ## On-disk format
//!
//! ```text
//! [magic "ERBSNAP1": 8 bytes] [body_len: u32 LE] [crc32(body): u32 LE] [body]
//! ```
//!
//! The body reuses the WAL's binary value codec. Unlike the WAL — where a
//! torn tail is expected and tolerated — any framing/CRC/decode failure in
//! a snapshot is a hard [`StorageError::Corrupt`]: the file is written
//! atomically (tmp + fsync + rename), so a damaged snapshot means real
//! corruption, not a crash artifact.
//!
//! ## Incremental (delta) checkpoints
//!
//! Writing the whole catalog on every checkpoint is wasteful when only a
//! few tables changed since the last one. [`write_checkpoint`] therefore
//! consults the catalog's dirty tracking and, when the base snapshot is
//! still representative, emits an `ERBSNAP2` **delta** file
//! (`snapshot.delta.<seq>.erb`) instead: the full serialized state of just
//! the dirty tables/factorized structures, plus the (tiny) metadata map and
//! stats registry wholesale. Deltas chain: recovery applies the base
//! snapshot, then each delta in sequence order, then the WAL suffix.
//!
//! Compaction back to a full snapshot happens when the chain grows past
//! [`MAX_DELTA_CHAIN`], when the catalog's shape changed (DDL), or when
//! most of the catalog is dirty anyway. A full snapshot deletes the delta
//! files *after* the base rename; a crash in between leaves stale deltas
//! behind, which is why every delta records the CRC of the base body it
//! was computed against (`base_crc`). Deltas whose `base_crc` does not
//! match the current base are ignored at recovery and deleted at the next
//! checkpoint — content addressing, not trust in deletion order.
//!
//! ## Recovery protocol
//!
//! [`Catalog::recover`] = load the latest snapshot (or start empty), apply
//! the valid delta chain on top, then redo the committed suffix of the WAL,
//! placing rows at the exact slots the log recorded, and finally rebuild
//! the free lists. WAL groups whose transaction id predates the checkpoint
//! chain are already absorbed by it and are skipped — that makes the
//! crash window between the checkpoint rename and the WAL truncation safe.
//! The combination is exactly the committed prefix of history: rolled-back
//! transactions never reached the log, and a torn tail loses only the
//! in-flight group.

use crate::buffer_pool::BufferPool;
use crate::catalog::Catalog;
use crate::error::{StorageError, StorageResult};
use crate::factorized::FactorizedTable;
use crate::index::IndexKind;
use crate::row::RowId;
use crate::schema::TableSchema;
use crate::stats::CatalogStats;
use crate::table::Table;
use crate::wal::{
    crc32, get_row, put_row, put_str, put_u32, put_u64, scan_wal, Cursor, FactSide, WalRecord,
};
use rustc_hash::FxHashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the checkpoint snapshot inside a database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.erb";
/// File name of the write-ahead log inside a database directory.
pub const WAL_FILE: &str = "wal.erb";
/// Maximum number of chained delta checkpoints before [`write_checkpoint`]
/// compacts back to a full snapshot. Bounds recovery work (each delta is a
/// file read + wholesale table installs) and disk amplification.
pub const MAX_DELTA_CHAIN: usize = 8;

const MAGIC: &[u8; 8] = b"ERBSNAP1";
const MAGIC2: &[u8; 8] = b"ERBSNAP2";
const DELTA_TMP: &str = "snapshot.delta.tmp";

fn delta_file_name(seq: u64) -> String {
    format!("snapshot.delta.{seq}.erb")
}

/// Parse `snapshot.delta.<seq>.erb` back into `<seq>`.
fn parse_delta_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snapshot.delta.")?;
    let digits = rest.strip_suffix(".erb")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Every delta file in `dir`, unsorted. Temp files are skipped: a crash
/// mid-write leaves only `snapshot.delta.tmp`, never a half-written delta
/// under a real name.
fn list_deltas(dir: &Path) -> StorageResult<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| io_err(&format!("read dir {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry", e))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_delta_name) {
            out.push((seq, entry.path()));
        }
    }
    Ok(out)
}

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{ctx}: {e}"))
}

// ---- encoding --------------------------------------------------------------

fn put_table(buf: &mut Vec<u8>, t: &Table) {
    let schema_json = serde_json::to_string(t.schema()).expect("schema serializes");
    put_str(buf, &schema_json);
    let indexes = t.indexes();
    put_u32(buf, indexes.len() as u32);
    for idx in indexes {
        put_str(buf, &idx.name);
        put_u32(buf, idx.columns.len() as u32);
        for &c in &idx.columns {
            put_u32(buf, c as u32);
        }
        buf.push(match idx.kind() {
            IndexKind::Hash => 0,
            IndexKind::BTree => 1,
        });
    }
    put_slots(buf, t);
}

/// Encode the slot vector page by page. Byte-identical to encoding the
/// materialized `Vec<Option<Row>>` (pages concatenate to exactly the slot
/// vector), but evicted pages are decoded transiently one at a time, so
/// checkpointing a table never pulls its whole row store resident.
fn put_slots(buf: &mut Vec<u8>, t: &Table) {
    put_u32(buf, t.slot_count() as u32);
    for (_, page) in t.page_pins() {
        for slot in page.iter() {
            match slot {
                None => buf.push(0),
                Some(row) => {
                    buf.push(1);
                    put_row(buf, row);
                }
            }
        }
    }
}

/// Serialize a whole catalog (plus the WAL's next transaction id) into the
/// snapshot body.
fn encode_body(cat: &Catalog, next_txn: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4096);
    put_u64(&mut buf, next_txn);

    // Plain tables, sorted for deterministic bytes.
    let mut tables: Vec<(&String, &Table)> = cat.tables_iter().collect();
    tables.sort_by_key(|(n, _)| n.as_str());
    put_u32(&mut buf, tables.len() as u32);
    for (_, t) in tables {
        put_table(&mut buf, t);
    }

    // Factorized structures.
    let mut facts: Vec<(&String, &FactorizedTable)> = cat.factorized_iter().collect();
    facts.sort_by_key(|(n, _)| n.as_str());
    put_u32(&mut buf, facts.len() as u32);
    for (name, ft) in facts {
        put_str(&mut buf, name);
        put_table(&mut buf, ft.left());
        put_table(&mut buf, ft.right());
        let pairs = ft.link_pairs();
        put_u32(&mut buf, pairs.len() as u32);
        for (l, r) in pairs {
            put_u64(&mut buf, l.0);
            put_u64(&mut buf, r.0);
        }
    }

    // Metadata area (E/R schema, mapping, version log all live here).
    let mut meta: Vec<(&String, &serde_json::Value)> = cat.meta_entries().collect();
    meta.sort_by_key(|(k, _)| k.as_str());
    put_u32(&mut buf, meta.len() as u32);
    for (k, v) in meta {
        put_str(&mut buf, k);
        put_str(&mut buf, &v.to_string());
    }

    // Optional trailing section: the statistics registry. Only emitted when
    // non-empty so a stat-less snapshot stays byte-identical to the
    // pre-stats format (and old readers that stop at the meta section would
    // reject only files that actually carry stats).
    if !cat.stats().is_empty() {
        let stats_json =
            serde_json::to_string(cat.stats()).expect("catalog stats serialize");
        put_str(&mut buf, &stats_json);
    }
    buf
}

// ---- decoding --------------------------------------------------------------

fn get_table(c: &mut Cursor<'_>, pool: &Arc<BufferPool>) -> StorageResult<Table> {
    let schema_json = c.str().ok_or_else(|| corrupt("snapshot: short table schema"))?;
    let schema: TableSchema = serde_json::from_str(&schema_json)
        .map_err(|e| corrupt(format!("snapshot: bad table schema: {e}")))?;
    let n_indexes = c.u32().ok_or_else(|| corrupt("snapshot: short index count"))? as usize;
    let mut specs = Vec::with_capacity(n_indexes.min(1 << 10));
    for _ in 0..n_indexes {
        let name = c.str().ok_or_else(|| corrupt("snapshot: short index name"))?;
        let n_cols = c.u32().ok_or_else(|| corrupt("snapshot: short index columns"))? as usize;
        let mut cols = Vec::with_capacity(n_cols.min(1 << 10));
        for _ in 0..n_cols {
            cols.push(c.u32().ok_or_else(|| corrupt("snapshot: short index column"))? as usize);
        }
        let kind = match c.u8().ok_or_else(|| corrupt("snapshot: short index kind"))? {
            0 => IndexKind::Hash,
            1 => IndexKind::BTree,
            k => return Err(corrupt(format!("snapshot: unknown index kind {k}"))),
        };
        specs.push((name, cols, kind));
    }
    // Stream slots straight into a pool-bound table: `RowStore::push`
    // reclaims pages at page boundaries when over budget, so decoding a
    // table larger than the frame budget stays bounded.
    let n = c.u32().ok_or_else(|| corrupt("snapshot: short slot count"))? as usize;
    let mut t = Table::with_pool(schema, pool.clone());
    for _ in 0..n {
        let slot = match c.u8().ok_or_else(|| corrupt("snapshot: short slot flag"))? {
            0 => None,
            1 => Some(get_row(c).ok_or_else(|| corrupt("snapshot: short row"))?),
            f => return Err(corrupt(format!("snapshot: bad slot flag {f}"))),
        };
        t.load_slot(slot).map_err(|e| corrupt(format!("snapshot: table rebuild failed: {e}")))?;
    }
    t.rebuild_free();
    for (name, cols, kind) in specs {
        t.create_index(name, cols, kind)
            .map_err(|e| corrupt(format!("snapshot: index rebuild failed: {e}")))?;
    }
    Ok(t)
}

fn decode_body(body: &[u8], pool: &Arc<BufferPool>) -> StorageResult<(Catalog, u64)> {
    let mut c = Cursor::new(body);
    let next_txn = c.u64().ok_or_else(|| corrupt("snapshot: short header"))?;
    let mut cat = Catalog::with_pool(pool.clone());

    let n_tables = c.u32().ok_or_else(|| corrupt("snapshot: short table count"))? as usize;
    for _ in 0..n_tables {
        let t = get_table(&mut c, pool)?;
        cat.create_table(t).map_err(|e| corrupt(format!("snapshot: duplicate table: {e}")))?;
    }

    let n_facts = c.u32().ok_or_else(|| corrupt("snapshot: short factorized count"))? as usize;
    for _ in 0..n_facts {
        let name = c.str().ok_or_else(|| corrupt("snapshot: short factorized name"))?;
        let left = get_table(&mut c, pool)?;
        let right = get_table(&mut c, pool)?;
        let n_pairs = c.u32().ok_or_else(|| corrupt("snapshot: short pair count"))? as usize;
        let mut links = Vec::with_capacity(n_pairs.min(1 << 20));
        for _ in 0..n_pairs {
            let l = c.u64().ok_or_else(|| corrupt("snapshot: short link"))?;
            let r = c.u64().ok_or_else(|| corrupt("snapshot: short link"))?;
            links.push((RowId(l), RowId(r)));
        }
        let ft = FactorizedTable::from_parts(&name, left, right, links)
            .map_err(|e| corrupt(format!("snapshot: factorized rebuild failed: {e}")))?;
        cat.create_factorized(name, ft)
            .map_err(|e| corrupt(format!("snapshot: duplicate factorized: {e}")))?;
    }

    let n_meta = c.u32().ok_or_else(|| corrupt("snapshot: short meta count"))? as usize;
    for _ in 0..n_meta {
        let k = c.str().ok_or_else(|| corrupt("snapshot: short meta key"))?;
        let v = c.str().ok_or_else(|| corrupt("snapshot: short meta value"))?;
        let v: serde_json::Value = serde_json::from_str(&v)
            .map_err(|e| corrupt(format!("snapshot: bad meta JSON under '{k}': {e}")))?;
        cat.put_meta(k, v);
    }

    // Optional trailing section: the statistics registry (absent in
    // pre-stats snapshots and in snapshots taken before any ANALYZE).
    if !c.is_done() {
        let s = c.str().ok_or_else(|| corrupt("snapshot: short stats section"))?;
        let stats: CatalogStats = serde_json::from_str(&s)
            .map_err(|e| corrupt(format!("snapshot: bad stats JSON: {e}")))?;
        cat.set_stats(stats);
    }

    if !c.is_done() {
        return Err(corrupt("snapshot: trailing bytes after body"));
    }
    Ok((cat, next_txn))
}

// ---- file I/O --------------------------------------------------------------

/// Frame `body` under `magic` and write it to `dir/final_name` atomically:
/// temp file, fsync, rename, best-effort directory fsync.
fn write_frame_atomic(
    dir: &Path,
    tmp_name: &str,
    final_name: &str,
    magic: &[u8; 8],
    body: &[u8],
) -> StorageResult<()> {
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(magic);
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(body));
    out.extend_from_slice(body);

    let final_path = dir.join(final_name);
    let tmp_path = dir.join(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp_path)
            .map_err(|e| io_err(&format!("create {}", tmp_path.display()), e))?;
        f.write_all(&out).map_err(|e| io_err("snapshot write", e))?;
        f.sync_all().map_err(|e| io_err("snapshot fsync", e))?;
    }
    std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err("snapshot rename", e))?;
    // Persist the rename itself (best effort — not all platforms allow
    // fsyncing a directory handle).
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Read and CRC-verify a framed file, returning the body and its CRC (the
/// CRC doubles as the content address deltas use to pin their base).
fn read_frame(path: &Path, magic: &[u8; 8]) -> StorageResult<(Vec<u8>, u32)> {
    let bytes =
        std::fs::read(path).map_err(|e| io_err(&format!("read {}", path.display()), e))?;
    if bytes.len() < magic.len() + 8 || &bytes[..magic.len()] != magic {
        return Err(corrupt("snapshot: bad magic"));
    }
    let len_bytes: [u8; 4] =
        bytes.get(8..12).and_then(|b| b.try_into().ok()).ok_or_else(|| corrupt("snapshot: short header"))?;
    let crc_bytes: [u8; 4] =
        bytes.get(12..16).and_then(|b| b.try_into().ok()).ok_or_else(|| corrupt("snapshot: short header"))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    let crc = u32::from_le_bytes(crc_bytes);
    let body = bytes.get(16..16 + len).ok_or_else(|| corrupt("snapshot: short body"))?;
    if bytes.len() != 16 + len {
        return Err(corrupt("snapshot: trailing bytes after frame"));
    }
    if crc32(body) != crc {
        return Err(corrupt("snapshot: body CRC mismatch"));
    }
    let mut bytes = bytes;
    bytes.drain(..16);
    Ok((bytes, crc))
}

/// Read just the stored body CRC of the base snapshot — the content address
/// a new delta records — without decoding (or re-hashing) the body.
fn base_body_crc(path: &Path) -> StorageResult<u32> {
    use std::io::Read;
    let mut f = std::fs::File::open(path)
        .map_err(|e| io_err(&format!("open {}", path.display()), e))?;
    let mut header = [0u8; 16];
    f.read_exact(&mut header).map_err(|e| io_err("snapshot header read", e))?;
    if &header[..8] != MAGIC {
        return Err(corrupt("snapshot: bad magic"));
    }
    let crc: [u8; 4] = header[12..16].try_into().map_err(|_| corrupt("snapshot: short header"))?;
    Ok(u32::from_le_bytes(crc))
}

/// Write a full checkpoint snapshot of `cat` to `dir/`[`SNAPSHOT_FILE`]
/// atomically: the image lands in a temp file first, is fsynced, and then
/// renamed over the previous snapshot, so a crash during checkpointing
/// leaves either the old or the new snapshot — never a hybrid.
pub fn write_snapshot(cat: &Catalog, next_txn: u64, dir: &Path) -> StorageResult<()> {
    use erbium_obs::{Counter, Histogram, Registry};
    use std::sync::{Arc, OnceLock};
    static CHECKPOINTS: OnceLock<Arc<Counter>> = OnceLock::new();
    static CHECKPOINT_SECONDS: OnceLock<Arc<Histogram>> = OnceLock::new();
    let t0 = std::time::Instant::now();
    let _span = erbium_obs::span("checkpoint");

    let body = encode_body(cat, next_txn);
    write_frame_atomic(dir, &format!("{SNAPSHOT_FILE}.tmp"), SNAPSHOT_FILE, MAGIC, &body)?;
    CHECKPOINTS
        .get_or_init(|| {
            Registry::global()
                .counter("erbium_checkpoints_total", "Checkpoint snapshots written")
        })
        .inc();
    CHECKPOINT_SECONDS
        .get_or_init(|| {
            Registry::global().histogram(
                "erbium_checkpoint_seconds",
                "Wall-clock duration of checkpoint snapshot writes",
            )
        })
        .observe_duration(t0.elapsed());
    Ok(())
}

/// Load a snapshot file. Any malformation is [`StorageError::Corrupt`].
pub fn load_snapshot(path: &Path) -> StorageResult<(Catalog, u64)> {
    load_snapshot_pooled(path, &BufferPool::unbounded())
}

/// [`load_snapshot`] with the recovered tables bound to `pool`.
pub fn load_snapshot_pooled(path: &Path, pool: &Arc<BufferPool>) -> StorageResult<(Catalog, u64)> {
    let (body, _) = read_frame(path, MAGIC)?;
    decode_body(&body, pool)
}

// ---- delta checkpoints -----------------------------------------------------

/// A decoded `ERBSNAP2` delta file: the full serialized state of every
/// table/structure that was dirty at checkpoint time, applied wholesale on
/// top of the base (or the previous delta) during recovery.
struct Delta {
    seq: u64,
    base_crc: u32,
    next_txn: u64,
    tables: Vec<Table>,
    facts: Vec<(String, FactorizedTable)>,
    meta: FxHashMap<String, serde_json::Value>,
    stats: Option<CatalogStats>,
}

fn encode_delta_body(
    cat: &Catalog,
    seq: u64,
    base_crc: u32,
    next_txn: u64,
    tables: &[String],
    facts: &[String],
) -> StorageResult<Vec<u8>> {
    let mut buf = Vec::with_capacity(1024);
    put_u64(&mut buf, seq);
    put_u32(&mut buf, base_crc);
    put_u64(&mut buf, next_txn);

    put_u32(&mut buf, tables.len() as u32);
    for name in tables {
        put_table(&mut buf, cat.table(name)?);
    }

    put_u32(&mut buf, facts.len() as u32);
    for name in facts {
        let ft = cat.factorized(name)?;
        put_str(&mut buf, name);
        put_table(&mut buf, ft.left());
        put_table(&mut buf, ft.right());
        let pairs = ft.link_pairs();
        put_u32(&mut buf, pairs.len() as u32);
        for (l, r) in pairs {
            put_u64(&mut buf, l.0);
            put_u64(&mut buf, r.0);
        }
    }

    // The metadata map and stats registry ride along wholesale: both are
    // tiny relative to table data and per-key dirty tracking is not worth
    // the bookkeeping.
    let mut meta: Vec<(&String, &serde_json::Value)> = cat.meta_entries().collect();
    meta.sort_by_key(|(k, _)| k.as_str());
    put_u32(&mut buf, meta.len() as u32);
    for (k, v) in meta {
        put_str(&mut buf, k);
        put_str(&mut buf, &v.to_string());
    }
    if cat.stats().is_empty() {
        buf.push(0);
    } else {
        buf.push(1);
        let stats_json = serde_json::to_string(cat.stats()).expect("catalog stats serialize");
        put_str(&mut buf, &stats_json);
    }
    Ok(buf)
}

fn decode_delta_body(body: &[u8], pool: &Arc<BufferPool>) -> StorageResult<Delta> {
    let mut c = Cursor::new(body);
    let seq = c.u64().ok_or_else(|| corrupt("delta: short seq"))?;
    let base_crc = c.u32().ok_or_else(|| corrupt("delta: short base crc"))?;
    let next_txn = c.u64().ok_or_else(|| corrupt("delta: short next txn"))?;

    let n_tables = c.u32().ok_or_else(|| corrupt("delta: short table count"))? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(1 << 10));
    for _ in 0..n_tables {
        tables.push(get_table(&mut c, pool)?);
    }

    let n_facts = c.u32().ok_or_else(|| corrupt("delta: short factorized count"))? as usize;
    let mut facts = Vec::with_capacity(n_facts.min(1 << 10));
    for _ in 0..n_facts {
        let name = c.str().ok_or_else(|| corrupt("delta: short factorized name"))?;
        let left = get_table(&mut c, pool)?;
        let right = get_table(&mut c, pool)?;
        let n_pairs = c.u32().ok_or_else(|| corrupt("delta: short pair count"))? as usize;
        let mut links = Vec::with_capacity(n_pairs.min(1 << 20));
        for _ in 0..n_pairs {
            let l = c.u64().ok_or_else(|| corrupt("delta: short link"))?;
            let r = c.u64().ok_or_else(|| corrupt("delta: short link"))?;
            links.push((RowId(l), RowId(r)));
        }
        let ft = FactorizedTable::from_parts(&name, left, right, links)
            .map_err(|e| corrupt(format!("delta: factorized rebuild failed: {e}")))?;
        facts.push((name, ft));
    }

    let n_meta = c.u32().ok_or_else(|| corrupt("delta: short meta count"))? as usize;
    let mut meta = FxHashMap::default();
    for _ in 0..n_meta {
        let k = c.str().ok_or_else(|| corrupt("delta: short meta key"))?;
        let v = c.str().ok_or_else(|| corrupt("delta: short meta value"))?;
        let v: serde_json::Value = serde_json::from_str(&v)
            .map_err(|e| corrupt(format!("delta: bad meta JSON under '{k}': {e}")))?;
        meta.insert(k, v);
    }
    let stats = match c.u8().ok_or_else(|| corrupt("delta: short stats flag"))? {
        0 => None,
        1 => {
            let s = c.str().ok_or_else(|| corrupt("delta: short stats section"))?;
            Some(
                serde_json::from_str(&s)
                    .map_err(|e| corrupt(format!("delta: bad stats JSON: {e}")))?,
            )
        }
        f => return Err(corrupt(format!("delta: bad stats flag {f}"))),
    };
    if !c.is_done() {
        return Err(corrupt("delta: trailing bytes after body"));
    }
    Ok(Delta { seq, base_crc, next_txn, tables, facts, meta, stats })
}

fn load_delta(path: &Path, pool: &Arc<BufferPool>) -> StorageResult<Delta> {
    let (body, _) = read_frame(path, MAGIC2)?;
    decode_delta_body(&body, pool)
}

/// Just the identifying header of a delta file (frame still CRC-verified):
/// enough for the checkpointer to tell live chain members from stale ones.
fn delta_header(path: &Path) -> StorageResult<(u64, u32, u64)> {
    let (body, _) = read_frame(path, MAGIC2)?;
    let mut c = Cursor::new(&body);
    let seq = c.u64().ok_or_else(|| corrupt("delta: short seq"))?;
    let base_crc = c.u32().ok_or_else(|| corrupt("delta: short base crc"))?;
    let next_txn = c.u64().ok_or_else(|| corrupt("delta: short next txn"))?;
    Ok((seq, base_crc, next_txn))
}

/// What [`write_checkpoint`] decided to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// A full `ERBSNAP1` snapshot; any existing delta chain was compacted
    /// away.
    Full,
    /// An `ERBSNAP2` delta carrying only the dirty subset of the catalog.
    Delta {
        /// Plain tables serialized into the delta.
        tables: usize,
        /// Factorized structures serialized into the delta.
        factorized: usize,
    },
}

/// Write a checkpoint of `cat`, choosing between a full snapshot and an
/// incremental delta based on the catalog's dirty tracking.
///
/// Full snapshots are forced when there is no base yet, when the catalog's
/// shape changed (DDL — cheaper to restate everything than to version
/// drops), when the delta chain reached [`MAX_DELTA_CHAIN`], or when more
/// than half the catalog is dirty (the delta would approach the full image
/// in size while still costing a chain read at recovery). Otherwise a delta
/// is written — even with zero dirty tables it carries the authoritative
/// `next_txn`/metadata/stats, which is what makes the subsequent WAL
/// truncation safe.
///
/// Clears the catalog's dirty tracking on success.
pub fn write_checkpoint(
    cat: &mut Catalog,
    next_txn: u64,
    dir: &Path,
) -> StorageResult<CheckpointKind> {
    use erbium_obs::{Counter, Registry};
    use std::sync::{Arc, OnceLock};
    static DELTA_TABLES: OnceLock<Arc<Counter>> = OnceLock::new();

    let base_path = dir.join(SNAPSHOT_FILE);
    let dirty_tables = cat.dirty_table_names();
    let dirty_facts = cat.dirty_factorized_names();
    let dirty = dirty_tables.len() + dirty_facts.len();
    let total = cat.table_names().len() + cat.factorized_names().len();

    // Survey the existing chain. Stale deltas (wrong base, e.g. survivors
    // of a crash between a full-snapshot rename and their deletion) are
    // removed here; unreadable ones are real corruption and surface.
    let base_crc = if base_path.exists() { Some(base_body_crc(&base_path)?) } else { None };
    let mut chain_len = 0usize;
    let mut max_seq = 0u64;
    let mut stale: Vec<PathBuf> = Vec::new();
    let deltas = list_deltas(dir)?;
    for (file_seq, path) in &deltas {
        let (seq, crc, _) = delta_header(path)?;
        if seq != *file_seq {
            return Err(corrupt(format!(
                "delta: file {} claims seq {seq}",
                path.display()
            )));
        }
        if Some(crc) == base_crc {
            chain_len += 1;
            max_seq = max_seq.max(seq);
        } else {
            stale.push(path.clone());
        }
    }
    for path in &stale {
        let _ = std::fs::remove_file(path);
    }

    let force_full = base_crc.is_none()
        || cat.structural_dirty()
        || chain_len >= MAX_DELTA_CHAIN
        || dirty * 2 > total;
    if force_full {
        write_snapshot(cat, next_txn, dir)?;
        // Delete the now-absorbed chain *after* the base rename: a crash in
        // between leaves stale deltas, which the `base_crc` check ignores.
        for (_, path) in &deltas {
            let _ = std::fs::remove_file(path);
        }
        cat.mark_checkpointed();
        return Ok(CheckpointKind::Full);
    }

    let _span = erbium_obs::span("checkpoint_delta");
    let base_crc = base_crc.expect("checked above");
    let body =
        encode_delta_body(cat, max_seq + 1, base_crc, next_txn, &dirty_tables, &dirty_facts)?;
    write_frame_atomic(dir, DELTA_TMP, &delta_file_name(max_seq + 1), MAGIC2, &body)?;
    DELTA_TABLES
        .get_or_init(|| {
            Registry::global().counter(
                "erbium_checkpoint_delta_tables",
                "Tables and factorized structures written into delta checkpoints",
            )
        })
        .add(dirty as u64);
    cat.mark_checkpointed();
    Ok(CheckpointKind::Delta { tables: dirty_tables.len(), factorized: dirty_facts.len() })
}

// ---- recovery --------------------------------------------------------------

/// The result of [`Catalog::recover`].
#[derive(Debug)]
pub struct Recovered {
    /// The reconstructed catalog: snapshot state plus the committed WAL
    /// suffix.
    pub catalog: Catalog,
    /// One past the highest transaction id ever assigned — seed for the
    /// reopened [`crate::wal::Wal`].
    pub next_txn: u64,
    /// Number of committed WAL groups redone on top of the snapshot.
    pub replayed_groups: usize,
    /// True if the WAL ended in a torn/corrupt tail (the in-flight group
    /// was discarded — expected after a crash, worth logging upstream).
    pub torn_tail: bool,
}

fn redo(cat: &mut Catalog, rec: WalRecord) -> StorageResult<()> {
    match rec {
        WalRecord::Begin { .. } | WalRecord::Commit { .. } | WalRecord::Abort { .. } => {}
        WalRecord::Insert { table, rid, row } => {
            cat.table_mut(&table)?.place_at(RowId(rid), row)?;
        }
        WalRecord::BulkInsert { table, first, rows } => {
            let t = cat.table_mut(&table)?;
            for (i, row) in rows.into_iter().enumerate() {
                // A WAL-supplied `first` near u64::MAX must surface as
                // corruption, not an addition overflow panic.
                let rid = first
                    .checked_add(i as u64)
                    .ok_or_else(|| corrupt("WAL: bulk insert row id overflows"))?;
                t.place_at(RowId(rid), row)?;
            }
        }
        WalRecord::Update { table, rid, row } => {
            cat.table_mut(&table)?.update(RowId(rid), row)?;
        }
        WalRecord::Delete { table, rid } => {
            cat.table_mut(&table)?.delete(RowId(rid))?;
        }
        WalRecord::CreateTable { schema_json } => {
            let schema: TableSchema = serde_json::from_str(&schema_json)
                .map_err(|e| corrupt(format!("WAL: bad CreateTable schema: {e}")))?;
            cat.create_table(Table::new(schema))?;
        }
        WalRecord::FactInsert { name, side, rid, row } => {
            let ft = cat.factorized_mut(&name)?;
            match side {
                FactSide::Left => ft.place_left(RowId(rid), row)?,
                FactSide::Right => ft.place_right(RowId(rid), row)?,
            }
        }
        WalRecord::FactUpdate { name, side, rid, row } => {
            let ft = cat.factorized_mut(&name)?;
            match side {
                FactSide::Left => ft.update_left(RowId(rid), row)?,
                FactSide::Right => ft.update_right(RowId(rid), row)?,
            };
        }
        WalRecord::FactDelete { name, side, rid } => {
            let ft = cat.factorized_mut(&name)?;
            match side {
                FactSide::Left => ft.delete_left(RowId(rid))?,
                FactSide::Right => ft.delete_right(RowId(rid))?,
            };
        }
        WalRecord::FactLink { name, l, r } => {
            cat.factorized_mut(&name)?.link(RowId(l), RowId(r))?;
        }
        WalRecord::FactUnlink { name, l, r } => {
            cat.factorized_mut(&name)?.unlink(RowId(l), RowId(r));
        }
    }
    Ok(())
}

impl Catalog {
    /// Reconstruct the catalog stored in `dir`: load `dir/snapshot.erb`
    /// when present (a missing snapshot means "start empty" — a fresh
    /// database or one that has never checkpointed), apply the valid delta
    /// chain in sequence order, then redo every *committed* group in
    /// `dir/wal.erb` whose transaction id is not already absorbed by the
    /// chain. Rows are placed at the exact slots the log recorded; free
    /// lists are rebuilt afterwards.
    ///
    /// A torn or corrupt WAL tail is tolerated (that is what a crash looks
    /// like); a corrupt snapshot or delta is not, because both are written
    /// atomically. Deltas recorded against a *different* base (stale
    /// survivors of a full-snapshot compaction crash) are silently ignored.
    pub fn recover(dir: &Path) -> StorageResult<Recovered> {
        Catalog::recover_with(dir, BufferPool::unbounded())
    }

    /// [`Catalog::recover`] with the rebuilt tables bound to `pool`:
    /// snapshot and delta decoding stream slots page by page (reclaiming as
    /// they go), and WAL redo reclaims between groups, so recovery of a
    /// catalog larger than the frame budget stays within it.
    pub fn recover_with(dir: &Path, pool: Arc<BufferPool>) -> StorageResult<Recovered> {
        use erbium_obs::{Counter, Registry};
        use std::sync::OnceLock;
        static RECOVERIES: OnceLock<Arc<Counter>> = OnceLock::new();
        static REPLAYED: OnceLock<Arc<Counter>> = OnceLock::new();
        static STATS_RESTORED: OnceLock<Arc<Counter>> = OnceLock::new();
        let _span = erbium_obs::span("recover");

        let snap_path = dir.join(SNAPSHOT_FILE);
        let (mut cat, mut next_txn) = if snap_path.exists() {
            let (body, base_crc) = read_frame(&snap_path, MAGIC)?;
            let (mut cat, mut chain_txn) = decode_body(&body, &pool)?;

            // Chain the deltas recorded against *this* base, newest last.
            let mut chain: Vec<Delta> = Vec::new();
            for (file_seq, path) in list_deltas(dir)? {
                let d = load_delta(&path, &pool)?;
                if d.seq != file_seq {
                    return Err(corrupt(format!(
                        "delta: file {} claims seq {}",
                        path.display(),
                        d.seq
                    )));
                }
                if d.base_crc == base_crc {
                    chain.push(d);
                }
            }
            chain.sort_by_key(|d| d.seq);
            for (i, d) in chain.iter().enumerate() {
                if d.seq != i as u64 + 1 {
                    return Err(corrupt(format!(
                        "delta: chain not contiguous (expected seq {}, found {})",
                        i + 1,
                        d.seq
                    )));
                }
            }
            for d in chain {
                for t in d.tables {
                    cat.install_table_version(t);
                }
                for (name, ft) in d.facts {
                    cat.install_factorized_version(name, ft);
                }
                cat.replace_meta(d.meta);
                cat.set_stats(d.stats.unwrap_or_default());
                chain_txn = chain_txn.max(d.next_txn);
            }
            (cat, chain_txn)
        } else {
            (Catalog::with_pool(pool.clone()), 1)
        };
        // The in-memory state now equals the on-disk checkpoint chain, so
        // dirty tracking restarts clean; the WAL redo below re-marks
        // exactly the tables the suffix touches (they *are* newer than the
        // chain, and the next delta checkpoint must carry them).
        let chain_txn = next_txn;
        cat.mark_checkpointed();
        // Count restored stats entries now: the WAL redo below may mark
        // some of them stale (that is the re-derived-staleness contract),
        // but they were restored from the checkpoint chain either way.
        let stats_restored = cat.stats().len();
        let scan = scan_wal(&dir.join(WAL_FILE))?;
        next_txn = next_txn.max(scan.next_txn);
        let mut replayed_groups = 0usize;
        for (txn_id, group) in scan.committed {
            // Groups the checkpoint chain already absorbed (a crash can
            // land between the checkpoint rename and the WAL truncation)
            // must not be redone: their rows are in the chain, and placing
            // them again would collide with occupied slots.
            if txn_id < chain_txn {
                continue;
            }
            replayed_groups += 1;
            for rec in group {
                redo(&mut cat, rec)?;
            }
            // Every redone group is committed state, so its pages can spill
            // immediately; without this the redo suffix would accumulate
            // resident pages past the frame budget.
            if pool.over_budget() {
                cat.reclaim_pages();
            }
        }
        for t in cat.tables_iter_mut() {
            t.rebuild_free();
        }
        for ft in cat.factorized_iter_mut() {
            ft.rebuild_free();
        }
        RECOVERIES
            .get_or_init(|| {
                Registry::global()
                    .counter("erbium_recoveries_total", "Catalog recoveries performed")
            })
            .inc();
        REPLAYED
            .get_or_init(|| {
                Registry::global().counter(
                    "erbium_recovery_replayed_groups_total",
                    "Committed WAL groups redone during recovery",
                )
            })
            .add(replayed_groups as u64);
        STATS_RESTORED
            .get_or_init(|| {
                Registry::global().counter(
                    "erbium_recovery_stats_restored_total",
                    "Statistics entries restored from checkpoint snapshots during recovery",
                )
            })
            .add(stats_restored as u64);
        Ok(Recovered { catalog: cat, next_txn, replayed_groups, torn_tail: scan.torn_tail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::txn::Transaction;
    use crate::value::{DataType, Value};
    use crate::wal::{SyncPolicy, Wal};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        p.push(format!("erbium-snap-test-{tag}-{}-{nanos}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "people",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("score", DataType::Float),
                Column::new("tags", DataType::Array(Box::new(DataType::Text))),
            ],
            vec![0],
        ));
        t.create_index("by_name", vec![1], IndexKind::Hash).unwrap();
        let r0 = t
            .insert(vec![
                Value::Int(1),
                Value::str("ada"),
                Value::Int(5), // canonicalizes to Float(5.0)
                Value::Array(vec![Value::str("x"), Value::str("y")]),
            ])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::str("bob"), Value::Float(2.5), Value::Null]).unwrap();
        t.delete(r0).unwrap(); // leave a tombstone so slot layout matters
        t.insert(vec![Value::Int(3), Value::str("eve"), Value::Null, Value::Null]).unwrap();
        cat.create_table(t).unwrap();

        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int), Column::new("lv", DataType::Text)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int), Column::new("rv", DataType::Int)],
            vec![0],
        );
        let mut ft = FactorizedTable::new("f", left, right);
        let l0 = ft.insert_left(vec![Value::Int(1), Value::str("a")]).unwrap();
        let l1 = ft.insert_left(vec![Value::Int(2), Value::str("b")]).unwrap();
        let r0 = ft.insert_right(vec![Value::Int(10), Value::Int(100)]).unwrap();
        let r1 = ft.insert_right(vec![Value::Int(20), Value::Int(200)]).unwrap();
        ft.link(l0, r0).unwrap();
        ft.link(l0, r1).unwrap();
        ft.link(l1, r1).unwrap();
        cat.create_factorized("f", ft).unwrap();

        let doc: serde_json::Value =
            serde_json::from_str(r#"{"preset": "m3", "v": 2}"#).unwrap();
        cat.put_meta("mapping", doc);
        cat
    }

    fn assert_catalogs_equal(a: &Catalog, b: &Catalog) {
        assert_eq!(a.table_names(), b.table_names());
        for name in a.table_names() {
            let (ta, tb) = (a.table(&name).unwrap(), b.table(&name).unwrap());
            assert_eq!(ta.schema(), tb.schema(), "schema of '{name}'");
            assert_eq!(ta.slots_vec(), tb.slots_vec(), "slots of '{name}'");
            let mut ia: Vec<_> =
                ta.indexes().iter().map(|i| (i.name.clone(), i.columns.clone(), i.kind())).collect();
            let mut ib: Vec<_> =
                tb.indexes().iter().map(|i| (i.name.clone(), i.columns.clone(), i.kind())).collect();
            ia.sort();
            ib.sort();
            assert_eq!(ia, ib, "indexes of '{name}'");
        }
        assert_eq!(a.factorized_names(), b.factorized_names());
        for name in a.factorized_names() {
            let (fa, fb) = (a.factorized(&name).unwrap(), b.factorized(&name).unwrap());
            assert_eq!(fa.left().slots_vec(), fb.left().slots_vec());
            assert_eq!(fa.right().slots_vec(), fb.right().slots_vec());
            let mut la = fa.link_pairs();
            let mut lb = fb.link_pairs();
            la.sort();
            lb.sort();
            assert_eq!(la, lb, "links of '{name}'");
            assert_eq!(fa.pair_count(), fb.pair_count());
        }
        let mut ma: Vec<_> = a.meta_entries().map(|(k, v)| (k.clone(), v.clone())).collect();
        let mut mb: Vec<_> = b.meta_entries().map(|(k, v)| (k.clone(), v.clone())).collect();
        ma.sort_by(|x, y| x.0.cmp(&y.0));
        mb.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(ma, mb, "metadata");
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let dir = temp_dir("roundtrip");
        let cat = sample_catalog();
        write_snapshot(&cat, 17, &dir).unwrap();
        let (back, next_txn) = load_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
        assert_eq!(next_txn, 17);
        assert_catalogs_equal(&cat, &back);
        // Indexes answer queries after the rebuild.
        let t = back.table("people").unwrap();
        assert_eq!(t.index_lookup(&[1], &Value::str("bob")).unwrap().len(), 1);
        assert!(t.lookup_pk(&Value::Int(3)).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_roundtrip_preserves_stats() {
        let dir = temp_dir("stats-roundtrip");
        let mut cat = sample_catalog();
        let written = cat.analyze();
        assert!(written >= 4, "people + f + f#left + f#right");
        write_snapshot(&cat, 9, &dir).unwrap();
        let (back, _) = load_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
        assert_eq!(back.stats(), cat.stats(), "stats registry survives the snapshot");
        assert!(!back.stats().is_empty());
        assert!(!back.stats().is_stale("people"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_less_snapshot_keeps_legacy_byte_layout() {
        // A catalog that never ran ANALYZE must produce a snapshot with no
        // trailing stats section — i.e. exactly the pre-stats `ERBSNAP1`
        // bytes. That makes old files (which *are* such snapshots) decode
        // under the new reader, proving backward compatibility.
        let cat = sample_catalog();
        assert!(cat.stats().is_empty());
        let body = encode_body(&cat, 3);
        let (back, next_txn) = decode_body(&body, &BufferPool::unbounded()).unwrap();
        assert_eq!(next_txn, 3);
        assert!(back.stats().is_empty(), "no stats section, no stats");
        assert_catalogs_equal(&cat, &back);
        // And the new encoder appends bytes only when stats exist.
        let mut with_stats = sample_catalog();
        with_stats.analyze();
        assert!(encode_body(&with_stats, 3).len() > body.len());
    }

    #[test]
    fn recover_restores_stats_and_rederives_staleness() {
        let dir = temp_dir("stats-recover");
        let mut cat = sample_catalog();
        cat.analyze();
        let n_stats = cat.stats().len();
        write_snapshot(&cat, 5, &dir).unwrap();

        // Post-checkpoint traffic touches only `people`; the factorized
        // structure `f` stays untouched.
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 5).unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            txn.insert(
                cat,
                "people",
                vec![Value::Int(7), Value::str("gil"), Value::Null, Value::Null],
            )?;
            Ok(())
        })
        .unwrap();

        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.replayed_groups, 1);
        let stats = rec.catalog.stats();
        assert!(!stats.is_empty(), "recovery must not silently drop stats");
        assert_eq!(stats.len(), n_stats);
        // WAL-redone tables re-derive staleness; untouched entries stay fresh.
        assert!(stats.is_stale("people"), "redone table is stale");
        assert!(!stats.is_stale("f"), "untouched structure stays fresh");
        assert!(!stats.is_stale("f#left"));
        assert!(!stats.is_stale("f#right"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_hard_error() {
        let dir = temp_dir("corrupt");
        write_snapshot(&sample_catalog(), 1, &dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_snapshot(&path), Err(StorageError::Corrupt(_))));
        // Truncation is also corruption.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(load_snapshot(&path), Err(StorageError::Corrupt(_))));
        std::fs::write(&path, b"ERBSNAPX").unwrap();
        assert!(matches!(load_snapshot(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_replays_committed_wal_over_snapshot() {
        let dir = temp_dir("recover");
        let mut cat = sample_catalog();
        write_snapshot(&cat, 5, &dir).unwrap();

        // Post-snapshot traffic through logged transactions.
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 5).unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            txn.insert(
                cat,
                "people",
                vec![Value::Int(4), Value::str("dan"), Value::Int(9), Value::Null],
            )?;
            let (rid, _) = cat.table("people").unwrap().lookup_pk(&Value::Int(2)).unwrap();
            txn.update(
                cat,
                "people",
                rid,
                vec![Value::Int(2), Value::str("bob2"), Value::Float(2.5), Value::Null],
            )?;
            Ok(())
        })
        .unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            let l2 = txn.fact_insert(cat, "f", FactSide::Left, vec![Value::Int(3), Value::str("c")])?;
            txn.fact_link(cat, "f", l2, RowId(0))?;
            let (rid, _) = cat.table("people").unwrap().lookup_pk(&Value::Int(3)).unwrap();
            txn.delete(cat, "people", rid)?;
            Ok(())
        })
        .unwrap();
        // A rolled-back transaction must leave no trace on disk.
        let _ = Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            txn.insert(cat, "people", vec![Value::Int(99), Value::Null, Value::Null, Value::Null])?;
            Err::<(), _>(StorageError::Internal("deliberate".into()))
        });

        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.replayed_groups, 2);
        assert!(!rec.torn_tail);
        assert!(rec.next_txn >= 7);
        assert_catalogs_equal(&cat, &rec.catalog);
        // Live-data sanity on the recovered side.
        let t = rec.catalog.table("people").unwrap();
        assert!(t.lookup_pk(&Value::Int(99)).is_none(), "aborted txn invisible");
        assert_eq!(t.lookup_pk(&Value::Int(2)).unwrap().1[1], Value::str("bob2"));
        assert!(matches!(
            t.lookup_pk(&Value::Int(4)).unwrap().1[2],
            Value::Float(f) if f == 9.0
        ), "redo reproduces canonicalized state");
        assert_eq!(rec.catalog.factorized("f").unwrap().pair_count(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_without_snapshot_replays_from_empty() {
        let dir = temp_dir("nosnap");
        let mut cat = Catalog::new();
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 1).unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            txn.create_table(
                cat,
                Table::new(TableSchema::new(
                    "t",
                    vec![Column::not_null("id", DataType::Int)],
                    vec![0],
                )),
            )?;
            txn.insert(cat, "t", vec![Value::Int(1)])?;
            txn.insert(cat, "t", vec![Value::Int(2)])?;
            Ok(())
        })
        .unwrap();
        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.catalog.table("t").unwrap().len(), 2);
        assert_eq!(rec.replayed_groups, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_free_list_recycles_slots() {
        let dir = temp_dir("freelist");
        let mut cat = Catalog::new();
        cat.create_table(Table::new(TableSchema::new(
            "t",
            vec![Column::not_null("id", DataType::Int)],
            vec![0],
        )))
        .unwrap();
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 1).unwrap();
        write_snapshot(&cat, 1, &dir).unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            let r1 = txn.insert(cat, "t", vec![Value::Int(1)])?;
            txn.insert(cat, "t", vec![Value::Int(2)])?;
            txn.delete(cat, "t", r1)?;
            Ok(())
        })
        .unwrap();
        let rec = Catalog::recover(&dir).unwrap();
        let mut cat2 = rec.catalog;
        let rid = cat2.table_mut("t").unwrap().insert(vec![Value::Int(3)]).unwrap();
        assert_eq!(rid, RowId(0), "tombstoned slot recycled after recovery");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_checkpoint_roundtrip_and_chain() {
        let dir = temp_dir("delta-roundtrip");
        let mut cat = sample_catalog();
        cat.analyze();
        // Fresh catalog: shape is new, so the first checkpoint is full.
        assert_eq!(write_checkpoint(&mut cat, 5, &dir).unwrap(), CheckpointKind::Full);

        // Touch only `people` (1 of 2 structures) → delta carrying it alone.
        cat.table_mut("people")
            .unwrap()
            .insert(vec![Value::Int(7), Value::str("gil"), Value::Null, Value::Null])
            .unwrap();
        assert_eq!(
            write_checkpoint(&mut cat, 6, &dir).unwrap(),
            CheckpointKind::Delta { tables: 1, factorized: 0 }
        );
        assert!(dir.join("snapshot.delta.1.erb").exists());

        // Touch only the factorized structure → second delta in the chain.
        let l = cat.factorized_mut("f").unwrap().insert_left(vec![Value::Int(9), Value::str("z")]).unwrap();
        cat.factorized_mut("f").unwrap().link(l, RowId(0)).unwrap();
        assert_eq!(
            write_checkpoint(&mut cat, 7, &dir).unwrap(),
            CheckpointKind::Delta { tables: 0, factorized: 1 }
        );
        assert!(dir.join("snapshot.delta.2.erb").exists());

        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.next_txn, 7);
        assert_eq!(rec.replayed_groups, 0);
        assert_catalogs_equal(&cat, &rec.catalog);
        assert_eq!(rec.catalog.stats(), cat.stats(), "stats ride along in deltas");
        assert!(
            rec.catalog.dirty_table_names().is_empty(),
            "recovered state equals the chain — nothing dirty"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_compacts_on_ddl_dirty_fraction_and_chain_length() {
        let dir = temp_dir("delta-compaction");
        let mut cat = sample_catalog();
        assert_eq!(write_checkpoint(&mut cat, 1, &dir).unwrap(), CheckpointKind::Full);

        // DDL forces a full snapshot even with a tiny dirty set.
        cat.create_table(Table::new(TableSchema::new(
            "extra",
            vec![Column::not_null("id", DataType::Int)],
            vec![0],
        )))
        .unwrap();
        assert_eq!(write_checkpoint(&mut cat, 2, &dir).unwrap(), CheckpointKind::Full);

        // Most of the catalog dirty (2 of 3) → delta would approach a full
        // image, so compaction wins.
        cat.table_mut("people").unwrap().delete(RowId(1)).unwrap();
        cat.table_mut("extra").unwrap().insert(vec![Value::Int(1)]).unwrap();
        assert_eq!(write_checkpoint(&mut cat, 3, &dir).unwrap(), CheckpointKind::Full);

        // Chain growth is bounded: after MAX_DELTA_CHAIN deltas the next
        // checkpoint compacts and deletes the chain.
        for i in 0..MAX_DELTA_CHAIN as u64 {
            cat.table_mut("extra").unwrap().insert(vec![Value::Int(100 + i as i64)]).unwrap();
            assert_eq!(
                write_checkpoint(&mut cat, 4 + i, &dir).unwrap(),
                CheckpointKind::Delta { tables: 1, factorized: 0 },
                "delta #{i}"
            );
        }
        assert!(dir.join(delta_file_name(MAX_DELTA_CHAIN as u64)).exists());
        cat.table_mut("extra").unwrap().insert(vec![Value::Int(999)]).unwrap();
        assert_eq!(
            write_checkpoint(&mut cat, 42, &dir).unwrap(),
            CheckpointKind::Full,
            "chain at MAX_DELTA_CHAIN compacts"
        );
        assert!(list_deltas(&dir).unwrap().is_empty(), "compaction deletes the chain");
        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.next_txn, 42);
        assert_catalogs_equal(&cat, &rec.catalog);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_deltas_are_ignored_and_cleaned() {
        let dir = temp_dir("delta-stale");
        let mut cat = sample_catalog();
        assert_eq!(write_checkpoint(&mut cat, 1, &dir).unwrap(), CheckpointKind::Full);
        cat.table_mut("people")
            .unwrap()
            .insert(vec![Value::Int(7), Value::str("gil"), Value::Null, Value::Null])
            .unwrap();
        assert!(matches!(
            write_checkpoint(&mut cat, 2, &dir).unwrap(),
            CheckpointKind::Delta { .. }
        ));

        // Simulate a compaction crash: the new base snapshot is renamed
        // into place, but the process dies before the old delta is deleted.
        cat.table_mut("people")
            .unwrap()
            .insert(vec![Value::Int(8), Value::str("hal"), Value::Null, Value::Null])
            .unwrap();
        write_snapshot(&cat, 3, &dir).unwrap();
        assert!(dir.join("snapshot.delta.1.erb").exists(), "stale delta survived the crash");

        // Recovery must ignore the stale delta: its base_crc names the old
        // base body, not the one on disk.
        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.next_txn, 3);
        assert_catalogs_equal(&cat, &rec.catalog);

        // The next checkpoint garbage-collects it and starts a new chain.
        let mut cat2 = rec.catalog;
        cat2.table_mut("people")
            .unwrap()
            .insert(vec![Value::Int(9), Value::str("ivy"), Value::Null, Value::Null])
            .unwrap();
        assert!(matches!(
            write_checkpoint(&mut cat2, 4, &dir).unwrap(),
            CheckpointKind::Delta { tables: 1, .. }
        ));
        let deltas = list_deltas(&dir).unwrap();
        assert_eq!(deltas.len(), 1, "stale delta collected, fresh chain of one");
        assert_eq!(deltas[0].0, 1, "new chain restarts at seq 1");
        let rec2 = Catalog::recover(&dir).unwrap();
        assert_catalogs_equal(&cat2, &rec2.catalog);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_skips_wal_groups_absorbed_by_checkpoint_chain() {
        let dir = temp_dir("absorbed-groups");
        let mut cat = sample_catalog();
        assert_eq!(write_checkpoint(&mut cat, 1, &dir).unwrap(), CheckpointKind::Full);
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 1).unwrap();
        for (id, name) in [(50, "nat"), (51, "ola")] {
            Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
                txn.insert(
                    cat,
                    "people",
                    vec![Value::Int(id), Value::str(name), Value::Null, Value::Null],
                )?;
                Ok(())
            })
            .unwrap();
        }
        // Checkpoint absorbs both groups, but the process "crashes" before
        // the WAL truncation — the groups are still on disk.
        assert!(matches!(
            write_checkpoint(&mut cat, wal.next_txn_id(), &dir).unwrap(),
            CheckpointKind::Delta { .. }
        ));
        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.replayed_groups, 0, "absorbed groups must not be redone");
        assert_catalogs_equal(&cat, &rec.catalog);

        // A group committed after the checkpoint still replays.
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            txn.insert(cat, "people", vec![Value::Int(52), Value::str("pam"), Value::Null, Value::Null])?;
            Ok(())
        })
        .unwrap();
        let rec2 = Catalog::recover(&dir).unwrap();
        assert_eq!(rec2.replayed_groups, 1);
        assert!(rec2.catalog.table("people").unwrap().lookup_pk(&Value::Int(52)).is_some());
        assert_catalogs_equal(&cat, &rec2.catalog);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bulk_insert_record_replays_at_exact_slots() {
        let dir = temp_dir("bulk-replay");
        let mut cat = sample_catalog();
        write_snapshot(&cat, 5, &dir).unwrap();
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 5).unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            // Tombstone a low slot first: the batch must still land at the
            // tail, and the hole must survive replay.
            let (rid, _) = cat.table("people").unwrap().lookup_pk(&Value::Int(3)).unwrap();
            txn.delete(cat, "people", rid)?;
            let rows: Vec<_> = (10..20)
                .map(|i| vec![Value::Int(i), Value::str(format!("u{i}")), Value::Int(i), Value::Null])
                .collect();
            let (first, n) = txn.bulk_insert(cat, "people", rows)?;
            assert_eq!((first, n), (RowId(2), 10), "batch lands at the tail");
            Ok(())
        })
        .unwrap();
        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.replayed_groups, 1);
        assert_catalogs_equal(&cat, &rec.catalog);
        let t = rec.catalog.table("people").unwrap();
        assert!(matches!(
            t.lookup_pk(&Value::Int(12)).unwrap().1[2],
            Value::Float(f) if f == 12.0
        ), "replayed rows are the canonicalized ones");
        // The pre-existing tombstone at slot 0 is still free after replay.
        let mut cat2 = rec.catalog;
        let rid = cat2
            .table_mut("people")
            .unwrap()
            .insert(vec![Value::Int(99), Value::Null, Value::Null, Value::Null])
            .unwrap();
        assert_eq!(rid, RowId(0), "free list rebuilt around the bulk rows");
        std::fs::remove_dir_all(&dir).ok();
    }
}
