//! Checkpoint snapshots and crash recovery.
//!
//! A snapshot is a full, self-contained image of one [`Catalog`]: every
//! plain table (schema, secondary-index specs, and the raw slot vector —
//! tombstones included, because [`crate::row::RowId`]s in the WAL suffix
//! and in factorized pointer lists are slot positions), every factorized
//! structure (both members plus the link pairs), and the metadata area
//! (which is where the upper layers keep the E/R schema, the installed
//! mapping, and the version log — so those ride along for free). Gathered
//! statistics ride along too: an optional trailing section carries the
//! [`CatalogStats`] registry, so a recovered database keeps its cost-based
//! optimizer passes armed instead of silently degrading to the no-stats
//! no-op paths. The section is emitted only when the registry is
//! non-empty, which keeps stat-less snapshots byte-identical to the
//! original `ERBSNAP1` layout (backward- and forward-compatible decode:
//! old files simply have no trailing section).
//!
//! ## On-disk format
//!
//! ```text
//! [magic "ERBSNAP1": 8 bytes] [body_len: u32 LE] [crc32(body): u32 LE] [body]
//! ```
//!
//! The body reuses the WAL's binary value codec. Unlike the WAL — where a
//! torn tail is expected and tolerated — any framing/CRC/decode failure in
//! a snapshot is a hard [`StorageError::Corrupt`]: the file is written
//! atomically (tmp + fsync + rename), so a damaged snapshot means real
//! corruption, not a crash artifact.
//!
//! ## Recovery protocol
//!
//! [`Catalog::recover`] = load the latest snapshot (or start empty), then
//! redo the *committed* suffix of the WAL on top of it, placing rows at the
//! exact slots the log recorded, and finally rebuild the free lists. The
//! combination is exactly the committed prefix of history: rolled-back
//! transactions never reached the log, and a torn tail loses only the
//! in-flight group.

use crate::catalog::Catalog;
use crate::error::{StorageError, StorageResult};
use crate::factorized::FactorizedTable;
use crate::index::IndexKind;
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::stats::CatalogStats;
use crate::table::Table;
use crate::wal::{
    crc32, get_row, put_row, put_str, put_u32, put_u64, scan_wal, Cursor, FactSide, WalRecord,
};
use std::io::Write;
use std::path::Path;

/// File name of the checkpoint snapshot inside a database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.erb";
/// File name of the write-ahead log inside a database directory.
pub const WAL_FILE: &str = "wal.erb";

const MAGIC: &[u8; 8] = b"ERBSNAP1";

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{ctx}: {e}"))
}

// ---- encoding --------------------------------------------------------------

fn put_table(buf: &mut Vec<u8>, t: &Table) {
    let schema_json = serde_json::to_string(t.schema()).expect("schema serializes");
    put_str(buf, &schema_json);
    let indexes = t.indexes();
    put_u32(buf, indexes.len() as u32);
    for idx in indexes {
        put_str(buf, &idx.name);
        put_u32(buf, idx.columns.len() as u32);
        for &c in &idx.columns {
            put_u32(buf, c as u32);
        }
        buf.push(match idx.kind() {
            IndexKind::Hash => 0,
            IndexKind::BTree => 1,
        });
    }
    put_slots(buf, t.slots());
}

fn put_slots(buf: &mut Vec<u8>, slots: &[Option<Row>]) {
    put_u32(buf, slots.len() as u32);
    for slot in slots {
        match slot {
            None => buf.push(0),
            Some(row) => {
                buf.push(1);
                put_row(buf, row);
            }
        }
    }
}

/// Serialize a whole catalog (plus the WAL's next transaction id) into the
/// snapshot body.
fn encode_body(cat: &Catalog, next_txn: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4096);
    put_u64(&mut buf, next_txn);

    // Plain tables, sorted for deterministic bytes.
    let mut tables: Vec<(&String, &Table)> = cat.tables_iter().collect();
    tables.sort_by_key(|(n, _)| n.as_str());
    put_u32(&mut buf, tables.len() as u32);
    for (_, t) in tables {
        put_table(&mut buf, t);
    }

    // Factorized structures.
    let mut facts: Vec<(&String, &FactorizedTable)> = cat.factorized_iter().collect();
    facts.sort_by_key(|(n, _)| n.as_str());
    put_u32(&mut buf, facts.len() as u32);
    for (name, ft) in facts {
        put_str(&mut buf, name);
        put_table(&mut buf, ft.left());
        put_table(&mut buf, ft.right());
        let pairs = ft.link_pairs();
        put_u32(&mut buf, pairs.len() as u32);
        for (l, r) in pairs {
            put_u64(&mut buf, l.0);
            put_u64(&mut buf, r.0);
        }
    }

    // Metadata area (E/R schema, mapping, version log all live here).
    let mut meta: Vec<(&String, &serde_json::Value)> = cat.meta_entries().collect();
    meta.sort_by_key(|(k, _)| k.as_str());
    put_u32(&mut buf, meta.len() as u32);
    for (k, v) in meta {
        put_str(&mut buf, k);
        put_str(&mut buf, &v.to_string());
    }

    // Optional trailing section: the statistics registry. Only emitted when
    // non-empty so a stat-less snapshot stays byte-identical to the
    // pre-stats format (and old readers that stop at the meta section would
    // reject only files that actually carry stats).
    if !cat.stats().is_empty() {
        let stats_json =
            serde_json::to_string(cat.stats()).expect("catalog stats serialize");
        put_str(&mut buf, &stats_json);
    }
    buf
}

// ---- decoding --------------------------------------------------------------

fn get_table(c: &mut Cursor<'_>) -> StorageResult<Table> {
    let schema_json = c.str().ok_or_else(|| corrupt("snapshot: short table schema"))?;
    let schema: TableSchema = serde_json::from_str(&schema_json)
        .map_err(|e| corrupt(format!("snapshot: bad table schema: {e}")))?;
    let n_indexes = c.u32().ok_or_else(|| corrupt("snapshot: short index count"))? as usize;
    let mut specs = Vec::with_capacity(n_indexes.min(1 << 10));
    for _ in 0..n_indexes {
        let name = c.str().ok_or_else(|| corrupt("snapshot: short index name"))?;
        let n_cols = c.u32().ok_or_else(|| corrupt("snapshot: short index columns"))? as usize;
        let mut cols = Vec::with_capacity(n_cols.min(1 << 10));
        for _ in 0..n_cols {
            cols.push(c.u32().ok_or_else(|| corrupt("snapshot: short index column"))? as usize);
        }
        let kind = match c.u8().ok_or_else(|| corrupt("snapshot: short index kind"))? {
            0 => IndexKind::Hash,
            1 => IndexKind::BTree,
            k => return Err(corrupt(format!("snapshot: unknown index kind {k}"))),
        };
        specs.push((name, cols, kind));
    }
    let slots = get_slots(c)?;
    let mut t = Table::from_slots(schema, slots)
        .map_err(|e| corrupt(format!("snapshot: table rebuild failed: {e}")))?;
    for (name, cols, kind) in specs {
        t.create_index(name, cols, kind)
            .map_err(|e| corrupt(format!("snapshot: index rebuild failed: {e}")))?;
    }
    Ok(t)
}

fn get_slots(c: &mut Cursor<'_>) -> StorageResult<Vec<Option<Row>>> {
    let n = c.u32().ok_or_else(|| corrupt("snapshot: short slot count"))? as usize;
    let mut slots = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        match c.u8().ok_or_else(|| corrupt("snapshot: short slot flag"))? {
            0 => slots.push(None),
            1 => slots.push(Some(get_row(c).ok_or_else(|| corrupt("snapshot: short row"))?)),
            f => return Err(corrupt(format!("snapshot: bad slot flag {f}"))),
        }
    }
    Ok(slots)
}

fn decode_body(body: &[u8]) -> StorageResult<(Catalog, u64)> {
    let mut c = Cursor::new(body);
    let next_txn = c.u64().ok_or_else(|| corrupt("snapshot: short header"))?;
    let mut cat = Catalog::new();

    let n_tables = c.u32().ok_or_else(|| corrupt("snapshot: short table count"))? as usize;
    for _ in 0..n_tables {
        let t = get_table(&mut c)?;
        cat.create_table(t).map_err(|e| corrupt(format!("snapshot: duplicate table: {e}")))?;
    }

    let n_facts = c.u32().ok_or_else(|| corrupt("snapshot: short factorized count"))? as usize;
    for _ in 0..n_facts {
        let name = c.str().ok_or_else(|| corrupt("snapshot: short factorized name"))?;
        let left = get_table(&mut c)?;
        let right = get_table(&mut c)?;
        let n_pairs = c.u32().ok_or_else(|| corrupt("snapshot: short pair count"))? as usize;
        let mut links = Vec::with_capacity(n_pairs.min(1 << 20));
        for _ in 0..n_pairs {
            let l = c.u64().ok_or_else(|| corrupt("snapshot: short link"))?;
            let r = c.u64().ok_or_else(|| corrupt("snapshot: short link"))?;
            links.push((RowId(l), RowId(r)));
        }
        let ft = FactorizedTable::from_parts(&name, left, right, links)
            .map_err(|e| corrupt(format!("snapshot: factorized rebuild failed: {e}")))?;
        cat.create_factorized(name, ft)
            .map_err(|e| corrupt(format!("snapshot: duplicate factorized: {e}")))?;
    }

    let n_meta = c.u32().ok_or_else(|| corrupt("snapshot: short meta count"))? as usize;
    for _ in 0..n_meta {
        let k = c.str().ok_or_else(|| corrupt("snapshot: short meta key"))?;
        let v = c.str().ok_or_else(|| corrupt("snapshot: short meta value"))?;
        let v: serde_json::Value = serde_json::from_str(&v)
            .map_err(|e| corrupt(format!("snapshot: bad meta JSON under '{k}': {e}")))?;
        cat.put_meta(k, v);
    }

    // Optional trailing section: the statistics registry (absent in
    // pre-stats snapshots and in snapshots taken before any ANALYZE).
    if !c.is_done() {
        let s = c.str().ok_or_else(|| corrupt("snapshot: short stats section"))?;
        let stats: CatalogStats = serde_json::from_str(&s)
            .map_err(|e| corrupt(format!("snapshot: bad stats JSON: {e}")))?;
        cat.set_stats(stats);
    }

    if !c.is_done() {
        return Err(corrupt("snapshot: trailing bytes after body"));
    }
    Ok((cat, next_txn))
}

// ---- file I/O --------------------------------------------------------------

/// Write a checkpoint snapshot of `cat` to `dir/`[`SNAPSHOT_FILE`]
/// atomically: the image lands in a temp file first, is fsynced, and then
/// renamed over the previous snapshot, so a crash during checkpointing
/// leaves either the old or the new snapshot — never a hybrid.
pub fn write_snapshot(cat: &Catalog, next_txn: u64, dir: &Path) -> StorageResult<()> {
    use erbium_obs::{Counter, Histogram, Registry};
    use std::sync::{Arc, OnceLock};
    static CHECKPOINTS: OnceLock<Arc<Counter>> = OnceLock::new();
    static CHECKPOINT_SECONDS: OnceLock<Arc<Histogram>> = OnceLock::new();
    let t0 = std::time::Instant::now();
    let _span = erbium_obs::span("checkpoint");

    let body = encode_body(cat, next_txn);
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);

    let final_path = dir.join(SNAPSHOT_FILE);
    let tmp_path = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp_path)
            .map_err(|e| io_err(&format!("create {}", tmp_path.display()), e))?;
        f.write_all(&out).map_err(|e| io_err("snapshot write", e))?;
        f.sync_all().map_err(|e| io_err("snapshot fsync", e))?;
    }
    std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err("snapshot rename", e))?;
    // Persist the rename itself (best effort — not all platforms allow
    // fsyncing a directory handle).
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    CHECKPOINTS
        .get_or_init(|| {
            Registry::global()
                .counter("erbium_checkpoints_total", "Checkpoint snapshots written")
        })
        .inc();
    CHECKPOINT_SECONDS
        .get_or_init(|| {
            Registry::global().histogram(
                "erbium_checkpoint_seconds",
                "Wall-clock duration of checkpoint snapshot writes",
            )
        })
        .observe_duration(t0.elapsed());
    Ok(())
}

/// Load a snapshot file. Any malformation is [`StorageError::Corrupt`].
pub fn load_snapshot(path: &Path) -> StorageResult<(Catalog, u64)> {
    let bytes =
        std::fs::read(path).map_err(|e| io_err(&format!("read {}", path.display()), e))?;
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("snapshot: bad magic"));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let body = bytes.get(16..16 + len).ok_or_else(|| corrupt("snapshot: short body"))?;
    if bytes.len() != 16 + len {
        return Err(corrupt("snapshot: trailing bytes after frame"));
    }
    if crc32(body) != crc {
        return Err(corrupt("snapshot: body CRC mismatch"));
    }
    decode_body(body)
}

// ---- recovery --------------------------------------------------------------

/// The result of [`Catalog::recover`].
#[derive(Debug)]
pub struct Recovered {
    /// The reconstructed catalog: snapshot state plus the committed WAL
    /// suffix.
    pub catalog: Catalog,
    /// One past the highest transaction id ever assigned — seed for the
    /// reopened [`crate::wal::Wal`].
    pub next_txn: u64,
    /// Number of committed WAL groups redone on top of the snapshot.
    pub replayed_groups: usize,
    /// True if the WAL ended in a torn/corrupt tail (the in-flight group
    /// was discarded — expected after a crash, worth logging upstream).
    pub torn_tail: bool,
}

fn redo(cat: &mut Catalog, rec: WalRecord) -> StorageResult<()> {
    match rec {
        WalRecord::Begin { .. } | WalRecord::Commit { .. } | WalRecord::Abort { .. } => {}
        WalRecord::Insert { table, rid, row } => {
            cat.table_mut(&table)?.place_at(RowId(rid), row)?;
        }
        WalRecord::Update { table, rid, row } => {
            cat.table_mut(&table)?.update(RowId(rid), row)?;
        }
        WalRecord::Delete { table, rid } => {
            cat.table_mut(&table)?.delete(RowId(rid))?;
        }
        WalRecord::CreateTable { schema_json } => {
            let schema: TableSchema = serde_json::from_str(&schema_json)
                .map_err(|e| corrupt(format!("WAL: bad CreateTable schema: {e}")))?;
            cat.create_table(Table::new(schema))?;
        }
        WalRecord::FactInsert { name, side, rid, row } => {
            let ft = cat.factorized_mut(&name)?;
            match side {
                FactSide::Left => ft.place_left(RowId(rid), row)?,
                FactSide::Right => ft.place_right(RowId(rid), row)?,
            }
        }
        WalRecord::FactUpdate { name, side, rid, row } => {
            let ft = cat.factorized_mut(&name)?;
            match side {
                FactSide::Left => ft.update_left(RowId(rid), row)?,
                FactSide::Right => ft.update_right(RowId(rid), row)?,
            };
        }
        WalRecord::FactDelete { name, side, rid } => {
            let ft = cat.factorized_mut(&name)?;
            match side {
                FactSide::Left => ft.delete_left(RowId(rid))?,
                FactSide::Right => ft.delete_right(RowId(rid))?,
            };
        }
        WalRecord::FactLink { name, l, r } => {
            cat.factorized_mut(&name)?.link(RowId(l), RowId(r))?;
        }
        WalRecord::FactUnlink { name, l, r } => {
            cat.factorized_mut(&name)?.unlink(RowId(l), RowId(r));
        }
    }
    Ok(())
}

impl Catalog {
    /// Reconstruct the catalog stored in `dir`: load `dir/snapshot.erb`
    /// when present (a missing snapshot means "start empty" — a fresh
    /// database or one that has never checkpointed), then redo every
    /// *committed* group in `dir/wal.erb` on top of it. Rows are placed at
    /// the exact slots the log recorded; free lists are rebuilt afterwards.
    ///
    /// A torn or corrupt WAL tail is tolerated (that is what a crash looks
    /// like); a corrupt snapshot is not, because snapshots are written
    /// atomically.
    pub fn recover(dir: &Path) -> StorageResult<Recovered> {
        use erbium_obs::{Counter, Registry};
        use std::sync::{Arc, OnceLock};
        static RECOVERIES: OnceLock<Arc<Counter>> = OnceLock::new();
        static REPLAYED: OnceLock<Arc<Counter>> = OnceLock::new();
        static STATS_RESTORED: OnceLock<Arc<Counter>> = OnceLock::new();
        let _span = erbium_obs::span("recover");

        let snap_path = dir.join(SNAPSHOT_FILE);
        let (mut cat, mut next_txn) = if snap_path.exists() {
            load_snapshot(&snap_path)?
        } else {
            (Catalog::new(), 1)
        };
        // Count restored stats entries now: the WAL redo below may mark
        // some of them stale (that is the re-derived-staleness contract),
        // but they were restored from the snapshot either way.
        let stats_restored = cat.stats().len();
        let scan = scan_wal(&dir.join(WAL_FILE))?;
        next_txn = next_txn.max(scan.next_txn);
        let replayed_groups = scan.committed.len();
        for group in scan.committed {
            for rec in group {
                redo(&mut cat, rec)?;
            }
        }
        for t in cat.tables_iter_mut() {
            t.rebuild_free();
        }
        for ft in cat.factorized_iter_mut() {
            ft.rebuild_free();
        }
        RECOVERIES
            .get_or_init(|| {
                Registry::global()
                    .counter("erbium_recoveries_total", "Catalog recoveries performed")
            })
            .inc();
        REPLAYED
            .get_or_init(|| {
                Registry::global().counter(
                    "erbium_recovery_replayed_groups_total",
                    "Committed WAL groups redone during recovery",
                )
            })
            .add(replayed_groups as u64);
        STATS_RESTORED
            .get_or_init(|| {
                Registry::global().counter(
                    "erbium_recovery_stats_restored_total",
                    "Statistics entries restored from checkpoint snapshots during recovery",
                )
            })
            .add(stats_restored as u64);
        Ok(Recovered { catalog: cat, next_txn, replayed_groups, torn_tail: scan.torn_tail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::txn::Transaction;
    use crate::value::{DataType, Value};
    use crate::wal::{SyncPolicy, Wal};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        p.push(format!("erbium-snap-test-{tag}-{}-{nanos}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "people",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("score", DataType::Float),
                Column::new("tags", DataType::Array(Box::new(DataType::Text))),
            ],
            vec![0],
        ));
        t.create_index("by_name", vec![1], IndexKind::Hash).unwrap();
        let r0 = t
            .insert(vec![
                Value::Int(1),
                Value::str("ada"),
                Value::Int(5), // canonicalizes to Float(5.0)
                Value::Array(vec![Value::str("x"), Value::str("y")]),
            ])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::str("bob"), Value::Float(2.5), Value::Null]).unwrap();
        t.delete(r0).unwrap(); // leave a tombstone so slot layout matters
        t.insert(vec![Value::Int(3), Value::str("eve"), Value::Null, Value::Null]).unwrap();
        cat.create_table(t).unwrap();

        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int), Column::new("lv", DataType::Text)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int), Column::new("rv", DataType::Int)],
            vec![0],
        );
        let mut ft = FactorizedTable::new("f", left, right);
        let l0 = ft.insert_left(vec![Value::Int(1), Value::str("a")]).unwrap();
        let l1 = ft.insert_left(vec![Value::Int(2), Value::str("b")]).unwrap();
        let r0 = ft.insert_right(vec![Value::Int(10), Value::Int(100)]).unwrap();
        let r1 = ft.insert_right(vec![Value::Int(20), Value::Int(200)]).unwrap();
        ft.link(l0, r0).unwrap();
        ft.link(l0, r1).unwrap();
        ft.link(l1, r1).unwrap();
        cat.create_factorized("f", ft).unwrap();

        let doc: serde_json::Value =
            serde_json::from_str(r#"{"preset": "m3", "v": 2}"#).unwrap();
        cat.put_meta("mapping", doc);
        cat
    }

    fn assert_catalogs_equal(a: &Catalog, b: &Catalog) {
        assert_eq!(a.table_names(), b.table_names());
        for name in a.table_names() {
            let (ta, tb) = (a.table(&name).unwrap(), b.table(&name).unwrap());
            assert_eq!(ta.schema(), tb.schema(), "schema of '{name}'");
            assert_eq!(ta.slots(), tb.slots(), "slots of '{name}'");
            let mut ia: Vec<_> =
                ta.indexes().iter().map(|i| (i.name.clone(), i.columns.clone(), i.kind())).collect();
            let mut ib: Vec<_> =
                tb.indexes().iter().map(|i| (i.name.clone(), i.columns.clone(), i.kind())).collect();
            ia.sort();
            ib.sort();
            assert_eq!(ia, ib, "indexes of '{name}'");
        }
        assert_eq!(a.factorized_names(), b.factorized_names());
        for name in a.factorized_names() {
            let (fa, fb) = (a.factorized(&name).unwrap(), b.factorized(&name).unwrap());
            assert_eq!(fa.left().slots(), fb.left().slots());
            assert_eq!(fa.right().slots(), fb.right().slots());
            let mut la = fa.link_pairs();
            let mut lb = fb.link_pairs();
            la.sort();
            lb.sort();
            assert_eq!(la, lb, "links of '{name}'");
            assert_eq!(fa.pair_count(), fb.pair_count());
        }
        let mut ma: Vec<_> = a.meta_entries().map(|(k, v)| (k.clone(), v.clone())).collect();
        let mut mb: Vec<_> = b.meta_entries().map(|(k, v)| (k.clone(), v.clone())).collect();
        ma.sort_by(|x, y| x.0.cmp(&y.0));
        mb.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(ma, mb, "metadata");
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let dir = temp_dir("roundtrip");
        let cat = sample_catalog();
        write_snapshot(&cat, 17, &dir).unwrap();
        let (back, next_txn) = load_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
        assert_eq!(next_txn, 17);
        assert_catalogs_equal(&cat, &back);
        // Indexes answer queries after the rebuild.
        let t = back.table("people").unwrap();
        assert_eq!(t.index_lookup(&[1], &Value::str("bob")).unwrap().len(), 1);
        assert!(t.lookup_pk(&Value::Int(3)).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_roundtrip_preserves_stats() {
        let dir = temp_dir("stats-roundtrip");
        let mut cat = sample_catalog();
        let written = cat.analyze();
        assert!(written >= 4, "people + f + f#left + f#right");
        write_snapshot(&cat, 9, &dir).unwrap();
        let (back, _) = load_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
        assert_eq!(back.stats(), cat.stats(), "stats registry survives the snapshot");
        assert!(!back.stats().is_empty());
        assert!(!back.stats().is_stale("people"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_less_snapshot_keeps_legacy_byte_layout() {
        // A catalog that never ran ANALYZE must produce a snapshot with no
        // trailing stats section — i.e. exactly the pre-stats `ERBSNAP1`
        // bytes. That makes old files (which *are* such snapshots) decode
        // under the new reader, proving backward compatibility.
        let cat = sample_catalog();
        assert!(cat.stats().is_empty());
        let body = encode_body(&cat, 3);
        let (back, next_txn) = decode_body(&body).unwrap();
        assert_eq!(next_txn, 3);
        assert!(back.stats().is_empty(), "no stats section, no stats");
        assert_catalogs_equal(&cat, &back);
        // And the new encoder appends bytes only when stats exist.
        let mut with_stats = sample_catalog();
        with_stats.analyze();
        assert!(encode_body(&with_stats, 3).len() > body.len());
    }

    #[test]
    fn recover_restores_stats_and_rederives_staleness() {
        let dir = temp_dir("stats-recover");
        let mut cat = sample_catalog();
        cat.analyze();
        let n_stats = cat.stats().len();
        write_snapshot(&cat, 5, &dir).unwrap();

        // Post-checkpoint traffic touches only `people`; the factorized
        // structure `f` stays untouched.
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 5).unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            txn.insert(
                cat,
                "people",
                vec![Value::Int(7), Value::str("gil"), Value::Null, Value::Null],
            )?;
            Ok(())
        })
        .unwrap();

        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.replayed_groups, 1);
        let stats = rec.catalog.stats();
        assert!(!stats.is_empty(), "recovery must not silently drop stats");
        assert_eq!(stats.len(), n_stats);
        // WAL-redone tables re-derive staleness; untouched entries stay fresh.
        assert!(stats.is_stale("people"), "redone table is stale");
        assert!(!stats.is_stale("f"), "untouched structure stays fresh");
        assert!(!stats.is_stale("f#left"));
        assert!(!stats.is_stale("f#right"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_hard_error() {
        let dir = temp_dir("corrupt");
        write_snapshot(&sample_catalog(), 1, &dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_snapshot(&path), Err(StorageError::Corrupt(_))));
        // Truncation is also corruption.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(load_snapshot(&path), Err(StorageError::Corrupt(_))));
        std::fs::write(&path, b"ERBSNAPX").unwrap();
        assert!(matches!(load_snapshot(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_replays_committed_wal_over_snapshot() {
        let dir = temp_dir("recover");
        let mut cat = sample_catalog();
        write_snapshot(&cat, 5, &dir).unwrap();

        // Post-snapshot traffic through logged transactions.
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 5).unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            txn.insert(
                cat,
                "people",
                vec![Value::Int(4), Value::str("dan"), Value::Int(9), Value::Null],
            )?;
            let (rid, _) = cat.table("people").unwrap().lookup_pk(&Value::Int(2)).unwrap();
            txn.update(
                cat,
                "people",
                rid,
                vec![Value::Int(2), Value::str("bob2"), Value::Float(2.5), Value::Null],
            )?;
            Ok(())
        })
        .unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            let l2 = txn.fact_insert(cat, "f", FactSide::Left, vec![Value::Int(3), Value::str("c")])?;
            txn.fact_link(cat, "f", l2, RowId(0))?;
            let (rid, _) = cat.table("people").unwrap().lookup_pk(&Value::Int(3)).unwrap();
            txn.delete(cat, "people", rid)?;
            Ok(())
        })
        .unwrap();
        // A rolled-back transaction must leave no trace on disk.
        let _ = Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            txn.insert(cat, "people", vec![Value::Int(99), Value::Null, Value::Null, Value::Null])?;
            Err::<(), _>(StorageError::Internal("deliberate".into()))
        });

        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.replayed_groups, 2);
        assert!(!rec.torn_tail);
        assert!(rec.next_txn >= 7);
        assert_catalogs_equal(&cat, &rec.catalog);
        // Live-data sanity on the recovered side.
        let t = rec.catalog.table("people").unwrap();
        assert!(t.lookup_pk(&Value::Int(99)).is_none(), "aborted txn invisible");
        assert_eq!(t.lookup_pk(&Value::Int(2)).unwrap().1[1], Value::str("bob2"));
        assert!(matches!(
            t.lookup_pk(&Value::Int(4)).unwrap().1[2],
            Value::Float(f) if f == 9.0
        ), "redo reproduces canonicalized state");
        assert_eq!(rec.catalog.factorized("f").unwrap().pair_count(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_without_snapshot_replays_from_empty() {
        let dir = temp_dir("nosnap");
        let mut cat = Catalog::new();
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 1).unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            txn.create_table(
                cat,
                Table::new(TableSchema::new(
                    "t",
                    vec![Column::not_null("id", DataType::Int)],
                    vec![0],
                )),
            )?;
            txn.insert(cat, "t", vec![Value::Int(1)])?;
            txn.insert(cat, "t", vec![Value::Int(2)])?;
            Ok(())
        })
        .unwrap();
        let rec = Catalog::recover(&dir).unwrap();
        assert_eq!(rec.catalog.table("t").unwrap().len(), 2);
        assert_eq!(rec.replayed_groups, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_free_list_recycles_slots() {
        let dir = temp_dir("freelist");
        let mut cat = Catalog::new();
        cat.create_table(Table::new(TableSchema::new(
            "t",
            vec![Column::not_null("id", DataType::Int)],
            vec![0],
        )))
        .unwrap();
        let mut wal = Wal::open(dir.join(WAL_FILE), SyncPolicy::Always, 1).unwrap();
        write_snapshot(&cat, 1, &dir).unwrap();
        Transaction::run_with(&mut cat, Some(&mut wal), |txn, cat| {
            let r1 = txn.insert(cat, "t", vec![Value::Int(1)])?;
            txn.insert(cat, "t", vec![Value::Int(2)])?;
            txn.delete(cat, "t", r1)?;
            Ok(())
        })
        .unwrap();
        let rec = Catalog::recover(&dir).unwrap();
        let mut cat2 = rec.catalog;
        let rid = cat2.table_mut("t").unwrap().insert(vec![Value::Int(3)]).unwrap();
        assert_eq!(rid, RowId(0), "tombstoned slot recycled after recovery");
        std::fs::remove_dir_all(&dir).ok();
    }
}
