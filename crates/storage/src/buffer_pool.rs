//! Buffer-pool manager: a frame budget over paged row storage.
//!
//! ROADMAP item 1's second half: the paged row store ([`crate::pages`])
//! turns "5M rows because it fits" into "bounded memory at any scale" only
//! if something enforces the bound. The [`BufferPool`] is that something —
//! a counter of resident page frames, a spill file for evicted pages, and
//! the commit-horizon bookkeeping that makes eviction safe under the WAL.
//!
//! ## Budget and eviction
//!
//! The pool never blocks a fault-in: a read that needs an evicted page
//! always gets it (decoded from the spill file), even while the pool is
//! over budget. Enforcement is *cooperative*: mutation choke points —
//! transaction end, checkpoint, bulk loads, recovery page boundaries —
//! call [`crate::catalog::Catalog::reclaim_pages`], which clock-sweeps
//! resident pages (second-chance via per-page hot bits) and evicts cold
//! ones until the pool is back under budget. Between choke points the
//! budget is a soft target; scans that use the pin API
//! ([`crate::table::Table::pin_slots`]) never make over-budget pages
//! resident at all, so the steady-state query working set is hard-bounded.
//!
//! ## Eviction vs. the WAL (why write-back never leaks uncommitted state)
//!
//! A dirty page may only be written to the spill file once every
//! transaction that dirtied it has finished. The pool tracks this with two
//! monotone counters: `clock` advances at every transaction *start*
//! ([`BufferPool::note_txn_start`]), `barrier` is published at every
//! transaction *end* — commit **or** rollback — after the WAL group is on
//! disk ([`BufferPool::note_txn_end`]). Every page mutation stamps the
//! page with the current `clock`; eviction writes back only pages whose
//! stamp is `<= barrier`. Writers are serialized (single-writer model, see
//! DESIGN.md §12), so a stamp above the barrier means exactly "dirtied by
//! the still-open transaction" and the page is skipped. A rolled-back
//! transaction's undo ops re-dirty the same pages with the same stamp, and
//! by the time the barrier covers that stamp the page content equals the
//! committed state again. The spill file is therefore always a cache of
//! committed (or recovery-replayed) state — it is truncated at open and
//! never read by recovery, so it can never resurrect lost writes either.

use crate::error::{StorageError, StorageResult};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Fixed page frame size, on disk and (approximately) in memory. 64 KiB:
/// large enough that per-page bookkeeping vanishes against payload, small
/// enough that a handful of frames make a useful budget in tests.
pub const PAGE_SIZE: usize = 64 * 1024;

/// Point-in-time counters of one pool. `resident` is frames currently in
/// memory; the rest are monotone totals (also exported as
/// `erbium_bufferpool_*_total` metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page frames currently resident in memory across all bound tables.
    pub resident: usize,
    /// Configured frame budget (`None` = unbounded).
    pub budget: Option<usize>,
    /// Fault-ins satisfied by an already-resident page.
    pub hits: u64,
    /// Fault-ins that had to decode the page from the spill file.
    pub misses: u64,
    /// Pages evicted (resident payload dropped).
    pub evictions: u64,
    /// Dirty pages serialized to the spill file before eviction.
    pub dirty_writebacks: u64,
}

/// Frame allocator over the spill file: a free list of 64 KiB frame slots.
struct PageStore {
    file: File,
    free: Vec<u64>,
    next_frame: u64,
}

/// A run of spill-file frames holding one serialized page. Refcounted:
/// table clones taken for snapshots share the extent, and the frames
/// return to the pool's free list only when the last owner drops — so an
/// evicted page pinned by an old snapshot can never be overwritten while
/// still readable.
pub(crate) struct Extent {
    pool: Arc<BufferPool>,
    frames: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for Extent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Extent").field("frames", &self.frames).field("len", &self.len).finish()
    }
}

impl Extent {
    /// Read the serialized page back from the spill file.
    pub(crate) fn read(&self) -> StorageResult<Vec<u8>> {
        let mut guard = self.pool.store.lock();
        let store = guard
            .as_mut()
            .ok_or_else(|| StorageError::Io("buffer pool spill store closed".into()))?;
        let mut out = vec![0u8; self.len];
        for (i, &frame) in self.frames.iter().enumerate() {
            let off = i * PAGE_SIZE;
            let end = (off + PAGE_SIZE).min(self.len);
            store
                .file
                .seek(SeekFrom::Start(frame * PAGE_SIZE as u64))
                .and_then(|_| store.file.read_exact(&mut out[off..end]))
                .map_err(|e| StorageError::Io(format!("buffer pool spill read: {e}")))?;
        }
        Ok(out)
    }
}

impl Drop for Extent {
    fn drop(&mut self) {
        let mut guard = self.pool.store.lock();
        if let Some(store) = guard.as_mut() {
            store.free.extend_from_slice(&self.frames);
        }
    }
}

/// The buffer-pool manager. One per database (plus a process-wide
/// unbounded default for standalone tables); shared by every table bound
/// to the catalog. See the module docs for the eviction/WAL contract.
pub struct BufferPool {
    budget: Option<usize>,
    spill_path: Option<PathBuf>,
    store: Mutex<Option<PageStore>>,
    resident: AtomicUsize,
    /// Advances at transaction start; pages are stamped with it on write.
    clock: AtomicU64,
    /// Highest clock value whose transaction has finished (WAL flushed).
    barrier: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("budget", &self.budget)
            .field("resident", &self.resident.load(Ordering::Relaxed))
            .finish()
    }
}

impl BufferPool {
    fn new(budget: Option<usize>, spill_path: Option<PathBuf>) -> BufferPool {
        // Touch the metric handles eagerly so the counters are registered
        // (and exported as zeros) as soon as any pool exists.
        m_hits();
        m_misses();
        m_evictions();
        m_writebacks();
        BufferPool {
            budget,
            spill_path,
            store: Mutex::new(None),
            resident: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            barrier: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    /// The process-wide unbounded pool: every frame stays resident, no
    /// spill file, eviction never runs. Standalone `Table::new` tables
    /// bind here; it preserves the exact pre-buffer-pool behaviour.
    pub fn unbounded() -> Arc<BufferPool> {
        static POOL: OnceLock<Arc<BufferPool>> = OnceLock::new();
        POOL.get_or_init(|| Arc::new(BufferPool::new(None, None))).clone()
    }

    /// A pool with a frame budget, spilling evicted pages to `spill_path`.
    /// The spill file is transient cache state: it is truncated here and
    /// never consulted by recovery.
    pub fn bounded(frames: usize, spill_path: PathBuf) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Some(frames.max(1)), Some(spill_path)))
    }

    /// True when this pool enforces a frame budget.
    pub fn is_bounded(&self) -> bool {
        self.budget.is_some()
    }

    /// True when more frames are resident than the budget allows.
    pub fn over_budget(&self) -> bool {
        match self.budget {
            Some(b) => self.resident.load(Ordering::Relaxed) > b,
            None => false,
        }
    }

    /// Current counters (see [`BufferPoolStats`]).
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            resident: self.resident.load(Ordering::Relaxed),
            budget: self.budget,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dirty_writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// A transaction is starting: advance the write clock. Pages dirtied
    /// from here on carry a stamp above the current barrier and are
    /// ineligible for write-back until [`BufferPool::note_txn_end`].
    pub fn note_txn_start(&self) {
        self.clock.fetch_add(1, Ordering::Relaxed);
    }

    /// A transaction finished (committed with its WAL group flushed, or
    /// rolled back with its undo applied): publish the barrier so the
    /// pages it dirtied become evictable.
    pub fn note_txn_end(&self) {
        self.barrier.store(self.clock.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The stamp to record on a page mutation happening now.
    pub(crate) fn write_stamp(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// May a dirty page with this stamp be written to the spill file?
    pub(crate) fn writeback_allowed(&self, stamp: u64) -> bool {
        stamp <= self.barrier.load(Ordering::Relaxed)
    }

    pub(crate) fn note_resident(&self) {
        self.resident.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_dropped(&self) {
        self.resident.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        m_hits().inc();
    }

    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        m_misses().inc();
    }

    pub(crate) fn note_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        m_evictions().inc();
    }

    /// Write a serialized page to the spill file, allocating frames from
    /// the free list (growing the file when it runs dry).
    pub(crate) fn spill(self: &Arc<Self>, bytes: &[u8]) -> StorageResult<Arc<Extent>> {
        let mut guard = self.store.lock();
        let store = match guard.as_mut() {
            Some(s) => s,
            None => {
                let path = self.spill_path.as_ref().ok_or_else(|| {
                    StorageError::Io("unbounded buffer pool cannot spill".into())
                })?;
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(path)
                    .map_err(|e| {
                        StorageError::Io(format!("open spill file {}: {e}", path.display()))
                    })?;
                *guard = Some(PageStore { file, free: Vec::new(), next_frame: 0 });
                guard.as_mut().expect("just set")
            }
        };
        let n_frames = bytes.len().div_ceil(PAGE_SIZE).max(1);
        let mut frames = Vec::with_capacity(n_frames);
        for _ in 0..n_frames {
            frames.push(store.free.pop().unwrap_or_else(|| {
                let f = store.next_frame;
                store.next_frame += 1;
                f
            }));
        }
        for (i, &frame) in frames.iter().enumerate() {
            let off = i * PAGE_SIZE;
            let end = (off + PAGE_SIZE).min(bytes.len());
            store
                .file
                .seek(SeekFrom::Start(frame * PAGE_SIZE as u64))
                .and_then(|_| store.file.write_all(&bytes[off..end]))
                .map_err(|e| StorageError::Io(format!("buffer pool spill write: {e}")))?;
        }
        self.writebacks.fetch_add(1, Ordering::Relaxed);
        m_writebacks().inc();
        Ok(Arc::new(Extent { pool: self.clone(), frames, len: bytes.len() }))
    }
}

// ---- metrics ---------------------------------------------------------------

fn m_hits() -> &'static Arc<erbium_obs::Counter> {
    static C: OnceLock<Arc<erbium_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_bufferpool_hits_total",
            "Page fault-ins satisfied by an already-resident page",
        )
    })
}

fn m_misses() -> &'static Arc<erbium_obs::Counter> {
    static C: OnceLock<Arc<erbium_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_bufferpool_misses_total",
            "Page fault-ins that decoded the page from the spill file",
        )
    })
}

fn m_evictions() -> &'static Arc<erbium_obs::Counter> {
    static C: OnceLock<Arc<erbium_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_bufferpool_evictions_total",
            "Resident pages evicted by the clock sweep",
        )
    })
}

fn m_writebacks() -> &'static Arc<erbium_obs::Counter> {
    static C: OnceLock<Arc<erbium_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_bufferpool_dirty_writebacks_total",
            "Dirty pages written to the spill file before eviction",
        )
    })
}
