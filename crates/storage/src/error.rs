//! Storage-layer error type.

use std::fmt;

/// Errors produced by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    TableNotFound(String),
    /// No column with this name exists in the table.
    ColumnNotFound { table: String, column: String },
    /// A row violates the table's primary-key uniqueness.
    DuplicateKey { table: String, key: String },
    /// A row id does not refer to a live row.
    RowNotFound { table: String, row: u64 },
    /// A value does not conform to the declared column type.
    TypeMismatch { column: String, expected: String, actual: String },
    /// Row arity differs from the table schema.
    ArityMismatch { table: String, expected: usize, actual: usize },
    /// An index with this name already exists.
    IndexExists(String),
    /// No index with this name exists.
    IndexNotFound(String),
    /// Catalog metadata (de)serialization failure.
    Metadata(String),
    /// Durability I/O failure (WAL append, checkpoint write, recovery read).
    Io(String),
    /// A WAL or snapshot file failed framing/CRC/decode validation at a
    /// point where corruption is not tolerable (snapshot body, WAL header).
    Corrupt(String),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(t) => write!(f, "table '{t}' already exists"),
            StorageError::TableNotFound(t) => write!(f, "table '{t}' not found"),
            StorageError::ColumnNotFound { table, column } => {
                write!(f, "column '{column}' not found in table '{table}'")
            }
            StorageError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in table '{table}'")
            }
            StorageError::RowNotFound { table, row } => {
                write!(f, "row {row} not found in table '{table}'")
            }
            StorageError::TypeMismatch { column, expected, actual } => {
                write!(f, "type mismatch for column '{column}': expected {expected}, got {actual}")
            }
            StorageError::ArityMismatch { table, expected, actual } => {
                write!(f, "arity mismatch for table '{table}': expected {expected} values, got {actual}")
            }
            StorageError::IndexExists(i) => write!(f, "index '{i}' already exists"),
            StorageError::IndexNotFound(i) => write!(f, "index '{i}' not found"),
            StorageError::Metadata(m) => write!(f, "catalog metadata error: {m}"),
            StorageError::Io(m) => write!(f, "durability I/O error: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt durable state: {m}"),
            StorageError::Internal(m) => write!(f, "internal storage error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for erbium_model::DbError {
    fn from(e: StorageError) -> Self {
        erbium_model::DbError::Storage(e.to_string())
    }
}

/// Convenient result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;
