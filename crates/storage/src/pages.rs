//! Fixed-size paged row storage.
//!
//! The row view of a [`crate::table::Table`] — the redundant full-`Row`
//! copies that back point reads, `Other`-typed cells (arrays/structs with
//! no typed column vector), snapshot encoding, and the row-path executor —
//! dominates a table's memory footprint. This module splits that vector of
//! slots into fixed-capacity **pages** so the [`crate::buffer_pool`] can
//! evict cold ones: each page is a `Vec<Option<Row>>` of `page_rows` slots
//! behind an `Arc`, and each page slot in the [`RowStore`] is either
//! *resident* (payload in memory), *spilled* (payload serialized to the
//! pool's spill file, held by a refcounted extent), or both (clean
//! resident page with a still-valid spilled copy — eviction is then free).
//!
//! ## Pin protocol
//!
//! Readers come in two shapes:
//!
//! * **Borrowing reads** (`get`, `scan_slots`, index probes) return `&Row`
//!   tied to `&Table`. They fault pages in through a `OnceLock`: set-once
//!   under `&self`, cleared only under `&mut self` at the pool's reclaim
//!   choke points — so a borrowed row can never be deallocated while the
//!   borrow lives, without any lock on the read path.
//! * **Pinned reads** ([`SlotPin`], used by the executor's morsel leaves
//!   and factorized join enumeration) clone the page `Arc`s for a slot
//!   range up front. When the pool is over budget the decoded page is
//!   *not* installed as resident — the pin is the only owner and the
//!   memory returns as soon as the morsel drops it. This is what makes the
//!   scan working set hard-bounded under a small frame budget.
//!
//! Writers fault the page in, then mutate through `Arc::make_mut`: in
//! place when unshared, copy-on-write when a snapshot or pin still holds
//! the old version — the same COW discipline the catalog uses for whole
//! tables (DESIGN.md §12).
//!
//! ## Spill codec
//!
//! A spilled page is column-chunk shaped: a slot-presence bitmap, then for
//! each schema column the chunk of that column's values across the page's
//! occupied slots, encoded with the WAL value codec (exact float-bit
//! round-trip, arrays/structs included). Decoding reassembles the rows.

use crate::buffer_pool::{BufferPool, Extent, PAGE_SIZE};
use crate::error::StorageResult;
use crate::row::Row;
use crate::schema::TableSchema;
use crate::value::{DataType, Value};
use crate::wal::{get_value, put_u32, put_value, Cursor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// One page worth of row slots.
pub(crate) type PageData = Vec<Option<Row>>;

/// Rows per page for a table of this schema: pick the largest power of two
/// whose estimated payload fits in [`PAGE_SIZE`], clamped to `[16, 4096]`.
/// A power of two keeps slot→(page, offset) a shift+mask on the scan path.
pub(crate) fn page_rows_for(schema: &TableSchema) -> usize {
    let mut est = 48usize; // Vec<Value> header + allocator slack
    for col in &schema.columns {
        est += match &col.dtype {
            DataType::Bool | DataType::Int | DataType::Float => 32,
            DataType::Text => 64,
            _ => 160, // arrays / structs: nested heap payloads
        };
    }
    let fit = (PAGE_SIZE / est).max(1);
    let pow = if fit.is_power_of_two() { fit } else { fit.next_power_of_two() / 2 };
    pow.clamp(16, 4096)
}

/// Serialize one page: `[n_slots u32][presence bitmap][col 0 chunk]...`.
fn encode_page(page: &PageData, arity: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(PAGE_SIZE / 2);
    put_u32(&mut buf, page.len() as u32);
    let mut bitmap = vec![0u8; page.len().div_ceil(8)];
    for (i, slot) in page.iter().enumerate() {
        if slot.is_some() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    buf.extend_from_slice(&bitmap);
    for c in 0..arity {
        for slot in page.iter().flatten() {
            put_value(&mut buf, slot.get(c).unwrap_or(&Value::Null));
        }
    }
    buf
}

/// Decode a page serialized by [`encode_page`]. `None` on malformed bytes
/// (callers treat that as an invariant violation: the spill file is
/// process-local transient state, not untrusted input).
fn decode_page(bytes: &[u8], arity: usize) -> Option<PageData> {
    let mut c = Cursor::new(bytes);
    let n = c.u32()? as usize;
    let mut present = Vec::with_capacity(n.min(1 << 16));
    for i in 0..n {
        if i % 8 == 0 {
            c.u8()?;
        }
    }
    // Re-read the bitmap region (Cursor has no random access; recompute).
    let bitmap = bytes.get(4..4 + n.div_ceil(8))?;
    for i in 0..n {
        present.push(bitmap[i / 8] & (1 << (i % 8)) != 0);
    }
    let occupied = present.iter().filter(|&&p| p).count();
    let mut cols: Vec<Vec<Value>> = Vec::with_capacity(arity);
    for _ in 0..arity {
        let mut col = Vec::with_capacity(occupied);
        for _ in 0..occupied {
            col.push(get_value(&mut c)?);
        }
        cols.push(col);
    }
    if !c.is_done() {
        return None;
    }
    let mut page: PageData = Vec::with_capacity(n);
    let mut k = 0usize;
    for &p in &present {
        if p {
            let mut row = Vec::with_capacity(arity);
            for col in &cols {
                row.push(col[k].clone());
            }
            k += 1;
            page.push(Some(row));
        } else {
            page.push(None);
        }
    }
    Some(page)
}

/// One page's bookkeeping inside a [`RowStore`]. See the module docs for
/// the resident/spilled state machine.
#[derive(Debug)]
struct PageSlot {
    /// Resident payload. Set-once under `&self` (fault-in), taken only
    /// under `&mut self` (eviction) — the invariant that keeps `&Row`
    /// borrows sound without a lock.
    data: OnceLock<Arc<PageData>>,
    /// Valid serialized copy in the spill file, if any.
    extent: Option<Arc<Extent>>,
    /// Resident payload differs from `extent` (or there is no extent).
    dirty: bool,
    /// Pool clock value at the last mutation; gates write-back.
    stamp: u64,
    /// Second-chance bit for the clock sweep, set on every read hit.
    hot: AtomicBool,
}

impl Clone for PageSlot {
    fn clone(&self) -> Self {
        let data = OnceLock::new();
        if let Some(d) = self.data.get() {
            let _ = data.set(d.clone());
        }
        PageSlot {
            data,
            extent: self.extent.clone(),
            dirty: self.dirty,
            stamp: self.stamp,
            hot: AtomicBool::new(self.hot.load(Ordering::Relaxed)),
        }
    }
}

impl PageSlot {
    fn fresh(cap: usize) -> PageSlot {
        let data = OnceLock::new();
        let _ = data.set(Arc::new(Vec::with_capacity(cap)));
        PageSlot { data, extent: None, dirty: true, stamp: 0, hot: AtomicBool::new(true) }
    }
}

/// The paged slot vector backing a table's row view. Replaces the old
/// `Vec<Option<Row>>` field; all indices are table slot indices.
pub(crate) struct RowStore {
    pages: Vec<PageSlot>,
    pool: Arc<BufferPool>,
    /// log2 of rows per page (shift+mask addressing).
    shift: u32,
    len: usize,
    arity: usize,
}

impl std::fmt::Debug for RowStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowStore")
            .field("len", &self.len)
            .field("pages", &self.pages.len())
            .field("page_rows", &(1usize << self.shift))
            .finish()
    }
}

impl Clone for RowStore {
    fn clone(&self) -> Self {
        let pages: Vec<PageSlot> = self.pages.to_vec();
        for p in &pages {
            if p.data.get().is_some() {
                self.pool.note_resident();
            }
        }
        RowStore {
            pages,
            pool: self.pool.clone(),
            shift: self.shift,
            len: self.len,
            arity: self.arity,
        }
    }
}

impl Drop for RowStore {
    fn drop(&mut self) {
        for p in &self.pages {
            if p.data.get().is_some() {
                self.pool.note_dropped();
            }
        }
    }
}

impl RowStore {
    pub(crate) fn new(arity: usize, page_rows: usize, pool: Arc<BufferPool>) -> RowStore {
        debug_assert!(page_rows.is_power_of_two());
        RowStore { pages: Vec::new(), pool, shift: page_rows.trailing_zeros(), len: 0, arity }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn page_rows(&self) -> usize {
        1usize << self.shift
    }

    pub(crate) fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Rebind to another pool (catalog install / recovery wiring). Moves
    /// the residency accounting; spilled extents keep reading from the
    /// pool that wrote them (they hold their own handle).
    pub(crate) fn rebind(&mut self, pool: &Arc<BufferPool>) {
        if Arc::ptr_eq(&self.pool, pool) {
            return;
        }
        let resident = self.pages.iter().filter(|p| p.data.get().is_some()).count();
        for _ in 0..resident {
            self.pool.note_dropped();
            pool.note_resident();
        }
        self.pool = pool.clone();
    }

    /// Fault page `pidx` in (if needed) and return its resident payload.
    /// The returned borrow lives as long as `&self`: eviction requires
    /// `&mut self`, so it cannot be invalidated underneath the caller.
    ///
    /// Panics if the spill file fails to read or decode — the spill file
    /// is process-local cache state, so that is memory corruption, not an
    /// I/O condition the caller can handle (durable state is never here).
    fn resident(&self, pidx: usize) -> &Arc<PageData> {
        let slot = &self.pages[pidx];
        if let Some(d) = slot.data.get() {
            slot.hot.store(true, Ordering::Relaxed);
            return d;
        }
        slot.data.get_or_init(|| {
            self.pool.note_miss();
            self.pool.note_resident();
            Arc::new(self.decode_extent(slot))
        })
    }

    /// [`RowStore::resident`] plus hit/miss accounting: a hit when the
    /// page was already in memory, a miss (counted inside the fault-in)
    /// otherwise.
    fn resident_counted(&self, pidx: usize) -> &Arc<PageData> {
        if self.pages[pidx].data.get().is_some() {
            self.pool.note_hit();
        }
        self.resident(pidx)
    }

    fn decode_extent(&self, slot: &PageSlot) -> PageData {
        let extent =
            slot.extent.as_ref().expect("evicted page must have a spill extent");
        let bytes = extent.read().expect("buffer pool spill file unreadable");
        decode_page(&bytes, self.arity).expect("buffer pool spill frame corrupted")
    }

    /// The row at slot `i`, faulting its page in. `None` for empty slots
    /// *and* out-of-range indices (mirrors the old `Vec::get` contract).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<&Row> {
        if i >= self.len {
            return None;
        }
        let page = self.resident_counted(i >> self.shift);
        page.get(i & (self.page_rows() - 1)).and_then(|s| s.as_ref())
    }

    /// Mutable access to the page holding slot `i`, copy-on-write when the
    /// page is shared with a snapshot or pin. Marks the page dirty and
    /// stamps it with the pool's write clock.
    fn page_mut(&mut self, pidx: usize) -> &mut PageData {
        self.resident(pidx);
        let stamp = self.pool.write_stamp();
        let slot = &mut self.pages[pidx];
        slot.dirty = true;
        slot.stamp = stamp;
        slot.extent = None; // content diverges from any spilled copy
        slot.hot.store(true, Ordering::Relaxed);
        Arc::make_mut(slot.data.get_mut().expect("faulted in above"))
    }

    /// Overwrite slot `i`. Panics if out of range (same as `vec[i] = v`).
    pub(crate) fn set(&mut self, i: usize, v: Option<Row>) {
        assert!(i < self.len, "slot {i} out of range ({} slots)", self.len);
        let mask = self.page_rows() - 1;
        self.page_mut(i >> self.shift)[i & mask] = v;
    }

    /// Take the row out of slot `i`, leaving a tombstone.
    pub(crate) fn take(&mut self, i: usize) -> Option<Row> {
        if i >= self.len {
            return None;
        }
        let mask = self.page_rows() - 1;
        self.page_mut(i >> self.shift)[i & mask].take()
    }

    /// Append a slot. Opportunistically self-reclaims at page boundaries
    /// when the pool is over budget, so bulk loads and recovery replay
    /// stay bounded without waiting for the next catalog choke point.
    pub(crate) fn push(&mut self, v: Option<Row>) {
        let page_rows = self.page_rows();
        if self.len == self.pages.len() << self.shift {
            if self.pool.over_budget() {
                let _ = self.reclaim(false);
            }
            self.pages.push(PageSlot::fresh(page_rows));
            self.pool.note_resident();
        }
        let pidx = self.len >> self.shift;
        // The partially-filled tail page may itself have been evicted at a
        // choke point between pushes — fault it back in before appending.
        self.resident(pidx);
        let stamp = self.pool.write_stamp();
        let slot = &mut self.pages[pidx];
        slot.dirty = true;
        slot.stamp = stamp;
        slot.extent = None;
        slot.hot.store(true, Ordering::Relaxed);
        Arc::make_mut(slot.data.get_mut().expect("faulted in above")).push(v);
        self.len += 1;
    }

    /// Grow with empty slots up to `n` (used by WAL-replay `place_at`).
    pub(crate) fn resize_none(&mut self, n: usize) {
        while self.len < n {
            self.push(None);
        }
    }

    /// Drop all pages (truncate). Extents return their spill frames.
    pub(crate) fn clear(&mut self) {
        for p in &self.pages {
            if p.data.get().is_some() {
                self.pool.note_dropped();
            }
        }
        self.pages.clear();
        self.len = 0;
    }

    /// Iterate occupied slots in `start..end` (clamped), faulting pages in
    /// one at a time. Equivalent to the old slice `iter().filter_map()`.
    pub(crate) fn iter_range(
        &self,
        start: usize,
        end: usize,
    ) -> impl Iterator<Item = (usize, &Row)> + '_ {
        let end = end.min(self.len);
        let start = start.min(end);
        SlotIter { store: self, i: start, end, page: None, page_first: 0 }
    }

    /// Pin the pages covering `start..end` (clamped): clone their `Arc`s
    /// so the payloads outlive any eviction. Over-budget fault-ins stay
    /// transient — owned only by the returned pin.
    pub(crate) fn pin(&self, start: usize, end: usize) -> SlotPin {
        let end = end.min(self.len);
        let start = start.min(end);
        let mask = self.page_rows() - 1;
        let (first_page, last_page) =
            if start == end { (0, 0) } else { (start >> self.shift, ((end - 1) >> self.shift) + 1) };
        let mut pages = Vec::with_capacity(last_page - first_page);
        for pidx in first_page..last_page {
            pages.push(self.pin_page(pidx));
        }
        SlotPin { pages, first_page, shift: self.shift, mask, start, end }
    }

    fn pin_page(&self, pidx: usize) -> Arc<PageData> {
        let slot = &self.pages[pidx];
        if let Some(d) = slot.data.get() {
            slot.hot.store(true, Ordering::Relaxed);
            self.pool.note_hit();
            return d.clone();
        }
        if self.pool.over_budget() {
            // Transient decode: hand the only copy to the pin, never
            // install it — the pool stays at its current residency.
            self.pool.note_miss();
            return Arc::new(self.decode_extent(slot));
        }
        self.resident(pidx).clone()
    }

    /// One clock-sweep pass: evict cold resident pages (write dirty ones
    /// back first, if the WAL barrier allows) until the pool is back under
    /// budget or the pass completes. With `force`, hot bits are ignored —
    /// the caller already gave every page its second chance. Returns pages
    /// evicted. Spill I/O errors abort the pass (reclaim is best-effort;
    /// durable state never lives in the spill file).
    pub(crate) fn reclaim(&mut self, force: bool) -> StorageResult<usize> {
        if !self.pool.is_bounded() {
            return Ok(0);
        }
        let mut evicted = 0usize;
        let pool = self.pool.clone();
        for pidx in 0..self.pages.len() {
            if !pool.over_budget() {
                break;
            }
            let slot = &mut self.pages[pidx];
            let Some(data) = slot.data.get() else { continue };
            if slot.hot.swap(false, Ordering::Relaxed) && !force {
                continue; // second chance
            }
            if slot.dirty {
                if !pool.writeback_allowed(slot.stamp) {
                    continue; // dirtied by the still-open transaction
                }
                let bytes = encode_page(data, self.arity);
                slot.extent = Some(pool.spill(&bytes)?);
                slot.dirty = false;
            }
            debug_assert!(slot.extent.is_some(), "clean page must have an extent");
            slot.data.take();
            pool.note_dropped();
            pool.note_eviction();
            evicted += 1;
        }
        Ok(evicted)
    }

    /// Transient pins of every page, in slot order, with each page's first
    /// slot index. Streaming consumers (snapshot encode, free-list
    /// rebuild) use this to walk all slots without forcing residency.
    pub(crate) fn page_pins(&self) -> impl Iterator<Item = (usize, Arc<PageData>)> + '_ {
        (0..self.pages.len()).map(move |p| (p << self.shift, self.pin_page(p)))
    }

    /// Materialize the full slot vector (test support).
    #[cfg(test)]
    pub(crate) fn slots_vec(&self) -> Vec<Option<Row>> {
        let mut out = Vec::with_capacity(self.len);
        for (_, page) in self.page_pins() {
            out.extend(page.iter().cloned());
        }
        out
    }
}

/// Borrowing iterator over occupied slots; faults pages in lazily, one
/// hit/miss count per page transition (not per row).
struct SlotIter<'a> {
    store: &'a RowStore,
    i: usize,
    end: usize,
    page: Option<&'a PageData>,
    page_first: usize,
}

impl<'a> Iterator for SlotIter<'a> {
    type Item = (usize, &'a Row);

    fn next(&mut self) -> Option<(usize, &'a Row)> {
        let mask = self.store.page_rows() - 1;
        while self.i < self.end {
            let pidx = self.i >> self.store.shift;
            let first = pidx << self.store.shift;
            if self.page.is_none() || self.page_first != first {
                self.page = Some(self.store.resident_counted(pidx).as_ref());
                self.page_first = first;
            }
            let i = self.i;
            self.i += 1;
            if let Some(row) = self.page.and_then(|p| p.get(i & mask)).and_then(|s| s.as_ref())
            {
                return Some((i, row));
            }
        }
        None
    }
}

/// A pinned view of the slots in `start..end`: holds `Arc`s to the
/// covering pages, so the rows stay valid however the pool evicts. The
/// executor pins one morsel at a time — peak pinned memory is one morsel's
/// pages per worker, independent of table size.
pub struct SlotPin {
    pages: Vec<Arc<PageData>>,
    first_page: usize,
    shift: u32,
    mask: usize,
    start: usize,
    end: usize,
}

impl SlotPin {
    /// The row at absolute slot index `i`, if within the pinned range and
    /// occupied.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&Row> {
        if i < self.start || i >= self.end {
            return None;
        }
        let page = self.pages.get((i >> self.shift) - self.first_page)?;
        page.get(i & self.mask).and_then(|s| s.as_ref())
    }

    /// Iterate occupied slots in the pinned range as `(slot, row)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Row)> + '_ {
        (self.start..self.end).filter_map(move |i| self.get(i).map(|r| (i, r)))
    }

    /// The pinned slot range.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn store(page_rows: usize, pool: Arc<BufferPool>) -> RowStore {
        RowStore::new(2, page_rows, pool)
    }

    fn row(i: i64) -> Row {
        vec![Value::Int(i), Value::str(format!("r{i}"))]
    }

    #[test]
    fn page_codec_round_trips_exactly() {
        let page: PageData = vec![
            Some(vec![Value::Int(1), Value::Float(f64::NAN)]),
            None,
            Some(vec![
                Value::Array(vec![Value::str("x"), Value::Null]),
                Value::str("hello"),
            ]),
            None,
        ];
        let bytes = encode_page(&page, 2);
        let back = decode_page(&bytes, 2).unwrap();
        assert_eq!(back.len(), 4);
        assert!(back[1].is_none() && back[3].is_none());
        assert_eq!(back[0].as_ref().unwrap()[0], Value::Int(1));
        // NaN round-trips by bit pattern, not by ==.
        match (&page[0].as_ref().unwrap()[1], &back[0].as_ref().unwrap()[1]) {
            (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("expected floats, got {other:?}"),
        }
        assert_eq!(page[2], back[2]);
    }

    #[test]
    fn page_rows_is_power_of_two_and_clamped() {
        let narrow = TableSchema::new(
            "n",
            vec![Column::not_null("a", DataType::Int)],
            vec![0],
        );
        let wide = TableSchema::new(
            "w",
            (0..40)
                .map(|i| Column::new(format!("c{i}"), DataType::Array(Box::new(DataType::Text))))
                .collect(),
            vec![0],
        );
        for s in [&narrow, &wide] {
            let pr = page_rows_for(s);
            assert!(pr.is_power_of_two());
            assert!((16..=4096).contains(&pr));
        }
        assert!(page_rows_for(&narrow) > page_rows_for(&wide));
    }

    #[test]
    fn eviction_spills_and_faults_back_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "erbium-pages-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let pool = BufferPool::bounded(2, dir.join("pages.erb"));
        let mut s = store(16, pool.clone());
        for i in 0..100 {
            s.push(if i % 7 == 3 { None } else { Some(row(i)) });
        }
        // Everything is committed as far as the pool is concerned.
        pool.note_txn_end();
        let expect = s.slots_vec();
        let evicted = s.reclaim(true).unwrap();
        assert!(evicted > 0, "tiny budget must evict");
        assert!(!pool.over_budget());
        assert_eq!(s.slots_vec(), expect, "spill round-trip changed content");
        let st = pool.stats();
        assert!(st.dirty_writebacks > 0 && st.evictions > 0 && st.misses > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dirty_pages_above_the_barrier_are_never_written_back() {
        let dir = std::env::temp_dir().join(format!(
            "erbium-pages-barrier-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let pool = BufferPool::bounded(1, dir.join("pages.erb"));
        let mut s = store(16, pool.clone());
        pool.note_txn_start(); // open transaction: stamps above barrier
        for i in 0..64 {
            s.push(Some(row(i)));
        }
        assert_eq!(s.reclaim(true).unwrap(), 0, "uncommitted pages must not spill");
        assert_eq!(pool.stats().dirty_writebacks, 0);
        pool.note_txn_end(); // commit published
        assert!(s.reclaim(true).unwrap() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clones_share_extents_and_account_residency() {
        let dir = std::env::temp_dir().join(format!(
            "erbium-pages-clone-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let pool = BufferPool::bounded(2, dir.join("pages.erb"));
        let mut s = store(16, pool.clone());
        for i in 0..64 {
            s.push(Some(row(i)));
        }
        pool.note_txn_end();
        s.reclaim(true).unwrap();
        let resident_before = pool.stats().resident;
        let snap = s.clone(); // shares spilled extents, clones resident Arcs
        assert_eq!(snap.slots_vec(), s.slots_vec());
        drop(snap);
        assert_eq!(pool.stats().resident, resident_before);
        // Mutating the original must not disturb what a clone reads.
        let snap = s.clone();
        let before = snap.slots_vec();
        s.set(3, Some(row(999)));
        s.take(5);
        assert_eq!(snap.slots_vec(), before, "snapshot saw a later write");
        assert_eq!(s.get(3).unwrap()[0], Value::Int(999));
        std::fs::remove_dir_all(&dir).ok();
    }
}
