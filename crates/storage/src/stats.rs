//! Table and column statistics.
//!
//! Consumed by the query optimizer (join ordering, index selection) and by
//! the mapping advisor's cost model. Statistics are recomputed on demand via
//! [`crate::table::Table::compute_stats`]; they are estimates, not
//! transactionally maintained truths.

use crate::value::Value;
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// Per-column NDV sets stop growing at this many distinct values: exact
/// NDV up to the cap, saturating beyond it (good enough for costing;
/// avoids unbounded memory on wide text columns). Shared with the
/// columnar one-pass gather in [`crate::table::Table::compute_stats`].
pub(crate) const NDV_CAP: usize = 1 << 20;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Estimated number of distinct values.
    pub ndv: u64,
    /// Number of NULLs.
    pub null_count: u64,
    /// Minimum non-null value, if any.
    pub min: Option<Value>,
    /// Maximum non-null value, if any.
    pub max: Option<Value>,
    /// Average value width in bytes.
    pub avg_width: f64,
    /// For array columns: average element count of non-null arrays.
    pub avg_array_len: f64,
}

impl Default for ColumnStats {
    fn default() -> Self {
        ColumnStats { ndv: 0, null_count: 0, min: None, max: None, avg_width: 0.0, avg_array_len: 0.0 }
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TableStats {
    pub row_count: u64,
    pub columns: Vec<ColumnStats>,
    /// Total approximate bytes of live row data.
    pub total_bytes: u64,
}

impl TableStats {
    /// Compute stats over an iterator of rows. Exact NDV up to `ndv_cap`
    /// distinct values per column, saturating beyond it (good enough for
    /// costing; avoids unbounded memory on wide text columns).
    ///
    /// Accepts anything row-shaped (`&[Value]`, `Vec<Value>`, …) so callers
    /// can stream borrowed slots or lazily assembled join rows without
    /// materializing them first.
    pub fn compute<R: AsRef<[Value]>>(rows: impl Iterator<Item = R>, arity: usize) -> TableStats {
        let mut row_count = 0u64;
        let mut total_bytes = 0u64;
        let mut sets: Vec<FxHashSet<Value>> = (0..arity).map(|_| FxHashSet::default()).collect();
        let mut saturated = vec![false; arity];
        let mut cols = vec![ColumnStats::default(); arity];
        let mut width_sums = vec![0f64; arity];
        let mut arr_sums = vec![0f64; arity];
        let mut arr_counts = vec![0u64; arity];

        for row in rows {
            row_count += 1;
            for (i, v) in row.as_ref().iter().enumerate() {
                let sz = v.approx_size();
                total_bytes += sz as u64;
                width_sums[i] += sz as f64;
                if v.is_null() {
                    cols[i].null_count += 1;
                    continue;
                }
                if let Value::Array(vs) = v {
                    arr_sums[i] += vs.len() as f64;
                    arr_counts[i] += 1;
                }
                match (&cols[i].min, v) {
                    (None, v) => cols[i].min = Some(v.clone()),
                    (Some(m), v) if v < m => cols[i].min = Some(v.clone()),
                    _ => {}
                }
                match (&cols[i].max, v) {
                    (None, v) => cols[i].max = Some(v.clone()),
                    (Some(m), v) if v > m => cols[i].max = Some(v.clone()),
                    _ => {}
                }
                if !saturated[i] {
                    sets[i].insert(v.clone());
                    if sets[i].len() >= NDV_CAP {
                        saturated[i] = true;
                    }
                }
            }
        }
        for i in 0..arity {
            cols[i].ndv = sets[i].len() as u64;
            cols[i].avg_width = if row_count > 0 { width_sums[i] / row_count as f64 } else { 0.0 };
            cols[i].avg_array_len =
                if arr_counts[i] > 0 { arr_sums[i] / arr_counts[i] as f64 } else { 0.0 };
        }
        TableStats { row_count, columns: cols, total_bytes }
    }

    /// Selectivity estimate for an equality predicate on column `col`.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        match self.columns.get(col) {
            Some(c) if c.ndv > 0 => 1.0 / c.ndv as f64,
            _ => 0.1,
        }
    }

    /// Fraction of NULLs in column `col` (0.0 when the table is empty or the
    /// column is unknown).
    pub fn null_frac(&self, col: usize) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        match self.columns.get(col) {
            Some(c) => c.null_count as f64 / self.row_count as f64,
            None => 0.0,
        }
    }

    /// Average row width in bytes (0.0 when empty).
    pub fn avg_row_bytes(&self) -> f64 {
        if self.row_count == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.row_count as f64
        }
    }
}

/// One registry entry: gathered statistics plus a staleness flag flipped by
/// CRUD writes after the gather.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StatsEntry {
    stats: TableStats,
    stale: bool,
}

/// Per-table statistics registry held on the
/// [`crate::catalog::Catalog`].
///
/// Entries are keyed by table name; factorized structures contribute three
/// entries (`name`, `name#left`, `name#right` — the stored join and the two
/// member sides), matching the plan-level naming the engine and advisor use.
///
/// Writes through the catalog's mutable accessors mark entries **stale**
/// rather than dropping them: slightly-off statistics still beat none for
/// costing, and `stale_tables()` tells callers what a re-ANALYZE would
/// refresh.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CatalogStats {
    entries: FxHashMap<String, StatsEntry>,
}

impl CatalogStats {
    /// Gathered statistics for `table`, if any. Stale entries are still
    /// returned — check [`CatalogStats::is_stale`] when freshness matters.
    pub fn get(&self, table: &str) -> Option<&TableStats> {
        self.entries.get(table).map(|e| &e.stats)
    }

    /// Install fresh statistics for `table` (clears any staleness).
    pub fn put(&mut self, table: impl Into<String>, stats: TableStats) {
        self.entries.insert(table.into(), StatsEntry { stats, stale: false });
    }

    /// Flag `table`'s statistics as out of date (no-op when none gathered).
    pub fn mark_stale(&mut self, table: &str) {
        if let Some(e) = self.entries.get_mut(table) {
            e.stale = true;
        }
    }

    /// Whether `table` has statistics that predate a write.
    pub fn is_stale(&self, table: &str) -> bool {
        self.entries.get(table).map(|e| e.stale).unwrap_or(false)
    }

    /// Drop statistics for `table` (e.g. when the table itself is dropped).
    pub fn remove(&mut self, table: &str) {
        self.entries.remove(table);
    }

    /// True when no table has gathered statistics — the optimizer's
    /// cost-based passes disable themselves in that case.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of tables with gathered statistics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Sorted names of tables whose statistics are stale.
    pub fn stale_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, e)| e.stale)
            .map(|(k, _)| k.clone())
            .collect();
        names.sort();
        names
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_basic_stats() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::str("a"), Value::Array(vec![Value::Int(1), Value::Int(2)])],
            vec![Value::Int(2), Value::str("a"), Value::Array(vec![Value::Int(3)])],
            vec![Value::Int(3), Value::Null, Value::Null],
        ];
        let stats = TableStats::compute(rows.iter().map(|r| r.as_slice()), 3);
        assert_eq!(stats.row_count, 3);
        assert_eq!(stats.columns[0].ndv, 3);
        assert_eq!(stats.columns[1].ndv, 1);
        assert_eq!(stats.columns[1].null_count, 1);
        assert_eq!(stats.columns[0].min, Some(Value::Int(1)));
        assert_eq!(stats.columns[0].max, Some(Value::Int(3)));
        assert!((stats.columns[2].avg_array_len - 1.5).abs() < 1e-9);
    }

    #[test]
    fn eq_selectivity_uses_ndv() {
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i % 5)]).collect();
        let stats = TableStats::compute(rows.iter().map(|r| r.as_slice()), 1);
        assert!((stats.eq_selectivity(0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn catalog_stats_staleness_lifecycle() {
        let mut reg = CatalogStats::default();
        assert!(reg.is_empty());
        reg.put("t", TableStats { row_count: 5, ..TableStats::default() });
        assert_eq!(reg.get("t").unwrap().row_count, 5);
        assert!(!reg.is_stale("t"));
        reg.mark_stale("t");
        assert!(reg.is_stale("t"), "write flags stats stale");
        assert_eq!(reg.get("t").unwrap().row_count, 5, "stale stats still served");
        assert_eq!(reg.stale_tables(), vec!["t".to_string()]);
        reg.put("t", TableStats { row_count: 6, ..TableStats::default() });
        assert!(!reg.is_stale("t"), "re-analyze clears staleness");
        reg.mark_stale("never-analyzed"); // no-op
        assert!(!reg.is_stale("never-analyzed"));
        reg.remove("t");
        assert!(reg.is_empty());
    }

    #[test]
    fn empty_table_stats() {
        let stats = TableStats::compute(std::iter::empty::<&[Value]>(), 2);
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.columns.len(), 2);
        assert_eq!(stats.columns[0].ndv, 0);
    }
}
