//! WAL group commit: batching concurrent commit fsyncs into one.
//!
//! Under `SyncPolicy::Always` every committed transaction pays a full
//! fsync — the `A-wal` ablation measured that at ~4x the append cost. With
//! many concurrent committers most of those fsyncs are redundant: one
//! `fdatasync` makes *everything appended so far* durable, regardless of
//! which transaction asked for it. The classic fix (PostgreSQL's
//! `commit_delay`, InnoDB's group commit) is a commit queue: committers
//! append their group under the writer lock, release the lock, then park on
//! the log's *appended LSN*; the first parked committer elects itself
//! **leader**, optionally dallies for a configurable window so stragglers
//! can join the batch, issues one fsync on behalf of everyone whose bytes
//! are already in the file, and wakes the queue.
//!
//! Correctness leans on two monotonic quantities:
//!
//! - the appended LSN ([`crate::wal::Wal`]'s bytes-ever-written counter,
//!   advanced under the writer lock), and
//! - the durable LSN (advanced only after a successful fsync).
//!
//! A committer with `my_lsn <= durable_lsn` is durable — fsync covers every
//! byte appended before it was called, so one leader fsync at
//! `target = appended_lsn` releases every committer queued at or below
//! `target`. A crash between append and fsync loses whole commit groups
//! (each group is one contiguous `write_all`; recovery takes the committed
//! prefix), never part of one — exactly the same guarantee as per-commit
//! fsync, minus the redundant syncs.
//!
//! The module deliberately uses `std::sync::{Mutex, Condvar}` rather than
//! the vendored `parking_lot` façade, which wraps locks only (no condvar).

use crate::error::{StorageError, StorageResult};
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

fn m_group_batches() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_wal_group_commit_batches_total",
            "Leader fsyncs issued by WAL group commit (one per batch)",
        )
    })
}

fn m_group_commits() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_wal_group_commit_txns_total",
            "Transactions made durable via WAL group commit",
        )
    })
}

fn m_wal_fsync_seconds() -> &'static erbium_obs::Histogram {
    static H: std::sync::OnceLock<Arc<erbium_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .histogram("erbium_wal_fsync_seconds", "Latency of WAL fsync calls")
    })
}

/// Shared state guarded by the committer mutex.
#[derive(Debug)]
struct GcState {
    /// Everything at or below this LSN has been fsynced.
    durable_lsn: u64,
    /// A leader is currently dallying/fsyncing; followers park instead of
    /// issuing their own fsync.
    leader_active: bool,
}

/// The commit queue. One per open database; cheap to share (`Arc`).
///
/// See the module docs for the protocol. Per-instance batch/commit counters
/// are kept alongside the global metrics so tests can assert on a single
/// database without cross-test interference.
#[derive(Debug)]
pub struct GroupCommitter {
    file: Arc<File>,
    appended: Arc<AtomicU64>,
    state: Mutex<GcState>,
    cv: Condvar,
    window: Duration,
    batches: AtomicU64,
    commits: AtomicU64,
}

impl GroupCommitter {
    /// Build a committer over a WAL's shared sync handle
    /// ([`crate::wal::Wal::sync_handle`]). `window` is the leader's dally
    /// time before fsyncing — `Duration::ZERO` (the default configuration)
    /// means no artificial latency: batching still happens whenever
    /// commits genuinely overlap, because followers that append while the
    /// leader is inside `fdatasync` are covered by the *next* leader's
    /// single fsync.
    pub fn new(file: Arc<File>, appended: Arc<AtomicU64>, window: Duration) -> GroupCommitter {
        GroupCommitter {
            file,
            appended,
            state: Mutex::new(GcState { durable_lsn: 0, leader_active: false }),
            cv: Condvar::new(),
            window,
            batches: AtomicU64::new(0),
            commits: AtomicU64::new(0),
        }
    }

    /// The configured leader dally window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Leader fsyncs issued by this committer (each covers >= 1 commit).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Commits made durable through this committer.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, GcState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Block until every byte at or below `lsn` is durable. The caller must
    /// have already appended its commit group (so `lsn` came from
    /// [`crate::wal::Wal::append_group`]) and must *not* hold the writer
    /// lock — parking here while holding it would serialize the batch.
    ///
    /// On fsync failure the error is returned to whoever issued the fsync;
    /// parked followers are woken and re-run the election, so each
    /// committer observes its own success or failure rather than trusting
    /// a stranger's.
    pub fn wait_durable(&self, lsn: u64) -> StorageResult<()> {
        let mut st = self.lock();
        loop {
            if st.durable_lsn >= lsn {
                self.commits.fetch_add(1, Ordering::Relaxed);
                m_group_commits().inc();
                return Ok(());
            }
            if st.leader_active {
                st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            // Become leader: fsync outside the lock so followers can queue.
            st.leader_active = true;
            drop(st);
            if !self.window.is_zero() {
                std::thread::sleep(self.window);
            }
            // Snapshot the appended LSN *before* fsync: the sync covers at
            // least these bytes (appends racing with the fsync may or may
            // not be covered; claiming only `target` stays sound).
            let target = self.appended.load(Ordering::Acquire);
            let res = self.fsync();
            st = self.lock();
            st.leader_active = false;
            if res.is_ok() {
                st.durable_lsn = st.durable_lsn.max(target);
                self.batches.fetch_add(1, Ordering::Relaxed);
                m_group_batches().inc();
            }
            self.cv.notify_all();
            res?;
            // Loop: our own append happened before we were elected, so
            // target >= lsn and the next iteration releases us.
        }
    }

    /// The same instrumented fsync the `Wal` uses, issued through the
    /// shared file handle (ticks `erbium_wal_fsync_seconds`, so the
    /// fsync-count acceptance metric spans both paths).
    fn fsync(&self) -> StorageResult<()> {
        let _span = erbium_obs::span("wal_fsync");
        let t0 = std::time::Instant::now();
        let r = self
            .file
            .sync_data()
            .map_err(|e| StorageError::Io(format!("WAL group fsync: {e}")));
        m_wal_fsync_seconds().observe_duration(t0.elapsed());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{scan_wal, SyncPolicy, Wal, WalRecord};
    use crate::value::Value;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        p.push(format!("erbium-gc-test-{tag}-{}-{nanos}", std::process::id()));
        p
    }

    #[test]
    fn single_commit_fsyncs_once_and_releases() {
        let path = temp_path("single");
        let mut wal = Wal::open(&path, SyncPolicy::Never, 1).unwrap();
        let (file, appended) = wal.sync_handle();
        let gc = GroupCommitter::new(file, appended, Duration::ZERO);
        let (_, lsn) =
            wal.append_group(&[WalRecord::Delete { table: "t".into(), rid: 0 }]).unwrap();
        gc.wait_durable(lsn).unwrap();
        assert_eq!(gc.batches(), 1);
        assert_eq!(gc.commits(), 1);
        // Already durable: a second wait on the same LSN is free (no fsync).
        gc.wait_durable(lsn).unwrap();
        assert_eq!(gc.batches(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_commits_share_fsyncs() {
        let path = temp_path("shared");
        let wal = Arc::new(Mutex::new(Wal::open(&path, SyncPolicy::Never, 1).unwrap()));
        let (file, appended) = wal.lock().unwrap().sync_handle();
        // A small dally window makes batching deterministic enough to
        // assert on: whoever leads waits for the others to append.
        let gc = Arc::new(GroupCommitter::new(file, appended, Duration::from_millis(20)));
        const K: usize = 8;
        std::thread::scope(|s| {
            for i in 0..K {
                let wal = Arc::clone(&wal);
                let gc = Arc::clone(&gc);
                s.spawn(move || {
                    let (_, lsn) = wal
                        .lock()
                        .unwrap()
                        .append_group(&[WalRecord::Insert {
                            table: "t".into(),
                            rid: i as u64,
                            row: vec![Value::Int(i as i64)],
                        }])
                        .unwrap();
                    gc.wait_durable(lsn).unwrap();
                });
            }
        });
        assert_eq!(gc.commits(), K as u64);
        assert!(
            gc.batches() < K as u64,
            "{K} concurrent commits must share fsyncs, got {} batches",
            gc.batches()
        );
        // Everything that was released is actually on disk and well-formed.
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.committed.len(), K);
        assert!(!scan.torn_tail);
        std::fs::remove_file(&path).ok();
    }
}
