//! Write-ahead log of physical row operations.
//!
//! The paper's prototype inherits durability from PostgreSQL; this module is
//! the from-scratch substitute. Every logical E/R CRUD operation lowers to a
//! *group* of physical row operations (the multi-table-update OLTP challenge
//! the paper calls out), and the group must hit the disk atomically. The log
//! therefore brackets each group with [`WalRecord::Begin`] /
//! [`WalRecord::Commit`] markers; recovery redoes only groups whose commit
//! marker survived, so a crash mid-group loses the whole group and never a
//! part of it.
//!
//! ## On-disk format
//!
//! The file is a sequence of self-delimiting frames:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The payload is a tag byte followed by a record-specific binary body (see
//! [`WalRecord::encode`]). Values use a compact binary codec rather than
//! JSON so that `Float` bit patterns (NaN included) round-trip exactly.
//!
//! A torn tail — short header, short payload, or CRC mismatch — terminates
//! the scan *cleanly*: everything before the tear is usable, the tear itself
//! is treated as the end of the log. This is what makes crash recovery a
//! total function of the file contents.
//!
//! ## Sync policy
//!
//! [`SyncPolicy`] trades commit latency for durability window, exactly like
//! `synchronous_commit` in PostgreSQL: `Always` fsyncs every commit,
//! `EveryN(n)` fsyncs every n-th commit, `Never` leaves flushing to the OS.
//! Data *written* but not fsynced survives process crashes (the page cache
//! holds it) but not power loss.

use crate::error::{StorageError, StorageResult};
use crate::row::Row;
use crate::value::Value;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// When the log fsyncs to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync on every commit — full durability, slowest.
    Always,
    /// fsync every n-th commit — bounded loss window of n-1 commits.
    EveryN(u32),
    /// Never fsync explicitly — the OS decides; fastest.
    Never,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::EveryN(32)
    }
}

// ---- CRC32 ----------------------------------------------------------------

/// IEEE CRC-32 (the polynomial used by zip/png), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---- binary value codec ----------------------------------------------------

const T_NULL: u8 = 0;
const T_BOOL: u8 = 1;
const T_INT: u8 = 2;
const T_FLOAT: u8 = 3;
const T_STR: u8 = 4;
const T_ARRAY: u8 = 5;
const T_STRUCT: u8 = 6;

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Cursor over a decode buffer. Every read is bounds-checked; a short buffer
/// yields `None`, which the WAL scanner treats as a torn tail.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

pub(crate) fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(T_NULL),
        Value::Bool(b) => {
            buf.push(T_BOOL);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(T_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            buf.push(T_FLOAT);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(T_STR);
            put_str(buf, s);
        }
        Value::Array(vs) => {
            buf.push(T_ARRAY);
            put_u32(buf, vs.len() as u32);
            for x in vs {
                put_value(buf, x);
            }
        }
        Value::Struct(vs) => {
            buf.push(T_STRUCT);
            put_u32(buf, vs.len() as u32);
            for x in vs {
                put_value(buf, x);
            }
        }
    }
}

pub(crate) fn get_value(c: &mut Cursor<'_>) -> Option<Value> {
    match c.u8()? {
        T_NULL => Some(Value::Null),
        T_BOOL => Some(Value::Bool(c.u8()? != 0)),
        T_INT => {
            let mut b = [0u8; 8];
            for e in &mut b {
                *e = c.u8()?;
            }
            Some(Value::Int(i64::from_le_bytes(b)))
        }
        T_FLOAT => Some(Value::Float(f64::from_bits(c.u64()?))),
        T_STR => Some(Value::Str(Arc::from(c.str()?.as_str()))),
        T_ARRAY => {
            let n = c.u32()? as usize;
            let mut vs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                vs.push(get_value(c)?);
            }
            Some(Value::Array(vs))
        }
        T_STRUCT => {
            let n = c.u32()? as usize;
            let mut vs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                vs.push(get_value(c)?);
            }
            Some(Value::Struct(vs))
        }
        _ => None,
    }
}

pub(crate) fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

pub(crate) fn get_row(c: &mut Cursor<'_>) -> Option<Row> {
    let n = c.u32()? as usize;
    let mut row = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        row.push(get_value(c)?);
    }
    Some(row)
}

// ---- records ---------------------------------------------------------------

/// Which member table of a factorized structure an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactSide {
    Left,
    Right,
}

/// One physical operation (or group marker) in the log.
///
/// Rows are logged *post-canonicalization* (the representation the table
/// actually stored), so redo can bypass validation and reproduce bit-exact
/// state.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Start of a logical operation group.
    Begin { txn: u64 },
    /// The group committed; recovery redoes it.
    Commit { txn: u64 },
    /// The group aborted; recovery skips it. (The default commit-time
    /// logging never emits this — rolled-back groups are simply not
    /// written — but the recovery scanner honours it for completeness.)
    Abort { txn: u64 },
    /// A row landed in `table` at slot `rid`.
    Insert { table: String, rid: u64, row: Row },
    /// The row at slot `rid` of `table` was replaced with `row`.
    Update { table: String, rid: u64, row: Row },
    /// The row at slot `rid` of `table` was deleted.
    Delete { table: String, rid: u64 },
    /// A plain table was created (schema as catalog-meta JSON).
    CreateTable { schema_json: String },
    /// A row landed in one member of factorized structure `name`.
    FactInsert { name: String, side: FactSide, rid: u64, row: Row },
    /// A member row of factorized structure `name` was replaced.
    FactUpdate { name: String, side: FactSide, rid: u64, row: Row },
    /// A member row of factorized structure `name` was deleted (links
    /// cascade exactly as they did online).
    FactDelete { name: String, side: FactSide, rid: u64 },
    /// A (left, right) pointer pair was added in structure `name`.
    FactLink { name: String, l: u64, r: u64 },
    /// A (left, right) pointer pair was removed from structure `name`.
    FactUnlink { name: String, l: u64, r: u64 },
    /// A contiguous batch of rows landed at the tail of `table`, occupying
    /// slots `first .. first + rows.len()`. The compact bulk-ingest record:
    /// one frame describes the whole batch (the table name and slot base are
    /// stored once), instead of one `Insert` frame per row.
    BulkInsert { table: String, first: u64, rows: Vec<Row> },
}

const R_BEGIN: u8 = 1;
const R_COMMIT: u8 = 2;
const R_ABORT: u8 = 3;
const R_INSERT: u8 = 4;
const R_UPDATE: u8 = 5;
const R_DELETE: u8 = 6;
const R_CREATE_TABLE: u8 = 7;
const R_FACT_INSERT: u8 = 8;
const R_FACT_UPDATE: u8 = 9;
const R_FACT_DELETE: u8 = 10;
const R_FACT_LINK: u8 = 11;
const R_FACT_UNLINK: u8 = 12;
const R_BULK_INSERT: u8 = 13;

fn put_side(buf: &mut Vec<u8>, side: FactSide) {
    buf.push(match side {
        FactSide::Left => 0,
        FactSide::Right => 1,
    });
}

fn get_side(c: &mut Cursor<'_>) -> Option<FactSide> {
    match c.u8()? {
        0 => Some(FactSide::Left),
        1 => Some(FactSide::Right),
        _ => None,
    }
}

impl WalRecord {
    /// Serialize the record payload (no framing).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Begin { txn } => {
                buf.push(R_BEGIN);
                put_u64(buf, *txn);
            }
            WalRecord::Commit { txn } => {
                buf.push(R_COMMIT);
                put_u64(buf, *txn);
            }
            WalRecord::Abort { txn } => {
                buf.push(R_ABORT);
                put_u64(buf, *txn);
            }
            WalRecord::Insert { table, rid, row } => {
                buf.push(R_INSERT);
                put_str(buf, table);
                put_u64(buf, *rid);
                put_row(buf, row);
            }
            WalRecord::Update { table, rid, row } => {
                buf.push(R_UPDATE);
                put_str(buf, table);
                put_u64(buf, *rid);
                put_row(buf, row);
            }
            WalRecord::Delete { table, rid } => {
                buf.push(R_DELETE);
                put_str(buf, table);
                put_u64(buf, *rid);
            }
            WalRecord::CreateTable { schema_json } => {
                buf.push(R_CREATE_TABLE);
                put_str(buf, schema_json);
            }
            WalRecord::FactInsert { name, side, rid, row } => {
                buf.push(R_FACT_INSERT);
                put_str(buf, name);
                put_side(buf, *side);
                put_u64(buf, *rid);
                put_row(buf, row);
            }
            WalRecord::FactUpdate { name, side, rid, row } => {
                buf.push(R_FACT_UPDATE);
                put_str(buf, name);
                put_side(buf, *side);
                put_u64(buf, *rid);
                put_row(buf, row);
            }
            WalRecord::FactDelete { name, side, rid } => {
                buf.push(R_FACT_DELETE);
                put_str(buf, name);
                put_side(buf, *side);
                put_u64(buf, *rid);
            }
            WalRecord::FactLink { name, l, r } => {
                buf.push(R_FACT_LINK);
                put_str(buf, name);
                put_u64(buf, *l);
                put_u64(buf, *r);
            }
            WalRecord::FactUnlink { name, l, r } => {
                buf.push(R_FACT_UNLINK);
                put_str(buf, name);
                put_u64(buf, *l);
                put_u64(buf, *r);
            }
            WalRecord::BulkInsert { table, first, rows } => {
                buf.push(R_BULK_INSERT);
                put_str(buf, table);
                put_u64(buf, *first);
                put_u32(buf, rows.len() as u32);
                for row in rows {
                    put_row(buf, row);
                }
            }
        }
    }

    /// Decode one record payload. `None` on any malformation (the scanner
    /// treats that as a torn tail, never a panic).
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor::new(payload);
        let rec = match c.u8()? {
            R_BEGIN => WalRecord::Begin { txn: c.u64()? },
            R_COMMIT => WalRecord::Commit { txn: c.u64()? },
            R_ABORT => WalRecord::Abort { txn: c.u64()? },
            R_INSERT => WalRecord::Insert { table: c.str()?, rid: c.u64()?, row: get_row(&mut c)? },
            R_UPDATE => WalRecord::Update { table: c.str()?, rid: c.u64()?, row: get_row(&mut c)? },
            R_DELETE => WalRecord::Delete { table: c.str()?, rid: c.u64()? },
            R_CREATE_TABLE => WalRecord::CreateTable { schema_json: c.str()? },
            R_FACT_INSERT => WalRecord::FactInsert {
                name: c.str()?,
                side: get_side(&mut c)?,
                rid: c.u64()?,
                row: get_row(&mut c)?,
            },
            R_FACT_UPDATE => WalRecord::FactUpdate {
                name: c.str()?,
                side: get_side(&mut c)?,
                rid: c.u64()?,
                row: get_row(&mut c)?,
            },
            R_FACT_DELETE => {
                WalRecord::FactDelete { name: c.str()?, side: get_side(&mut c)?, rid: c.u64()? }
            }
            R_FACT_LINK => WalRecord::FactLink { name: c.str()?, l: c.u64()?, r: c.u64()? },
            R_FACT_UNLINK => WalRecord::FactUnlink { name: c.str()?, l: c.u64()?, r: c.u64()? },
            R_BULK_INSERT => {
                let table = c.str()?;
                let first = c.u64()?;
                let n = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    rows.push(get_row(&mut c)?);
                }
                WalRecord::BulkInsert { table, first, rows }
            }
            _ => return None,
        };
        if !c.is_done() {
            return None; // trailing garbage inside a frame
        }
        Some(rec)
    }
}

/// Frame one record into `out`: `[len][crc][payload]`. The payload is
/// encoded directly into `out` — the 8-byte header is reserved up front and
/// backpatched once the length and CRC are known — so framing allocates
/// nothing beyond `out`'s own growth, which is what lets [`Wal`] reuse one
/// encode buffer across commit groups.
pub fn frame_record(out: &mut Vec<u8>, rec: &WalRecord) {
    let header = out.len();
    out.extend_from_slice(&[0u8; 8]);
    rec.encode(out);
    let len = (out.len() - header - 8) as u32;
    let crc = crc32(&out[header + 8..]);
    out[header..header + 4].copy_from_slice(&len.to_le_bytes());
    out[header + 4..header + 8].copy_from_slice(&crc.to_le_bytes());
}

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{ctx}: {e}"))
}

// ---- metrics ---------------------------------------------------------------
//
// Handles are interned once per process and cached in statics, so the append
// path pays a handful of relaxed atomic ops per commit group.

fn m_wal_bytes() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_wal_bytes_total", "Bytes appended to the write-ahead log")
    })
}

fn m_wal_commit_groups() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_wal_commit_groups_total", "Commit groups appended to the WAL")
    })
}

fn m_wal_fsync_seconds() -> &'static erbium_obs::Histogram {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Histogram>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .histogram("erbium_wal_fsync_seconds", "Latency of WAL fsync calls")
    })
}

// ---- the log writer --------------------------------------------------------

/// Append-side handle on the write-ahead log.
///
/// Single-writer by construction (the `Database` facade serializes writers),
/// so no internal locking. Each committed group is assembled in memory and
/// written with one `write_all`, so a crash inside the write tears at most
/// the tail of one group — which recovery discards wholesale.
///
/// The file handle and the appended-byte counter are shared (`Arc`) so a
/// [`crate::group_commit::GroupCommitter`] can fsync on behalf of several
/// queued committers without holding the writer lock: appends stay
/// serialized by the writer, durability is driven by whoever is elected
/// group leader (see [`Wal::sync_handle`]).
#[derive(Debug)]
pub struct Wal {
    file: Arc<File>,
    path: PathBuf,
    policy: SyncPolicy,
    unsynced_commits: u32,
    next_txn: u64,
    /// Reusable group-encode buffer: cleared (capacity kept) at the start of
    /// every append, so a steady-state writer frames groups with zero
    /// allocations instead of building a fresh `Vec` per group.
    encode_buf: Vec<u8>,
    /// Total bytes ever appended — a monotonic LSN. Deliberately *not*
    /// reset by [`Wal::truncate`]: group commit compares LSNs to decide
    /// which committers an fsync covered, and monotonicity is what makes
    /// `durable_lsn >= my_lsn` a one-way gate.
    appended_lsn: Arc<std::sync::atomic::AtomicU64>,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending. `next_txn`
    /// seeds the transaction-id counter — recovery passes the highest id it
    /// saw plus one.
    pub fn open(path: impl Into<PathBuf>, policy: SyncPolicy, next_txn: u64) -> StorageResult<Wal> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&format!("open WAL {}", path.display()), e))?;
        Ok(Wal {
            file: Arc::new(file),
            path,
            policy,
            unsynced_commits: 0,
            next_txn,
            encode_buf: Vec::new(),
            appended_lsn: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    /// Capacity of the reusable group-encode buffer. Exposed so the WAL
    /// bench can assert that appending many similarly-sized groups does not
    /// keep allocating: after warm-up the capacity must hold steady.
    pub fn encode_buf_capacity(&self) -> usize {
        self.encode_buf.capacity()
    }

    /// Shared handles for a group committer: the log file (for fsync from
    /// outside the writer lock) and the appended-LSN counter (to observe
    /// how far appends have progressed). See `crate::group_commit`.
    pub fn sync_handle(&self) -> (Arc<File>, Arc<std::sync::atomic::AtomicU64>) {
        (Arc::clone(&self.file), Arc::clone(&self.appended_lsn))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// The next transaction id this log will assign.
    pub fn next_txn_id(&self) -> u64 {
        self.next_txn
    }

    /// Append one committed group: `Begin`, the operations, `Commit` — a
    /// single buffered write, then flush/fsync per [`SyncPolicy`]. Returns
    /// the assigned transaction id. Empty groups are not written.
    pub fn commit_group(&mut self, records: &[WalRecord]) -> StorageResult<u64> {
        let txn = self.append_records(records)?;
        if records.is_empty() {
            return Ok(txn);
        }
        match self.policy {
            SyncPolicy::Always => {
                self.fsync()?;
            }
            SyncPolicy::EveryN(n) => {
                self.unsynced_commits += 1;
                if self.unsynced_commits >= n.max(1) {
                    self.fsync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(txn)
    }

    /// Append one committed group *without* applying the sync policy,
    /// returning the assigned transaction id and the log's appended LSN
    /// after the write. The caller owns durability: group commit parks the
    /// committer on its LSN and lets the elected leader fsync one batch on
    /// behalf of everyone queued behind it (see `crate::group_commit`).
    pub fn append_group(&mut self, records: &[WalRecord]) -> StorageResult<(u64, u64)> {
        let txn = self.append_records(records)?;
        Ok((txn, self.appended_lsn.load(std::sync::atomic::Ordering::Acquire)))
    }

    /// Frame and write one `Begin … ops … Commit` group in a single
    /// `write_all`, advancing the appended LSN. Empty groups write nothing
    /// but still consume a transaction id.
    fn append_records(&mut self, records: &[WalRecord]) -> StorageResult<u64> {
        let txn = self.next_txn;
        self.next_txn += 1;
        if records.is_empty() {
            return Ok(txn);
        }
        let buf = &mut self.encode_buf;
        buf.clear();
        frame_record(buf, &WalRecord::Begin { txn });
        for r in records {
            frame_record(buf, r);
        }
        frame_record(buf, &WalRecord::Commit { txn });
        let _span = erbium_obs::span("wal_append");
        (&*self.file).write_all(buf).map_err(|e| io_err("WAL append", e))?;
        self.appended_lsn.fetch_add(buf.len() as u64, std::sync::atomic::Ordering::AcqRel);
        m_wal_bytes().add(buf.len() as u64);
        m_wal_commit_groups().inc();
        Ok(txn)
    }

    /// The instrumented fsync every path funnels through: times the call
    /// into the `erbium_wal_fsync_seconds` histogram, emits a `wal_fsync`
    /// span, and resets the unsynced-commit debt.
    fn fsync(&mut self) -> StorageResult<()> {
        let _span = erbium_obs::span("wal_fsync");
        let t0 = std::time::Instant::now();
        let r = self.file.sync_data().map_err(|e| io_err("WAL fsync", e));
        m_wal_fsync_seconds().observe_duration(t0.elapsed());
        self.unsynced_commits = 0;
        r
    }

    /// Force an fsync regardless of policy (checkpoint prologue — committed
    /// groups must be durable before the snapshot that absorbs them is
    /// allowed to truncate the log).
    pub fn sync(&mut self) -> StorageResult<()> {
        self.fsync()
    }

    /// Discard the log contents (after a successful checkpoint has absorbed
    /// them into the snapshot).
    pub fn truncate(&mut self) -> StorageResult<()> {
        self.file.set_len(0).map_err(|e| io_err("WAL truncate", e))?;
        self.fsync()
    }
}

impl Drop for Wal {
    /// [`SyncPolicy::EveryN`] batches fsyncs, so up to `n - 1` committed
    /// groups can sit in the OS page cache between syncs. On a clean
    /// shutdown those groups must not be lost: flush the debt here.
    /// Best-effort by necessity — `Drop` cannot report errors, and a failed
    /// fsync at this point is indistinguishable from the crash the policy
    /// already tolerates.
    fn drop(&mut self) {
        if self.unsynced_commits > 0 {
            let _ = self.fsync();
        }
    }
}

// ---- the log reader --------------------------------------------------------

/// Everything recovery needs from one scan of the log.
#[derive(Debug, Default)]
pub struct WalScan {
    /// `(txn_id, operations)` of each *committed* group, in commit order.
    /// The id lets recovery skip groups a checkpoint chain has already
    /// absorbed (every snapshot/delta records the `next_txn` it covers, so
    /// `txn_id < chain_next_txn` means "already in the chain").
    pub committed: Vec<(u64, Vec<WalRecord>)>,
    /// One past the highest transaction id seen (committed or not).
    pub next_txn: u64,
    /// Total frames decoded before the scan stopped.
    pub frames: usize,
    /// True if the scan stopped at a torn/corrupt tail (as opposed to a
    /// clean end-of-file).
    pub torn_tail: bool,
}

/// Scan the log at `path`, returning the committed groups. Missing file is
/// an empty log. Torn or corrupt tails terminate the scan cleanly; an open
/// group without its `Commit` marker is discarded.
pub fn scan_wal(path: &Path) -> StorageResult<WalScan> {
    let mut scan = WalScan { next_txn: 1, ..WalScan::default() };
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes).map_err(|e| io_err("WAL read", e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(io_err(&format!("open WAL {}", path.display()), e)),
    }
    let mut pos = 0usize;
    let mut open: Option<(u64, Vec<WalRecord>)> = None;
    loop {
        if pos == bytes.len() {
            break; // clean EOF
        }
        let (Some(len_bytes), Some(crc_bytes)) = (
            bytes.get(pos..pos + 4).and_then(|b| <[u8; 4]>::try_from(b).ok()),
            bytes.get(pos + 4..pos + 8).and_then(|b| <[u8; 4]>::try_from(b).ok()),
        ) else {
            scan.torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        let crc = u32::from_le_bytes(crc_bytes);
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            scan.torn_tail = true;
            break;
        };
        if crc32(payload) != crc {
            scan.torn_tail = true;
            break;
        }
        let Some(rec) = WalRecord::decode(payload) else {
            scan.torn_tail = true;
            break;
        };
        pos += 8 + len;
        scan.frames += 1;
        match rec {
            // `saturating_add`: a crafted frame carrying txn == u64::MAX
            // must not panic the recovery scan with an addition overflow.
            WalRecord::Begin { txn } => {
                scan.next_txn = scan.next_txn.max(txn.saturating_add(1));
                open = Some((txn, Vec::new()));
            }
            WalRecord::Commit { txn } => {
                scan.next_txn = scan.next_txn.max(txn.saturating_add(1));
                if let Some((id, ops)) = open.take() {
                    if id == txn {
                        scan.committed.push((id, ops));
                    }
                }
            }
            WalRecord::Abort { txn } => {
                scan.next_txn = scan.next_txn.max(txn.saturating_add(1));
                open = None;
            }
            op => {
                if let Some((_, ops)) = &mut open {
                    ops.push(op);
                }
                // Operations outside a group (cannot happen with our writer)
                // are ignored rather than trusted.
            }
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                table: "t".into(),
                rid: 0,
                row: vec![
                    Value::Int(1),
                    Value::Float(f64::NAN),
                    Value::str("héllo"),
                    Value::Array(vec![Value::Bool(true), Value::Null]),
                    Value::Struct(vec![Value::Int(-5), Value::Float(2.5)]),
                ],
            },
            WalRecord::Update { table: "t".into(), rid: 0, row: vec![Value::Int(2)] },
            WalRecord::Delete { table: "t".into(), rid: 0 },
            WalRecord::CreateTable { schema_json: "{\"name\":\"x\"}".into() },
            WalRecord::FactInsert {
                name: "f".into(),
                side: FactSide::Left,
                rid: 3,
                row: vec![Value::Int(7)],
            },
            WalRecord::FactUpdate {
                name: "f".into(),
                side: FactSide::Right,
                rid: 4,
                row: vec![Value::Null],
            },
            WalRecord::FactDelete { name: "f".into(), side: FactSide::Left, rid: 3 },
            WalRecord::FactLink { name: "f".into(), l: 1, r: 2 },
            WalRecord::FactUnlink { name: "f".into(), l: 1, r: 2 },
            WalRecord::BulkInsert {
                table: "t".into(),
                first: 42,
                rows: vec![
                    vec![Value::Int(1), Value::str("a")],
                    vec![Value::Int(2), Value::Float(f64::NEG_INFINITY)],
                    vec![],
                ],
            },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for rec in sample_records() {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            let back = WalRecord::decode(&buf).expect("decodes");
            // NaN-containing rows: compare via Debug (Value::PartialEq uses
            // total order, so direct equality also holds — check both).
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let mut buf = Vec::new();
        WalRecord::Begin { txn: 1 }.encode(&mut buf);
        buf.push(0xAA);
        assert!(WalRecord::decode(&buf).is_none());
        assert!(WalRecord::decode(&[0xFF, 0, 0]).is_none());
        assert!(WalRecord::decode(&[]).is_none());
    }

    #[test]
    fn crc_known_vector() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        p.push(format!("erbium-wal-test-{tag}-{}-{nanos}", std::process::id()));
        p
    }

    #[test]
    fn commit_groups_scan_back() {
        let path = temp_path("roundtrip");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always, 1).unwrap();
            let id1 = wal
                .commit_group(&[WalRecord::Insert {
                    table: "t".into(),
                    rid: 0,
                    row: vec![Value::Int(1)],
                }])
                .unwrap();
            let id2 = wal.commit_group(&[WalRecord::Delete { table: "t".into(), rid: 0 }]).unwrap();
            assert_eq!((id1, id2), (1, 2));
            // Empty groups write nothing but still consume an id.
            assert_eq!(wal.commit_group(&[]).unwrap(), 3);
        }
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.committed.len(), 2);
        assert_eq!(scan.next_txn, 3);
        assert!(!scan.torn_tail);
        assert_eq!(scan.committed[0].0, 1, "groups carry their transaction ids");
        assert_eq!(scan.committed[1].0, 2);
        assert_eq!(scan.committed[0].1.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_reuses_encode_buffer() {
        let path = temp_path("buf-reuse");
        let mut wal = Wal::open(&path, SyncPolicy::Never, 1).unwrap();
        let group = [WalRecord::Insert {
            table: "t".into(),
            rid: 7,
            row: vec![Value::Int(1), Value::str("steady-state payload")],
        }];
        wal.append_group(&group).unwrap();
        let warm = wal.encode_buf_capacity();
        assert!(warm > 0);
        for _ in 0..1000 {
            wal.append_group(&group).unwrap();
        }
        assert_eq!(
            wal.encode_buf_capacity(),
            warm,
            "equal-sized groups must not grow the encode buffer after warm-up"
        );
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.committed.len(), 1001);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_keeps_committed_prefix() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never, 1).unwrap();
            wal.commit_group(&[WalRecord::Insert {
                table: "t".into(),
                rid: 0,
                row: vec![Value::Int(1)],
            }])
            .unwrap();
            wal.commit_group(&[WalRecord::Insert {
                table: "t".into(),
                rid: 1,
                row: vec![Value::Int(2)],
            }])
            .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Truncate at every byte boundary: committed count is monotone and
        // never panics; at full length both groups survive.
        let mut max_seen = 0;
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&path).unwrap();
            assert!(scan.committed.len() >= max_seen.min(scan.committed.len()));
            max_seen = max_seen.max(scan.committed.len());
            assert!(scan.committed.len() <= 2);
        }
        std::fs::write(&path, &full).unwrap();
        assert_eq!(scan_wal(&path).unwrap().committed.len(), 2);
        // Corrupt a byte in the middle: scan stops there, prefix survives.
        let mut corrupted = full.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        std::fs::write(&path, &corrupted).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.committed.len() <= 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_flushes_unsynced_everyn_commits() {
        let path = temp_path("drop-everyn");
        let fsyncs_before = m_wal_fsync_seconds().count();
        {
            let mut wal = Wal::open(&path, SyncPolicy::EveryN(100), 1).unwrap();
            // Two commits, well below the batch threshold: without the Drop
            // flush these would sit in the page cache with no fsync at all.
            for rid in 0..2 {
                wal.commit_group(&[WalRecord::Insert {
                    table: "t".into(),
                    rid,
                    row: vec![Value::Int(rid as i64)],
                }])
                .unwrap();
            }
        } // <- clean shutdown: Drop must flush the fsync debt
        let fsyncs_after = m_wal_fsync_seconds().count();
        assert!(
            fsyncs_after > fsyncs_before,
            "Wal::drop must fsync pending EveryN commits ({fsyncs_before} -> {fsyncs_after})"
        );
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.committed.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_log() {
        let scan = scan_wal(Path::new("/nonexistent/erbium-definitely-missing.wal")).unwrap();
        assert!(scan.committed.is_empty());
        assert_eq!(scan.next_txn, 1);
    }

    #[test]
    fn truncate_resets_log() {
        let path = temp_path("truncate");
        let mut wal = Wal::open(&path, SyncPolicy::EveryN(2), 5).unwrap();
        wal.commit_group(&[WalRecord::Delete { table: "t".into(), rid: 0 }]).unwrap();
        wal.truncate().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.committed.is_empty());
        assert_eq!(wal.next_txn_id(), 6);
        std::fs::remove_file(&path).ok();
    }
}
