//! Secondary indexes: hash (equality) and BTree (equality + range).
//!
//! Index keys are single [`Value`]s; composite keys are represented as
//! `Value::Struct`, matching [`crate::schema::TableSchema::key_of`].

use crate::row::RowId;
use crate::value::Value;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Which index structure to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IndexKind {
    Hash,
    BTree,
}

/// Equality-only hash index.
#[derive(Debug, Default, Clone)]
pub struct HashIndex {
    map: FxHashMap<Value, Vec<RowId>>,
    entries: usize,
}

impl HashIndex {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, key: Value, rid: RowId) {
        self.map.entry(key).or_default().push(rid);
        self.entries += 1;
    }

    pub fn remove(&mut self, key: &Value, rid: RowId) {
        if let Some(v) = self.map.get_mut(key) {
            if let Some(pos) = v.iter().position(|r| *r == rid) {
                v.swap_remove(pos);
                self.entries -= 1;
            }
            if v.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Row ids with exactly this key.
    pub fn get(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total (key, rowid) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// Ordered index supporting range scans.
#[derive(Debug, Default, Clone)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<RowId>>,
    entries: usize,
}

impl BTreeIndex {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, key: Value, rid: RowId) {
        self.map.entry(key).or_default().push(rid);
        self.entries += 1;
    }

    pub fn remove(&mut self, key: &Value, rid: RowId) {
        if let Some(v) = self.map.get_mut(key) {
            if let Some(pos) = v.iter().position(|r| *r == rid) {
                v.swap_remove(pos);
                self.entries -= 1;
            }
            if v.is_empty() {
                self.map.remove(key);
            }
        }
    }

    pub fn get(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Row ids whose key lies within the given bounds, in key order.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<RowId> {
        let mut out = Vec::new();
        for (_, rids) in self.map.range::<Value, _>((lo, hi)) {
            out.extend_from_slice(rids);
        }
        out
    }

    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Smallest and largest keys present.
    pub fn min_max(&self) -> Option<(&Value, &Value)> {
        let min = self.map.keys().next()?;
        let max = self.map.keys().next_back()?;
        Some((min, max))
    }
}

/// A named secondary index over one or more columns of a table.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    pub name: String,
    /// Column positions forming the key (composite keys become structs).
    pub columns: Vec<usize>,
    pub structure: IndexStructure,
}

/// The backing structure of a [`SecondaryIndex`].
#[derive(Debug, Clone)]
pub enum IndexStructure {
    Hash(HashIndex),
    BTree(BTreeIndex),
}

impl SecondaryIndex {
    pub fn new(name: impl Into<String>, columns: Vec<usize>, kind: IndexKind) -> Self {
        SecondaryIndex {
            name: name.into(),
            columns,
            structure: match kind {
                IndexKind::Hash => IndexStructure::Hash(HashIndex::new()),
                IndexKind::BTree => IndexStructure::BTree(BTreeIndex::new()),
            },
        }
    }

    pub fn kind(&self) -> IndexKind {
        match self.structure {
            IndexStructure::Hash(_) => IndexKind::Hash,
            IndexStructure::BTree(_) => IndexKind::BTree,
        }
    }

    /// Build the index key for a row.
    pub fn key_of(&self, row: &[Value]) -> Value {
        match self.columns.as_slice() {
            [i] => row[*i].clone(),
            ks => Value::Struct(ks.iter().map(|&i| row[i].clone()).collect()),
        }
    }

    pub fn insert(&mut self, row: &[Value], rid: RowId) {
        let key = self.key_of(row);
        match &mut self.structure {
            IndexStructure::Hash(h) => h.insert(key, rid),
            IndexStructure::BTree(b) => b.insert(key, rid),
        }
    }

    pub fn remove(&mut self, row: &[Value], rid: RowId) {
        let key = self.key_of(row);
        match &mut self.structure {
            IndexStructure::Hash(h) => h.remove(&key, rid),
            IndexStructure::BTree(b) => b.remove(&key, rid),
        }
    }

    pub fn lookup(&self, key: &Value) -> Vec<RowId> {
        match &self.structure {
            IndexStructure::Hash(h) => h.get(key).to_vec(),
            IndexStructure::BTree(b) => b.get(key).to_vec(),
        }
    }

    /// Range lookup; only supported by BTree indexes.
    pub fn lookup_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Option<Vec<RowId>> {
        match &self.structure {
            IndexStructure::Hash(_) => None,
            IndexStructure::BTree(b) => Some(b.range(lo, hi)),
        }
    }

    pub fn distinct_keys(&self) -> usize {
        match &self.structure {
            IndexStructure::Hash(h) => h.distinct_keys(),
            IndexStructure::BTree(b) => b.distinct_keys(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_insert_get_remove() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(1), RowId(10));
        idx.insert(Value::Int(1), RowId(11));
        idx.insert(Value::Int(2), RowId(12));
        assert_eq!(idx.get(&Value::Int(1)).len(), 2);
        assert_eq!(idx.len(), 3);
        idx.remove(&Value::Int(1), RowId(10));
        assert_eq!(idx.get(&Value::Int(1)), &[RowId(11)]);
        idx.remove(&Value::Int(1), RowId(11));
        assert!(idx.get(&Value::Int(1)).is_empty());
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn btree_range_scan_ordered() {
        let mut idx = BTreeIndex::new();
        for i in 0..10 {
            idx.insert(Value::Int(i), RowId(i as u64));
        }
        let got = idx.range(Bound::Included(&Value::Int(3)), Bound::Excluded(&Value::Int(7)));
        assert_eq!(got, vec![RowId(3), RowId(4), RowId(5), RowId(6)]);
        let (min, max) = idx.min_max().unwrap();
        assert_eq!((min, max), (&Value::Int(0), &Value::Int(9)));
    }

    #[test]
    fn secondary_index_composite_key() {
        let mut idx = SecondaryIndex::new("ix", vec![0, 2], IndexKind::Hash);
        let row = vec![Value::Int(1), Value::str("skip"), Value::str("k")];
        idx.insert(&row, RowId(0));
        let key = Value::Struct(vec![Value::Int(1), Value::str("k")]);
        assert_eq!(idx.lookup(&key), vec![RowId(0)]);
        idx.remove(&row, RowId(0));
        assert!(idx.lookup(&key).is_empty());
    }

    #[test]
    fn hash_index_has_no_range() {
        let idx = SecondaryIndex::new("ix", vec![0], IndexKind::Hash);
        assert!(idx.lookup_range(Bound::Unbounded, Bound::Unbounded).is_none());
    }
}
