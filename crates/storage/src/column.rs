//! Typed column vectors backing [`crate::table::Table`] chunks.
//!
//! The paper's performance argument for elevating to the E/R abstraction
//! rests on the freedom to pick fast physical representations. This module
//! supplies the column-major half of the table layout: every scalar column
//! of a table is mirrored in a typed vector — `Vec<i64>`, `Vec<f64>`,
//! `Vec<bool>`, or dictionary-encoded strings — with a validity [`Bitmap`]
//! per column and a table-wide *live* bitmap marking occupied slots. The
//! engine's vectorized kernels read these through [`ColumnSlice`] without
//! touching the row-shaped slot vector (and, with projection pruning,
//! without ever materializing untouched columns).
//!
//! Columns are **slot-aligned** with the row view: slot `i` of every column
//! describes the same row as slot `i` of the table's `Vec<Option<Row>>`,
//! tombstones included. Ingest canonicalization
//! ([`crate::schema::TableSchema::canonicalize_row`]) guarantees scalar
//! columns are type-pure (an Int column holds only `Value::Int` or NULL),
//! which is what makes the typed vectors lossless. Array and struct columns
//! have no typed vector ([`ColumnVec::Other`]); readers fall back to the
//! row view for those.

use crate::row::Row;
use crate::schema::TableSchema;
use crate::value::{DataType, Value};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// A growable bitmap (one bit per table slot).
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grow to at least `n` bits, new bits cleared.
    pub fn ensure_len(&mut self, n: usize) {
        if n > self.len {
            self.len = n;
            self.words.resize(n.div_ceil(64), 0);
        }
    }

    /// Bit `i`, where bits beyond the current length read as unset. The
    /// lenient upper bound is deliberate: column vectors grow lazily, so a
    /// table whose trailing slots are all tombstones keeps its bitmaps
    /// shorter than `slot_count` — those slots are simply "not set".
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

/// Append-only string dictionary shared by one Text column.
///
/// Codes are dense `u32` indexes into `strings`. The dictionary never
/// shrinks: deleting rows leaves dead entries behind (the validity/live
/// bitmaps govern visibility), so codes stay stable for the life of the
/// table. Statistics compute the *live* NDV exactly by tracking which
/// codes are referenced by live slots.
#[derive(Debug, Clone, Default)]
pub struct StringDict {
    strings: Vec<Arc<str>>,
    map: FxHashMap<Arc<str>, u32>,
}

impl StringDict {
    /// Code for `s`, interning it on first sight.
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&c) = self.map.get(s) {
            return c;
        }
        let c = self.strings.len() as u32;
        self.strings.push(Arc::clone(s));
        self.map.insert(Arc::clone(s), c);
        c
    }

    /// Code for `s` if it is already interned (no insertion). Used by
    /// equality kernels: a literal absent from the dictionary matches no
    /// stored string.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// The string behind a code.
    #[inline]
    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }

    /// Number of interned strings (live or dead).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// One typed column vector, slot-aligned with the table's row view.
///
/// `data[i]` is meaningful only when `valid.get(i)` — cleared or
/// never-written slots keep whatever default value was there (the validity
/// bitmap, combined with the table's live bitmap, governs visibility).
#[derive(Debug, Clone)]
pub enum ColumnVec {
    Int { data: Vec<i64>, valid: Bitmap },
    Float { data: Vec<f64>, valid: Bitmap },
    Bool { data: Vec<bool>, valid: Bitmap },
    Str { codes: Vec<u32>, valid: Bitmap, dict: StringDict },
    /// Array/struct columns stay row-only: no typed vector exists and
    /// readers must go through the row view.
    Other,
}

impl ColumnVec {
    fn for_type(dtype: &DataType) -> ColumnVec {
        match dtype {
            DataType::Int => ColumnVec::Int { data: Vec::new(), valid: Bitmap::new() },
            DataType::Float => ColumnVec::Float { data: Vec::new(), valid: Bitmap::new() },
            DataType::Bool => ColumnVec::Bool { data: Vec::new(), valid: Bitmap::new() },
            DataType::Text => {
                ColumnVec::Str { codes: Vec::new(), valid: Bitmap::new(), dict: StringDict::default() }
            }
            DataType::Array(_) | DataType::Struct(_) => ColumnVec::Other,
        }
    }

    fn ensure_len(&mut self, n: usize) {
        match self {
            ColumnVec::Int { data, valid } => {
                if data.len() < n {
                    data.resize(n, 0);
                }
                valid.ensure_len(n);
            }
            ColumnVec::Float { data, valid } => {
                if data.len() < n {
                    data.resize(n, 0.0);
                }
                valid.ensure_len(n);
            }
            ColumnVec::Bool { data, valid } => {
                if data.len() < n {
                    data.resize(n, false);
                }
                valid.ensure_len(n);
            }
            ColumnVec::Str { codes, valid, .. } => {
                if codes.len() < n {
                    codes.resize(n, 0);
                }
                valid.ensure_len(n);
            }
            ColumnVec::Other => {}
        }
    }

    /// Write slot `i` from a canonicalized cell value. Type purity is an
    /// ingest invariant (see module docs); a mismatched variant here means
    /// canonicalization was bypassed.
    fn set(&mut self, i: usize, v: &Value) {
        match self {
            ColumnVec::Int { data, valid } => match v {
                Value::Int(x) => {
                    data[i] = *x;
                    valid.set(i, true);
                }
                _ => {
                    debug_assert!(v.is_null(), "non-Int value {v} in Int column");
                    valid.set(i, false);
                }
            },
            ColumnVec::Float { data, valid } => match v {
                Value::Float(x) => {
                    data[i] = *x;
                    valid.set(i, true);
                }
                _ => {
                    debug_assert!(v.is_null(), "non-Float value {v} in Float column");
                    valid.set(i, false);
                }
            },
            ColumnVec::Bool { data, valid } => match v {
                Value::Bool(x) => {
                    data[i] = *x;
                    valid.set(i, true);
                }
                _ => {
                    debug_assert!(v.is_null(), "non-Bool value {v} in Bool column");
                    valid.set(i, false);
                }
            },
            ColumnVec::Str { codes, valid, dict } => match v {
                Value::Str(s) => {
                    codes[i] = dict.intern(s);
                    valid.set(i, true);
                }
                _ => {
                    debug_assert!(v.is_null(), "non-Str value {v} in Text column");
                    valid.set(i, false);
                }
            },
            ColumnVec::Other => {}
        }
    }

    fn clear_slot(&mut self, i: usize) {
        match self {
            ColumnVec::Int { valid, .. }
            | ColumnVec::Float { valid, .. }
            | ColumnVec::Bool { valid, .. }
            | ColumnVec::Str { valid, .. } => {
                if i < valid.len() {
                    valid.set(i, false);
                }
            }
            ColumnVec::Other => {}
        }
    }

    fn reset(&mut self) {
        match self {
            ColumnVec::Int { data, valid } => {
                data.clear();
                valid.clear();
            }
            ColumnVec::Float { data, valid } => {
                data.clear();
                valid.clear();
            }
            ColumnVec::Bool { data, valid } => {
                data.clear();
                valid.clear();
            }
            ColumnVec::Str { codes, valid, dict } => {
                codes.clear();
                valid.clear();
                *dict = StringDict::default();
            }
            ColumnVec::Other => {}
        }
    }
}

/// Borrowed read view of one typed column, handed to vectorized kernels.
#[derive(Debug, Clone, Copy)]
pub enum ColumnSlice<'a> {
    Int { data: &'a [i64], valid: &'a Bitmap },
    Float { data: &'a [f64], valid: &'a Bitmap },
    Bool { data: &'a [bool], valid: &'a Bitmap },
    Str { codes: &'a [u32], valid: &'a Bitmap, dict: &'a StringDict },
}

impl ColumnSlice<'_> {
    /// Whether slot `i` holds a non-NULL value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            ColumnSlice::Int { valid, .. }
            | ColumnSlice::Float { valid, .. }
            | ColumnSlice::Bool { valid, .. }
            | ColumnSlice::Str { valid, .. } => valid.get(i),
        }
    }

    /// Materialize slot `i` as a [`Value`] (NULL when invalid). Round-trip
    /// inverse of [`Columns::set_row`] for scalar columns.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnSlice::Int { data, valid } => {
                if valid.get(i) {
                    Value::Int(data[i])
                } else {
                    Value::Null
                }
            }
            ColumnSlice::Float { data, valid } => {
                if valid.get(i) {
                    Value::Float(data[i])
                } else {
                    Value::Null
                }
            }
            ColumnSlice::Bool { data, valid } => {
                if valid.get(i) {
                    Value::Bool(data[i])
                } else {
                    Value::Null
                }
            }
            ColumnSlice::Str { codes, valid, dict } => {
                if valid.get(i) {
                    Value::Str(Arc::clone(dict.get(codes[i])))
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// The column-major mirror of one table: typed vectors per scalar column
/// plus a live bitmap over slots. Maintained eagerly by every table write
/// path (insert / update / delete / restore / truncate), so it is always
/// slot-aligned with the row view.
#[derive(Debug, Clone)]
pub struct Columns {
    cols: Vec<ColumnVec>,
    live: Bitmap,
    len: usize,
}

impl Columns {
    pub fn from_schema(schema: &TableSchema) -> Columns {
        Columns {
            cols: schema.columns.iter().map(|c| ColumnVec::for_type(&c.dtype)).collect(),
            live: Bitmap::new(),
            len: 0,
        }
    }

    /// Slot capacity (equals the table's `slot_count`).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live-slot bitmap (set bit = occupied slot).
    pub fn live(&self) -> &Bitmap {
        &self.live
    }

    /// Typed read view of column `col`; `None` for array/struct columns.
    pub fn slice(&self, col: usize) -> Option<ColumnSlice<'_>> {
        match self.cols.get(col)? {
            ColumnVec::Int { data, valid } => Some(ColumnSlice::Int { data, valid }),
            ColumnVec::Float { data, valid } => Some(ColumnSlice::Float { data, valid }),
            ColumnVec::Bool { data, valid } => Some(ColumnSlice::Bool { data, valid }),
            ColumnVec::Str { codes, valid, dict } => {
                Some(ColumnSlice::Str { codes, valid, dict })
            }
            ColumnVec::Other => None,
        }
    }

    /// Write every column of slot `slot` from a canonicalized row and mark
    /// the slot live, growing the vectors as needed.
    pub(crate) fn set_row(&mut self, slot: usize, row: &[Value]) {
        self.ensure_len(slot + 1);
        for (c, v) in self.cols.iter_mut().zip(row.iter()) {
            c.set(slot, v);
        }
        self.live.set(slot, true);
    }

    /// Append a contiguous batch of canonicalized rows starting at
    /// `first_slot`, marking every slot live. The bulk-ingest counterpart of
    /// [`Columns::set_row`]: the vectors grow **once** for the whole batch
    /// and each column is filled column-at-a-time, so dictionary interning
    /// for a text column happens batch-at-a-time with the dictionary's hash
    /// map hot in cache instead of being revisited once per row.
    pub(crate) fn append_rows(&mut self, first_slot: usize, rows: &[Row]) {
        let n = rows.len();
        if n == 0 {
            return;
        }
        self.ensure_len(first_slot + n);
        for (ci, c) in self.cols.iter_mut().enumerate() {
            for (i, row) in rows.iter().enumerate() {
                c.set(first_slot + i, &row[ci]);
            }
        }
        for i in 0..n {
            self.live.set(first_slot + i, true);
        }
    }

    /// Tombstone slot `slot` (validity cleared in every column).
    pub(crate) fn clear_slot(&mut self, slot: usize) {
        if slot >= self.len {
            return;
        }
        for c in &mut self.cols {
            c.clear_slot(slot);
        }
        self.live.set(slot, false);
    }

    fn ensure_len(&mut self, n: usize) {
        if n > self.len {
            self.len = n;
            self.live.ensure_len(n);
            for c in &mut self.cols {
                c.ensure_len(n);
            }
        }
    }

    /// Drop all data, keeping the column typing (for `TRUNCATE`).
    pub(crate) fn reset(&mut self) {
        for c in &mut self.cols {
            c.reset();
        }
        self.live.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                Column::not_null("i", DataType::Int),
                Column::new("f", DataType::Float),
                Column::new("b", DataType::Bool),
                Column::new("s", DataType::Text),
                Column::new("a", DataType::Int.array_of()),
            ],
            vec![0],
        )
    }

    fn row(i: i64, f: Option<f64>, b: Option<bool>, s: Option<&str>) -> Vec<Value> {
        vec![
            Value::Int(i),
            f.map(Value::Float).unwrap_or(Value::Null),
            b.map(Value::Bool).unwrap_or(Value::Null),
            s.map(Value::str).unwrap_or(Value::Null),
            Value::Array(vec![Value::Int(i)]),
        ]
    }

    #[test]
    fn round_trips_scalar_cells_bit_identically() {
        let mut c = Columns::from_schema(&schema());
        let rows = [
            row(1, Some(1.5), Some(true), Some("x")),
            row(2, None, None, None),
            row(3, Some(f64::NAN), Some(false), Some("x")),
            row(4, Some(-0.0), Some(true), Some("y")),
        ];
        for (slot, r) in rows.iter().enumerate() {
            c.set_row(slot, r);
        }
        for col in 0..4 {
            let s = c.slice(col).expect("scalar column has a vector");
            for (slot, r) in rows.iter().enumerate() {
                let got = s.value_at(slot);
                // Bit-level check for floats: NaN payloads and -0.0 must
                // survive the typed vector exactly.
                match (&got, &r[col]) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "col {col} slot {slot}");
                    }
                    (a, b) => assert_eq!(a, b, "col {col} slot {slot}"),
                }
            }
        }
        assert!(c.slice(4).is_none(), "array column has no typed vector");
        assert_eq!(c.live().count_ones(), 4);
    }

    #[test]
    fn dictionary_shares_codes_and_reports_absent_literals() {
        let mut c = Columns::from_schema(&schema());
        c.set_row(0, &row(1, None, None, Some("alpha")));
        c.set_row(1, &row(2, None, None, Some("beta")));
        c.set_row(2, &row(3, None, None, Some("alpha")));
        let Some(ColumnSlice::Str { codes, dict, .. }) = c.slice(3) else {
            panic!("text column slice")
        };
        assert_eq!(codes[0], codes[2], "equal strings share a code");
        assert_ne!(codes[0], codes[1]);
        assert_eq!(dict.len(), 2);
        assert_eq!(dict.code_of("alpha"), Some(codes[0]));
        assert_eq!(dict.code_of("gamma"), None);
    }

    #[test]
    fn clear_slot_tombstones_and_reset_empties() {
        let mut c = Columns::from_schema(&schema());
        c.set_row(0, &row(1, Some(2.0), None, Some("x")));
        c.set_row(1, &row(2, Some(3.0), None, Some("y")));
        c.clear_slot(0);
        assert!(!c.live().get(0));
        assert!(c.live().get(1));
        assert_eq!(c.slice(0).unwrap().value_at(0), Value::Null, "cleared slot reads NULL");
        // Re-occupying the slot (free-list recycling) overwrites in place.
        c.set_row(0, &row(9, None, Some(true), None));
        assert_eq!(c.slice(0).unwrap().value_at(0), Value::Int(9));
        assert_eq!(c.slice(1).unwrap().value_at(0), Value::Null, "new row has NULL float");
        c.reset();
        assert_eq!(c.len(), 0);
        assert_eq!(c.live().count_ones(), 0);
    }

    #[test]
    fn bitmap_word_boundaries() {
        let mut b = Bitmap::new();
        b.ensure_len(130);
        for i in [0usize, 63, 64, 127, 128, 129] {
            b.set(i, true);
        }
        b.set(64, false);
        assert!(b.get(0) && b.get(63) && !b.get(64) && b.get(127) && b.get(128) && b.get(129));
        assert_eq!(b.count_ones(), 5);
    }
}
