//! Multi-relational compressed (factorized) storage.
//!
//! The paper's third physical representation target: "store the join of
//! multiple relations together in a compact fashion ... The key benefit
//! here is the ability to use physical pointers to avoid joins, and to
//! execute some types of aggregate queries more efficiently (by, in effect,
//! pushing down aggregations through the joins)."
//!
//! A [`FactorizedTable`] holds two member [`Table`]s (each row stored once)
//! plus an adjacency structure of physical pointers between them. Compare
//! with a materialized denormalized join table, which duplicates every left
//! row once per matching right row. Enumerating the join follows pointers
//! (no hashing, no duplication), and distributive aggregates can be pushed
//! through the join without ever materializing it.

use crate::error::{StorageError, StorageResult};
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::stats::TableStats;
use crate::table::Table;
use crate::value::Value;

/// The join of two relations stored in factorized form.
#[derive(Debug, Clone)]
pub struct FactorizedTable {
    name: String,
    left: Table,
    right: Table,
    /// Forward pointers: left slot index → right row ids.
    fwd: Vec<Vec<RowId>>,
    /// Reverse pointers: right slot index → left row ids.
    rev: Vec<Vec<RowId>>,
    /// Total number of (left, right) pairs, i.e. the join cardinality.
    pairs: usize,
}

impl FactorizedTable {
    /// Create an empty factorized table over two member schemas.
    pub fn new(name: impl Into<String>, left: TableSchema, right: TableSchema) -> Self {
        FactorizedTable {
            name: name.into(),
            left: Table::new(left),
            right: Table::new(right),
            fwd: Vec::new(),
            rev: Vec::new(),
            pairs: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stamp the catalog commit epoch into both member tables (forwarded
    /// from `Catalog::factorized_mut`, the write choke point) so their
    /// slot mutations record the epoch they happened in.
    pub(crate) fn set_write_epoch(&mut self, epoch: u64) {
        self.left.set_write_epoch(epoch);
        self.right.set_write_epoch(epoch);
    }

    pub fn left(&self) -> &Table {
        &self.left
    }

    pub fn right(&self) -> &Table {
        &self.right
    }

    /// Join cardinality (number of linked pairs).
    pub fn pair_count(&self) -> usize {
        self.pairs
    }

    /// Insert a row on the left side.
    pub fn insert_left(&mut self, row: Row) -> StorageResult<RowId> {
        let rid = self.left.insert(row)?;
        if self.fwd.len() <= rid.idx() {
            self.fwd.resize_with(rid.idx() + 1, Vec::new);
        }
        Ok(rid)
    }

    /// Insert a row on the right side.
    pub fn insert_right(&mut self, row: Row) -> StorageResult<RowId> {
        let rid = self.right.insert(row)?;
        if self.rev.len() <= rid.idx() {
            self.rev.resize_with(rid.idx() + 1, Vec::new);
        }
        Ok(rid)
    }

    /// Link a left row to a right row (one join pair).
    pub fn link(&mut self, l: RowId, r: RowId) -> StorageResult<()> {
        if self.left.get(l).is_none() {
            return Err(StorageError::RowNotFound { table: format!("{}.left", self.name), row: l.0 });
        }
        if self.right.get(r).is_none() {
            return Err(StorageError::RowNotFound { table: format!("{}.right", self.name), row: r.0 });
        }
        self.fwd[l.idx()].push(r);
        self.rev[r.idx()].push(l);
        self.pairs += 1;
        Ok(())
    }

    /// Remove a link, if present.
    pub fn unlink(&mut self, l: RowId, r: RowId) -> bool {
        let Some(f) = self.fwd.get_mut(l.idx()) else { return false };
        let Some(pos) = f.iter().position(|x| *x == r) else { return false };
        f.swap_remove(pos);
        let rv = &mut self.rev[r.idx()];
        if let Some(pos) = rv.iter().position(|x| *x == l) {
            rv.swap_remove(pos);
        }
        self.pairs -= 1;
        true
    }

    /// Update a left row in place (links preserved).
    pub fn update_left(&mut self, l: RowId, row: Row) -> StorageResult<Row> {
        self.left.update(l, row)
    }

    /// Update a right row in place (links preserved).
    pub fn update_right(&mut self, r: RowId, row: Row) -> StorageResult<Row> {
        self.right.update(r, row)
    }

    /// Delete a left row, dropping all of its links.
    pub fn delete_left(&mut self, l: RowId) -> StorageResult<Row> {
        let row = self.left.delete(l)?;
        for r in std::mem::take(&mut self.fwd[l.idx()]) {
            let rv = &mut self.rev[r.idx()];
            if let Some(pos) = rv.iter().position(|x| *x == l) {
                rv.swap_remove(pos);
                self.pairs -= 1;
            }
        }
        Ok(row)
    }

    /// Delete a right row, dropping all of its links.
    pub fn delete_right(&mut self, r: RowId) -> StorageResult<Row> {
        let row = self.right.delete(r)?;
        for l in std::mem::take(&mut self.rev[r.idx()]) {
            let fv = &mut self.fwd[l.idx()];
            if let Some(pos) = fv.iter().position(|x| *x == r) {
                fv.swap_remove(pos);
                self.pairs -= 1;
            }
        }
        Ok(row)
    }

    /// Restore a previously deleted left row into its exact slot
    /// (transaction rollback). Links are NOT restored — re-link explicitly.
    pub(crate) fn restore_left(&mut self, l: RowId, row: Row) -> StorageResult<()> {
        self.left.restore(l, row)?;
        if self.fwd.len() <= l.idx() {
            self.fwd.resize_with(l.idx() + 1, Vec::new);
        }
        Ok(())
    }

    /// Restore a previously deleted right row into its exact slot.
    pub(crate) fn restore_right(&mut self, r: RowId, row: Row) -> StorageResult<()> {
        self.right.restore(r, row)?;
        if self.rev.len() <= r.idx() {
            self.rev.resize_with(r.idx() + 1, Vec::new);
        }
        Ok(())
    }

    /// Place a left row at an exact slot (WAL redo), growing as needed.
    pub(crate) fn place_left(&mut self, l: RowId, row: Row) -> StorageResult<()> {
        self.left.place_at(l, row)?;
        if self.fwd.len() <= l.idx() {
            self.fwd.resize_with(l.idx() + 1, Vec::new);
        }
        Ok(())
    }

    /// Place a right row at an exact slot (WAL redo), growing as needed.
    pub(crate) fn place_right(&mut self, r: RowId, row: Row) -> StorageResult<()> {
        self.right.place_at(r, row)?;
        if self.rev.len() <= r.idx() {
            self.rev.resize_with(r.idx() + 1, Vec::new);
        }
        Ok(())
    }

    /// Recompute both member free lists after WAL redo.
    pub(crate) fn rebuild_free(&mut self) {
        self.left.rebuild_free();
        self.right.rebuild_free();
    }

    /// Dump every stored `(left, right)` link pair (checkpoint support).
    pub(crate) fn link_pairs(&self) -> Vec<(RowId, RowId)> {
        let mut out = Vec::with_capacity(self.pairs);
        for (l, rs) in self.fwd.iter().enumerate() {
            for &r in rs {
                out.push((RowId(l as u64), r));
            }
        }
        out
    }

    /// Rebuild a factorized table from checkpointed members and link pairs.
    pub(crate) fn from_parts(
        name: impl Into<String>,
        left: Table,
        right: Table,
        links: Vec<(RowId, RowId)>,
    ) -> StorageResult<FactorizedTable> {
        let mut ft = FactorizedTable {
            name: name.into(),
            fwd: vec![Vec::new(); left.slot_count()],
            rev: vec![Vec::new(); right.slot_count()],
            left,
            right,
            pairs: 0,
        };
        for (l, r) in links {
            ft.link(l, r)?;
        }
        Ok(ft)
    }

    /// Right neighbours of a left row.
    pub fn neighbours_right(&self, l: RowId) -> &[RowId] {
        self.fwd.get(l.idx()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Left neighbours of a right row.
    pub fn neighbours_left(&self, r: RowId) -> &[RowId] {
        self.rev.get(r.idx()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Stream the stored join as concatenated `left_row ++ right_row` pairs
    /// by following the physical pointers — no hash table is built and no
    /// key comparison happens. Borrows the structure: rows are assembled
    /// lazily, one pair per step, so a pulling executor can stop early
    /// (e.g. under LIMIT) without enumerating the whole join.
    pub fn iter_join(&self) -> impl Iterator<Item = Row> + '_ {
        self.iter_join_slots(0..self.left.slot_count())
    }

    /// Stream the stored join restricted to left rows in the given slot
    /// range (a morsel). Together with [`Table::slot_count`] this lets a
    /// morsel-parallel executor partition join enumeration by left slots.
    pub fn iter_join_slots(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = Row> + '_ {
        self.left.scan_slots(range).flat_map(move |(l, lrow)| {
            self.neighbours_right(l).iter().map(move |&r| {
                let rrow = self.right.get(r).expect("linked right row is live");
                let mut row = Vec::with_capacity(lrow.len() + rrow.len());
                row.extend_from_slice(lrow);
                row.extend_from_slice(rrow);
                row
            })
        })
    }

    /// Enumerate the full join result: each pair as `left_row ++ right_row`.
    /// Materializing wrapper around [`FactorizedTable::iter_join`].
    pub fn enumerate_join(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.pairs);
        out.extend(self.iter_join());
        out
    }

    /// Enumerate the join restricted to left rows passing `pred`.
    pub fn enumerate_join_filtered(&self, pred: impl Fn(&Row) -> bool) -> Vec<Row> {
        let mut out = Vec::new();
        for (l, lrow) in self.left.scan() {
            if !pred(lrow) {
                continue;
            }
            for &r in self.neighbours_right(l) {
                let rrow = self.right.get(r).expect("linked right row is live");
                let mut row = Vec::with_capacity(lrow.len() + rrow.len());
                row.extend_from_slice(lrow);
                row.extend_from_slice(rrow);
                out.push(row);
            }
        }
        out
    }

    /// Aggregate pushdown: for each left row, `(left_row, COUNT(right))`
    /// without materializing the join.
    pub fn count_per_left(&self) -> Vec<(Row, u64)> {
        self.left
            .scan()
            .map(|(l, lrow)| (lrow.clone(), self.neighbours_right(l).len() as u64))
            .collect()
    }

    /// Aggregate pushdown: for each left row, `(left_row, SUM(right[col]))`.
    /// NULLs are skipped, as in SQL SUM.
    pub fn sum_right_per_left(&self, col: usize) -> StorageResult<Vec<(Row, Value)>> {
        if col >= self.right.schema().arity() {
            return Err(StorageError::ColumnNotFound {
                table: format!("{}.right", self.name),
                column: format!("#{col}"),
            });
        }
        let mut out = Vec::with_capacity(self.left.len());
        for (l, lrow) in self.left.scan() {
            let mut sum = 0f64;
            let mut any = false;
            let mut all_int = true;
            for &r in self.neighbours_right(l) {
                let v = &self.right.get(r).expect("live")[col];
                if let Some(x) = v.as_float() {
                    sum += x;
                    any = true;
                    if !matches!(v, Value::Int(_)) {
                        all_int = false;
                    }
                }
            }
            let v = if !any {
                Value::Null
            } else if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            };
            out.push((lrow.clone(), v));
        }
        Ok(out)
    }

    /// Total join cardinality — O(1), the headline win of factorized
    /// storage for COUNT(*) over a join.
    pub fn count_join(&self) -> u64 {
        self.pairs as u64
    }

    /// Approximate bytes of the factorized representation (rows stored once
    /// plus pointer lists). Compare with
    /// `denormalized_bytes` to see the compression the paper expects when
    /// "the join is almost one-to-one".
    pub fn approx_bytes(&self) -> usize {
        let left: usize =
            self.left.scan().map(|(_, r)| r.iter().map(Value::approx_size).sum::<usize>()).sum();
        let right: usize =
            self.right.scan().map(|(_, r)| r.iter().map(Value::approx_size).sum::<usize>()).sum();
        left + right + self.pairs * 2 * std::mem::size_of::<RowId>()
    }

    /// Gather statistics for the structure: `(left, right, join)`. The two
    /// member sides are ordinary single-pass table scans; the join entry is
    /// computed by streaming the stored join through the pointer lists (one
    /// pass over the pairs, nothing materialized), so its `row_count` is the
    /// join cardinality and its columns span `left ++ right`.
    pub fn compute_stats(&self) -> (TableStats, TableStats, TableStats) {
        let left = self.left.compute_stats();
        let right = self.right.compute_stats();
        let arity = self.left.schema().arity() + self.right.schema().arity();
        let join = TableStats::compute(self.iter_join(), arity);
        (left, right, join)
    }

    /// Approximate bytes a denormalized join table would need.
    pub fn denormalized_bytes(&self) -> usize {
        let mut total = 0usize;
        for (l, lrow) in self.left.scan() {
            let lsz: usize = lrow.iter().map(Value::approx_size).sum();
            for &r in self.neighbours_right(l) {
                let rsz: usize =
                    self.right.get(r).expect("live").iter().map(Value::approx_size).sum();
                total += lsz + rsz;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn ft() -> FactorizedTable {
        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int), Column::new("lv", DataType::Text)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int), Column::new("rv", DataType::Int)],
            vec![0],
        );
        FactorizedTable::new("f", left, right)
    }

    #[test]
    fn build_and_enumerate() {
        let mut f = ft();
        let l1 = f.insert_left(vec![Value::Int(1), Value::str("a")]).unwrap();
        let l2 = f.insert_left(vec![Value::Int(2), Value::str("b")]).unwrap();
        let r1 = f.insert_right(vec![Value::Int(10), Value::Int(100)]).unwrap();
        let r2 = f.insert_right(vec![Value::Int(20), Value::Int(200)]).unwrap();
        f.link(l1, r1).unwrap();
        f.link(l1, r2).unwrap();
        f.link(l2, r2).unwrap();

        let join = f.enumerate_join();
        assert_eq!(join.len(), 3);
        assert_eq!(f.count_join(), 3);
        assert!(join.iter().any(|r| r[0] == Value::Int(2) && r[2] == Value::Int(20)));
    }

    #[test]
    fn aggregate_pushdown_matches_join() {
        let mut f = ft();
        let l1 = f.insert_left(vec![Value::Int(1), Value::str("a")]).unwrap();
        let l2 = f.insert_left(vec![Value::Int(2), Value::str("b")]).unwrap();
        let r1 = f.insert_right(vec![Value::Int(10), Value::Int(5)]).unwrap();
        let r2 = f.insert_right(vec![Value::Int(20), Value::Int(7)]).unwrap();
        f.link(l1, r1).unwrap();
        f.link(l1, r2).unwrap();
        f.link(l2, r1).unwrap();

        let sums = f.sum_right_per_left(1).unwrap();
        let s1 = sums.iter().find(|(l, _)| l[0] == Value::Int(1)).unwrap();
        let s2 = sums.iter().find(|(l, _)| l[0] == Value::Int(2)).unwrap();
        assert_eq!(s1.1, Value::Int(12));
        assert_eq!(s2.1, Value::Int(5));

        let counts = f.count_per_left();
        assert_eq!(counts.iter().find(|(l, _)| l[0] == Value::Int(1)).unwrap().1, 2);
    }

    #[test]
    fn iter_join_streams_same_pairs_as_enumerate() {
        let mut f = ft();
        for i in 0..6 {
            let l = f.insert_left(vec![Value::Int(i), Value::str("x")]).unwrap();
            let r = f.insert_right(vec![Value::Int(100 + i), Value::Int(i)]).unwrap();
            f.link(l, r).unwrap();
            if i > 0 {
                f.link(l, RowId(0)).unwrap(); // shared right row
            }
        }
        let eager = f.enumerate_join();
        let lazy: Vec<Row> = f.iter_join().collect();
        assert_eq!(eager, lazy);
        // Slot-range morsels cover the join exactly once, in order.
        let mut pieced = Vec::new();
        for start in (0..f.left().slot_count()).step_by(2) {
            pieced.extend(f.iter_join_slots(start..start + 2));
        }
        assert_eq!(pieced, eager);
        // Early termination: taking 2 pairs does not walk the whole join.
        assert_eq!(f.iter_join().take(2).count(), 2);
    }

    #[test]
    fn unlink_and_delete_maintain_pairs() {
        let mut f = ft();
        let l1 = f.insert_left(vec![Value::Int(1), Value::Null]).unwrap();
        let r1 = f.insert_right(vec![Value::Int(10), Value::Null]).unwrap();
        let r2 = f.insert_right(vec![Value::Int(20), Value::Null]).unwrap();
        f.link(l1, r1).unwrap();
        f.link(l1, r2).unwrap();
        assert!(f.unlink(l1, r1));
        assert!(!f.unlink(l1, r1), "double unlink is a no-op");
        assert_eq!(f.count_join(), 1);
        f.delete_right(r2).unwrap();
        assert_eq!(f.count_join(), 0);
        assert!(f.neighbours_right(l1).is_empty());
    }

    #[test]
    fn delete_left_cascades_links() {
        let mut f = ft();
        let l1 = f.insert_left(vec![Value::Int(1), Value::Null]).unwrap();
        let r1 = f.insert_right(vec![Value::Int(10), Value::Null]).unwrap();
        f.link(l1, r1).unwrap();
        f.delete_left(l1).unwrap();
        assert_eq!(f.count_join(), 0);
        assert!(f.neighbours_left(r1).is_empty());
    }

    #[test]
    fn factorized_smaller_than_denormalized_on_shared_rows() {
        let mut f = ft();
        // One wide right row shared by many left rows: classic factorization win.
        let r = f
            .insert_right(vec![Value::Int(1), Value::Int(0)])
            .unwrap();
        for i in 0..100 {
            let l = f.insert_left(vec![Value::Int(i), Value::str("payload-payload-payload")]).unwrap();
            f.link(l, r).unwrap();
        }
        // Every denormalized pair repeats the left payload AND the right row.
        assert!(f.approx_bytes() < f.denormalized_bytes() + 100 * 24);
    }

    #[test]
    fn filtered_enumeration() {
        let mut f = ft();
        for i in 0..10 {
            let l = f.insert_left(vec![Value::Int(i), Value::Null]).unwrap();
            let r = f.insert_right(vec![Value::Int(100 + i), Value::Int(i)]).unwrap();
            f.link(l, r).unwrap();
        }
        let out = f.enumerate_join_filtered(|l| l[0].as_int().unwrap() < 3);
        assert_eq!(out.len(), 3);
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    #[test]
    fn member_updates_preserve_links() {
        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int), Column::new("lv", DataType::Int)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int)],
            vec![0],
        );
        let mut f = FactorizedTable::new("f", left, right);
        let l = f.insert_left(vec![Value::Int(1), Value::Int(10)]).unwrap();
        let r = f.insert_right(vec![Value::Int(2)]).unwrap();
        f.link(l, r).unwrap();
        f.update_left(l, vec![Value::Int(1), Value::Int(99)]).unwrap();
        assert_eq!(f.count_join(), 1);
        let join = f.enumerate_join();
        assert_eq!(join[0][1], Value::Int(99));
        // PK change through update keeps links too.
        f.update_right(r, vec![Value::Int(7)]).unwrap();
        assert_eq!(f.right().lookup_pk(&Value::Int(7)).unwrap().0, r);
        assert_eq!(f.enumerate_join()[0][2], Value::Int(7));
    }

    /// Regression test (Int→Float canonicalization audit): every factorized
    /// member ingest path — `insert_*`, `update_*`, and the WAL-redo
    /// `place_*` — must store `Value::Int` payloads bound for Float columns
    /// as canonical `Value::Float`, exactly like plain-table ingest. All
    /// three delegate to the member [`Table`]'s canonicalizing entry points;
    /// this pins that contract so a future "optimized" direct-slot path
    /// can't silently regress it.
    #[test]
    fn member_ingest_canonicalizes_int_to_float() {
        let is_float = |v: &Value, want: f64| matches!(v, Value::Float(f) if *f == want);
        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int), Column::new("w", DataType::Float)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int), Column::new("x", DataType::Float)],
            vec![0],
        );
        let mut f = FactorizedTable::new("f", left, right);

        // insert path
        let l = f.insert_left(vec![Value::Int(1), Value::Int(5)]).unwrap();
        let r = f.insert_right(vec![Value::Int(2), Value::Int(6)]).unwrap();
        assert!(is_float(&f.left().get(l).unwrap()[1], 5.0), "insert_left");
        assert!(is_float(&f.right().get(r).unwrap()[1], 6.0), "insert_right");

        // update path
        f.update_left(l, vec![Value::Int(1), Value::Int(7)]).unwrap();
        f.update_right(r, vec![Value::Int(2), Value::Int(8)]).unwrap();
        assert!(is_float(&f.left().get(l).unwrap()[1], 7.0), "update_left");
        assert!(is_float(&f.right().get(r).unwrap()[1], 8.0), "update_right");

        // WAL-redo placement path (exact-slot placement used by recovery):
        // a logged row may carry Int payloads, so placement must
        // canonicalize just like live ingest did.
        f.place_left(RowId(9), vec![Value::Int(3), Value::Int(9)]).unwrap();
        f.place_right(RowId(9), vec![Value::Int(4), Value::Int(10)]).unwrap();
        assert!(is_float(&f.left().get(RowId(9)).unwrap()[1], 9.0), "place_left");
        assert!(is_float(&f.right().get(RowId(9)).unwrap()[1], 10.0), "place_right");
    }
}
