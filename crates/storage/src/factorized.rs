//! Multi-relational compressed (factorized) storage.
//!
//! The paper's third physical representation target: "store the join of
//! multiple relations together in a compact fashion ... The key benefit
//! here is the ability to use physical pointers to avoid joins, and to
//! execute some types of aggregate queries more efficiently (by, in effect,
//! pushing down aggregations through the joins)."
//!
//! A [`FactorizedTable`] holds two member [`Table`]s (each row stored once)
//! plus an adjacency structure of physical pointers between them. Compare
//! with a materialized denormalized join table, which duplicates every left
//! row once per matching right row. Enumerating the join follows pointers
//! (no hashing, no duplication), and distributive aggregates can be pushed
//! through the join without ever materializing it.

use crate::error::{StorageError, StorageResult};
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::stats::TableStats;
use crate::table::Table;
use crate::value::Value;
use parking_lot::Mutex;
use std::sync::Arc;

/// Compressed-sparse-row view of one adjacency direction: `offsets` has one
/// entry per source slot plus a terminator, and `neighbours_of(slot)` is the
/// contiguous sub-slice `neighbours[offsets[slot]..offsets[slot+1]]`. Built
/// lazily from the per-slot pointer lists on first traversal after a
/// mutation (Kuzu's edge representation); traversal then walks two flat
/// arrays instead of chasing one heap allocation per source row. Neighbour
/// order within a slot is exactly the pointer-list order, so CSR expansion
/// is bit-identical to row-at-a-time expansion.
#[derive(Debug)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbours: Vec<RowId>,
}

impl Csr {
    fn build(adj: &[Vec<RowId>], slots: usize) -> Csr {
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(slots + 1);
        let mut neighbours = Vec::with_capacity(total);
        offsets.push(0);
        for slot in 0..slots {
            if let Some(ns) = adj.get(slot) {
                neighbours.extend_from_slice(ns);
            }
            offsets.push(neighbours.len() as u64);
        }
        Csr { offsets, neighbours }
    }

    /// Neighbours of a source slot; empty for out-of-range slots.
    #[inline]
    pub fn neighbours_of(&self, slot: usize) -> &[RowId] {
        match (self.offsets.get(slot), self.offsets.get(slot + 1)) {
            (Some(&s), Some(&e)) => &self.neighbours[s as usize..e as usize],
            _ => &[],
        }
    }

    /// Number of source slots covered.
    pub fn slot_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored edges.
    pub fn edge_count(&self) -> usize {
        self.neighbours.len()
    }
}

/// Lazily built CSR views of both directions. `None` means "stale": any
/// adjacency mutation clears the slot and the next traversal rebuilds it.
#[derive(Debug, Default, Clone)]
struct CsrCache {
    fwd: Option<Arc<Csr>>,
    rev: Option<Arc<Csr>>,
}

/// The join of two relations stored in factorized form.
#[derive(Debug)]
pub struct FactorizedTable {
    name: String,
    left: Table,
    right: Table,
    /// Forward pointers: left slot index → right row ids.
    fwd: Vec<Vec<RowId>>,
    /// Reverse pointers: right slot index → left row ids.
    rev: Vec<Vec<RowId>>,
    /// Total number of (left, right) pairs, i.e. the join cardinality.
    pairs: usize,
    /// CSR views of `fwd`/`rev`, built lazily on first traversal after a
    /// mutation. Behind a mutex so `csr_forward` can memoize through `&self`
    /// (published snapshot views are shared immutably); every adjacency
    /// mutation already holds `&mut self` and invalidates lock-free via
    /// `Mutex::get_mut`.
    csr: Mutex<CsrCache>,
    /// Monotonic content version bumped by `Catalog::factorized_mut`; see
    /// [`Table::content_epoch`].
    content_epoch: u64,
}

impl Clone for FactorizedTable {
    fn clone(&self) -> Self {
        FactorizedTable {
            name: self.name.clone(),
            left: self.left.clone(),
            right: self.right.clone(),
            fwd: self.fwd.clone(),
            rev: self.rev.clone(),
            pairs: self.pairs,
            // Share the built CSR views: they are immutable behind `Arc`s,
            // and a later mutation on either clone invalidates only that
            // clone's cache. Keeps the cache warm across the catalog's
            // copy-on-write `Arc::make_mut`.
            csr: Mutex::new(self.csr.lock().clone()),
            content_epoch: self.content_epoch,
        }
    }
}

impl FactorizedTable {
    /// Create an empty factorized table over two member schemas.
    pub fn new(name: impl Into<String>, left: TableSchema, right: TableSchema) -> Self {
        FactorizedTable {
            name: name.into(),
            left: Table::new(left),
            right: Table::new(right),
            fwd: Vec::new(),
            rev: Vec::new(),
            pairs: 0,
            csr: Mutex::new(CsrCache::default()),
            content_epoch: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonic content version (see [`Table::content_epoch`]).
    pub fn content_epoch(&self) -> u64 {
        self.content_epoch
    }

    /// Bump the content version. Called by `Catalog::factorized_mut`.
    pub(crate) fn bump_content_epoch(&mut self) {
        self.content_epoch += 1;
    }

    /// Drop both CSR views. Called by every adjacency mutation (row
    /// inserts/deletes change the slot universe, link/unlink change the
    /// edges); in-place member `update_*` calls do NOT invalidate because
    /// they never touch the pointer lists.
    fn invalidate_csr(&mut self) {
        let cache = self.csr.get_mut();
        cache.fwd = None;
        cache.rev = None;
    }

    /// The forward (left slot → right neighbours) CSR view, building it on
    /// first traversal after a mutation. Cheap when cached: one mutex lock
    /// and an `Arc` clone.
    pub fn csr_forward(&self) -> Arc<Csr> {
        let mut cache = self.csr.lock();
        if let Some(c) = &cache.fwd {
            return Arc::clone(c);
        }
        let c = Arc::new(Csr::build(&self.fwd, self.left.slot_count()));
        m_csr_rebuilds().inc();
        cache.fwd = Some(Arc::clone(&c));
        c
    }

    /// The reverse (right slot → left neighbours) CSR view, lazily built
    /// like [`FactorizedTable::csr_forward`].
    pub fn csr_reverse(&self) -> Arc<Csr> {
        let mut cache = self.csr.lock();
        if let Some(c) = &cache.rev {
            return Arc::clone(c);
        }
        let c = Arc::new(Csr::build(&self.rev, self.right.slot_count()));
        m_csr_rebuilds().inc();
        cache.rev = Some(Arc::clone(&c));
        c
    }

    /// Stamp the catalog commit epoch into both member tables (forwarded
    /// from `Catalog::factorized_mut`, the write choke point) so their
    /// slot mutations record the epoch they happened in.
    pub(crate) fn set_write_epoch(&mut self, epoch: u64) {
        self.left.set_write_epoch(epoch);
        self.right.set_write_epoch(epoch);
    }

    pub fn left(&self) -> &Table {
        &self.left
    }

    pub fn right(&self) -> &Table {
        &self.right
    }

    /// Join cardinality (number of linked pairs).
    pub fn pair_count(&self) -> usize {
        self.pairs
    }

    /// Insert a row on the left side.
    pub fn insert_left(&mut self, row: Row) -> StorageResult<RowId> {
        let rid = self.left.insert(row)?;
        if self.fwd.len() <= rid.idx() {
            self.fwd.resize_with(rid.idx() + 1, Vec::new);
        }
        self.invalidate_csr();
        Ok(rid)
    }

    /// Insert a row on the right side.
    pub fn insert_right(&mut self, row: Row) -> StorageResult<RowId> {
        let rid = self.right.insert(row)?;
        if self.rev.len() <= rid.idx() {
            self.rev.resize_with(rid.idx() + 1, Vec::new);
        }
        self.invalidate_csr();
        Ok(rid)
    }

    /// Link a left row to a right row (one join pair).
    pub fn link(&mut self, l: RowId, r: RowId) -> StorageResult<()> {
        if self.left.get(l).is_none() {
            return Err(StorageError::RowNotFound { table: format!("{}.left", self.name), row: l.0 });
        }
        if self.right.get(r).is_none() {
            return Err(StorageError::RowNotFound { table: format!("{}.right", self.name), row: r.0 });
        }
        self.fwd[l.idx()].push(r);
        self.rev[r.idx()].push(l);
        self.pairs += 1;
        self.invalidate_csr();
        Ok(())
    }

    /// Remove a link, if present.
    pub fn unlink(&mut self, l: RowId, r: RowId) -> bool {
        let Some(f) = self.fwd.get_mut(l.idx()) else { return false };
        let Some(pos) = f.iter().position(|x| *x == r) else { return false };
        f.swap_remove(pos);
        let rv = &mut self.rev[r.idx()];
        if let Some(pos) = rv.iter().position(|x| *x == l) {
            rv.swap_remove(pos);
        }
        self.pairs -= 1;
        self.invalidate_csr();
        true
    }

    /// Update a left row in place (links preserved).
    pub fn update_left(&mut self, l: RowId, row: Row) -> StorageResult<Row> {
        self.left.update(l, row)
    }

    /// Update a right row in place (links preserved).
    pub fn update_right(&mut self, r: RowId, row: Row) -> StorageResult<Row> {
        self.right.update(r, row)
    }

    /// Delete a left row, dropping all of its links.
    pub fn delete_left(&mut self, l: RowId) -> StorageResult<Row> {
        let row = self.left.delete(l)?;
        for r in std::mem::take(&mut self.fwd[l.idx()]) {
            let rv = &mut self.rev[r.idx()];
            if let Some(pos) = rv.iter().position(|x| *x == l) {
                rv.swap_remove(pos);
                self.pairs -= 1;
            }
        }
        self.invalidate_csr();
        Ok(row)
    }

    /// Delete a right row, dropping all of its links.
    pub fn delete_right(&mut self, r: RowId) -> StorageResult<Row> {
        let row = self.right.delete(r)?;
        for l in std::mem::take(&mut self.rev[r.idx()]) {
            let fv = &mut self.fwd[l.idx()];
            if let Some(pos) = fv.iter().position(|x| *x == r) {
                fv.swap_remove(pos);
                self.pairs -= 1;
            }
        }
        self.invalidate_csr();
        Ok(row)
    }

    /// Restore a previously deleted left row into its exact slot
    /// (transaction rollback). Links are NOT restored — re-link explicitly.
    pub(crate) fn restore_left(&mut self, l: RowId, row: Row) -> StorageResult<()> {
        self.left.restore(l, row)?;
        if self.fwd.len() <= l.idx() {
            self.fwd.resize_with(l.idx() + 1, Vec::new);
        }
        self.invalidate_csr();
        Ok(())
    }

    /// Restore a previously deleted right row into its exact slot.
    pub(crate) fn restore_right(&mut self, r: RowId, row: Row) -> StorageResult<()> {
        self.right.restore(r, row)?;
        if self.rev.len() <= r.idx() {
            self.rev.resize_with(r.idx() + 1, Vec::new);
        }
        self.invalidate_csr();
        Ok(())
    }

    /// Place a left row at an exact slot (WAL redo), growing as needed.
    pub(crate) fn place_left(&mut self, l: RowId, row: Row) -> StorageResult<()> {
        self.left.place_at(l, row)?;
        if self.fwd.len() <= l.idx() {
            self.fwd.resize_with(l.idx() + 1, Vec::new);
        }
        self.invalidate_csr();
        Ok(())
    }

    /// Place a right row at an exact slot (WAL redo), growing as needed.
    pub(crate) fn place_right(&mut self, r: RowId, row: Row) -> StorageResult<()> {
        self.right.place_at(r, row)?;
        if self.rev.len() <= r.idx() {
            self.rev.resize_with(r.idx() + 1, Vec::new);
        }
        self.invalidate_csr();
        Ok(())
    }

    /// Recompute both member free lists after WAL redo.
    pub(crate) fn rebuild_free(&mut self) {
        self.left.rebuild_free();
        self.right.rebuild_free();
    }

    /// Rebind both member tables to another buffer pool (catalog install).
    pub(crate) fn bind_pool(&mut self, pool: &Arc<crate::buffer_pool::BufferPool>) {
        self.left.bind_pool(pool);
        self.right.bind_pool(pool);
    }

    /// One eviction pass over both member tables (see [`Table::reclaim_pages`]).
    pub(crate) fn reclaim_pages(&mut self, force: bool) -> StorageResult<usize> {
        Ok(self.left.reclaim_pages(force)? + self.right.reclaim_pages(force)?)
    }

    /// Remove every row and every link from both members. The CSR views
    /// must be invalidated here just like on any other adjacency mutation:
    /// a cached view describes the pre-truncate slot universe, and serving
    /// it afterwards would resurrect the join.
    pub fn truncate(&mut self) {
        self.left.truncate();
        self.right.truncate();
        self.fwd.clear();
        self.rev.clear();
        self.pairs = 0;
        self.invalidate_csr();
    }

    /// Dump every stored `(left, right)` link pair (checkpoint support).
    pub(crate) fn link_pairs(&self) -> Vec<(RowId, RowId)> {
        let mut out = Vec::with_capacity(self.pairs);
        for (l, rs) in self.fwd.iter().enumerate() {
            for &r in rs {
                out.push((RowId(l as u64), r));
            }
        }
        out
    }

    /// Rebuild a factorized table from checkpointed members and link pairs.
    pub(crate) fn from_parts(
        name: impl Into<String>,
        left: Table,
        right: Table,
        links: Vec<(RowId, RowId)>,
    ) -> StorageResult<FactorizedTable> {
        let mut ft = FactorizedTable {
            name: name.into(),
            fwd: vec![Vec::new(); left.slot_count()],
            rev: vec![Vec::new(); right.slot_count()],
            left,
            right,
            pairs: 0,
            csr: Mutex::new(CsrCache::default()),
            content_epoch: 0,
        };
        for (l, r) in links {
            ft.link(l, r)?;
        }
        Ok(ft)
    }

    /// Right neighbours of a left row.
    pub fn neighbours_right(&self, l: RowId) -> &[RowId] {
        self.fwd.get(l.idx()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Left neighbours of a right row.
    pub fn neighbours_left(&self, r: RowId) -> &[RowId] {
        self.rev.get(r.idx()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Stream the stored join as concatenated `left_row ++ right_row` pairs
    /// by following the physical pointers — no hash table is built and no
    /// key comparison happens. Borrows the structure: rows are assembled
    /// lazily, one pair per step, so a pulling executor can stop early
    /// (e.g. under LIMIT) without enumerating the whole join.
    pub fn iter_join(&self) -> impl Iterator<Item = Row> + '_ {
        self.iter_join_slots(0..self.left.slot_count())
    }

    /// Stream the stored join restricted to left rows in the given slot
    /// range (a morsel). Together with [`Table::slot_count`] this lets a
    /// morsel-parallel executor partition join enumeration by left slots.
    pub fn iter_join_slots(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = Row> + '_ {
        JoinSlots::new(self, None, range)
    }

    /// Stream the stored join over a prebuilt forward CSR view, restricted
    /// to left rows in `range`. Produces exactly the pairs of
    /// [`FactorizedTable::iter_join_slots`] in exactly the same order —
    /// neighbour order is preserved by [`Csr::build`] — but the inner loop
    /// walks a contiguous slice of one flat neighbour array instead of a
    /// per-slot heap `Vec`. Callers obtain `csr` once via
    /// [`FactorizedTable::csr_forward`] and reuse it across morsels.
    pub fn iter_join_slots_csr<'a>(
        &'a self,
        csr: &'a Csr,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = Row> + 'a {
        JoinSlots::new(self, Some(csr), range)
    }

    /// Enumerate the full join result: each pair as `left_row ++ right_row`.
    /// Materializing wrapper around [`FactorizedTable::iter_join`].
    pub fn enumerate_join(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.pairs);
        out.extend(self.iter_join());
        out
    }

    /// Enumerate the join restricted to left rows passing `pred`.
    pub fn enumerate_join_filtered(&self, pred: impl Fn(&Row) -> bool) -> Vec<Row> {
        let mut out = Vec::new();
        for (l, lrow) in self.left.scan() {
            if !pred(lrow) {
                continue;
            }
            for &r in self.neighbours_right(l) {
                let rrow = self.right.get(r).expect("linked right row is live");
                let mut row = Vec::with_capacity(lrow.len() + rrow.len());
                row.extend_from_slice(lrow);
                row.extend_from_slice(rrow);
                out.push(row);
            }
        }
        out
    }

    /// Aggregate pushdown: for each left row, `(left_row, COUNT(right))`
    /// without materializing the join.
    pub fn count_per_left(&self) -> Vec<(Row, u64)> {
        self.left
            .scan()
            .map(|(l, lrow)| (lrow.clone(), self.neighbours_right(l).len() as u64))
            .collect()
    }

    /// Aggregate pushdown: for each left row, `(left_row, SUM(right[col]))`.
    /// NULLs are skipped, as in SQL SUM.
    pub fn sum_right_per_left(&self, col: usize) -> StorageResult<Vec<(Row, Value)>> {
        if col >= self.right.schema().arity() {
            return Err(StorageError::ColumnNotFound {
                table: format!("{}.right", self.name),
                column: format!("#{col}"),
            });
        }
        let mut out = Vec::with_capacity(self.left.len());
        for (l, lrow) in self.left.scan() {
            let mut sum = 0f64;
            let mut any = false;
            let mut all_int = true;
            for &r in self.neighbours_right(l) {
                let v = &self.right.get(r).expect("live")[col];
                if let Some(x) = v.as_float() {
                    sum += x;
                    any = true;
                    if !matches!(v, Value::Int(_)) {
                        all_int = false;
                    }
                }
            }
            let v = if !any {
                Value::Null
            } else if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            };
            out.push((lrow.clone(), v));
        }
        Ok(out)
    }

    /// Total join cardinality — O(1), the headline win of factorized
    /// storage for COUNT(*) over a join.
    pub fn count_join(&self) -> u64 {
        self.pairs as u64
    }

    /// Approximate bytes of the factorized representation (rows stored once
    /// plus pointer lists). Compare with
    /// `denormalized_bytes` to see the compression the paper expects when
    /// "the join is almost one-to-one".
    pub fn approx_bytes(&self) -> usize {
        let left: usize =
            self.left.scan().map(|(_, r)| r.iter().map(Value::approx_size).sum::<usize>()).sum();
        let right: usize =
            self.right.scan().map(|(_, r)| r.iter().map(Value::approx_size).sum::<usize>()).sum();
        left + right + self.pairs * 2 * std::mem::size_of::<RowId>()
    }

    /// Gather statistics for the structure: `(left, right, join)`. The two
    /// member sides are ordinary single-pass table scans; the join entry is
    /// computed by streaming the stored join through the pointer lists (one
    /// pass over the pairs, nothing materialized), so its `row_count` is the
    /// join cardinality and its columns span `left ++ right`.
    pub fn compute_stats(&self) -> (TableStats, TableStats, TableStats) {
        let left = self.left.compute_stats();
        let right = self.right.compute_stats();
        let arity = self.left.schema().arity() + self.right.schema().arity();
        let join = TableStats::compute(self.iter_join(), arity);
        (left, right, join)
    }

    /// Approximate bytes a denormalized join table would need.
    pub fn denormalized_bytes(&self) -> usize {
        let mut total = 0usize;
        for (l, lrow) in self.left.scan() {
            let lsz: usize = lrow.iter().map(Value::approx_size).sum();
            for &r in self.neighbours_right(l) {
                let rsz: usize =
                    self.right.get(r).expect("live").iter().map(Value::approx_size).sum();
                total += lsz + rsz;
            }
        }
        total
    }
}

/// Pin-based join enumeration: the engine of [`FactorizedTable::iter_join_slots`]
/// and [`FactorizedTable::iter_join_slots_csr`]. Pins the left morsel's pages
/// once up front and re-pins one right page at a time as the pointer chase
/// crosses page boundaries, so enumerating a join larger than the frame
/// budget keeps at most the morsel's left pages plus one right page pinned.
/// Produces pairs in exactly pointer-list order (CSR preserves it), matching
/// the pre-paging row-at-a-time expansion bit for bit.
struct JoinSlots<'a> {
    ft: &'a FactorizedTable,
    csr: Option<&'a Csr>,
    left: crate::pages::SlotPin,
    cursor: usize,
    end: usize,
    /// Index into the current left slot's neighbour list.
    neigh: usize,
    /// Pin of the page holding the most recent right row — pointer chases
    /// have strong page locality, so one cached pin absorbs most accesses.
    right: Option<crate::pages::SlotPin>,
}

impl<'a> JoinSlots<'a> {
    fn new(ft: &'a FactorizedTable, csr: Option<&'a Csr>, range: std::ops::Range<usize>) -> Self {
        let left = ft.left.pin_slots(range);
        let r = left.range();
        JoinSlots { ft, csr, left, cursor: r.start, end: r.end, neigh: 0, right: None }
    }

    fn right_row(&mut self, r: RowId) -> &Row {
        let idx = r.idx();
        let stale = match &self.right {
            Some(pin) => !pin.range().contains(&idx),
            None => true,
        };
        if stale {
            let pr = self.ft.right.page_rows();
            let start = idx / pr * pr;
            self.right = Some(self.ft.right.pin_slots(start..start + pr));
        }
        self.right.as_ref().expect("just pinned").get(idx).expect("linked right row is live")
    }
}

impl Iterator for JoinSlots<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            if self.cursor >= self.end {
                return None;
            }
            let l = self.cursor;
            let ns_len = match self.csr {
                Some(c) => c.neighbours_of(l).len(),
                None => self.ft.neighbours_right(RowId(l as u64)).len(),
            };
            if self.left.get(l).is_none() || self.neigh >= ns_len {
                self.cursor += 1;
                self.neigh = 0;
                continue;
            }
            let r = match self.csr {
                Some(c) => c.neighbours_of(l)[self.neigh],
                None => self.ft.neighbours_right(RowId(l as u64))[self.neigh],
            };
            self.neigh += 1;
            let mut row = {
                let lrow = self.left.get(l).expect("checked live");
                let mut row = Vec::with_capacity(lrow.len() + self.ft.right.schema().arity());
                row.extend_from_slice(lrow);
                row
            };
            row.extend_from_slice(self.right_row(r));
            return Some(row);
        }
    }
}

/// Counts lazy CSR (re)builds — one per direction per rebuild, so a stable
/// read-mostly workload should show this flatline after warm-up. Handle
/// interned once per process (same pattern as the WAL metrics).
fn m_csr_rebuilds() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_csr_rebuilds_total",
            "Lazy CSR adjacency rebuilds (per direction) in factorized tables",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn ft() -> FactorizedTable {
        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int), Column::new("lv", DataType::Text)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int), Column::new("rv", DataType::Int)],
            vec![0],
        );
        FactorizedTable::new("f", left, right)
    }

    #[test]
    fn build_and_enumerate() {
        let mut f = ft();
        let l1 = f.insert_left(vec![Value::Int(1), Value::str("a")]).unwrap();
        let l2 = f.insert_left(vec![Value::Int(2), Value::str("b")]).unwrap();
        let r1 = f.insert_right(vec![Value::Int(10), Value::Int(100)]).unwrap();
        let r2 = f.insert_right(vec![Value::Int(20), Value::Int(200)]).unwrap();
        f.link(l1, r1).unwrap();
        f.link(l1, r2).unwrap();
        f.link(l2, r2).unwrap();

        let join = f.enumerate_join();
        assert_eq!(join.len(), 3);
        assert_eq!(f.count_join(), 3);
        assert!(join.iter().any(|r| r[0] == Value::Int(2) && r[2] == Value::Int(20)));
    }

    #[test]
    fn aggregate_pushdown_matches_join() {
        let mut f = ft();
        let l1 = f.insert_left(vec![Value::Int(1), Value::str("a")]).unwrap();
        let l2 = f.insert_left(vec![Value::Int(2), Value::str("b")]).unwrap();
        let r1 = f.insert_right(vec![Value::Int(10), Value::Int(5)]).unwrap();
        let r2 = f.insert_right(vec![Value::Int(20), Value::Int(7)]).unwrap();
        f.link(l1, r1).unwrap();
        f.link(l1, r2).unwrap();
        f.link(l2, r1).unwrap();

        let sums = f.sum_right_per_left(1).unwrap();
        let s1 = sums.iter().find(|(l, _)| l[0] == Value::Int(1)).unwrap();
        let s2 = sums.iter().find(|(l, _)| l[0] == Value::Int(2)).unwrap();
        assert_eq!(s1.1, Value::Int(12));
        assert_eq!(s2.1, Value::Int(5));

        let counts = f.count_per_left();
        assert_eq!(counts.iter().find(|(l, _)| l[0] == Value::Int(1)).unwrap().1, 2);
    }

    #[test]
    fn iter_join_streams_same_pairs_as_enumerate() {
        let mut f = ft();
        for i in 0..6 {
            let l = f.insert_left(vec![Value::Int(i), Value::str("x")]).unwrap();
            let r = f.insert_right(vec![Value::Int(100 + i), Value::Int(i)]).unwrap();
            f.link(l, r).unwrap();
            if i > 0 {
                f.link(l, RowId(0)).unwrap(); // shared right row
            }
        }
        let eager = f.enumerate_join();
        let lazy: Vec<Row> = f.iter_join().collect();
        assert_eq!(eager, lazy);
        // Slot-range morsels cover the join exactly once, in order.
        let mut pieced = Vec::new();
        for start in (0..f.left().slot_count()).step_by(2) {
            pieced.extend(f.iter_join_slots(start..start + 2));
        }
        assert_eq!(pieced, eager);
        // Early termination: taking 2 pairs does not walk the whole join.
        assert_eq!(f.iter_join().take(2).count(), 2);
    }

    #[test]
    fn csr_expansion_is_bit_identical_to_row_path() {
        let mut f = ft();
        for i in 0..8 {
            let l = f.insert_left(vec![Value::Int(i), Value::str("x")]).unwrap();
            let r = f.insert_right(vec![Value::Int(100 + i), Value::Int(i)]).unwrap();
            f.link(l, r).unwrap();
            if i > 0 {
                f.link(l, RowId(0)).unwrap();
            }
        }
        // Churn so the slot universe has a tombstone and a recycled slot.
        f.delete_left(RowId(3)).unwrap();
        f.insert_left(vec![Value::Int(50), Value::str("y")]).unwrap();
        f.link(RowId(3), RowId(5)).unwrap();

        let csr = f.csr_forward();
        let row_path: Vec<Row> = f.iter_join().collect();
        let csr_path: Vec<Row> = f.iter_join_slots_csr(&csr, 0..f.left().slot_count()).collect();
        assert_eq!(csr_path, row_path, "same pairs, same order");
        assert_eq!(csr.edge_count(), f.pair_count());
        // Morsel-ranged CSR expansion pieces the join together identically.
        let mut pieced = Vec::new();
        for start in (0..f.left().slot_count()).step_by(3) {
            pieced.extend(f.iter_join_slots_csr(&csr, start..start + 3));
        }
        assert_eq!(pieced, row_path);
        // Per-slot neighbour slices match the pointer lists exactly.
        for slot in 0..f.left().slot_count() {
            assert_eq!(csr.neighbours_of(slot), f.neighbours_right(RowId(slot as u64)));
        }
        assert!(csr.neighbours_of(10_000).is_empty(), "out of range reads as empty");
    }

    #[test]
    fn csr_cache_rebuilds_lazily_after_mutation() {
        let mut f = ft();
        let l = f.insert_left(vec![Value::Int(1), Value::Null]).unwrap();
        let r = f.insert_right(vec![Value::Int(10), Value::Null]).unwrap();
        f.link(l, r).unwrap();

        let before = m_csr_rebuilds().get();
        let a = f.csr_forward();
        let b = f.csr_forward();
        // `ptr_eq` proves the second traversal reused the cached build; the
        // counter check is `>=` because other tests share the global metric.
        assert!(Arc::ptr_eq(&a, &b), "second traversal reuses the cached build");
        assert!(m_csr_rebuilds().get() > before, "first traversal rebuilt");

        // A clone keeps the warm cache; mutating the clone invalidates only
        // the clone's cache.
        let mut f2 = f.clone();
        assert!(Arc::ptr_eq(&f2.csr_forward(), &a));
        f2.unlink(l, r);
        assert_eq!(f2.csr_forward().edge_count(), 0, "clone sees its own mutation");
        assert!(Arc::ptr_eq(&f.csr_forward(), &a), "original cache untouched");

        // In-place member updates do not invalidate (links unchanged) ...
        f.update_left(l, vec![Value::Int(1), Value::str("nine")]).unwrap();
        assert!(Arc::ptr_eq(&f.csr_forward(), &a));
        // ... but an adjacency mutation does.
        f.link(l, r).unwrap();
        assert_eq!(f.csr_forward().edge_count(), 2);
        // Reverse direction is cached independently.
        assert_eq!(f.csr_reverse().neighbours_of(r.idx()).len(), 2);
    }

    #[test]
    fn truncate_invalidates_csr_views() {
        let mut f = ft();
        for i in 0..4 {
            let l = f.insert_left(vec![Value::Int(i), Value::str("x")]).unwrap();
            let r = f.insert_right(vec![Value::Int(100 + i), Value::Int(i)]).unwrap();
            f.link(l, r).unwrap();
        }
        let warm_fwd = f.csr_forward();
        let warm_rev = f.csr_reverse();
        assert_eq!(warm_fwd.edge_count(), 4);

        f.truncate();
        let after = f.csr_forward();
        assert!(!Arc::ptr_eq(&warm_fwd, &after), "truncate dropped the cached forward view");
        assert!(!Arc::ptr_eq(&warm_rev, &f.csr_reverse()), "and the reverse view");
        assert_eq!(after.edge_count(), 0);
        assert_eq!(f.iter_join_slots_csr(&after, 0..16).count(), 0, "no resurrected pairs");

        // Repopulating reuses the slot universe from zero; the fresh CSR
        // expansion is bit-identical to the row path.
        for i in 0..3 {
            let l = f.insert_left(vec![Value::Int(50 + i), Value::str("y")]).unwrap();
            let r = f.insert_right(vec![Value::Int(200 + i), Value::Int(i)]).unwrap();
            f.link(l, r).unwrap();
        }
        let csr = f.csr_forward();
        let row_path: Vec<Row> = f.iter_join().collect();
        let csr_path: Vec<Row> = f.iter_join_slots_csr(&csr, 0..f.left().slot_count()).collect();
        assert_eq!(csr_path, row_path);
        assert_eq!(csr.edge_count(), 3);
    }

    #[test]
    fn rollback_invalidates_csr_views() {
        use crate::catalog::Catalog;
        use crate::txn::Transaction;

        let mut c = Catalog::new();
        c.create_factorized("f", ft()).unwrap();
        let (l0, r0, r1) = {
            let f = c.factorized_mut("f").unwrap();
            let l0 = f.insert_left(vec![Value::Int(1), Value::str("a")]).unwrap();
            let r0 = f.insert_right(vec![Value::Int(10), Value::Int(0)]).unwrap();
            let r1 = f.insert_right(vec![Value::Int(20), Value::Int(1)]).unwrap();
            f.link(l0, r0).unwrap();
            (l0, r0, r1)
        };
        let warm = c.factorized("f").unwrap().csr_forward();
        assert_eq!(warm.edge_count(), 1);

        // A transaction links, inserts, unlinks — then rolls back. The undo
        // replays through the same adjacency mutators, so the cached CSR
        // must not survive into the restored state.
        let mut txn = Transaction::new();
        txn.fact_link(&mut c, "f", l0, r1).unwrap();
        txn.fact_insert(&mut c, "f", crate::wal::FactSide::Left, vec![Value::Int(2), Value::str("b")])
            .unwrap();
        txn.fact_unlink(&mut c, "f", l0, r0).unwrap();
        txn.rollback(&mut c).unwrap();

        let f = c.factorized("f").unwrap();
        let csr = f.csr_forward();
        assert!(!Arc::ptr_eq(&warm, &csr) || csr.edge_count() == 1, "no stale view after undo");
        let row_path: Vec<Row> = f.iter_join().collect();
        let csr_path: Vec<Row> = f.iter_join_slots_csr(&csr, 0..f.left().slot_count()).collect();
        assert_eq!(csr_path, row_path, "CSR expansion bit-identical to the row path after undo");
        assert_eq!(csr.edge_count(), 1, "exactly the pre-transaction pair");
        assert_eq!(f.neighbours_right(l0), vec![r0]);
    }

    #[test]
    fn unlink_and_delete_maintain_pairs() {
        let mut f = ft();
        let l1 = f.insert_left(vec![Value::Int(1), Value::Null]).unwrap();
        let r1 = f.insert_right(vec![Value::Int(10), Value::Null]).unwrap();
        let r2 = f.insert_right(vec![Value::Int(20), Value::Null]).unwrap();
        f.link(l1, r1).unwrap();
        f.link(l1, r2).unwrap();
        assert!(f.unlink(l1, r1));
        assert!(!f.unlink(l1, r1), "double unlink is a no-op");
        assert_eq!(f.count_join(), 1);
        f.delete_right(r2).unwrap();
        assert_eq!(f.count_join(), 0);
        assert!(f.neighbours_right(l1).is_empty());
    }

    #[test]
    fn delete_left_cascades_links() {
        let mut f = ft();
        let l1 = f.insert_left(vec![Value::Int(1), Value::Null]).unwrap();
        let r1 = f.insert_right(vec![Value::Int(10), Value::Null]).unwrap();
        f.link(l1, r1).unwrap();
        f.delete_left(l1).unwrap();
        assert_eq!(f.count_join(), 0);
        assert!(f.neighbours_left(r1).is_empty());
    }

    #[test]
    fn factorized_smaller_than_denormalized_on_shared_rows() {
        let mut f = ft();
        // One wide right row shared by many left rows: classic factorization win.
        let r = f
            .insert_right(vec![Value::Int(1), Value::Int(0)])
            .unwrap();
        for i in 0..100 {
            let l = f.insert_left(vec![Value::Int(i), Value::str("payload-payload-payload")]).unwrap();
            f.link(l, r).unwrap();
        }
        // Every denormalized pair repeats the left payload AND the right row.
        assert!(f.approx_bytes() < f.denormalized_bytes() + 100 * 24);
    }

    #[test]
    fn filtered_enumeration() {
        let mut f = ft();
        for i in 0..10 {
            let l = f.insert_left(vec![Value::Int(i), Value::Null]).unwrap();
            let r = f.insert_right(vec![Value::Int(100 + i), Value::Int(i)]).unwrap();
            f.link(l, r).unwrap();
        }
        let out = f.enumerate_join_filtered(|l| l[0].as_int().unwrap() < 3);
        assert_eq!(out.len(), 3);
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    #[test]
    fn member_updates_preserve_links() {
        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int), Column::new("lv", DataType::Int)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int)],
            vec![0],
        );
        let mut f = FactorizedTable::new("f", left, right);
        let l = f.insert_left(vec![Value::Int(1), Value::Int(10)]).unwrap();
        let r = f.insert_right(vec![Value::Int(2)]).unwrap();
        f.link(l, r).unwrap();
        f.update_left(l, vec![Value::Int(1), Value::Int(99)]).unwrap();
        assert_eq!(f.count_join(), 1);
        let join = f.enumerate_join();
        assert_eq!(join[0][1], Value::Int(99));
        // PK change through update keeps links too.
        f.update_right(r, vec![Value::Int(7)]).unwrap();
        assert_eq!(f.right().lookup_pk(&Value::Int(7)).unwrap().0, r);
        assert_eq!(f.enumerate_join()[0][2], Value::Int(7));
    }

    /// Regression test (Int→Float canonicalization audit): every factorized
    /// member ingest path — `insert_*`, `update_*`, and the WAL-redo
    /// `place_*` — must store `Value::Int` payloads bound for Float columns
    /// as canonical `Value::Float`, exactly like plain-table ingest. All
    /// three delegate to the member [`Table`]'s canonicalizing entry points;
    /// this pins that contract so a future "optimized" direct-slot path
    /// can't silently regress it.
    #[test]
    fn member_ingest_canonicalizes_int_to_float() {
        let is_float = |v: &Value, want: f64| matches!(v, Value::Float(f) if *f == want);
        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int), Column::new("w", DataType::Float)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int), Column::new("x", DataType::Float)],
            vec![0],
        );
        let mut f = FactorizedTable::new("f", left, right);

        // insert path
        let l = f.insert_left(vec![Value::Int(1), Value::Int(5)]).unwrap();
        let r = f.insert_right(vec![Value::Int(2), Value::Int(6)]).unwrap();
        assert!(is_float(&f.left().get(l).unwrap()[1], 5.0), "insert_left");
        assert!(is_float(&f.right().get(r).unwrap()[1], 6.0), "insert_right");

        // update path
        f.update_left(l, vec![Value::Int(1), Value::Int(7)]).unwrap();
        f.update_right(r, vec![Value::Int(2), Value::Int(8)]).unwrap();
        assert!(is_float(&f.left().get(l).unwrap()[1], 7.0), "update_left");
        assert!(is_float(&f.right().get(r).unwrap()[1], 8.0), "update_right");

        // WAL-redo placement path (exact-slot placement used by recovery):
        // a logged row may carry Int payloads, so placement must
        // canonicalize just like live ingest did.
        f.place_left(RowId(9), vec![Value::Int(3), Value::Int(9)]).unwrap();
        f.place_right(RowId(9), vec![Value::Int(4), Value::Int(10)]).unwrap();
        assert!(is_float(&f.left().get(RowId(9)).unwrap()[1], 9.0), "place_left");
        assert!(is_float(&f.right().get(RowId(9)).unwrap()[1], 10.0), "place_right");
    }
}
