//! Physical table schemas.

use crate::error::{StorageError, StorageResult};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// One column of a physical table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    /// Whether NULL is admissible. The mapping layer sets this from E/R
    /// participation constraints and hierarchy layout (e.g. subclass-only
    /// attributes in a single-table hierarchy are nullable).
    pub nullable: bool,
}

impl Column {
    /// A nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column { name: name.into(), dtype, nullable: true }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, dtype: DataType) -> Column {
        Column { name: name.into(), dtype, nullable: false }
    }
}

/// Schema of one physical table: columns plus the primary-key column set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    /// Empty means no primary key (e.g. side tables for multi-valued
    /// attributes, where duplicates are legal).
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<Column>, primary_key: Vec<usize>) -> Self {
        TableSchema { name: name.into(), columns, primary_key }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Position of a column by name, as a storage error on miss.
    pub fn require_column(&self, name: &str) -> StorageResult<usize> {
        self.column_index(name).ok_or_else(|| StorageError::ColumnNotFound {
            table: self.name.clone(),
            column: name.to_string(),
        })
    }

    /// Validate arity, types, and NOT NULL constraints of a candidate row.
    pub fn validate_row(&self, row: &[Value]) -> StorageResult<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                table: self.name.clone(),
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        for (col, v) in self.columns.iter().zip(row.iter()) {
            if v.is_null() {
                if !col.nullable {
                    return Err(StorageError::TypeMismatch {
                        column: col.name.clone(),
                        expected: format!("{} NOT NULL", col.dtype),
                        actual: "NULL".to_string(),
                    });
                }
            } else if !col.dtype.check(v) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.dtype.to_string(),
                    actual: v.data_type().map(|t| t.to_string()).unwrap_or_else(|| "?".into()),
                });
            }
        }
        Ok(())
    }

    /// Canonicalize a row's physical representation to the column types.
    ///
    /// [`DataType::check`] admits `Value::Int` in Float columns ("implicit
    /// widening"), which would otherwise let one Float column hold a mix of
    /// `Int(5)` and `Float(5.0)` representations. Cross-type numeric `Hash`/
    /// `Ord` keeps that working for |i| ≤ 2^53, but beyond f64's exact-int
    /// range ordering transitivity breaks and min/max statistics get
    /// inconsistent typing — so ingest normalizes: every non-null value in a
    /// Float column (recursively through arrays and structs) is stored as
    /// `Value::Float`.
    pub fn canonicalize_row(&self, row: &mut [Value]) {
        for (col, v) in self.columns.iter().zip(row.iter_mut()) {
            canonicalize_value(&col.dtype, v);
        }
    }

    /// Extract the primary-key of a row as a single value (the key value
    /// itself for single-column keys, a `Struct` for composite keys).
    pub fn key_of(&self, row: &[Value]) -> Option<Value> {
        match self.primary_key.as_slice() {
            [] => None,
            [i] => Some(row[*i].clone()),
            ks => Some(Value::Struct(ks.iter().map(|&i| row[i].clone()).collect())),
        }
    }
}

/// Recursive worker for [`TableSchema::canonicalize_row`].
fn canonicalize_value(dtype: &DataType, v: &mut Value) {
    match (dtype, v) {
        (DataType::Float, v @ Value::Int(_)) => {
            let Value::Int(i) = *v else { unreachable!() };
            *v = Value::Float(i as f64);
        }
        (DataType::Array(elem), Value::Array(vs)) => {
            for x in vs {
                canonicalize_value(elem, x);
            }
        }
        (DataType::Struct(fields), Value::Struct(vs)) if fields.len() == vs.len() => {
            for ((_, t), x) in fields.iter().zip(vs.iter_mut()) {
                canonicalize_value(t, x);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("tags", DataType::Text.array_of()),
            ],
            vec![0],
        )
    }

    #[test]
    fn validates_good_row() {
        let s = schema();
        let row = vec![Value::Int(1), Value::str("a"), Value::Array(vec![Value::str("x")])];
        assert!(s.validate_row(&row).is_ok());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&[Value::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn rejects_null_in_not_null_column() {
        let s = schema();
        let row = vec![Value::Null, Value::Null, Value::Null];
        assert!(matches!(s.validate_row(&row), Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn rejects_wrong_type() {
        let s = schema();
        let row = vec![Value::Int(1), Value::Int(2), Value::Null];
        assert!(matches!(s.validate_row(&row), Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn composite_key_extraction() {
        let s = TableSchema::new(
            "t2",
            vec![Column::not_null("a", DataType::Int), Column::not_null("b", DataType::Text)],
            vec![0, 1],
        );
        let row = vec![Value::Int(7), Value::str("k")];
        assert_eq!(s.key_of(&row), Some(Value::Struct(vec![Value::Int(7), Value::str("k")])));
    }

    #[test]
    fn canonicalize_widens_ints_in_float_columns() {
        let s = TableSchema::new(
            "t4",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("score", DataType::Float),
                Column::new("samples", DataType::Float.array_of()),
                Column::new(
                    "pt",
                    DataType::Struct(vec![
                        ("x".into(), DataType::Float),
                        ("n".into(), DataType::Int),
                    ]),
                ),
            ],
            vec![0],
        );
        let mut row = vec![
            Value::Int(1),
            Value::Int(5),
            Value::Array(vec![Value::Int(2), Value::Float(3.5), Value::Null]),
            Value::Struct(vec![Value::Int(7), Value::Int(9)]),
        ];
        s.canonicalize_row(&mut row);
        assert_eq!(row[0], Value::Int(1), "Int column untouched");
        assert!(matches!(row[1], Value::Float(f) if f == 5.0));
        assert!(matches!(row[2], Value::Array(ref vs)
            if matches!(vs[0], Value::Float(f) if f == 2.0) && vs[2] == Value::Null));
        let Value::Struct(fields) = &row[3] else { panic!("struct") };
        assert!(matches!(fields[0], Value::Float(f) if f == 7.0), "Float struct field widened");
        assert_eq!(fields[1], Value::Int(9), "Int struct field untouched");
    }

    #[test]
    fn no_key_tables_have_no_key() {
        let s = TableSchema::new("t3", vec![Column::new("v", DataType::Int)], vec![]);
        assert_eq!(s.key_of(&[Value::Int(1)]), None);
    }
}
