//! # erbium-storage
//!
//! The in-memory relational storage substrate underneath ErbiumDB.
//!
//! The CIDR'25 paper layers its prototype on PostgreSQL; this crate is the
//! from-scratch Rust substitute. It provides everything the E/R layer needs
//! from a relational backend:
//!
//! * a typed [`Value`] model including arrays and composite (struct) values,
//!   so that hierarchical physical representations (mapping M2/M5 in the
//!   paper) can be stored natively;
//! * slotted row [`Table`]s with primary-key and secondary hash/BTree
//!   [`index`]es;
//! * a [`Catalog`] of tables plus a persisted metadata area (the paper stores
//!   the chosen E/R mapping "in a table in the database as a JSON object");
//! * undo-log [`txn`] transactions so that a single logical E/R update that
//!   touches several physical tables commits or rolls back atomically — the
//!   paper calls this out as one of the two key OLTP challenges;
//! * [`factorized`] multi-relation storage (the paper's third physical
//!   representation target): the join of two relations stored compactly with
//!   physical pointers and aggregate pushdown;
//! * per-table [`stats`] used by the query optimizer and the mapping advisor.

pub mod buffer_pool;
pub mod catalog;
pub mod column;
pub mod error;
pub mod factorized;
pub mod group_commit;
pub mod index;
pub mod pages;
pub mod row;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod txn;
pub mod wal;

/// Runtime values and data types.
///
/// The definitions moved to `erbium-model` (the wire protocol and client
/// crate need them without pulling in storage); this re-export keeps every
/// `erbium_storage::{Value, DataType}` path working unchanged.
pub mod value {
    pub use erbium_model::value::{DataType, Value};
}

pub use buffer_pool::{BufferPool, BufferPoolStats, PAGE_SIZE};
pub use catalog::Catalog;
pub use column::{Bitmap, ColumnSlice, Columns, StringDict};
pub use pages::SlotPin;
pub use error::{StorageError, StorageResult};
pub use factorized::{Csr, FactorizedTable};
pub use group_commit::GroupCommitter;
pub use index::{BTreeIndex, HashIndex, IndexKind};
pub use row::{Row, RowId};
pub use schema::{Column, TableSchema};
pub use snapshot::{
    write_checkpoint, CheckpointKind, Recovered, MAX_DELTA_CHAIN, SNAPSHOT_FILE, WAL_FILE,
};
pub use stats::{CatalogStats, ColumnStats, TableStats};
pub use table::Table;
pub use txn::{Transaction, UndoEntry};
pub use value::{DataType, Value};
pub use wal::{FactSide, SyncPolicy, Wal, WalRecord};
