//! Undo-log transactions spanning multiple tables.
//!
//! The paper identifies "a single update may require updating multiple
//! tables (depending on the mapping of the E/R model to the physical
//! storage)" as a key OLTP challenge of the E/R abstraction. The mapping
//! layer's CRUD translator emits several physical operations per logical
//! operation; this module makes that group atomic: run every operation
//! through a [`Transaction`], then [`Transaction::commit`] (drop the log) or
//! [`Transaction::rollback`] (replay inverse operations newest-first).

use crate::catalog::Catalog;
use crate::error::{StorageError, StorageResult};
use crate::row::{Row, RowId};

/// One inverse operation recorded in the undo log.
#[derive(Debug, Clone)]
pub enum UndoEntry {
    /// A row was inserted; undo by deleting it.
    Insert { table: String, rid: RowId },
    /// A row was deleted; undo by restoring the old contents into its slot.
    Delete { table: String, rid: RowId, old: Row },
    /// A row was updated; undo by writing the old contents back.
    Update { table: String, rid: RowId, old: Row },
    /// A table was created; undo by dropping it.
    CreateTable { table: String },
}

/// An in-flight multi-table transaction.
///
/// The transaction does not take locks — the storage layer is single-writer
/// by construction (the `Database` facade serializes writers). What it
/// provides is atomicity: all-or-nothing application of a group of physical
/// mutations.
#[derive(Debug, Default)]
pub struct Transaction {
    undo: Vec<UndoEntry>,
}

impl Transaction {
    pub fn new() -> Transaction {
        Transaction::default()
    }

    /// Number of operations performed so far.
    pub fn len(&self) -> usize {
        self.undo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.undo.is_empty()
    }

    /// Insert through the transaction.
    pub fn insert(&mut self, cat: &mut Catalog, table: &str, row: Row) -> StorageResult<RowId> {
        let rid = cat.table_mut(table)?.insert(row)?;
        self.undo.push(UndoEntry::Insert { table: table.to_string(), rid });
        Ok(rid)
    }

    /// Update through the transaction.
    pub fn update(&mut self, cat: &mut Catalog, table: &str, rid: RowId, new_row: Row) -> StorageResult<()> {
        let old = cat.table_mut(table)?.update(rid, new_row)?;
        self.undo.push(UndoEntry::Update { table: table.to_string(), rid, old });
        Ok(())
    }

    /// Delete through the transaction.
    pub fn delete(&mut self, cat: &mut Catalog, table: &str, rid: RowId) -> StorageResult<Row> {
        let old = cat.table_mut(table)?.delete(rid)?;
        self.undo.push(UndoEntry::Delete { table: table.to_string(), rid, old: old.clone() });
        Ok(old)
    }

    /// Create a table through the transaction (rolled back by dropping).
    pub fn create_table(&mut self, cat: &mut Catalog, table: crate::table::Table) -> StorageResult<()> {
        let name = table.name().to_string();
        cat.create_table(table)?;
        self.undo.push(UndoEntry::CreateTable { table: name });
        Ok(())
    }

    /// Make the transaction's effects permanent.
    pub fn commit(self) {
        // Dropping the undo log is all that is needed.
    }

    /// Revert every operation, newest first.
    pub fn rollback(mut self, cat: &mut Catalog) -> StorageResult<()> {
        while let Some(entry) = self.undo.pop() {
            match entry {
                UndoEntry::Insert { table, rid } => {
                    cat.table_mut(&table)?.delete(rid)?;
                }
                UndoEntry::Delete { table, rid, old } => {
                    cat.table_mut(&table)?.restore(rid, old)?;
                }
                UndoEntry::Update { table, rid, old } => {
                    cat.table_mut(&table)?.update(rid, old)?;
                }
                UndoEntry::CreateTable { table } => {
                    cat.drop_table(&table)?;
                }
            }
        }
        Ok(())
    }

    /// Run `f` atomically: commit on `Ok`, roll back on `Err`.
    pub fn run<T>(
        cat: &mut Catalog,
        f: impl FnOnce(&mut Transaction, &mut Catalog) -> StorageResult<T>,
    ) -> StorageResult<T> {
        let mut txn = Transaction::new();
        match f(&mut txn, cat) {
            Ok(v) => {
                txn.commit();
                Ok(v)
            }
            Err(e) => {
                txn.rollback(cat).map_err(|re| {
                    StorageError::Internal(format!("rollback failed: {re} (original error: {e})"))
                })?;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn setup() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(Table::new(TableSchema::new(
            "t",
            vec![Column::not_null("id", DataType::Int), Column::new("v", DataType::Text)],
            vec![0],
        )))
        .unwrap();
        c
    }

    fn row(id: i64, v: &str) -> Row {
        vec![Value::Int(id), Value::str(v)]
    }

    #[test]
    fn commit_keeps_changes() {
        let mut c = setup();
        let mut txn = Transaction::new();
        txn.insert(&mut c, "t", row(1, "a")).unwrap();
        txn.commit();
        assert_eq!(c.table("t").unwrap().len(), 1);
    }

    #[test]
    fn rollback_reverts_mixed_operations_in_order() {
        let mut c = setup();
        let rid0 = c.table_mut("t").unwrap().insert(row(1, "a")).unwrap();
        c.table_mut("t").unwrap().insert(row(2, "b")).unwrap();

        let mut txn = Transaction::new();
        txn.insert(&mut c, "t", row(3, "c")).unwrap();
        txn.update(&mut c, "t", rid0, row(1, "a2")).unwrap();
        txn.delete(&mut c, "t", rid0).unwrap();
        txn.rollback(&mut c).unwrap();

        let t = c.table("t").unwrap();
        assert_eq!(t.len(), 2);
        let (_, r) = t.lookup_pk(&Value::Int(1)).unwrap();
        assert_eq!(r[1], Value::str("a"), "update also reverted");
        assert!(t.lookup_pk(&Value::Int(3)).is_none());
    }

    #[test]
    fn run_rolls_back_on_error() {
        let mut c = setup();
        let result: StorageResult<()> = Transaction::run(&mut c, |txn, cat| {
            txn.insert(cat, "t", row(1, "a"))?;
            txn.insert(cat, "t", row(1, "dup"))?; // duplicate key fails
            Ok(())
        });
        assert!(result.is_err());
        assert_eq!(c.table("t").unwrap().len(), 0, "first insert rolled back");
    }

    #[test]
    fn run_commits_on_success() {
        let mut c = setup();
        Transaction::run(&mut c, |txn, cat| {
            txn.insert(cat, "t", row(1, "a"))?;
            txn.insert(cat, "t", row(2, "b"))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(c.table("t").unwrap().len(), 2);
    }

    #[test]
    fn create_table_rolls_back() {
        let mut c = setup();
        let result: StorageResult<()> = Transaction::run(&mut c, |txn, cat| {
            txn.create_table(
                cat,
                Table::new(TableSchema::new(
                    "side",
                    vec![Column::not_null("k", DataType::Int)],
                    vec![0],
                )),
            )?;
            txn.insert(cat, "side", vec![Value::Int(9)])?;
            Err(StorageError::Internal("boom".into()))
        });
        assert!(result.is_err());
        assert!(!c.has_table("side"));
    }

    #[test]
    fn pk_index_consistent_after_rollback() {
        let mut c = setup();
        let rid = c.table_mut("t").unwrap().insert(row(1, "a")).unwrap();
        let mut txn = Transaction::new();
        txn.delete(&mut c, "t", rid).unwrap();
        txn.insert(&mut c, "t", row(1, "reborn")).unwrap();
        txn.rollback(&mut c).unwrap();
        let (_, r) = c.table("t").unwrap().lookup_pk(&Value::Int(1)).unwrap();
        assert_eq!(r[1], Value::str("a"));
    }
}
