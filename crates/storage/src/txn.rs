//! Undo-log transactions spanning multiple tables — now WAL-aware.
//!
//! The paper identifies "a single update may require updating multiple
//! tables (depending on the mapping of the E/R model to the physical
//! storage)" as a key OLTP challenge of the E/R abstraction. The mapping
//! layer's CRUD translator emits several physical operations per logical
//! operation; this module makes that group atomic: run every operation
//! through a [`Transaction`], then [`Transaction::commit`] (drop the log) or
//! [`Transaction::rollback`] (replay inverse operations newest-first).
//!
//! Durability rides the same grouping. A logging transaction additionally
//! accumulates redo records ([`WalRecord`]s, post-canonicalization so redo
//! reproduces bit-exact state) and, on success, flushes them as ONE
//! `Begin .. ops .. Commit` group to the [`Wal`] — see
//! [`Transaction::run_with`]. Rolled-back transactions never touch disk,
//! and a crash tears at most the (discarded) tail of one group.
//!
//! Factorized structures are covered too: the `fact_*` methods route member
//! inserts/updates/deletes and link/unlink through the same undo log and
//! WAL group, closing the gap where factorized co-location used to bypass
//! atomicity entirely.

use crate::catalog::Catalog;
use crate::error::{StorageError, StorageResult};
use crate::row::{Row, RowId};
use crate::wal::{FactSide, Wal, WalRecord};

/// One inverse operation recorded in the undo log.
#[derive(Debug, Clone)]
pub enum UndoEntry {
    /// A row was inserted; undo by deleting it.
    Insert { table: String, rid: RowId },
    /// A contiguous batch landed at the table's tail; undo by deleting the
    /// batch slots (newest first).
    BulkInsert { table: String, first: RowId, count: usize },
    /// A row was deleted; undo by restoring the old contents into its slot.
    Delete { table: String, rid: RowId, old: Row },
    /// A row was updated; undo by writing the old contents back.
    Update { table: String, rid: RowId, old: Row },
    /// A table was created; undo by dropping it.
    CreateTable { table: String },
    /// A factorized member row was inserted; undo by deleting it.
    FactInsert { table: String, side: FactSide, rid: RowId },
    /// A factorized member row was updated; undo by writing the old back.
    FactUpdate { table: String, side: FactSide, rid: RowId, old: Row },
    /// A factorized member row was deleted (cascading its links); undo by
    /// restoring the row and re-adding every cascaded link.
    FactDelete { table: String, side: FactSide, rid: RowId, old: Row, links: Vec<RowId> },
    /// A link pair was added; undo by unlinking.
    FactLink { table: String, l: RowId, r: RowId },
    /// A link pair was removed; undo by re-linking.
    FactUnlink { table: String, l: RowId, r: RowId },
}

/// An in-flight multi-table transaction.
///
/// The transaction does not take locks — the storage layer is single-writer
/// by construction (the `Database` facade serializes writers). What it
/// provides is atomicity: all-or-nothing application of a group of physical
/// mutations, plus (when constructed with [`Transaction::logged`]) a redo
/// log destined for the WAL.
#[derive(Debug, Default)]
pub struct Transaction {
    undo: Vec<UndoEntry>,
    /// Redo records accumulated for the WAL. Empty unless `logging`.
    log: Vec<WalRecord>,
    logging: bool,
}

impl Transaction {
    pub fn new() -> Transaction {
        Transaction::default()
    }

    /// A transaction that additionally accumulates WAL redo records; flush
    /// them at commit with [`Transaction::flush_to_wal`] (or use
    /// [`Transaction::run_with`], which does both ends).
    pub fn logged() -> Transaction {
        Transaction { logging: true, ..Transaction::default() }
    }

    /// Number of operations performed so far.
    pub fn len(&self) -> usize {
        self.undo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.undo.is_empty()
    }

    /// Insert through the transaction.
    pub fn insert(&mut self, cat: &mut Catalog, table: &str, row: Row) -> StorageResult<RowId> {
        let rid = cat.table_mut(table)?.insert(row)?;
        self.undo.push(UndoEntry::Insert { table: table.to_string(), rid });
        if self.logging {
            // Log the canonicalized stored representation, not the input:
            // redo bypasses validation and must reproduce bit-exact state.
            let stored = cat.table(table)?.get(rid).cloned().unwrap_or_default();
            self.log.push(WalRecord::Insert { table: table.to_string(), rid: rid.0, row: stored });
        }
        Ok(rid)
    }

    /// Bulk-insert a contiguous batch through the transaction — the
    /// bulk-ingest fast path. One undo entry and ONE compact
    /// [`WalRecord::BulkInsert`] cover the whole batch (the per-row path
    /// logs one record per row). Returns `(first RowId, count)`; the batch
    /// occupies slots `first .. first + count` at the table's tail (see
    /// [`crate::table::Table::bulk_append`]).
    pub fn bulk_insert(
        &mut self,
        cat: &mut Catalog,
        table: &str,
        rows: Vec<Row>,
    ) -> StorageResult<(RowId, usize)> {
        let (first, n) = cat.table_mut(table)?.bulk_append(rows)?;
        if n == 0 {
            return Ok((RowId(first), 0));
        }
        self.undo.push(UndoEntry::BulkInsert {
            table: table.to_string(),
            first: RowId(first),
            count: n,
        });
        if self.logging {
            // Log the canonicalized stored representation (see `insert`).
            let t = cat.table(table)?;
            let stored: Vec<Row> = (first..first + n as u64)
                .map(|slot| t.get(RowId(slot)).cloned().unwrap_or_default())
                .collect();
            self.log.push(WalRecord::BulkInsert { table: table.to_string(), first, rows: stored });
        }
        Ok((RowId(first), n))
    }

    /// Update through the transaction.
    pub fn update(
        &mut self,
        cat: &mut Catalog,
        table: &str,
        rid: RowId,
        new_row: Row,
    ) -> StorageResult<()> {
        let old = cat.table_mut(table)?.update(rid, new_row)?;
        self.undo.push(UndoEntry::Update { table: table.to_string(), rid, old });
        if self.logging {
            let stored = cat.table(table)?.get(rid).cloned().unwrap_or_default();
            self.log.push(WalRecord::Update { table: table.to_string(), rid: rid.0, row: stored });
        }
        Ok(())
    }

    /// Delete through the transaction.
    pub fn delete(&mut self, cat: &mut Catalog, table: &str, rid: RowId) -> StorageResult<Row> {
        let old = cat.table_mut(table)?.delete(rid)?;
        self.undo.push(UndoEntry::Delete { table: table.to_string(), rid, old: old.clone() });
        if self.logging {
            self.log.push(WalRecord::Delete { table: table.to_string(), rid: rid.0 });
        }
        Ok(old)
    }

    /// Create a table through the transaction (rolled back by dropping).
    pub fn create_table(&mut self, cat: &mut Catalog, table: crate::table::Table) -> StorageResult<()> {
        let name = table.name().to_string();
        let schema_json = if self.logging {
            serde_json::to_string(table.schema())
                .map_err(|e| StorageError::Metadata(e.to_string()))?
        } else {
            String::new()
        };
        cat.create_table(table)?;
        self.undo.push(UndoEntry::CreateTable { table: name });
        if self.logging {
            self.log.push(WalRecord::CreateTable { schema_json });
        }
        Ok(())
    }

    /// Insert a member row of a factorized structure.
    pub fn fact_insert(
        &mut self,
        cat: &mut Catalog,
        name: &str,
        side: FactSide,
        row: Row,
    ) -> StorageResult<RowId> {
        let ft = cat.factorized_mut(name)?;
        let rid = match side {
            FactSide::Left => ft.insert_left(row)?,
            FactSide::Right => ft.insert_right(row)?,
        };
        self.undo.push(UndoEntry::FactInsert { table: name.to_string(), side, rid });
        if self.logging {
            let ft = cat.factorized(name)?;
            let member = match side {
                FactSide::Left => ft.left(),
                FactSide::Right => ft.right(),
            };
            let stored = member.get(rid).cloned().unwrap_or_default();
            self.log.push(WalRecord::FactInsert {
                name: name.to_string(),
                side,
                rid: rid.0,
                row: stored,
            });
        }
        Ok(rid)
    }

    /// Update a member row of a factorized structure (links preserved).
    pub fn fact_update(
        &mut self,
        cat: &mut Catalog,
        name: &str,
        side: FactSide,
        rid: RowId,
        new_row: Row,
    ) -> StorageResult<()> {
        let ft = cat.factorized_mut(name)?;
        let old = match side {
            FactSide::Left => ft.update_left(rid, new_row)?,
            FactSide::Right => ft.update_right(rid, new_row)?,
        };
        self.undo.push(UndoEntry::FactUpdate { table: name.to_string(), side, rid, old });
        if self.logging {
            let ft = cat.factorized(name)?;
            let member = match side {
                FactSide::Left => ft.left(),
                FactSide::Right => ft.right(),
            };
            let stored = member.get(rid).cloned().unwrap_or_default();
            self.log.push(WalRecord::FactUpdate {
                name: name.to_string(),
                side,
                rid: rid.0,
                row: stored,
            });
        }
        Ok(())
    }

    /// Delete a member row of a factorized structure. Its links cascade
    /// (exactly as online); the undo entry remembers them so rollback can
    /// restore both row and pointers.
    pub fn fact_delete(
        &mut self,
        cat: &mut Catalog,
        name: &str,
        side: FactSide,
        rid: RowId,
    ) -> StorageResult<Row> {
        let ft = cat.factorized_mut(name)?;
        let links: Vec<RowId> = match side {
            FactSide::Left => ft.neighbours_right(rid).to_vec(),
            FactSide::Right => ft.neighbours_left(rid).to_vec(),
        };
        let old = match side {
            FactSide::Left => ft.delete_left(rid)?,
            FactSide::Right => ft.delete_right(rid)?,
        };
        self.undo.push(UndoEntry::FactDelete {
            table: name.to_string(),
            side,
            rid,
            old: old.clone(),
            links,
        });
        if self.logging {
            self.log.push(WalRecord::FactDelete { name: name.to_string(), side, rid: rid.0 });
        }
        Ok(old)
    }

    /// Add a (left, right) link pair in a factorized structure.
    pub fn fact_link(&mut self, cat: &mut Catalog, name: &str, l: RowId, r: RowId) -> StorageResult<()> {
        cat.factorized_mut(name)?.link(l, r)?;
        self.undo.push(UndoEntry::FactLink { table: name.to_string(), l, r });
        if self.logging {
            self.log.push(WalRecord::FactLink { name: name.to_string(), l: l.0, r: r.0 });
        }
        Ok(())
    }

    /// Remove a (left, right) link pair; `Ok(false)` when absent.
    pub fn fact_unlink(
        &mut self,
        cat: &mut Catalog,
        name: &str,
        l: RowId,
        r: RowId,
    ) -> StorageResult<bool> {
        let removed = cat.factorized_mut(name)?.unlink(l, r);
        if removed {
            self.undo.push(UndoEntry::FactUnlink { table: name.to_string(), l, r });
            if self.logging {
                self.log.push(WalRecord::FactUnlink { name: name.to_string(), l: l.0, r: r.0 });
            }
        }
        Ok(removed)
    }

    /// Write the accumulated redo records to the WAL as one committed
    /// group. Returns the group's transaction id (0 for an empty group).
    /// The redo log is drained; the undo log is untouched, so the caller
    /// can still roll back if the flush itself fails.
    pub fn flush_to_wal(&mut self, wal: &mut Wal) -> StorageResult<u64> {
        let records = std::mem::take(&mut self.log);
        wal.commit_group(&records)
    }

    /// Like [`Transaction::flush_to_wal`] but *deferring durability*: the
    /// group is appended without applying the sync policy, and the caller
    /// receives `(txn_id, lsn)` to park on a
    /// [`crate::group_commit::GroupCommitter`] after releasing the writer
    /// lock. An empty transaction returns LSN 0 (nothing to make durable —
    /// `wait_durable(0)` is an immediate no-op).
    pub fn flush_to_wal_deferred(&mut self, wal: &mut Wal) -> StorageResult<(u64, u64)> {
        let records = std::mem::take(&mut self.log);
        if records.is_empty() {
            let (txn, _) = wal.append_group(&records)?;
            return Ok((txn, 0));
        }
        wal.append_group(&records)
    }

    /// Make the transaction's effects permanent.
    pub fn commit(self) {
        // Dropping the undo log is all that is needed.
    }

    /// Revert every operation, newest first.
    pub fn rollback(mut self, cat: &mut Catalog) -> StorageResult<()> {
        while let Some(entry) = self.undo.pop() {
            match entry {
                UndoEntry::Insert { table, rid } => {
                    cat.table_mut(&table)?.delete(rid)?;
                }
                UndoEntry::BulkInsert { table, first, count } => {
                    let t = cat.table_mut(&table)?;
                    for i in (0..count).rev() {
                        t.delete(RowId(first.0 + i as u64))?;
                    }
                }
                UndoEntry::Delete { table, rid, old } => {
                    cat.table_mut(&table)?.restore(rid, old)?;
                }
                UndoEntry::Update { table, rid, old } => {
                    cat.table_mut(&table)?.update(rid, old)?;
                }
                UndoEntry::CreateTable { table } => {
                    cat.drop_table(&table)?;
                }
                UndoEntry::FactInsert { table, side, rid } => {
                    let ft = cat.factorized_mut(&table)?;
                    match side {
                        FactSide::Left => ft.delete_left(rid)?,
                        FactSide::Right => ft.delete_right(rid)?,
                    };
                }
                UndoEntry::FactUpdate { table, side, rid, old } => {
                    let ft = cat.factorized_mut(&table)?;
                    match side {
                        FactSide::Left => ft.update_left(rid, old)?,
                        FactSide::Right => ft.update_right(rid, old)?,
                    };
                }
                UndoEntry::FactDelete { table, side, rid, old, links } => {
                    let ft = cat.factorized_mut(&table)?;
                    match side {
                        FactSide::Left => {
                            ft.restore_left(rid, old)?;
                            for r in links {
                                ft.link(rid, r)?;
                            }
                        }
                        FactSide::Right => {
                            ft.restore_right(rid, old)?;
                            for l in links {
                                ft.link(l, rid)?;
                            }
                        }
                    }
                }
                UndoEntry::FactLink { table, l, r } => {
                    cat.factorized_mut(&table)?.unlink(l, r);
                }
                UndoEntry::FactUnlink { table, l, r } => {
                    cat.factorized_mut(&table)?.link(l, r)?;
                }
            }
        }
        Ok(())
    }

    /// Run `f` atomically: commit on `Ok`, roll back on `Err`.
    pub fn run<T>(
        cat: &mut Catalog,
        f: impl FnOnce(&mut Transaction, &mut Catalog) -> StorageResult<T>,
    ) -> StorageResult<T> {
        Transaction::run_with(cat, None, f)
    }

    /// Run `f` atomically AND durably: on `Ok`, the group's redo records
    /// are written to `wal` (when present) before the in-memory commit is
    /// acknowledged; on `Err` — including a failed WAL flush — every
    /// in-memory effect is rolled back and nothing reaches disk.
    pub fn run_with<T>(
        cat: &mut Catalog,
        wal: Option<&mut Wal>,
        f: impl FnOnce(&mut Transaction, &mut Catalog) -> StorageResult<T>,
    ) -> StorageResult<T> {
        let mut txn = if wal.is_some() { Transaction::logged() } else { Transaction::new() };
        match f(&mut txn, cat) {
            Ok(v) => {
                if let Some(w) = wal {
                    if let Err(e) = txn.flush_to_wal(w) {
                        txn.rollback(cat).map_err(|re| {
                            StorageError::Internal(format!(
                                "rollback failed: {re} (original error: {e})"
                            ))
                        })?;
                        return Err(e);
                    }
                }
                txn.commit();
                Ok(v)
            }
            Err(e) => {
                txn.rollback(cat).map_err(|re| {
                    StorageError::Internal(format!("rollback failed: {re} (original error: {e})"))
                })?;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn setup() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(Table::new(TableSchema::new(
            "t",
            vec![Column::not_null("id", DataType::Int), Column::new("v", DataType::Text)],
            vec![0],
        )))
        .unwrap();
        c
    }

    fn row(id: i64, v: &str) -> Row {
        vec![Value::Int(id), Value::str(v)]
    }

    #[test]
    fn commit_keeps_changes() {
        let mut c = setup();
        let mut txn = Transaction::new();
        txn.insert(&mut c, "t", row(1, "a")).unwrap();
        txn.commit();
        assert_eq!(c.table("t").unwrap().len(), 1);
    }

    #[test]
    fn rollback_reverts_mixed_operations_in_order() {
        let mut c = setup();
        let rid0 = c.table_mut("t").unwrap().insert(row(1, "a")).unwrap();
        c.table_mut("t").unwrap().insert(row(2, "b")).unwrap();

        let mut txn = Transaction::new();
        txn.insert(&mut c, "t", row(3, "c")).unwrap();
        txn.update(&mut c, "t", rid0, row(1, "a2")).unwrap();
        txn.delete(&mut c, "t", rid0).unwrap();
        txn.rollback(&mut c).unwrap();

        let t = c.table("t").unwrap();
        assert_eq!(t.len(), 2);
        let (_, r) = t.lookup_pk(&Value::Int(1)).unwrap();
        assert_eq!(r[1], Value::str("a"), "update also reverted");
        assert!(t.lookup_pk(&Value::Int(3)).is_none());
    }

    #[test]
    fn rollback_restores_secondary_indexes() {
        use crate::index::IndexKind;
        let mut c = setup();
        c.table_mut("t").unwrap().create_index("ix_v", vec![1], IndexKind::Hash).unwrap();
        let rid0 = c.table_mut("t").unwrap().insert(row(1, "a")).unwrap();
        let rid1 = c.table_mut("t").unwrap().insert(row(2, "b")).unwrap();

        let mut txn = Transaction::new();
        txn.update(&mut c, "t", rid0, row(1, "zz")).unwrap();
        txn.delete(&mut c, "t", rid1).unwrap();
        txn.insert(&mut c, "t", row(3, "c")).unwrap();
        txn.rollback(&mut c).unwrap();

        let t = c.table("t").unwrap();
        let by = |v: &str| {
            t.index_lookup(&[1], &Value::str(v))
                .map(|hits| hits.into_iter().map(|(rid, _)| rid).collect::<Vec<_>>())
                .unwrap_or_default()
        };
        assert_eq!(by("a"), vec![rid0], "updated key restored in the index");
        assert_eq!(by("b"), vec![rid1], "deleted row restored in the index");
        assert!(by("zz").is_empty(), "transient update key removed");
        assert!(by("c").is_empty(), "rolled-back insert not indexed");
    }

    #[test]
    fn run_rolls_back_on_error() {
        let mut c = setup();
        let result: StorageResult<()> = Transaction::run(&mut c, |txn, cat| {
            txn.insert(cat, "t", row(1, "a"))?;
            txn.insert(cat, "t", row(1, "dup"))?; // duplicate key fails
            Ok(())
        });
        assert!(result.is_err());
        assert_eq!(c.table("t").unwrap().len(), 0, "first insert rolled back");
    }

    #[test]
    fn run_commits_on_success() {
        let mut c = setup();
        Transaction::run(&mut c, |txn, cat| {
            txn.insert(cat, "t", row(1, "a"))?;
            txn.insert(cat, "t", row(2, "b"))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(c.table("t").unwrap().len(), 2);
    }

    #[test]
    fn create_table_rolls_back() {
        let mut c = setup();
        let result: StorageResult<()> = Transaction::run(&mut c, |txn, cat| {
            txn.create_table(
                cat,
                Table::new(TableSchema::new(
                    "side",
                    vec![Column::not_null("k", DataType::Int)],
                    vec![0],
                )),
            )?;
            txn.insert(cat, "side", vec![Value::Int(9)])?;
            Err(StorageError::Internal("boom".into()))
        });
        assert!(result.is_err());
        assert!(!c.has_table("side"));
    }

    #[test]
    fn pk_index_consistent_after_rollback() {
        let mut c = setup();
        let rid = c.table_mut("t").unwrap().insert(row(1, "a")).unwrap();
        let mut txn = Transaction::new();
        txn.delete(&mut c, "t", rid).unwrap();
        txn.insert(&mut c, "t", row(1, "reborn")).unwrap();
        txn.rollback(&mut c).unwrap();
        let (_, r) = c.table("t").unwrap().lookup_pk(&Value::Int(1)).unwrap();
        assert_eq!(r[1], Value::str("a"));
    }

    #[test]
    fn bulk_insert_rolls_back_whole_batch() {
        let mut c = setup();
        c.table_mut("t").unwrap().insert(row(1, "keep")).unwrap();
        let mut txn = Transaction::new();
        let (first, n) = txn
            .bulk_insert(&mut c, "t", vec![row(2, "a"), row(3, "b"), row(4, "c")])
            .unwrap();
        assert_eq!((first, n), (RowId(1), 3));
        // A later per-row delete inside the same txn composes with the
        // batch undo (it restores the slot first, newest-first).
        txn.delete(&mut c, "t", RowId(2)).unwrap();
        txn.rollback(&mut c).unwrap();
        let t = c.table("t").unwrap();
        assert_eq!(t.len(), 1, "whole batch reverted");
        assert!(t.lookup_pk(&Value::Int(1)).is_some());
        assert!(t.lookup_pk(&Value::Int(3)).is_none());
    }

    #[test]
    fn bulk_insert_logs_one_compact_record() {
        let mut c = Catalog::new();
        c.create_table(Table::new(TableSchema::new(
            "m",
            vec![Column::not_null("id", DataType::Int), Column::new("score", DataType::Float)],
            vec![0],
        )))
        .unwrap();
        let mut txn = Transaction::logged();
        txn.bulk_insert(
            &mut c,
            "m",
            vec![vec![Value::Int(1), Value::Int(5)], vec![Value::Int(2), Value::Null]],
        )
        .unwrap();
        assert_eq!(txn.log.len(), 1, "one record for the whole batch");
        match &txn.log[0] {
            WalRecord::BulkInsert { table, first, rows } => {
                assert_eq!((table.as_str(), *first, rows.len()), ("m", 0, 2));
                assert!(
                    matches!(rows[0][1], Value::Float(f) if f == 5.0),
                    "logged post-canonicalization"
                );
            }
            other => panic!("unexpected record {other:?}"),
        }
        // Empty batches log nothing and create no undo work.
        assert_eq!(txn.bulk_insert(&mut c, "m", Vec::new()).unwrap().1, 0);
        assert_eq!(txn.log.len(), 1);
        txn.commit();
    }

    // ---- factorized coverage -------------------------------------------

    fn setup_fact() -> Catalog {
        let mut c = Catalog::new();
        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int), Column::new("lv", DataType::Text)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int), Column::new("rv", DataType::Int)],
            vec![0],
        );
        c.create_factorized("f", crate::factorized::FactorizedTable::new("f", left, right))
            .unwrap();
        c
    }

    #[test]
    fn fact_rollback_restores_rows_and_links() {
        let mut c = setup_fact();
        // Pre-existing state: one linked pair.
        let (l0, r0) = {
            let ft = c.factorized_mut("f").unwrap();
            let l0 = ft.insert_left(vec![Value::Int(1), Value::str("a")]).unwrap();
            let r0 = ft.insert_right(vec![Value::Int(10), Value::Int(100)]).unwrap();
            ft.link(l0, r0).unwrap();
            (l0, r0)
        };

        let mut txn = Transaction::new();
        // New member rows + link.
        let l1 = txn.fact_insert(&mut c, "f", FactSide::Left, vec![Value::Int(2), Value::str("b")]).unwrap();
        txn.fact_link(&mut c, "f", l1, r0).unwrap();
        // Update pre-existing member.
        txn.fact_update(&mut c, "f", FactSide::Right, r0, vec![Value::Int(10), Value::Int(999)]).unwrap();
        // Unlink, then delete the pre-existing left row (cascades nothing now).
        txn.fact_unlink(&mut c, "f", l0, r0).unwrap();
        txn.fact_delete(&mut c, "f", FactSide::Left, l0).unwrap();

        txn.rollback(&mut c).unwrap();

        let ft = c.factorized("f").unwrap();
        assert_eq!(ft.left().len(), 1, "inserted left row gone, deleted one restored");
        assert_eq!(ft.right().len(), 1);
        assert_eq!(ft.count_join(), 1, "original link restored, new link removed");
        assert_eq!(ft.neighbours_right(l0), &[r0]);
        let (_, r) = ft.right().lookup_pk(&Value::Int(10)).unwrap();
        assert_eq!(r[1], Value::Int(100), "member update reverted");
        // PK index of the member restored too.
        assert!(ft.left().lookup_pk(&Value::Int(1)).is_some());
        assert!(ft.left().lookup_pk(&Value::Int(2)).is_none());
    }

    #[test]
    fn fact_delete_rollback_restores_cascaded_links() {
        let mut c = setup_fact();
        let (l0, r0, r1) = {
            let ft = c.factorized_mut("f").unwrap();
            let l0 = ft.insert_left(vec![Value::Int(1), Value::Null]).unwrap();
            let r0 = ft.insert_right(vec![Value::Int(10), Value::Null]).unwrap();
            let r1 = ft.insert_right(vec![Value::Int(20), Value::Null]).unwrap();
            ft.link(l0, r0).unwrap();
            ft.link(l0, r1).unwrap();
            (l0, r0, r1)
        };
        let mut txn = Transaction::new();
        txn.fact_delete(&mut c, "f", FactSide::Left, l0).unwrap();
        assert_eq!(c.factorized("f").unwrap().count_join(), 0);
        txn.rollback(&mut c).unwrap();
        let ft = c.factorized("f").unwrap();
        assert_eq!(ft.count_join(), 2, "both cascaded links restored");
        let mut ns = ft.neighbours_right(l0).to_vec();
        ns.sort();
        assert_eq!(ns, vec![r0, r1]);
    }

    #[test]
    fn logged_txn_accumulates_canonical_rows() {
        let mut c = Catalog::new();
        c.create_table(Table::new(TableSchema::new(
            "m",
            vec![Column::not_null("id", DataType::Int), Column::new("score", DataType::Float)],
            vec![0],
        )))
        .unwrap();
        let mut txn = Transaction::logged();
        txn.insert(&mut c, "m", vec![Value::Int(1), Value::Int(5)]).unwrap();
        match &txn.log[0] {
            WalRecord::Insert { row, .. } => {
                assert!(matches!(row[1], Value::Float(f) if f == 5.0), "logged post-canonicalization");
            }
            other => panic!("unexpected record {other:?}"),
        }
        txn.commit();
    }
}
