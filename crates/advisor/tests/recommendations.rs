//! Advisor behaviour on the paper's workload patterns: the recommended
//! design should shift exactly the way Section 6's measurements say it
//! should.

use erbium_advisor::search::{CoChoice, HierarchyChoice};
use erbium_advisor::{Advisor, DesignChoice, LogicalStats, Workload};
use erbium_mapping::presets::paper;
use erbium_mapping::{EntityData, EntityStore, Lowering};
use erbium_model::fixtures;
use erbium_storage::{Catalog, Transaction, Value};

/// Logical stats resembling the paper's experiment instance (scaled down).
fn experiment_stats() -> LogicalStats {
    let mut s = LogicalStats::default();
    let exact: &[(&str, u64)] =
        &[("R", 40_000), ("R1", 15_000), ("R2", 15_000), ("R3", 10_000), ("R4", 10_000)];
    let mut extent = std::collections::HashMap::new();
    extent.insert("R3", 10_000u64);
    extent.insert("R4", 10_000);
    extent.insert("R1", 25_000);
    extent.insert("R2", 25_000);
    extent.insert("R", 90_000);
    for (e, n) in exact {
        s.exact.insert(e.to_string(), *n);
    }
    for (e, n) in &extent {
        s.extent.insert(e.to_string(), *n);
    }
    s.extent.insert("S".into(), 10_000);
    s.exact.insert("S".into(), 10_000);
    s.extent.insert("S1".into(), 20_000);
    s.exact.insert("S1".into(), 20_000);
    s.extent.insert("S2".into(), 5_000);
    s.exact.insert("S2".into(), 5_000);
    for a in ["r_mv1", "r_mv2", "r_mv3"] {
        s.mv_fanout.insert(("R".into(), a.into()), 3.0);
    }
    s.rel_count.insert("r_s".into(), 90_000);
    s.rel_count.insert("r2_s1".into(), 22_000);
    s.rel_count.insert("r1_r3".into(), 8_000);
    s.rel_count.insert("s_s1".into(), 20_000);
    s.rel_count.insert("s_s2".into(), 5_000);
    s
}

fn hierarchy_choice(rec: &erbium_advisor::Recommendation) -> HierarchyChoice {
    rec.choices
        .iter()
        .find_map(|c| match c {
            DesignChoice::Hierarchy(root, choice) if root == "R" => Some(*choice),
            _ => None,
        })
        .expect("hierarchy dimension present")
}

fn mv_inline_count(rec: &erbium_advisor::Recommendation) -> usize {
    rec.choices
        .iter()
        .filter(|c| matches!(c, DesignChoice::MvInline(_, _, true)))
        .count()
}

#[test]
fn array_heavy_workload_inlines_multivalued() {
    // E1/E3-style workload: fetch arrays, point lookups.
    let schema = fixtures::experiment();
    let advisor = Advisor::from_stats(schema, experiment_stats());
    let wl = Workload::new()
        .query("SELECT r.r_id, r.r_mv1, r.r_mv2, r.r_mv3 FROM R r")
        .unwrap()
        .weighted("SELECT r.r_mv1 FROM R r WHERE r.r_id = 42", 100.0)
        .unwrap();
    let rec = advisor.recommend(&wl).unwrap();
    assert!(rec.cost < rec.baseline_cost, "advisor must improve on M1");
    assert!(mv_inline_count(&rec) >= 2, "arrays should be inlined: {:?}", rec.choices);
}

#[test]
fn unnest_scan_workload_keeps_side_tables() {
    // E2-style: full unnested scans favour the normalized side table.
    let schema = fixtures::experiment();
    let advisor = Advisor::from_stats(schema, experiment_stats());
    let wl = Workload::new().query("SELECT UNNEST(r.r_mv1) FROM R r").unwrap();
    let rec = advisor.recommend(&wl).unwrap();
    let inlined = rec
        .choices
        .iter()
        .any(|c| matches!(c, DesignChoice::MvInline(_, a, true) if a == "r_mv1"));
    assert!(!inlined, "side table is the native unnested form: {:?}", rec.choices);
}

#[test]
fn subclass_scan_workload_prefers_disjoint_tables() {
    // E5-style: "all information for the R3 entities" — M4 wins in the
    // paper (no joins, least data scanned).
    let schema = fixtures::experiment();
    let advisor = Advisor::from_stats(schema, experiment_stats());
    let wl = Workload::new()
        .query("SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r")
        .unwrap();
    let rec = advisor.recommend(&wl).unwrap();
    assert_eq!(hierarchy_choice(&rec), HierarchyChoice::Full, "{:?}", rec.choices);
    assert!(rec.cost < rec.baseline_cost);
}

#[test]
fn colocated_join_workload_cost_model_prefers_factorized_over_m1() {
    // E9's direction: for the R2 ⋈ S1 join, factorized co-location must
    // cost less than the fully normalized design (the greedy search may
    // find an even better design via hierarchy splitting, so we check the
    // cost model's ranking of the paper's own M1-vs-M6 comparison).
    let schema = fixtures::experiment();
    let advisor = Advisor::from_stats(schema.clone(), experiment_stats());
    let wl = Workload::new()
        .weighted("SELECT r.r_id, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1", 50.0)
        .unwrap();
    let (m1_cost, _) = advisor.cost_of(&paper::m1(&schema), &wl).unwrap();
    let (m6_cost, _) = advisor
        .cost_of(&paper::m6(&schema, erbium_mapping::CoFormat::Factorized).unwrap(), &wl)
        .unwrap();
    assert!(m6_cost < m1_cost, "m6={m6_cost} must beat m1={m1_cost}");
    // And the search must find something at least as good as M6.
    let rec = advisor.recommend(&wl).unwrap();
    assert!(rec.cost <= m6_cost, "search result {} must match/beat M6 {m6_cost}", rec.cost);
    let _ = CoChoice::Factorized; // keep the variant exercised in this file
}

#[test]
fn mixed_workload_beats_baseline_and_reports_breakdown() {
    let schema = fixtures::experiment();
    let advisor = Advisor::from_stats(schema, experiment_stats());
    let wl = Workload::new()
        .query("SELECT r.r_id, r.r_mv1 FROM R r WHERE r.r_id = 7")
        .unwrap()
        .query("SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r")
        .unwrap()
        .query("SELECT r.r_id, s.s_a FROM R r JOIN S s VIA r_s WHERE s.s_b = 1")
        .unwrap();
    let rec = advisor.recommend(&wl).unwrap();
    assert_eq!(rec.per_query.len(), 3);
    assert!(rec.cost <= rec.baseline_cost);
    assert!(rec.candidates_evaluated > 5);
}

#[test]
fn cost_of_rejects_invalid_and_ranks_known_mappings() {
    // The paper's E1 query: M2 must cost less than M1.
    let schema = fixtures::experiment();
    let advisor = Advisor::from_stats(schema.clone(), experiment_stats());
    let wl = Workload::new()
        .query("SELECT r.r_id, r.r_mv1, r.r_mv2, r.r_mv3 FROM R r")
        .unwrap();
    let (m1_cost, _) = advisor.cost_of(&paper::m1(&schema), &wl).unwrap();
    let (m2_cost, _) = advisor.cost_of(&paper::m2(&schema), &wl).unwrap();
    assert!(
        m2_cost < m1_cost,
        "cost model must reproduce E1's direction: m1={m1_cost} m2={m2_cost}"
    );
}

#[test]
fn stats_gathering_from_live_database() {
    let schema = fixtures::experiment();
    let lw = Lowering::build(&schema, &paper::m1(&schema)).unwrap();
    let mut cat = Catalog::new();
    lw.install(&mut cat).unwrap();
    let store = EntityStore::new(&lw);
    let mut txn = Transaction::new();
    let data = |pairs: &[(&str, Value)]| -> EntityData {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    };
    store
        .insert(
            &mut cat,
            &mut txn,
            "S",
            &data(&[("s_id", Value::Int(1)), ("s_a", Value::str("x")), ("s_b", Value::Int(0))]),
            &[],
        )
        .unwrap();
    for i in 0..6i64 {
        store
            .insert(
                &mut cat,
                &mut txn,
                "R",
                &data(&[
                    ("r_id", Value::Int(i)),
                    ("r_a", Value::str("a")),
                    ("r_b", Value::Int(i)),
                    ("r_mv1", Value::Array(vec![Value::Int(1), Value::Int(2)])),
                    ("r_mv2", Value::Array(vec![])),
                    ("r_mv3", Value::Array(vec![Value::str("t")])),
                ]),
                &[("r_s", vec![Value::Int(1)])],
            )
            .unwrap();
    }
    txn.commit();
    let stats = LogicalStats::gather(&cat, &lw).unwrap();
    assert_eq!(stats.extent.get("R"), Some(&6));
    assert_eq!(stats.rel_count.get("r_s"), Some(&6));
    let f = stats.mv_fanout.get(&("R".to_string(), "r_mv1".to_string())).unwrap();
    assert!((f - 2.0).abs() < 1e-9);
}
