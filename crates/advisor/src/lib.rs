//! # erbium-advisor
//!
//! The workload-aware mapping advisor — the paper's "natural optimization
//! problem ...: automatically identify the best mapping for a given schema
//! and data and query workload".
//!
//! The advisor searches the space of graph covers the mapping layer can
//! express, driven by:
//!
//! * [`stats::LogicalStats`] — mapping-independent statistics gathered once
//!   from the current database (entity extent sizes, average multi-valued
//!   fan-outs, relationship cardinalities);
//! * [`stats::synthesize`] — projected physical table statistics for *any*
//!   candidate mapping, derived analytically (no data movement while
//!   searching);
//! * [`cost`] — a calibrated plan-cost estimator: each candidate mapping is
//!   installed schema-only into a phantom catalog, the workload queries are
//!   rewritten against it with the real [`erbium_mapping::QueryRewriter`]
//!   (so candidate costs reflect exactly the plans that would run), and the
//!   plans are costed bottom-up against the synthesized statistics;
//! * [`search`] — the design dimensions (multi-valued placement, hierarchy
//!   layout, weak-entity folding, relationship co-location) and a greedy
//!   coordinate-descent search with restarts over them.
//!
//! The result is a [`search::Recommendation`]: the winning mapping, its
//! estimated workload cost, the per-query breakdown, and an explanation of
//! each design choice.

pub mod cost;
pub mod search;
pub mod stats;
pub mod workload;

pub use cost::estimate_plan;
pub use search::{Advisor, DesignChoice, Recommendation, SearchConfig};
pub use stats::{synthesize, LogicalStats};
pub use workload::{Workload, WorkloadQuery};
