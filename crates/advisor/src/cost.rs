//! Analytic plan-cost estimation.
//!
//! Costs are unit-free "work" numbers: roughly, rows touched, weighted by
//! row width where scans are concerned. Only *relative* fidelity matters —
//! the advisor compares candidate mappings against each other, mirroring
//! how the paper compares M1–M6.

use crate::stats::SynthTableStats;
use erbium_engine::{BinOp, Expr, Plan, PlanKind};
use rustc_hash::FxHashMap;

/// Estimated cardinality and cost of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    pub rows: f64,
    pub cost: f64,
}

/// Default fan-out assumed for unnesting when no statistics are available.
const DEFAULT_ARRAY_LEN: f64 = 3.0;

/// Estimate a plan bottom-up against synthesized table statistics.
pub fn estimate_plan(plan: &Plan, stats: &FxHashMap<String, SynthTableStats>) -> Estimate {
    match &plan.kind {
        PlanKind::Scan { table, filters } => {
            let t = stats.get(table).copied().unwrap_or_default();
            let sel = filters.iter().map(|f| selectivity(f, t.rows)).product::<f64>();
            Estimate { rows: (t.rows * sel).max(0.0), cost: t.rows * (1.0 + t.width * 0.1) }
        }
        PlanKind::IndexLookup { table, keys, residual, .. } => {
            let t = stats.get(table).copied().unwrap_or_default();
            // Assume near-unique index reach.
            let base = keys.len() as f64;
            let sel = residual.iter().map(|f| selectivity(f, t.rows)).product::<f64>();
            Estimate { rows: (base * sel).max(0.0), cost: base * 2.0 }
        }
        PlanKind::IndexRange { table, residual, .. } => {
            let t = stats.get(table).copied().unwrap_or_default();
            // Assume the range selects ~20% of the table, reached directly.
            let base = t.rows * 0.2;
            let sel = residual.iter().map(|f| selectivity(f, t.rows)).product::<f64>();
            Estimate { rows: base * sel, cost: base + (t.rows.max(2.0)).log2() }
        }
        PlanKind::FactorizedScan { table, side, filters } => {
            let rows = match side {
                erbium_engine::plan::FactorizedSide::Join => {
                    stats.get(table).copied().unwrap_or_default().rows
                }
                erbium_engine::plan::FactorizedSide::Left => stats
                    .get(&format!("{table}#left"))
                    .map(|t| t.rows)
                    .unwrap_or_else(|| stats.get(table).copied().unwrap_or_default().rows / 2.0),
                erbium_engine::plan::FactorizedSide::Right => stats
                    .get(&format!("{table}#right"))
                    .map(|t| t.rows)
                    .unwrap_or_else(|| stats.get(table).copied().unwrap_or_default().rows / 2.0),
            };
            let sel = filters.iter().map(|f| selectivity(f, rows)).product::<f64>();
            Estimate { rows: rows * sel, cost: rows }
        }
        PlanKind::FactorizedCount { .. } => Estimate { rows: 1.0, cost: 1.0 },
        PlanKind::Filter { input, predicate } => {
            let e = estimate_plan(input, stats);
            let sel = selectivity(predicate, e.rows);
            Estimate { rows: e.rows * sel, cost: e.cost + e.rows }
        }
        PlanKind::Project { input, exprs } => {
            let e = estimate_plan(input, stats);
            Estimate { rows: e.rows, cost: e.cost + e.rows * 0.05 * exprs.len() as f64 }
        }
        PlanKind::Join { left, right, kind, left_keys, .. } => {
            let l = estimate_plan(left, stats);
            let r = estimate_plan(right, stats);
            let rows = match kind {
                erbium_engine::JoinKind::Semi => l.rows * 0.7,
                erbium_engine::JoinKind::Left => l.rows.max(key_join_rows(l.rows, r.rows, left_keys)),
                erbium_engine::JoinKind::Inner => key_join_rows(l.rows, r.rows, left_keys),
            };
            Estimate { rows, cost: l.cost + r.cost + l.rows + r.rows * 1.5 + rows * 0.5 }
        }
        PlanKind::Aggregate { input, group, .. } => {
            let e = estimate_plan(input, stats);
            let groups = if group.is_empty() { 1.0 } else { (e.rows * 0.3).max(1.0) };
            Estimate { rows: groups, cost: e.cost + e.rows * 1.2 }
        }
        PlanKind::Unnest { input, .. } => {
            let e = estimate_plan(input, stats);
            let rows = e.rows * DEFAULT_ARRAY_LEN;
            Estimate { rows, cost: e.cost + rows }
        }
        PlanKind::Sort { input, .. } => {
            let e = estimate_plan(input, stats);
            let n = e.rows.max(2.0);
            Estimate { rows: e.rows, cost: e.cost + n * n.log2() * 0.2 }
        }
        PlanKind::Limit { input, limit } => {
            let e = estimate_plan(input, stats);
            Estimate { rows: e.rows.min(*limit as f64), cost: e.cost }
        }
        PlanKind::Distinct { input } => {
            let e = estimate_plan(input, stats);
            Estimate { rows: (e.rows * 0.6).max(1.0), cost: e.cost + e.rows }
        }
        PlanKind::Union { inputs } => {
            let mut rows = 0.0;
            let mut cost = 0.0;
            for i in inputs {
                let e = estimate_plan(i, stats);
                rows += e.rows;
                cost += e.cost + 0.5; // per-branch overhead
            }
            Estimate { rows, cost }
        }
        PlanKind::Values { rows } => {
            Estimate { rows: rows.len() as f64, cost: rows.len() as f64 }
        }
    }
}

/// Rows out of a key-equality hash join, FK-join heuristic: the larger side
/// survives, scaled down slightly for selective smaller sides.
fn key_join_rows(l: f64, r: f64, keys: &[Expr]) -> f64 {
    if keys.is_empty() {
        return l * r; // cartesian
    }
    l.max(r).max(1.0)
}

/// Selectivity heuristics by predicate shape.
fn selectivity(e: &Expr, input_rows: f64) -> f64 {
    match e {
        Expr::Binary { op: BinOp::Eq, .. } => {
            // Equality: assume fairly selective.
            if input_rows > 0.0 {
                (10.0 / input_rows).clamp(0.000_1, 0.5)
            } else {
                0.1
            }
        }
        Expr::Binary { op: BinOp::And, left, right } => {
            selectivity(left, input_rows) * selectivity(right, input_rows)
        }
        Expr::Binary { op: BinOp::Or, left, right } => {
            (selectivity(left, input_rows) + selectivity(right, input_rows)).min(1.0)
        }
        Expr::Binary { op, .. } if op.is_comparison() => 0.3,
        Expr::InSet { set, .. } => {
            if input_rows > 0.0 {
                ((set.len() as f64) / input_rows).clamp(0.000_1, 1.0)
            } else {
                0.1
            }
        }
        Expr::IsNotNull(_) => 0.9,
        Expr::IsNull(_) => 0.1,
        _ => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SynthTableStats;
    use erbium_engine::Field;
    use erbium_storage::DataType;

    fn stats(pairs: &[(&str, f64)]) -> FxHashMap<String, SynthTableStats> {
        pairs
            .iter()
            .map(|(n, r)| (n.to_string(), SynthTableStats { rows: *r, width: 3.0 }))
            .collect()
    }

    fn scan(table: &str, filters: Vec<Expr>) -> Plan {
        Plan {
            kind: PlanKind::Scan { table: table.into(), filters },
            fields: vec![Field::new("x", DataType::Int)],
        }
    }

    #[test]
    fn filtered_scan_cheaper_output() {
        let s = stats(&[("t", 10_000.0)]);
        let full = estimate_plan(&scan("t", vec![]), &s);
        let filtered = estimate_plan(
            &scan("t", vec![Expr::eq(Expr::col(0), Expr::lit(1i64))]),
            &s,
        );
        assert!(filtered.rows < full.rows);
    }

    #[test]
    fn index_lookup_beats_scan() {
        let s = stats(&[("t", 1_000_000.0)]);
        let scan_est = estimate_plan(
            &scan("t", vec![Expr::eq(Expr::col(0), Expr::lit(1i64))]),
            &s,
        );
        let lookup = Plan {
            kind: PlanKind::IndexLookup {
                table: "t".into(),
                columns: vec![0],
                keys: vec![erbium_storage::Value::Int(1)],
                residual: vec![],
            },
            fields: vec![Field::new("x", DataType::Int)],
        };
        let lookup_est = estimate_plan(&lookup, &s);
        assert!(lookup_est.cost < scan_est.cost / 100.0);
    }

    #[test]
    fn join_cost_grows_with_inputs() {
        let s = stats(&[("a", 1_000.0), ("b", 100_000.0)]);
        let small = scan("a", vec![]).join(
            scan("a", vec![]),
            erbium_engine::JoinKind::Inner,
            vec![Expr::col(0)],
            vec![Expr::col(0)],
        );
        let big = scan("a", vec![]).join(
            scan("b", vec![]),
            erbium_engine::JoinKind::Inner,
            vec![Expr::col(0)],
            vec![Expr::col(0)],
        );
        assert!(estimate_plan(&big, &s).cost > estimate_plan(&small, &s).cost);
    }

    #[test]
    fn union_sums_branches() {
        let s = stats(&[("a", 500.0)]);
        let u = Plan::union(vec![scan("a", vec![]), scan("a", vec![]), scan("a", vec![])]).unwrap();
        let e = estimate_plan(&u, &s);
        assert!((e.rows - 1500.0).abs() < 1.0);
    }
}
