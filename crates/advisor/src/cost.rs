//! Analytic plan-cost estimation.
//!
//! Costs are unit-free "work" numbers: roughly, rows touched, weighted by
//! row width where scans are concerned. Only *relative* fidelity matters —
//! the advisor compares candidate mappings against each other, mirroring
//! how the paper compares M1–M6.
//!
//! Statistics come in as the shared [`erbium_storage::TableStats`] type:
//! either **synthesized** from logical statistics for a candidate mapping
//! that does not physically exist (see [`crate::stats::synthesize`] — no
//! per-column detail, `columns` empty) or **gathered** by
//! `Catalog::analyze` from a live database (per-column NDV / null counts /
//! min-max available). When per-column statistics are present, equality
//! and IN-list selectivities use NDV instead of the shape heuristics.

use erbium_engine::{BinOp, Expr, Plan, PlanKind};
use erbium_storage::TableStats;
use rustc_hash::FxHashMap;

/// Estimated cardinality and cost of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    pub rows: f64,
    pub cost: f64,
}

/// Default fan-out assumed for unnesting when no statistics are available.
const DEFAULT_ARRAY_LEN: f64 = 3.0;

/// Bytes-per-value convention shared with [`crate::stats::synthesize`].
const BYTES_PER_VALUE: f64 = 8.0;

/// Row count and relative row width (in attribute-value units) of a table,
/// with `(0, 0)` for unknown tables.
fn table_shape<'a>(
    stats: &'a FxHashMap<String, TableStats>,
    name: &str,
) -> (f64, f64, Option<&'a TableStats>) {
    match stats.get(name) {
        Some(t) => {
            let rows = t.row_count as f64;
            let width =
                if t.row_count > 0 { t.total_bytes as f64 / (BYTES_PER_VALUE * rows) } else { 0.0 };
            (rows, width, Some(t))
        }
        None => (0.0, 0.0, None),
    }
}

/// Estimate a plan bottom-up against [`TableStats`] keyed by structure name
/// (factorized sides under `name#left` / `name#right`, as registered by
/// both `Catalog::analyze` and [`crate::stats::synthesize`]).
pub fn estimate_plan(plan: &Plan, stats: &FxHashMap<String, TableStats>) -> Estimate {
    match &plan.kind {
        PlanKind::Scan { table, filters, .. } => {
            let (rows, width, t) = table_shape(stats, table);
            let sel = filters.iter().map(|f| selectivity(f, rows, t)).product::<f64>();
            Estimate { rows: (rows * sel).max(0.0), cost: rows * (1.0 + width * 0.1) }
        }
        PlanKind::IndexLookup { table, keys, residual, .. } => {
            let (rows, _, t) = table_shape(stats, table);
            // Assume near-unique index reach.
            let base = keys.len() as f64;
            let sel = residual.iter().map(|f| selectivity(f, rows, t)).product::<f64>();
            Estimate { rows: (base * sel).max(0.0), cost: base * 2.0 }
        }
        PlanKind::IndexRange { table, residual, .. } => {
            let (rows, _, t) = table_shape(stats, table);
            // Assume the range selects ~20% of the table, reached directly.
            let base = rows * 0.2;
            let sel = residual.iter().map(|f| selectivity(f, rows, t)).product::<f64>();
            Estimate { rows: base * sel, cost: base + (rows.max(2.0)).log2() }
        }
        PlanKind::FactorizedScan { table, side, filters } => {
            let key = match side {
                erbium_engine::plan::FactorizedSide::Join => table.clone(),
                erbium_engine::plan::FactorizedSide::Left => format!("{table}#left"),
                erbium_engine::plan::FactorizedSide::Right => format!("{table}#right"),
            };
            let (mut rows, _, t) = table_shape(stats, &key);
            if t.is_none() && key != *table {
                // Side entry missing: fall back to half the join volume.
                rows = table_shape(stats, table).0 / 2.0;
            }
            let sel = filters.iter().map(|f| selectivity(f, rows, t)).product::<f64>();
            Estimate { rows: rows * sel, cost: rows }
        }
        PlanKind::FactorizedCount { .. } => Estimate { rows: 1.0, cost: 1.0 },
        PlanKind::Filter { input, predicate } => {
            let e = estimate_plan(input, stats);
            let sel = selectivity(predicate, e.rows, None);
            Estimate { rows: e.rows * sel, cost: e.cost + e.rows }
        }
        PlanKind::Project { input, exprs } => {
            let e = estimate_plan(input, stats);
            Estimate { rows: e.rows, cost: e.cost + e.rows * 0.05 * exprs.len() as f64 }
        }
        PlanKind::Join { left, right, kind, left_keys, .. } => {
            let l = estimate_plan(left, stats);
            let r = estimate_plan(right, stats);
            let rows = match kind {
                erbium_engine::JoinKind::Semi => l.rows * 0.7,
                erbium_engine::JoinKind::Left => l.rows.max(key_join_rows(l.rows, r.rows, left_keys)),
                erbium_engine::JoinKind::Inner => key_join_rows(l.rows, r.rows, left_keys),
            };
            Estimate { rows, cost: l.cost + r.cost + l.rows + r.rows * 1.5 + rows * 0.5 }
        }
        PlanKind::Aggregate { input, group, .. } => {
            let e = estimate_plan(input, stats);
            let groups = if group.is_empty() { 1.0 } else { (e.rows * 0.3).max(1.0) };
            Estimate { rows: groups, cost: e.cost + e.rows * 1.2 }
        }
        PlanKind::Unnest { input, .. } => {
            let e = estimate_plan(input, stats);
            let rows = e.rows * DEFAULT_ARRAY_LEN;
            Estimate { rows, cost: e.cost + rows }
        }
        PlanKind::Sort { input, .. } => {
            let e = estimate_plan(input, stats);
            let n = e.rows.max(2.0);
            Estimate { rows: e.rows, cost: e.cost + n * n.log2() * 0.2 }
        }
        PlanKind::Limit { input, limit } => {
            let e = estimate_plan(input, stats);
            Estimate { rows: e.rows.min(*limit as f64), cost: e.cost }
        }
        PlanKind::Distinct { input } => {
            let e = estimate_plan(input, stats);
            Estimate { rows: (e.rows * 0.6).max(1.0), cost: e.cost + e.rows }
        }
        PlanKind::Union { inputs } => {
            let mut rows = 0.0;
            let mut cost = 0.0;
            for i in inputs {
                let e = estimate_plan(i, stats);
                rows += e.rows;
                cost += e.cost + 0.5; // per-branch overhead
            }
            Estimate { rows, cost }
        }
        PlanKind::Values { rows } => {
            Estimate { rows: rows.len() as f64, cost: rows.len() as f64 }
        }
    }
}

/// Rows out of a key-equality hash join, FK-join heuristic: the larger side
/// survives, scaled down slightly for selective smaller sides.
fn key_join_rows(l: f64, r: f64, keys: &[Expr]) -> f64 {
    if keys.is_empty() {
        return l * r; // cartesian
    }
    l.max(r).max(1.0)
}

/// Per-column NDV-based equality selectivity when gathered statistics carry
/// column detail; `None` otherwise.
fn column_eq_sel(col: usize, t: Option<&TableStats>) -> Option<f64> {
    let t = t?;
    let c = t.columns.get(col)?;
    if c.ndv == 0 || t.row_count == 0 {
        return None;
    }
    let null_frac = c.null_count as f64 / t.row_count as f64;
    Some(((1.0 - null_frac) / c.ndv as f64).clamp(0.000_1, 1.0))
}

/// Selectivity heuristics by predicate shape, upgraded to NDV-based numbers
/// when the (optional) table statistics carry per-column detail.
fn selectivity(e: &Expr, input_rows: f64, t: Option<&TableStats>) -> f64 {
    match e {
        Expr::Binary { op: BinOp::Eq, left, right } => {
            let col = match (&**left, &**right) {
                (Expr::Col(i), Expr::Lit(_)) | (Expr::Lit(_), Expr::Col(i)) => Some(*i),
                _ => None,
            };
            if let Some(sel) = col.and_then(|c| column_eq_sel(c, t)) {
                return sel;
            }
            // Equality: assume fairly selective.
            if input_rows > 0.0 {
                (10.0 / input_rows).clamp(0.000_1, 0.5)
            } else {
                0.1
            }
        }
        Expr::Binary { op: BinOp::And, left, right } => {
            selectivity(left, input_rows, t) * selectivity(right, input_rows, t)
        }
        Expr::Binary { op: BinOp::Or, left, right } => {
            (selectivity(left, input_rows, t) + selectivity(right, input_rows, t)).min(1.0)
        }
        Expr::Binary { op, .. } if op.is_comparison() => 0.3,
        Expr::InSet { expr, set } => {
            let col = match &**expr {
                Expr::Col(i) => Some(*i),
                _ => None,
            };
            if let Some(sel) = col.and_then(|c| column_eq_sel(c, t)) {
                return (sel * set.len() as f64).min(1.0);
            }
            if input_rows > 0.0 {
                ((set.len() as f64) / input_rows).clamp(0.000_1, 1.0)
            } else {
                0.1
            }
        }
        Expr::IsNotNull(_) => 0.9,
        Expr::IsNull(_) => 0.1,
        _ => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erbium_engine::Field;
    use erbium_storage::{ColumnStats, DataType, Value};

    fn stats(pairs: &[(&str, f64)]) -> FxHashMap<String, TableStats> {
        pairs
            .iter()
            .map(|(n, r)| {
                (
                    n.to_string(),
                    TableStats {
                        row_count: *r as u64,
                        columns: vec![],
                        total_bytes: (r * 3.0 * 8.0) as u64,
                    },
                )
            })
            .collect()
    }

    fn scan(table: &str, filters: Vec<Expr>) -> Plan {
        Plan {
            kind: PlanKind::Scan { table: table.into(), filters, projection: None },
            fields: vec![Field::new("x", DataType::Int)],
        }
    }

    #[test]
    fn filtered_scan_cheaper_output() {
        let s = stats(&[("t", 10_000.0)]);
        let full = estimate_plan(&scan("t", vec![]), &s);
        let filtered = estimate_plan(
            &scan("t", vec![Expr::eq(Expr::col(0), Expr::lit(1i64))]),
            &s,
        );
        assert!(filtered.rows < full.rows);
    }

    #[test]
    fn index_lookup_beats_scan() {
        let s = stats(&[("t", 1_000_000.0)]);
        let scan_est = estimate_plan(
            &scan("t", vec![Expr::eq(Expr::col(0), Expr::lit(1i64))]),
            &s,
        );
        let lookup = Plan {
            kind: PlanKind::IndexLookup {
                table: "t".into(),
                columns: vec![0],
                keys: vec![erbium_storage::Value::Int(1)],
                residual: vec![],
            },
            fields: vec![Field::new("x", DataType::Int)],
        };
        let lookup_est = estimate_plan(&lookup, &s);
        assert!(lookup_est.cost < scan_est.cost / 100.0);
    }

    #[test]
    fn join_cost_grows_with_inputs() {
        let s = stats(&[("a", 1_000.0), ("b", 100_000.0)]);
        let small = scan("a", vec![]).join(
            scan("a", vec![]),
            erbium_engine::JoinKind::Inner,
            vec![Expr::col(0)],
            vec![Expr::col(0)],
        );
        let big = scan("a", vec![]).join(
            scan("b", vec![]),
            erbium_engine::JoinKind::Inner,
            vec![Expr::col(0)],
            vec![Expr::col(0)],
        );
        assert!(estimate_plan(&big, &s).cost > estimate_plan(&small, &s).cost);
    }

    #[test]
    fn union_sums_branches() {
        let s = stats(&[("a", 500.0)]);
        let u = Plan::union(vec![scan("a", vec![]), scan("a", vec![]), scan("a", vec![])]).unwrap();
        let e = estimate_plan(&u, &s);
        assert!((e.rows - 1500.0).abs() < 1.0);
    }

    #[test]
    fn gathered_column_stats_sharpen_equality() {
        // Same table volume, but gathered per-column detail says the
        // column has only two distinct values: the NDV-based selectivity
        // (0.5) must replace the 10/N heuristic (0.01).
        let mut s = stats(&[("t", 1_000.0)]);
        s.get_mut("t").unwrap().columns = vec![ColumnStats {
            ndv: 2,
            null_count: 0,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(1)),
            avg_width: 8.0,
            avg_array_len: 0.0,
        }];
        let filtered = estimate_plan(
            &scan("t", vec![Expr::eq(Expr::col(0), Expr::lit(1i64))]),
            &s,
        );
        assert!((filtered.rows - 500.0).abs() < 1.0, "rows={}", filtered.rows);
    }
}
