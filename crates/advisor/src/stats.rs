//! Mapping-independent statistics and per-candidate projection.

use erbium_mapping::{
    CoFormat, EntityStore, Fragment, HierarchyLayout, Lowering, MappingResult,
};
use erbium_model::ErSchema;
use erbium_storage::{Catalog, TableStats};
use rustc_hash::FxHashMap;

/// Average bytes assumed per attribute value when projecting physical sizes
/// from logical statistics (the same convention
/// [`erbium_storage::TableStats`] gathering uses for numeric values).
const BYTES_PER_VALUE: f64 = 8.0;

/// Build a [`TableStats`] for a structure that does not physically exist
/// yet: a projected row count and total byte volume, with no per-column
/// detail (`columns` stays empty — consumers fall back to shape-based
/// selectivity heuristics exactly as the engine's estimator does for
/// unknown columns).
fn projected(rows: f64, width: f64) -> TableStats {
    let rows = rows.max(0.0);
    TableStats {
        row_count: rows.round() as u64,
        columns: Vec::new(),
        total_bytes: (rows * width * BYTES_PER_VALUE).round() as u64,
    }
}

/// Logical statistics of a database instance — properties of the data, not
/// of any physical layout.
#[derive(Debug, Clone, Default)]
pub struct LogicalStats {
    /// Extent size per entity set (instances whose most-specific type is in
    /// the entity's subtree).
    pub extent: FxHashMap<String, u64>,
    /// Instances whose *most specific* type is exactly this entity.
    pub exact: FxHashMap<String, u64>,
    /// Average number of values per instance for each multi-valued
    /// attribute, keyed by `(entity, attribute)`.
    pub mv_fanout: FxHashMap<(String, String), f64>,
    /// Number of instances per relationship.
    pub rel_count: FxHashMap<String, u64>,
}

impl LogicalStats {
    /// Gather logical stats by probing the current database through its
    /// lowering.
    pub fn gather(cat: &Catalog, lw: &Lowering) -> MappingResult<LogicalStats> {
        let store = EntityStore::new(lw);
        let mut s = LogicalStats::default();
        for e in lw.schema.entities() {
            let keys = store.extent_keys(cat, &e.name)?;
            s.extent.insert(e.name.clone(), keys.len() as u64);
        }
        // exact counts: extent minus children extents.
        for e in lw.schema.entities() {
            let mine = s.extent.get(&e.name).copied().unwrap_or(0);
            let children: u64 = lw
                .schema
                .subclasses(&e.name)
                .iter()
                .map(|c| s.extent.get(&c.name).copied().unwrap_or(0))
                .sum();
            s.exact.insert(e.name.clone(), mine.saturating_sub(children));
        }
        // Multi-valued fan-outs: sample up to 500 instances per entity.
        for e in lw.schema.entities() {
            let mv_attrs: Vec<String> = e
                .attributes
                .iter()
                .filter(|a| a.multi_valued)
                .map(|a| a.name.clone())
                .collect();
            if mv_attrs.is_empty() {
                continue;
            }
            let keys = store.extent_keys(cat, &e.name)?;
            let sample: Vec<_> = keys.iter().take(500).collect();
            let mut sums: FxHashMap<&str, (f64, u64)> = FxHashMap::default();
            for key in &sample {
                if let Some(data) = store.get(cat, &e.name, key)? {
                    for a in &mv_attrs {
                        let n = data
                            .get(a)
                            .and_then(|v| v.as_array().map(|x| x.len()))
                            .unwrap_or(0);
                        let entry = sums.entry(a.as_str()).or_insert((0.0, 0));
                        entry.0 += n as f64;
                        entry.1 += 1;
                    }
                }
            }
            for a in &mv_attrs {
                let (sum, n) = sums.get(a.as_str()).copied().unwrap_or((0.0, 0));
                let avg = if n > 0 { sum / n as f64 } else { 1.0 };
                s.mv_fanout.insert((e.name.clone(), a.clone()), avg);
            }
        }
        for r in lw.schema.relationships() {
            let count = match store.extract_relationship(cat, &r.name) {
                Ok(insts) => insts.len() as u64,
                Err(_) => 0,
            };
            s.rel_count.insert(r.name.clone(), count);
        }
        Ok(s)
    }

    fn extent(&self, e: &str) -> u64 {
        self.extent.get(e).copied().unwrap_or(0)
    }

    fn exact(&self, e: &str) -> u64 {
        self.exact.get(e).copied().unwrap_or(0)
    }

    fn fanout(&self, e: &str, a: &str) -> f64 {
        self.mv_fanout.get(&(e.to_string(), a.to_string())).copied().unwrap_or(1.0)
    }
}

/// Project physical table statistics for every structure of a candidate
/// lowering, from logical statistics alone. The result uses the same
/// [`TableStats`] type that `Catalog::analyze` gathers for live tables, so
/// the advisor's cost model and the engine's cardinality estimator speak
/// one statistics language; synthesized entries simply carry no per-column
/// detail.
pub fn synthesize(
    lw: &Lowering,
    schema: &ErSchema,
    ls: &LogicalStats,
) -> MappingResult<FxHashMap<String, TableStats>> {
    let mut out = FxHashMap::default();
    for frag in &lw.mapping.fragments {
        let (rows, width) = match frag {
            Fragment::Entity {
                entity,
                layout,
                merged_subclasses,
                inline_multivalued,
                folded_weak,
                folded_relationships,
                ..
            } => {
                let rows = match layout {
                    HierarchyLayout::Full => ls.exact(entity) as f64,
                    HierarchyLayout::Delta => ls.extent(entity) as f64,
                };
                let mut width = 0.0;
                let mut covered: Vec<&str> = vec![entity.as_str()];
                if *layout == HierarchyLayout::Full {
                    covered =
                        schema.ancestry(entity)?.iter().map(|e| e.name.as_str()).collect();
                }
                covered.extend(merged_subclasses.iter().map(String::as_str));
                for ce in covered {
                    let es = schema.require_entity(ce)?;
                    for a in &es.attributes {
                        if a.multi_valued {
                            if inline_multivalued.contains(&a.name) {
                                width += ls.fanout(ce, &a.name);
                            }
                        } else {
                            width += 1.0;
                        }
                    }
                }
                for w in folded_weak {
                    let wes = schema.require_entity(w)?;
                    let per_owner = if rows > 0.0 {
                        ls.extent(w) as f64 / rows
                    } else {
                        0.0
                    };
                    width += per_owner * wes.attributes.len() as f64;
                }
                width += folded_relationships.len() as f64;
                (rows, width)
            }
            Fragment::MultiValued { entity, attribute, .. } => {
                let rows = ls.extent(entity) as f64 * ls.fanout(entity, attribute);
                (rows, 2.0)
            }
            Fragment::Relationship { relationship, .. } => {
                let rows = ls.rel_count.get(relationship).copied().unwrap_or(0) as f64;
                (rows, 3.0)
            }
            Fragment::CoLocated { relationship, format, table } => {
                let rel = schema.require_relationship(relationship)?;
                let pairs = ls.rel_count.get(relationship).copied().unwrap_or(0) as f64;
                let l = ls.extent(&rel.from.entity) as f64;
                let r = ls.extent(&rel.to.entity) as f64;
                // Side-specific entries so member scans are costed by their
                // actual extents.
                out.insert(format!("{table}#left"), projected(l, 4.0));
                out.insert(format!("{table}#right"), projected(r, 4.0));
                match format {
                    // Denormalized: one row per pair plus dangling rows.
                    CoFormat::Denormalized => (pairs.max(l).max(r), 8.0),
                    // Factorized: the main entry costs the stored join
                    // (pair enumeration follows pointers).
                    CoFormat::Factorized => (pairs, 4.0),
                }
            }
        };
        out.insert(frag.table().to_string(), projected(rows, width));
    }
    Ok(out)
}
