//! Candidate enumeration and greedy search over the design space.
//!
//! A physical design is an assignment to independent **design dimensions**
//! (the same local moves [`erbium_mapping::presets`] exposes):
//!
//! * per multi-valued attribute: side table vs. inline array;
//! * per hierarchy root: delta tables vs. single merged table vs. disjoint
//!   full tables;
//! * per weak entity set: own table vs. folded into the owner;
//! * per eligible relationship: separate vs. co-located (factorized or
//!   denormalized).
//!
//! The advisor runs greedy coordinate descent: starting from the fully
//! normalized design, it repeatedly re-optimizes one dimension at a time
//! (keeping the others fixed) until no single change improves the
//! estimated workload cost. Invalid combinations are skipped via the
//! mapping validator — the search can only ever propose covers that
//! satisfy the paper's reversibility/CRUD requirements.

use crate::cost::estimate_plan;
use crate::stats::{synthesize, LogicalStats};
use crate::workload::Workload;
use erbium_mapping::{presets, CoFormat, Lowering, Mapping, MappingResult, QueryRewriter};
use erbium_model::ErSchema;
use erbium_storage::Catalog;

/// One design dimension with its options.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignChoice {
    /// `(entity, attribute)`; `true` = inline array.
    MvInline(String, String, bool),
    /// Hierarchy root layout.
    Hierarchy(String, HierarchyChoice),
    /// Weak entity folded into its owner?
    WeakFolded(String, bool),
    /// Relationship co-location.
    CoLocate(String, CoChoice),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyChoice {
    Delta,
    Merged,
    Full,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoChoice {
    Separate,
    Factorized,
    Denormalized,
}

/// A complete assignment of the design dimensions.
#[derive(Debug, Clone, PartialEq)]
struct Design {
    mv_inline: Vec<((String, String), bool)>,
    hierarchies: Vec<(String, HierarchyChoice)>,
    weak_folded: Vec<(String, bool)>,
    colocate: Vec<(String, CoChoice)>,
}

impl Design {
    fn normalized(schema: &ErSchema) -> Design {
        let mut d = Design {
            mv_inline: Vec::new(),
            hierarchies: Vec::new(),
            weak_folded: Vec::new(),
            colocate: Vec::new(),
        };
        for e in schema.entities() {
            for a in e.attributes.iter().filter(|a| a.multi_valued) {
                d.mv_inline.push(((e.name.clone(), a.name.clone()), false));
            }
            if !e.is_subclass() && !schema.subclasses(&e.name).is_empty() {
                d.hierarchies.push((e.name.clone(), HierarchyChoice::Delta));
            }
            if e.is_weak() {
                d.weak_folded.push((e.name.clone(), false));
            }
        }
        for r in schema.relationships() {
            let identifying = schema.entities().iter().any(|e| {
                e.weak.as_ref().map(|w| w.identifying_relationship == r.name).unwrap_or(false)
            });
            if !identifying && r.from.entity != r.to.entity {
                d.colocate.push((r.name.clone(), CoChoice::Separate));
            }
        }
        d
    }

    /// Materialize the design as a mapping via the preset transformations.
    fn to_mapping(&self, schema: &ErSchema) -> MappingResult<Mapping> {
        let mut m = presets::normalized(schema);
        for (root, choice) in &self.hierarchies {
            m = match choice {
                HierarchyChoice::Delta => m,
                HierarchyChoice::Merged => presets::merge_hierarchy(m, schema, root),
                HierarchyChoice::Full => presets::split_hierarchy_full(m, schema, root),
            };
        }
        for (weak, folded) in &self.weak_folded {
            if *folded {
                m = presets::fold_weak(m, schema, weak)?;
            }
        }
        for (rel, choice) in &self.colocate {
            m = match choice {
                CoChoice::Separate => m,
                CoChoice::Factorized => presets::colocate(m, schema, rel, CoFormat::Factorized)?,
                CoChoice::Denormalized => {
                    presets::colocate(m, schema, rel, CoFormat::Denormalized)?
                }
            };
        }
        for ((entity, attr), inline) in &self.mv_inline {
            if *inline {
                m = presets::inline_multivalued(m, schema, entity, attr);
            }
        }
        m.name = "advisor".into();
        Ok(m)
    }

    fn describe(&self) -> Vec<DesignChoice> {
        let mut out = Vec::new();
        for ((e, a), v) in &self.mv_inline {
            out.push(DesignChoice::MvInline(e.clone(), a.clone(), *v));
        }
        for (r, c) in &self.hierarchies {
            out.push(DesignChoice::Hierarchy(r.clone(), *c));
        }
        for (w, v) in &self.weak_folded {
            out.push(DesignChoice::WeakFolded(w.clone(), *v));
        }
        for (r, c) in &self.colocate {
            out.push(DesignChoice::CoLocate(r.clone(), *c));
        }
        out
    }
}

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Maximum coordinate-descent sweeps.
    pub max_sweeps: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { max_sweeps: 4 }
    }
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub mapping: Mapping,
    pub cost: f64,
    pub baseline_cost: f64,
    /// `(sql, estimated cost under the recommendation)`.
    pub per_query: Vec<(String, f64)>,
    pub choices: Vec<DesignChoice>,
    pub candidates_evaluated: usize,
}

/// The workload-aware mapping advisor.
pub struct Advisor {
    schema: ErSchema,
    stats: LogicalStats,
    config: SearchConfig,
}

impl Advisor {
    /// Create an advisor from the current database state (used only to
    /// gather logical statistics — the search itself moves no data).
    pub fn from_database(cat: &Catalog, lw: &Lowering) -> MappingResult<Advisor> {
        Ok(Advisor {
            schema: lw.schema.clone(),
            stats: LogicalStats::gather(cat, lw)?,
            config: SearchConfig::default(),
        })
    }

    /// Create an advisor from explicit logical statistics (e.g. projected
    /// future data volumes).
    pub fn from_stats(schema: ErSchema, stats: LogicalStats) -> Advisor {
        Advisor { schema, stats, config: SearchConfig::default() }
    }

    pub fn with_config(mut self, config: SearchConfig) -> Advisor {
        self.config = config;
        self
    }

    /// Estimated total workload cost under one candidate mapping; `None`
    /// if the mapping is invalid or cannot serve some workload query.
    pub fn cost_of(&self, mapping: &Mapping, workload: &Workload) -> Option<(f64, Vec<(String, f64)>)> {
        let lw = Lowering::build(&self.schema, mapping).ok()?;
        // Phantom catalog: schemas only, no rows.
        let mut cat = Catalog::new();
        lw.install(&mut cat).ok()?;
        let synth = synthesize(&lw, &self.schema, &self.stats).ok()?;
        let rewriter = QueryRewriter::new(&lw, &cat);
        let mut total = 0.0;
        let mut per_query = Vec::new();
        for q in &workload.queries {
            let plan = rewriter.rewrite_optimized(&q.stmt).ok()?;
            let est = estimate_plan(&plan, &synth);
            total += est.cost * q.weight;
            per_query.push((q.sql.clone(), est.cost));
        }
        Some((total, per_query))
    }

    /// Run the search and return the best design found.
    pub fn recommend(&self, workload: &Workload) -> MappingResult<Recommendation> {
        let mut design = Design::normalized(&self.schema);
        let baseline_mapping = design.to_mapping(&self.schema)?;
        let (baseline_cost, _) = self
            .cost_of(&baseline_mapping, workload)
            .ok_or_else(|| erbium_mapping::MappingError::Unsupported(
                "workload cannot run under the normalized mapping".into(),
            ))?;
        let mut best_cost = baseline_cost;
        let mut evaluated = 1usize;

        for _sweep in 0..self.config.max_sweeps {
            let mut improved = false;
            // Hierarchy layouts.
            for i in 0..design.hierarchies.len() {
                for choice in
                    [HierarchyChoice::Delta, HierarchyChoice::Merged, HierarchyChoice::Full]
                {
                    let old = design.hierarchies[i].1;
                    if old == choice {
                        continue;
                    }
                    design.hierarchies[i].1 = choice;
                    evaluated += 1;
                    match design
                        .to_mapping(&self.schema)
                        .ok()
                        .and_then(|m| self.cost_of(&m, workload))
                    {
                        Some((c, _)) if c < best_cost => {
                            best_cost = c;
                            improved = true;
                        }
                        _ => design.hierarchies[i].1 = old,
                    }
                }
            }
            // Multi-valued placements.
            for i in 0..design.mv_inline.len() {
                let old = design.mv_inline[i].1;
                design.mv_inline[i].1 = !old;
                evaluated += 1;
                match design
                    .to_mapping(&self.schema)
                    .ok()
                    .and_then(|m| self.cost_of(&m, workload))
                {
                    Some((c, _)) if c < best_cost => {
                        best_cost = c;
                        improved = true;
                    }
                    _ => design.mv_inline[i].1 = old,
                }
            }
            // Weak folding.
            for i in 0..design.weak_folded.len() {
                let old = design.weak_folded[i].1;
                design.weak_folded[i].1 = !old;
                evaluated += 1;
                match design
                    .to_mapping(&self.schema)
                    .ok()
                    .and_then(|m| self.cost_of(&m, workload))
                {
                    Some((c, _)) if c < best_cost => {
                        best_cost = c;
                        improved = true;
                    }
                    _ => design.weak_folded[i].1 = old,
                }
            }
            // Co-location.
            for i in 0..design.colocate.len() {
                for choice in [CoChoice::Separate, CoChoice::Factorized, CoChoice::Denormalized] {
                    let old = design.colocate[i].1;
                    if old == choice {
                        continue;
                    }
                    design.colocate[i].1 = choice;
                    evaluated += 1;
                    match design
                        .to_mapping(&self.schema)
                        .ok()
                        .and_then(|m| self.cost_of(&m, workload))
                    {
                        Some((c, _)) if c < best_cost => {
                            best_cost = c;
                            improved = true;
                        }
                        _ => design.colocate[i].1 = old,
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let mapping = design.to_mapping(&self.schema)?;
        let (cost, per_query) = self
            .cost_of(&mapping, workload)
            .expect("winning design was evaluated during the search");
        Ok(Recommendation {
            mapping,
            cost,
            baseline_cost,
            per_query,
            choices: design.describe(),
            candidates_evaluated: evaluated,
        })
    }
}
