//! Workload descriptions: weighted ERQL query templates.

use erbium_mapping::{MappingError, MappingResult};
use erbium_query::SelectStmt;

/// One query template with a relative frequency weight.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub sql: String,
    pub weight: f64,
    pub stmt: SelectStmt,
}

impl WorkloadQuery {
    pub fn new(sql: impl Into<String>, weight: f64) -> MappingResult<WorkloadQuery> {
        let sql = sql.into();
        let stmt = erbium_query::parse_single(&sql)
            .map_err(|e| MappingError::Binding(format!("workload parse error: {e}")))?;
        let erbium_query::Statement::Select(stmt) = stmt else {
            return Err(MappingError::Unsupported("workload queries must be SELECTs".into()));
        };
        Ok(WorkloadQuery { sql, weight, stmt })
    }
}

/// A weighted set of query templates.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    pub queries: Vec<WorkloadQuery>,
}

impl Workload {
    pub fn new() -> Workload {
        Workload::default()
    }

    /// Add a query with weight 1.
    pub fn query(self, sql: &str) -> MappingResult<Workload> {
        self.weighted(sql, 1.0)
    }

    /// Add a query with an explicit weight (relative frequency).
    pub fn weighted(mut self, sql: &str, weight: f64) -> MappingResult<Workload> {
        self.queries.push(WorkloadQuery::new(sql, weight)?);
        Ok(self)
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}
