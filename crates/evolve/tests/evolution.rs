//! Schema evolution tests: the paper's Section-3 scenarios executed end to
//! end, plus physical remapping between every pair of paper mappings.

use erbium_evolve::{ConflictPolicy, EvolutionOp, Migrator, MvPlacement, VersionLog};
use erbium_mapping::presets::{self, paper};
use erbium_mapping::rewrite::run_query;
use erbium_mapping::{CoFormat, EntityData, EntityStore, Lowering};
use erbium_model::{fixtures, Attribute, ScalarType};
use erbium_storage::{Catalog, Row, Transaction, Value};

fn data(pairs: &[(&str, Value)]) -> EntityData {
    pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

/// A small university instance for evolution scenarios.
fn setup_university() -> (Catalog, Lowering) {
    let schema = fixtures::university();
    let mapping = presets::normalized(&schema);
    let lw = Lowering::build(&schema, &mapping).unwrap();
    let mut cat = Catalog::new();
    lw.install(&mut cat).unwrap();
    {
        let store = EntityStore::new(&lw);
        let mut txn = Transaction::new();
        store
            .insert(
                &mut cat,
                &mut txn,
                "department",
                &data(&[("dept_name", Value::str("cs")), ("building", Value::str("AVW"))]),
                &[],
            )
            .unwrap();
        store
            .insert(
                &mut cat,
                &mut txn,
                "instructor",
                &data(&[
                    ("id", Value::Int(1)),
                    ("name", Value::str("ada")),
                    ("phone", Value::Array(vec![Value::str("555")])),
                    ("address", Value::Struct(vec![Value::str("Main"), Value::str("CP")])),
                    ("rank", Value::str("prof")),
                ]),
                &[("member_of", vec![Value::str("cs")])],
            )
            .unwrap();
        for i in 0..5i64 {
            store
                .insert(
                    &mut cat,
                    &mut txn,
                    "student",
                    &data(&[
                        ("id", Value::Int(10 + i)),
                        ("name", Value::str(format!("s{i}"))),
                        ("phone", Value::Array(vec![])),
                        ("tot_credits", Value::Int(15 * i)),
                    ]),
                    &[("advisor", vec![Value::Int(1)])],
                )
                .unwrap();
        }
        txn.commit();
    }
    (cat, lw)
}

#[test]
fn make_single_valued_attribute_multivalued() {
    // Paper: "consider a schema change where a single-valued attribute is
    // made multi-valued (e.g., moving from a single city to multiple
    // cities)".
    let (mut cat, lw) = setup_university();
    let op = EvolutionOp::MakeMultiValued {
        entity: "department".into(),
        attribute: "building".into(),
        placement: MvPlacement::SideTable,
    };
    let (lw2, report) = Migrator::apply(&mut cat, &lw, &op).unwrap();
    assert_eq!(report.entities_migrated, 7);
    // Old value survived as a singleton set, now in a side table.
    assert!(cat.has_table("department__building"));
    let store = EntityStore::new(&lw2);
    let d = store.get(&cat, "department", &[Value::str("cs")]).unwrap().unwrap();
    assert_eq!(d.get("building"), Some(&Value::Array(vec![Value::str("AVW")])));
    // The paper's point: queries change only locally —
    // `SELECT dept_name, building` → `SELECT dept_name, UNNEST(building)`.
    let (_, rows) =
        run_query(&lw2, &cat, "SELECT d.dept_name, UNNEST(d.building) FROM department d").unwrap();
    assert_eq!(rows, vec![vec![Value::str("cs"), Value::str("AVW")]]);
}

#[test]
fn advisor_cardinality_change_keeps_query_working() {
    // Paper Section 3: the avg-credits-per-advisee query "does not require
    // any modifications if the relationship cardinalities were to be
    // modified".
    let (mut cat, lw) = setup_university();
    let q = "SELECT i.id, AVG(s.tot_credits) AS avg_credits \
             FROM instructor i JOIN student s VIA advisor";
    let (_, before) = run_query(&lw, &cat, q).unwrap();

    let op = EvolutionOp::MakeManyToMany { relationship: "advisor".into() };
    let (lw2, _) = Migrator::apply(&mut cat, &lw, &op).unwrap();
    // The FK fold became a join table.
    assert!(cat.has_table("advisor"));
    let (_, after) = run_query(&lw2, &cat, q).unwrap();
    assert_eq!(before, after, "same query, same answer, new physical design");

    // And a second advisor per student is now legal.
    let store = EntityStore::new(&lw2);
    let mut txn = Transaction::new();
    store
        .insert(
            &mut cat,
            &mut txn,
            "instructor",
            &data(&[
                ("id", Value::Int(2)),
                ("name", Value::str("bob")),
                ("phone", Value::Array(vec![])),
                ("rank", Value::str("assoc")),
            ]),
            &[("member_of", vec![Value::str("cs")])],
        )
        .unwrap();
    store
        .link(&mut cat, &mut txn, "advisor", &[Value::Int(10)], &[Value::Int(2)], &EntityData::default())
        .unwrap();
    txn.commit();
    assert_eq!(store.extract_relationship(&cat, "advisor").unwrap().len(), 6);

    // Narrow back to many-to-one, keeping the first advisor.
    let op = EvolutionOp::MakeManyToOne {
        relationship: "advisor".into(),
        policy: ConflictPolicy::KeepFirst,
    };
    let (lw3, _) = Migrator::apply(&mut cat, &lw2, &op).unwrap();
    let store = EntityStore::new(&lw3);
    assert_eq!(store.extract_relationship(&cat, "advisor").unwrap().len(), 5);
    let (_, after2) = run_query(&lw3, &cat, q).unwrap();
    assert_eq!(before, after2);
}

#[test]
fn add_rename_drop_attribute() {
    let (mut cat, lw) = setup_university();
    let op = EvolutionOp::AddAttribute {
        entity: "student".into(),
        attribute: Attribute::scalar("gpa", ScalarType::Float).nullable(),
        default: Value::Float(4.0),
        placement: MvPlacement::SideTable,
    };
    let (lw2, _) = Migrator::apply(&mut cat, &lw, &op).unwrap();
    let store = EntityStore::new(&lw2);
    let s = store.get(&cat, "student", &[Value::Int(10)]).unwrap().unwrap();
    assert_eq!(s.get("gpa"), Some(&Value::Float(4.0)));

    let op = EvolutionOp::RenameAttribute {
        entity: "student".into(),
        from: "gpa".into(),
        to: "grade_point_avg".into(),
    };
    let (lw3, _) = Migrator::apply(&mut cat, &lw2, &op).unwrap();
    let store = EntityStore::new(&lw3);
    let s = store.get(&cat, "student", &[Value::Int(10)]).unwrap().unwrap();
    assert_eq!(s.get("grade_point_avg"), Some(&Value::Float(4.0)));
    assert!(!s.contains_key("gpa"));

    let op = EvolutionOp::DropAttribute {
        entity: "student".into(),
        attribute: "grade_point_avg".into(),
    };
    let (lw4, _) = Migrator::apply(&mut cat, &lw3, &op).unwrap();
    let store = EntityStore::new(&lw4);
    let s = store.get(&cat, "student", &[Value::Int(10)]).unwrap().unwrap();
    assert!(!s.contains_key("grade_point_avg"));
}

/// Regression test (Int→Float canonicalization audit): the migrate path
/// re-ingests every entity through a snapshot → transform → re-insert
/// cycle. An `AddAttribute` whose Float-typed default is given as
/// `Value::Int` must land in storage as canonical `Value::Float`, and a
/// `MakeMultiValued` wrap of a Float attribute must canonicalize the array
/// elements — otherwise post-migration filters/joins on the attribute would
/// compare mixed Int/Float representations.
#[test]
fn migration_reingest_canonicalizes_int_defaults_for_float_attrs() {
    let (mut cat, lw) = setup_university();
    let op = EvolutionOp::AddAttribute {
        entity: "student".into(),
        attribute: Attribute::scalar("gpa", ScalarType::Float).nullable(),
        default: Value::Int(4), // Int literal into a Float attribute
        placement: MvPlacement::SideTable,
    };
    let (lw2, _) = Migrator::apply(&mut cat, &lw, &op).unwrap();
    let store = EntityStore::new(&lw2);
    let s = store.get(&cat, "student", &[Value::Int(10)]).unwrap().unwrap();
    assert!(
        matches!(s.get("gpa"), Some(Value::Float(f)) if *f == 4.0),
        "Int default for a Float attribute must be stored canonically, got {:?}",
        s.get("gpa"),
    );
    // The canonical form is what queries compare against.
    let (_, rows) =
        run_query(&lw2, &cat, "SELECT s.id FROM student s WHERE s.gpa = 4.0").unwrap();
    assert_eq!(rows.len(), 5);

    // Wrap it multi-valued: the singleton array element stays canonical.
    let op = EvolutionOp::MakeMultiValued {
        entity: "student".into(),
        attribute: "gpa".into(),
        placement: MvPlacement::SideTable,
    };
    let (lw3, _) = Migrator::apply(&mut cat, &lw2, &op).unwrap();
    let store = EntityStore::new(&lw3);
    let s = store.get(&cat, "student", &[Value::Int(10)]).unwrap().unwrap();
    assert_eq!(s.get("gpa"), Some(&Value::Array(vec![Value::Float(4.0)])));
}

#[test]
fn make_single_valued_with_policies() {
    let (mut cat, lw) = setup_university();
    // phone is multi-valued with ≤1 values in this instance → KeepFirst ok.
    let op = EvolutionOp::MakeSingleValued {
        entity: "person".into(),
        attribute: "phone".into(),
        policy: ConflictPolicy::KeepFirst,
    };
    let (lw2, _) = Migrator::apply(&mut cat, &lw, &op).unwrap();
    let store = EntityStore::new(&lw2);
    let p = store.get(&cat, "instructor", &[Value::Int(1)]).unwrap().unwrap();
    assert_eq!(p.get("phone"), Some(&Value::str("555")));
    let s = store.get(&cat, "student", &[Value::Int(10)]).unwrap().unwrap();
    assert_eq!(s.get("phone"), Some(&Value::Null));
}

#[test]
fn strict_policy_rejects_conflicts() {
    let (mut cat, lw) = setup_university();
    // Give the instructor a second phone number first.
    {
        let store = EntityStore::new(&lw);
        let mut txn = Transaction::new();
        store
            .update(
                &mut cat,
                &mut txn,
                "instructor",
                &[Value::Int(1)],
                &data(&[("phone", Value::Array(vec![Value::str("555"), Value::str("556")]))]),
            )
            .unwrap();
        txn.commit();
    }
    let op = EvolutionOp::MakeSingleValued {
        entity: "person".into(),
        attribute: "phone".into(),
        policy: ConflictPolicy::Strict,
    };
    assert!(Migrator::apply(&mut cat, &lw, &op).is_err());
}

#[test]
fn add_and_drop_subclass() {
    let (mut cat, lw) = setup_university();
    let ta = erbium_model::EntitySet::subclass_of(
        "ta",
        "student",
        vec![Attribute::scalar("hours", ScalarType::Int).nullable()],
    );
    let (lw2, _) =
        Migrator::apply(&mut cat, &lw, &EvolutionOp::AddSubclass { entity: ta }).unwrap();
    assert!(cat.has_table("ta"));
    let store = EntityStore::new(&lw2);
    let mut txn = Transaction::new();
    store
        .insert(
            &mut cat,
            &mut txn,
            "ta",
            &data(&[
                ("id", Value::Int(99)),
                ("name", Value::str("tina")),
                ("phone", Value::Array(vec![])),
                ("tot_credits", Value::Int(60)),
                ("hours", Value::Int(20)),
            ]),
            &[],
        )
        .unwrap();
    txn.commit();
    assert_eq!(store.type_of(&cat, "person", &[Value::Int(99)]).unwrap().as_deref(), Some("ta"));

    // Dropping the subclass keeps the instance at the parent level.
    let (lw3, _) =
        Migrator::apply(&mut cat, &lw2, &EvolutionOp::DropSubclass { entity: "ta".into() })
            .unwrap();
    let store = EntityStore::new(&lw3);
    assert_eq!(
        store.type_of(&cat, "person", &[Value::Int(99)]).unwrap().as_deref(),
        Some("student")
    );
    let s = store.get(&cat, "student", &[Value::Int(99)]).unwrap().unwrap();
    assert_eq!(s.get("tot_credits"), Some(&Value::Int(60)));
    assert!(!s.contains_key("hours"));
}

fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    for r in rows.iter_mut() {
        for v in r.iter_mut() {
            if let Value::Array(a) = v {
                a.sort();
                if a.is_empty() {
                    *v = Value::Null;
                }
            }
        }
    }
    rows.sort();
    rows
}

#[test]
fn remap_between_all_paper_mappings_preserves_queries() {
    let schema = fixtures::experiment();
    let m1 = paper::m1(&schema);
    let lw = Lowering::build(&schema, &m1).unwrap();
    let mut cat = Catalog::new();
    lw.install(&mut cat).unwrap();
    // Populate a small instance through CRUD.
    {
        let store = EntityStore::new(&lw);
        let mut txn = Transaction::new();
        for sid in 0..4i64 {
            store
                .insert(
                    &mut cat,
                    &mut txn,
                    "S",
                    &data(&[
                        ("s_id", Value::Int(sid)),
                        ("s_a", Value::str(format!("s{sid}"))),
                        ("s_b", Value::Int(sid)),
                    ]),
                    &[],
                )
                .unwrap();
            store
                .insert(
                    &mut cat,
                    &mut txn,
                    "S1",
                    &data(&[
                        ("s_id", Value::Int(sid)),
                        ("s1_no", Value::Int(0)),
                        ("s1_a", Value::Int(sid * 10)),
                        ("s1_b", Value::str("w")),
                    ]),
                    &[],
                )
                .unwrap();
        }
        for i in 0..12i64 {
            let mut d = data(&[
                ("r_id", Value::Int(i)),
                ("r_a", Value::str(format!("r{i}"))),
                ("r_b", Value::Int(i % 3)),
                ("r_mv1", Value::Array(vec![Value::Int(i), Value::Int(i + 1)])),
                ("r_mv2", Value::Array(vec![Value::Int(i)])),
                ("r_mv3", Value::Array(vec![Value::str("t")])),
            ]);
            let ty = if i % 3 == 1 {
                d.insert("r2_a".into(), Value::Int(i));
                d.insert("r2_b".into(), Value::str("x"));
                "R2"
            } else {
                "R"
            };
            store.insert(&mut cat, &mut txn, ty, &d, &[("r_s", vec![Value::Int(i % 4)])]).unwrap();
        }
        store
            .link(&mut cat, &mut txn, "r2_s1", &[Value::Int(1)], &[Value::Int(1), Value::Int(0)], &EntityData::default())
            .unwrap();
        txn.commit();
    }
    let queries = [
        "SELECT r.r_id, r.r_mv1 FROM R r",
        "SELECT r.r_id, s.s_a FROM R r JOIN S s VIA r_s WHERE s.s_b >= 1",
        "SELECT r.r_id, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1",
        "SELECT s.s_id, NEST(w.s1_no, w.s1_a) AS kids FROM S s JOIN S1 w VIA s_s1",
    ];
    let reference: Vec<Vec<Row>> = queries
        .iter()
        .map(|q| canon(run_query(&lw, &cat, q).unwrap().1))
        .collect();

    // Chain of remaps: M1 → M2 → M3 → M4 → M5 → M6f → M6d → M1.
    let chain = vec![
        paper::m2(&schema),
        paper::m3(&schema),
        paper::m4(&schema),
        paper::m5(&schema).unwrap(),
        paper::m6(&schema, CoFormat::Factorized).unwrap(),
        paper::m6(&schema, CoFormat::Denormalized).unwrap(),
        paper::m1(&schema),
    ];
    let mut current = lw;
    for target in chain {
        let name = target.name.clone();
        let (next, report) = Migrator::remap(&mut cat, &current, target).unwrap();
        assert_eq!(report.entities_migrated, 4 + 4 + 12, "remap to {name}");
        for (q, expect) in queries.iter().zip(reference.iter()) {
            let got = canon(run_query(&next, &cat, q).unwrap().1);
            assert_eq!(expect, &got, "query drifted after remap to {name}: {q}");
        }
        current = next;
    }
}

#[test]
fn version_log_records_and_rolls_back() {
    let (mut cat, lw) = setup_university();
    let mut log = VersionLog::load(&cat).unwrap();
    log.record(&lw, "initial");
    log.save(&mut cat).unwrap();

    let op = EvolutionOp::MakeMultiValued {
        entity: "department".into(),
        attribute: "building".into(),
        placement: MvPlacement::Inline,
    };
    let (lw2, report) = Migrator::apply(&mut cat, &lw, &op).unwrap();
    let mut log = VersionLog::load(&cat).unwrap();
    log.record(&lw2, report.description.clone());
    log.save(&mut cat).unwrap();
    assert_eq!(log.versions().len(), 2);

    // Roll back to version 1: building is single-valued again.
    let (lw3, _) = log.rollback_to(&mut cat, &lw2, 1).unwrap();
    let store = EntityStore::new(&lw3);
    let d = store.get(&cat, "department", &[Value::str("cs")]).unwrap().unwrap();
    assert_eq!(d.get("building"), Some(&Value::str("AVW")));
    // History is append-only: rollback added version 3.
    let log = VersionLog::load(&cat).unwrap();
    assert_eq!(log.versions().len(), 3);
    assert!(log.current().unwrap().description.contains("rollback"));
}
