//! Logical schema-evolution operations.

use erbium_model::Attribute;
use serde::{Deserialize, Serialize};

/// Where a (newly) multi-valued attribute should live physically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MvPlacement {
    /// Own side table (normalized style, M1).
    SideTable,
    /// Inline array column in the owner's home table (M2 style).
    Inline,
}

/// How to collapse multiple values when narrowing (multi→single,
/// many-to-many → many-to-one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictPolicy {
    /// Keep the first value (storage order); drop the rest.
    KeepFirst,
    /// Fail the migration if any instance has more than one value.
    Strict,
}

/// A logical schema change. Each op derives a new E/R schema, a local edit
/// of the current mapping, and a data transform.
#[derive(Debug, Clone, PartialEq)]
pub enum EvolutionOp {
    /// Add an attribute to an entity set, filling existing instances with
    /// `default` (serialized storage value).
    AddAttribute {
        entity: String,
        attribute: Attribute,
        default: erbium_storage::Value,
        placement: MvPlacement,
    },
    /// Drop an attribute (and its side table, if any).
    DropAttribute { entity: String, attribute: String },
    /// Rename an attribute.
    RenameAttribute { entity: String, from: String, to: String },
    /// Make a single-valued attribute multi-valued — the paper's "moving
    /// from a single city to multiple cities" example. Existing values
    /// become singleton sets.
    MakeMultiValued { entity: String, attribute: String, placement: MvPlacement },
    /// Make a multi-valued attribute single-valued.
    MakeSingleValued { entity: String, attribute: String, policy: ConflictPolicy },
    /// Turn a many-to-one relationship into many-to-many — the paper's
    /// advisor example. Existing links are preserved.
    MakeManyToMany { relationship: String },
    /// Turn a many-to-many relationship into many-to-one (the `from` end
    /// becomes the many side); surplus links resolved per `policy`.
    MakeManyToOne { relationship: String, policy: ConflictPolicy },
    /// Add a new (empty) subclass to an existing hierarchy.
    AddSubclass { entity: erbium_model::EntitySet },
    /// Remove an empty subclass.
    DropSubclass { entity: String },
}

impl EvolutionOp {
    /// Human-readable description, recorded in the version log.
    pub fn describe(&self) -> String {
        match self {
            EvolutionOp::AddAttribute { entity, attribute, .. } => {
                format!("add attribute {entity}.{}", attribute.name)
            }
            EvolutionOp::DropAttribute { entity, attribute } => {
                format!("drop attribute {entity}.{attribute}")
            }
            EvolutionOp::RenameAttribute { entity, from, to } => {
                format!("rename attribute {entity}.{from} -> {to}")
            }
            EvolutionOp::MakeMultiValued { entity, attribute, .. } => {
                format!("make {entity}.{attribute} multi-valued")
            }
            EvolutionOp::MakeSingleValued { entity, attribute, .. } => {
                format!("make {entity}.{attribute} single-valued")
            }
            EvolutionOp::MakeManyToMany { relationship } => {
                format!("make relationship {relationship} many-to-many")
            }
            EvolutionOp::MakeManyToOne { relationship, .. } => {
                format!("make relationship {relationship} many-to-one")
            }
            EvolutionOp::AddSubclass { entity } => format!("add subclass {}", entity.name),
            EvolutionOp::DropSubclass { entity } => format!("drop subclass {entity}"),
        }
    }
}
