//! Schema versioning.
//!
//! Every migration appends a [`Version`] — the complete (schema, mapping)
//! pair plus a description — to a log persisted in catalog metadata (the
//! paper: users should "more easily experiment with schema changes and roll
//! them back as needed"). [`VersionLog::rollback_to`] re-installs an
//! earlier version by migrating the *current* data back through the
//! extract–transform–reload pipeline: layout-only changes roll back
//! exactly; lossy logical changes (dropped attributes) roll back with the
//! lost information defaulted to NULL.

use crate::migrate::{MigrationReport, Migrator};
use erbium_mapping::{Lowering, Mapping, MappingError, MappingResult};
use erbium_model::ErSchema;
use erbium_storage::Catalog;
use serde::{Deserialize, Serialize};

/// Catalog metadata key for the version log.
pub const META_VERSIONS: &str = "version_log";

/// One recorded schema version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Version {
    pub number: u64,
    pub description: String,
    pub schema: ErSchema,
    pub mapping: Mapping,
}

/// The append-only version history of a database.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VersionLog {
    versions: Vec<Version>,
}

impl VersionLog {
    /// Load the log from catalog metadata (empty if absent).
    pub fn load(cat: &Catalog) -> MappingResult<VersionLog> {
        Ok(cat.get_meta_typed(META_VERSIONS)?.unwrap_or_default())
    }

    /// Persist the log.
    pub fn save(&self, cat: &mut Catalog) -> MappingResult<()> {
        cat.put_meta_typed(META_VERSIONS, self)?;
        Ok(())
    }

    /// Record the current (schema, mapping) as a new version.
    pub fn record(&mut self, lw: &Lowering, description: impl Into<String>) -> u64 {
        let number = self.versions.last().map(|v| v.number + 1).unwrap_or(1);
        self.versions.push(Version {
            number,
            description: description.into(),
            schema: lw.schema.clone(),
            mapping: lw.mapping.clone(),
        });
        number
    }

    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    pub fn current(&self) -> Option<&Version> {
        self.versions.last()
    }

    pub fn get(&self, number: u64) -> Option<&Version> {
        self.versions.iter().find(|v| v.number == number)
    }

    /// Roll the database back to an earlier version: re-install that
    /// version's schema and mapping and migrate the current data into it.
    /// A new version entry is appended (rollback is itself a migration —
    /// history is never rewritten).
    pub fn rollback_to(
        &mut self,
        cat: &mut Catalog,
        current: &Lowering,
        number: u64,
    ) -> MappingResult<(Lowering, MigrationReport)> {
        let target = self
            .get(number)
            .ok_or_else(|| MappingError::Unsupported(format!("no version {number}")))?
            .clone();
        // A rollback is a remap when schemas agree, otherwise a full
        // schema migration with identity transforms (attributes missing in
        // the target schema are dropped; attributes missing in the data
        // become NULL).
        let (lw, mut report) = if target.schema == current.schema {
            Migrator::remap(cat, current, target.mapping.clone())?
        } else {
            Migrator::migrate_to(cat, current, &target.schema, &target.mapping)?
        };
        report.description = format!("rollback to version {number} ({})", target.description);
        let n = self.record(&lw, report.description.clone());
        let _ = n;
        self.save(cat)?;
        Ok((lw, report))
    }
}
