//! # erbium-evolve
//!
//! Native schema evolution, data migration, and schema versioning.
//!
//! Section 3 of the paper argues that "schema changes ... typically also
//! require a complex data migration process, which today is often handled
//! by the application layers on top since databases do not support such
//! functionality natively", and that the E/R abstraction makes evolution
//! *localized*: turning a single-valued attribute multi-valued, or a
//! many-to-one relationship many-to-many, is a minor E/R change even though
//! it restructures the relational schema underneath.
//!
//! This crate makes those claims executable:
//!
//! * [`EvolutionOp`] — the logical schema changes of Section 3 (add/drop/
//!   rename attribute, single↔multi-valued, cardinality changes, add/drop
//!   subclass);
//! * [`migrate::Migrator`] — applies an op by deriving the new schema, the
//!   new mapping (a local edit of the current cover), and the per-entity
//!   data transform, then runs an extract–transform–reload migration;
//! * **physical remapping** ([`migrate::Migrator::remap`]) — move the same
//!   logical database between any two valid mappings (M1→M4, M2→M5, ...)
//!   with no schema change at all: the operational form of the paper's
//!   logical data independence;
//! * [`version::VersionLog`] — every migration appends a version (schema +
//!   mapping, serialized as JSON in catalog metadata, as the paper's
//!   prototype does) and [`version::VersionLog::rollback_to`] re-installs
//!   an earlier version, migrating the data back (best effort for lossy
//!   changes, exact for layout-only changes).

pub mod migrate;
pub mod ops;
pub mod version;

pub use migrate::{MigrationReport, Migrator};
pub use ops::{ConflictPolicy, EvolutionOp, MvPlacement};
pub use version::{Version, VersionLog};
