//! Extract–transform–reload migrations.
//!
//! Every evolution (logical op or physical remap) runs the same pipeline:
//!
//! 1. **Extract** the full logical content (entity extents at their most
//!    specific types, relationship instances) through the old mapping's
//!    CRUD translator;
//! 2. **Transform** instance data per the operation (e.g. wrap a value in
//!    a singleton array for `MakeMultiValued`);
//! 3. **Reload** through the new mapping's CRUD translator, folded
//!    many-to-one targets passed at insert time so NOT NULL foreign keys
//!    hold.
//!
//! This trades efficiency for a strong guarantee: the pipeline only uses
//! the public, property-tested reversibility contract, so any (schema,
//! mapping) → (schema', mapping') step that type-checks also preserves the
//! data. In-place migration strategies are an optimization the paper
//! leaves to future work.

use crate::ops::{ConflictPolicy, EvolutionOp, MvPlacement};
use erbium_mapping::presets::{mv_table, rel_table};
use erbium_mapping::{
    EntityData, EntityStore, Fragment, Lowering, Mapping, MappingError, MappingResult,
    RelInstance,
};
use erbium_model::{Cardinality, ErSchema};
use erbium_storage::{Catalog, Transaction, Value};
use rustc_hash::FxHashMap;

/// Summary of one migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    pub description: String,
    pub entities_migrated: usize,
    pub links_migrated: usize,
}

/// Applies evolution operations and remaps.
pub struct Migrator;

/// The logical content of a database, in transit between mappings.
struct Snapshot {
    /// (most-specific type, data) per instance.
    entities: Vec<(String, EntityData)>,
    /// relationship name → instances (identifying relationships excluded).
    links: Vec<(String, RelInstance)>,
}

impl Migrator {
    /// Apply a logical schema-evolution op, migrating the data.
    pub fn apply(
        cat: &mut Catalog,
        lw: &Lowering,
        op: &EvolutionOp,
    ) -> MappingResult<(Lowering, MigrationReport)> {
        let new_schema = derive_schema(&lw.schema, op)?;
        let new_mapping = derive_mapping(&lw.mapping, &lw.schema, &new_schema, op)?;
        let mut snap = extract(cat, lw)?;
        transform(&mut snap, &lw.schema, op)?;
        let new_lw = reload(cat, lw, &new_schema, &new_mapping, &snap)?;
        let report = MigrationReport {
            description: op.describe(),
            entities_migrated: snap.entities.len(),
            links_migrated: snap.links.len(),
        };
        Ok((new_lw, report))
    }

    /// Migrate the same logical schema to a different mapping — changing
    /// the physical design without touching queries or data semantics.
    pub fn remap(
        cat: &mut Catalog,
        lw: &Lowering,
        new_mapping: Mapping,
    ) -> MappingResult<(Lowering, MigrationReport)> {
        let snap = extract(cat, lw)?;
        let new_lw = reload(cat, lw, &lw.schema.clone(), &new_mapping, &snap)?;
        let report = MigrationReport {
            description: format!("remap '{}' -> '{}'", lw.mapping.name, new_lw.mapping.name),
            entities_migrated: snap.entities.len(),
            links_migrated: snap.links.len(),
        };
        Ok((new_lw, report))
    }

    /// Migrate to an arbitrary (schema, mapping) pair with identity data
    /// transforms: attributes absent from the target schema are dropped,
    /// attributes absent from the data become NULL. Used by version
    /// rollback.
    pub fn migrate_to(
        cat: &mut Catalog,
        lw: &Lowering,
        target_schema: &ErSchema,
        target_mapping: &Mapping,
    ) -> MappingResult<(Lowering, MigrationReport)> {
        let mut snap = extract(cat, lw)?;
        // Drop attributes (and instance types) the target no longer knows.
        for (ty, data) in snap.entities.iter_mut() {
            if target_schema.entity(ty).is_none() {
                // Fall back to the nearest surviving ancestor.
                if let Ok(chain) = lw.schema.ancestry(ty) {
                    if let Some(surviving) =
                        chain.iter().rev().find(|l| target_schema.entity(&l.name).is_some())
                    {
                        *ty = surviving.name.clone();
                    }
                }
            }
            if let Ok(chain) = target_schema.ancestry(ty) {
                let mut known: Vec<String> = Vec::new();
                // Coerce value shapes to the target's multiplicity: a
                // rollback across a MakeMultiValued sees arrays where the
                // target wants scalars, and vice versa.
                for level in &chain {
                    for a in &level.attributes {
                        known.push(a.name.clone());
                        if let Some(v) = data.get_mut(&a.name) {
                            match (a.multi_valued, &v) {
                                (false, Value::Array(vs)) => {
                                    *v = vs.first().cloned().unwrap_or(Value::Null);
                                }
                                (true, other) if !matches!(other, Value::Array(_)) => {
                                    *v = match v.clone() {
                                        Value::Null => Value::Array(vec![]),
                                        x => Value::Array(vec![x]),
                                    };
                                }
                                _ => {}
                            }
                        }
                    }
                }
                // Weak entities carry their owner's key attributes too.
                if let Ok(full_key) = target_schema.full_key(ty) {
                    known.extend(full_key);
                }
                data.retain(|k, _| known.iter().any(|n| n == k));
            }
        }
        snap.links.retain(|(rel, _)| target_schema.relationship(rel).is_some());
        let new_lw = reload(cat, lw, target_schema, target_mapping, &snap)?;
        let report = MigrationReport {
            description: format!("migrate to schema+mapping '{}'", target_mapping.name),
            entities_migrated: snap.entities.len(),
            links_migrated: snap.links.len(),
        };
        Ok((new_lw, report))
    }
}

// ---- extract ------------------------------------------------------------------

fn extract(cat: &Catalog, lw: &Lowering) -> MappingResult<Snapshot> {
    let store = EntityStore::new(lw);
    let mut entities = Vec::new();
    // Strong, non-weak roots: walk their extents at the most specific type.
    for e in lw.schema.entities() {
        if e.is_subclass() || e.is_weak() {
            continue;
        }
        for key in store.extent_keys(cat, &e.name)? {
            let ty = store
                .type_of(cat, &e.name, &key)?
                .unwrap_or_else(|| e.name.clone());
            let data = store.get(cat, &ty, &key)?.ok_or_else(|| {
                MappingError::BadPayload(format!("extent key {key:?} of '{ty}' vanished"))
            })?;
            entities.push((ty, data));
        }
    }
    // Weak entities (owners are strong in this model, so one pass).
    for e in lw.schema.entities().iter().filter(|e| e.is_weak()) {
        for key in store.extent_keys(cat, &e.name)? {
            let data = store.get(cat, &e.name, &key)?.ok_or_else(|| {
                MappingError::BadPayload(format!("weak key {key:?} of '{}' vanished", e.name))
            })?;
            entities.push((e.name.clone(), data));
        }
    }
    let mut links = Vec::new();
    for r in lw.schema.relationships() {
        if is_identifying(&lw.schema, &r.name) {
            continue;
        }
        for inst in store.extract_relationship(cat, &r.name)? {
            links.push((r.name.clone(), inst));
        }
    }
    Ok(Snapshot { entities, links })
}

fn is_identifying(schema: &ErSchema, rel: &str) -> bool {
    schema
        .entities()
        .iter()
        .any(|e| e.weak.as_ref().map(|w| w.identifying_relationship == rel).unwrap_or(false))
}

// ---- reload --------------------------------------------------------------------

fn reload(
    cat: &mut Catalog,
    old_lw: &Lowering,
    new_schema: &ErSchema,
    new_mapping: &Mapping,
    snap: &Snapshot,
) -> MappingResult<Lowering> {
    let new_lw = Lowering::build(new_schema, new_mapping)?;
    old_lw.uninstall(cat)?;
    new_lw.install(cat)?;
    let store = EntityStore::new(&new_lw);

    // Folded many-to-one targets must be set at insert time.
    let folded_rels: Vec<String> = new_schema
        .relationships()
        .iter()
        .filter(|r|

            matches!(new_lw.rel_home(&r.name), Ok(erbium_mapping::RelHome::Folded { .. })))
        .map(|r| r.name.clone())
        .collect();
    // (rel, many-side key) → one-side key.
    let mut fold_targets: FxHashMap<(String, Vec<Value>), Vec<Value>> = FxHashMap::default();
    for (rel_name, inst) in &snap.links {
        if !folded_rels.contains(rel_name) {
            continue;
        }
        let rel = new_schema.require_relationship(rel_name)?;
        let many_is_from =
            rel.many_end().map(|e| e.entity == rel.from.entity).unwrap_or(true);
        let (many_key, one_key) = if many_is_from {
            (inst.from_key.clone(), inst.to_key.clone())
        } else {
            (inst.to_key.clone(), inst.from_key.clone())
        };
        fold_targets.insert((rel_name.clone(), many_key), one_key);
    }

    let mut txn = Transaction::new();
    // Insert strong instances first, then weak (owner rows must exist).
    let insert_pass = |store: &EntityStore<'_>,
                       cat: &mut Catalog,
                       txn: &mut Transaction,
                       weak_pass: bool|
     -> MappingResult<usize> {
        let mut n = 0;
        for (ty, data) in &snap.entities {
            let es = match new_schema.entity(ty) {
                Some(es) => es,
                None => continue, // type dropped by the evolution
            };
            if es.is_weak() != weak_pass {
                continue;
            }
            let key = store.key_of(ty, data)?;
            let mut links: Vec<(&str, Vec<Value>)> = Vec::new();
            for rel_name in &folded_rels {
                let rel = new_schema.require_relationship(rel_name)?;
                let many = rel.many_end().expect("folded is m:1");
                // Does this instance's chain reach the many end?
                let in_chain = new_schema
                    .ancestry(ty)?
                    .iter()
                    .any(|l| l.name == many.entity);
                if !in_chain {
                    continue;
                }
                if let Some(one_key) = fold_targets.get(&(rel_name.clone(), key.clone())) {
                    links.push((rel_name.as_str(), one_key.clone()));
                }
            }
            store.insert(cat, txn, ty, data, &links)?;
            n += 1;
        }
        Ok(n)
    };
    let mut n_entities = insert_pass(&store, cat, &mut txn, false)?;
    n_entities += insert_pass(&store, cat, &mut txn, true)?;
    let _ = n_entities;

    // Non-folded links.
    let mut n_links = 0;
    for (rel_name, inst) in &snap.links {
        if folded_rels.contains(rel_name) {
            continue; // already applied at insert time
        }
        if new_schema.relationship(rel_name).is_none() {
            continue;
        }
        store.link(cat, &mut txn, rel_name, &inst.from_key, &inst.to_key, &inst.attrs)?;
        n_links += 1;
    }
    let _ = n_links;
    txn.commit();
    Ok(new_lw)
}

// ---- schema derivation ------------------------------------------------------------

fn derive_schema(schema: &ErSchema, op: &EvolutionOp) -> MappingResult<ErSchema> {
    let mut s = schema.clone();
    match op {
        EvolutionOp::AddAttribute { entity, attribute, .. } => {
            let e = s
                .entity_mut(entity)
                .ok_or_else(|| MappingError::Unsupported(format!("unknown entity '{entity}'")))?;
            if e.attribute(&attribute.name).is_some() {
                return Err(MappingError::Unsupported(format!(
                    "attribute '{}' already exists on '{entity}'",
                    attribute.name
                )));
            }
            e.attributes.push(attribute.clone());
        }
        EvolutionOp::DropAttribute { entity, attribute } => {
            let e = s
                .entity_mut(entity)
                .ok_or_else(|| MappingError::Unsupported(format!("unknown entity '{entity}'")))?;
            if e.key.contains(attribute) {
                return Err(MappingError::Unsupported(format!(
                    "cannot drop key attribute '{attribute}'"
                )));
            }
            let before = e.attributes.len();
            e.attributes.retain(|a| a.name != *attribute);
            if e.attributes.len() == before {
                return Err(MappingError::Unsupported(format!(
                    "unknown attribute '{entity}.{attribute}'"
                )));
            }
        }
        EvolutionOp::RenameAttribute { entity, from, to } => {
            let e = s
                .entity_mut(entity)
                .ok_or_else(|| MappingError::Unsupported(format!("unknown entity '{entity}'")))?;
            if e.attribute(to).is_some() {
                return Err(MappingError::Unsupported(format!("'{to}' already exists")));
            }
            let a = e
                .attributes
                .iter_mut()
                .find(|a| a.name == *from)
                .ok_or_else(|| MappingError::Unsupported(format!("unknown attribute '{from}'")))?;
            a.name = to.clone();
            for k in e.key.iter_mut() {
                if k == from {
                    *k = to.clone();
                }
            }
        }
        EvolutionOp::MakeMultiValued { entity, attribute, .. } => {
            let e = s
                .entity_mut(entity)
                .ok_or_else(|| MappingError::Unsupported(format!("unknown entity '{entity}'")))?;
            if e.key.contains(attribute) {
                return Err(MappingError::Unsupported(
                    "key attributes cannot be multi-valued".into(),
                ));
            }
            let a = e
                .attributes
                .iter_mut()
                .find(|a| a.name == *attribute)
                .ok_or_else(|| MappingError::Unsupported(format!("unknown attribute '{attribute}'")))?;
            a.multi_valued = true;
        }
        EvolutionOp::MakeSingleValued { entity, attribute, .. } => {
            let e = s
                .entity_mut(entity)
                .ok_or_else(|| MappingError::Unsupported(format!("unknown entity '{entity}'")))?;
            let a = e
                .attributes
                .iter_mut()
                .find(|a| a.name == *attribute)
                .ok_or_else(|| MappingError::Unsupported(format!("unknown attribute '{attribute}'")))?;
            a.multi_valued = false;
            // Instances with no values end up NULL, so narrowing also
            // makes the attribute optional.
            a.optional = true;
        }
        EvolutionOp::MakeManyToMany { relationship } => {
            let r = s.relationship_mut(relationship).ok_or_else(|| {
                MappingError::Unsupported(format!("unknown relationship '{relationship}'"))
            })?;
            r.from.cardinality = Cardinality::Many;
            r.to.cardinality = Cardinality::Many;
        }
        EvolutionOp::MakeManyToOne { relationship, .. } => {
            let r = s.relationship_mut(relationship).ok_or_else(|| {
                MappingError::Unsupported(format!("unknown relationship '{relationship}'"))
            })?;
            r.from.cardinality = Cardinality::Many;
            r.to.cardinality = Cardinality::One;
        }
        EvolutionOp::AddSubclass { entity } => {
            if !entity.is_subclass() {
                return Err(MappingError::Unsupported(
                    "AddSubclass requires an entity with a parent".into(),
                ));
            }
            s.add_entity(entity.clone())?;
        }
        EvolutionOp::DropSubclass { entity } => {
            s.remove_entity(entity)?;
        }
    }
    s.validate()?;
    Ok(s)
}

// ---- mapping derivation -------------------------------------------------------------

fn derive_mapping(
    mapping: &Mapping,
    old_schema: &ErSchema,
    new_schema: &ErSchema,
    op: &EvolutionOp,
) -> MappingResult<Mapping> {
    let mut m = mapping.clone();
    match op {
        EvolutionOp::AddAttribute { entity, attribute, placement, .. } => {
            if attribute.multi_valued {
                add_mv_home(&mut m, new_schema, entity, &attribute.name, *placement);
            }
        }
        EvolutionOp::DropAttribute { entity, attribute } => {
            drop_mv_home(&mut m, entity, attribute);
        }
        EvolutionOp::RenameAttribute { entity, from, to } => {
            for f in &mut m.fragments {
                match f {
                    Fragment::MultiValued { table, entity: e, attribute }
                        if e == entity && attribute == from =>
                    {
                        *attribute = to.clone();
                        *table = mv_table(entity, to);
                    }
                    Fragment::Entity { inline_multivalued, .. } => {
                        for mv in inline_multivalued.iter_mut() {
                            if mv == from {
                                *mv = to.clone();
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        EvolutionOp::MakeMultiValued { entity, attribute, placement } => {
            add_mv_home(&mut m, new_schema, entity, attribute, *placement);
        }
        EvolutionOp::MakeSingleValued { entity, attribute, .. } => {
            drop_mv_home(&mut m, entity, attribute);
        }
        EvolutionOp::MakeManyToMany { relationship } => {
            // Unfold: remove from folded lists, give it a join table.
            let mut was_folded = false;
            for f in &mut m.fragments {
                if let Fragment::Entity { folded_relationships, .. } = f {
                    let before = folded_relationships.len();
                    folded_relationships.retain(|r| r != relationship);
                    was_folded |= folded_relationships.len() != before;
                }
            }
            if was_folded {
                m.fragments.push(Fragment::Relationship {
                    table: rel_table(relationship),
                    relationship: relationship.clone(),
                });
            }
        }
        EvolutionOp::MakeManyToOne { relationship, .. } => {
            // Fold into the many side's home fragment when possible.
            let rel = new_schema.require_relationship(relationship)?;
            let many_entity = rel.many_end().expect("m:1").entity.clone();
            let home_table = m
                .home_fragment(&many_entity, new_schema)
                .map(|f| f.table().to_string());
            let mut folded = false;
            if let Some(home_table) = home_table {
                for f in &mut m.fragments {
                    if f.table() == home_table {
                        if let Fragment::Entity { folded_relationships, .. } = f {
                            folded_relationships.push(relationship.clone());
                            folded = true;
                        }
                    }
                }
            }
            if folded {
                m.fragments.retain(|f| {
                    !matches!(f, Fragment::Relationship { relationship: r, .. } if r == relationship)
                });
            }
        }
        EvolutionOp::AddSubclass { entity } => {
            let parent = entity.parent.as_deref().expect("checked");
            let root = new_schema.hierarchy_root(&entity.name)?.name.clone();
            // Follow the hierarchy's current layout.
            let mut handled = false;
            for f in &mut m.fragments {
                if let Fragment::Entity { entity: anchor, merged_subclasses, .. } = f {
                    if *anchor == root && !merged_subclasses.is_empty() {
                        merged_subclasses.push(entity.name.clone());
                        handled = true;
                    }
                }
            }
            if !handled {
                // Copy the parent's (or root's) layout.
                let layout = m
                    .fragments
                    .iter()
                    .find_map(|f| match f {
                        Fragment::Entity { entity: e, layout, .. }
                            if e == parent || e == &root =>
                        {
                            Some(*layout)
                        }
                        _ => None,
                    })
                    .unwrap_or(erbium_mapping::HierarchyLayout::Delta);
                m.fragments.push(Fragment::Entity {
                    table: entity.name.clone(),
                    entity: entity.name.clone(),
                    layout,
                    merged_subclasses: vec![],
                    inline_multivalued: vec![],
                    folded_weak: vec![],
                    folded_relationships: vec![],
                });
            }
            for a in entity.attributes.iter().filter(|a| a.multi_valued) {
                m.fragments.push(Fragment::MultiValued {
                    table: mv_table(&entity.name, &a.name),
                    entity: entity.name.clone(),
                    attribute: a.name.clone(),
                });
            }
        }
        EvolutionOp::DropSubclass { entity } => {
            let _ = old_schema;
            m.fragments.retain(|f| match f {
                Fragment::Entity { entity: e, .. } => e != entity,
                Fragment::MultiValued { entity: e, .. } => e != entity,
                _ => true,
            });
            for f in &mut m.fragments {
                if let Fragment::Entity { merged_subclasses, .. } = f {
                    merged_subclasses.retain(|e| e != entity);
                }
            }
        }
    }
    m.name = format!("{}~", m.name.trim_end_matches('~'));
    Ok(m)
}

fn add_mv_home(
    m: &mut Mapping,
    schema: &ErSchema,
    entity: &str,
    attribute: &str,
    placement: MvPlacement,
) {
    match placement {
        MvPlacement::SideTable => {
            m.fragments.push(Fragment::MultiValued {
                table: mv_table(entity, attribute),
                entity: entity.to_string(),
                attribute: attribute.to_string(),
            });
        }
        MvPlacement::Inline => {
            let home = m.home_fragment(entity, schema).map(|f| f.table().to_string());
            if let Some(home_table) = home {
                for f in &mut m.fragments {
                    if f.table() == home_table {
                        if let Fragment::Entity { inline_multivalued, .. } = f {
                            inline_multivalued.push(attribute.to_string());
                        }
                    }
                }
            }
        }
    }
}

fn drop_mv_home(m: &mut Mapping, entity: &str, attribute: &str) {
    m.fragments.retain(|f| {
        !matches!(f, Fragment::MultiValued { entity: e, attribute: a, .. }
            if e == entity && a == attribute)
    });
    for f in &mut m.fragments {
        if let Fragment::Entity { inline_multivalued, .. } = f {
            inline_multivalued.retain(|a| a != attribute);
        }
    }
}

// ---- data transforms ------------------------------------------------------------------

fn transform(snap: &mut Snapshot, old_schema: &ErSchema, op: &EvolutionOp) -> MappingResult<()> {
    match op {
        EvolutionOp::AddAttribute { entity, attribute, default, .. } => {
            for (ty, data) in snap.entities.iter_mut() {
                let in_chain =
                    old_schema.ancestry(ty)?.iter().any(|l| l.name == *entity) || ty == entity;
                if in_chain {
                    data.insert(attribute.name.clone(), default.clone());
                }
            }
        }
        EvolutionOp::DropAttribute { attribute, .. } => {
            for (_, data) in snap.entities.iter_mut() {
                data.remove(attribute);
            }
        }
        EvolutionOp::RenameAttribute { from, to, .. } => {
            for (_, data) in snap.entities.iter_mut() {
                if let Some(v) = data.remove(from) {
                    data.insert(to.clone(), v);
                }
            }
        }
        EvolutionOp::MakeMultiValued { attribute, .. } => {
            for (_, data) in snap.entities.iter_mut() {
                if let Some(v) = data.remove(attribute) {
                    let wrapped = match v {
                        Value::Null => Value::Array(vec![]),
                        other => Value::Array(vec![other]),
                    };
                    data.insert(attribute.clone(), wrapped);
                }
            }
        }
        EvolutionOp::MakeSingleValued { attribute, policy, .. } => {
            for (ty, data) in snap.entities.iter_mut() {
                if let Some(Value::Array(vs)) = data.remove(attribute) {
                    if vs.len() > 1 && *policy == ConflictPolicy::Strict {
                        return Err(MappingError::Unsupported(format!(
                            "instance of '{ty}' has {} values for '{attribute}'",
                            vs.len()
                        )));
                    }
                    data.insert(
                        attribute.clone(),
                        vs.into_iter().next().unwrap_or(Value::Null),
                    );
                }
            }
        }
        EvolutionOp::MakeManyToMany { .. } => {} // links carry over unchanged
        EvolutionOp::MakeManyToOne { relationship, policy } => {
            // Keep at most one link per many-side (from) key.
            let mut seen: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
            let mut keep: Vec<(String, RelInstance)> = Vec::new();
            for (rel, inst) in snap.links.drain(..) {
                if rel == *relationship {
                    let count = seen.entry(inst.from_key.clone()).or_insert(0);
                    *count += 1;
                    if *count > 1 {
                        if *policy == ConflictPolicy::Strict {
                            return Err(MappingError::Unsupported(format!(
                                "instance {:?} has multiple '{relationship}' links",
                                inst.from_key
                            )));
                        }
                        continue;
                    }
                }
                keep.push((rel, inst));
            }
            snap.links = keep;
        }
        EvolutionOp::AddSubclass { .. } => {} // no existing instances
        EvolutionOp::DropSubclass { entity } => {
            // Instances of the dropped subclass survive at the parent level.
            let parent = old_schema
                .entity(entity)
                .and_then(|e| e.parent.clone())
                .ok_or_else(|| MappingError::Unsupported("not a subclass".into()))?;
            let dropped_attrs: Vec<String> = old_schema
                .entity(entity)
                .map(|e| e.attributes.iter().map(|a| a.name.clone()).collect())
                .unwrap_or_default();
            for (ty, data) in snap.entities.iter_mut() {
                if ty == entity {
                    *ty = parent.clone();
                    for a in &dropped_attrs {
                        data.remove(a);
                    }
                }
            }
        }
    }
    Ok(())
}
