//! Microbenchmarks of the relational substrate: the operator costs that
//! the paper's mapping trade-offs decompose into (joins vs. unnest vs.
//! index reach vs. factorized pointer enumeration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use erbium_engine::{execute, AggCall, AggFunc, Expr, JoinKind, Plan};
use erbium_storage::{
    Catalog, Column, DataType, FactorizedTable, Table, TableSchema, Value,
};

const N: i64 = 50_000;

fn setup() -> Catalog {
    let mut cat = Catalog::new();
    let mut t = Table::new(TableSchema::new(
        "base",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("grp", DataType::Int),
            Column::new("v", DataType::Int),
            Column::new("arr", DataType::Int.array_of()),
        ],
        vec![0],
    ));
    for i in 0..N {
        t.insert(vec![
            Value::Int(i),
            Value::Int(i % 100),
            Value::Int(i * 7 % 1_000),
            Value::Array(vec![Value::Int(i % 10), Value::Int(i % 13), Value::Int(i % 17)]),
        ])
        .unwrap();
    }
    cat.create_table(t).unwrap();

    let mut side = Table::new(TableSchema::new(
        "side",
        vec![Column::not_null("fk", DataType::Int), Column::new("w", DataType::Int)],
        vec![],
    ));
    for i in 0..N {
        for k in 0..2 {
            side.insert(vec![Value::Int(i), Value::Int(k)]).unwrap();
        }
    }
    cat.create_table(side).unwrap();

    // Factorized copy of base ⋈ side.
    let mut ft = FactorizedTable::new(
        "fact",
        TableSchema::new(
            "fact_l",
            vec![Column::not_null("id", DataType::Int), Column::new("v", DataType::Int)],
            vec![0],
        ),
        TableSchema::new(
            "fact_r",
            vec![Column::not_null("rid", DataType::Int), Column::new("w", DataType::Int)],
            vec![0],
        ),
    );
    for i in 0..N {
        let l = ft.insert_left(vec![Value::Int(i), Value::Int(i * 7 % 1_000)]).unwrap();
        let r = ft.insert_right(vec![Value::Int(i), Value::Int(i % 10)]).unwrap();
        ft.link(l, r).unwrap();
    }
    cat.create_factorized("fact", ft).unwrap();
    cat
}

fn bench_micro(c: &mut Criterion) {
    let cat = setup();
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));

    g.bench_function("scan_filter", |b| {
        let plan = Plan::scan(&cat, "base")
            .unwrap()
            .filter(Expr::binary(erbium_engine::BinOp::Lt, Expr::col(2), Expr::lit(100i64)));
        b.iter(|| std::hint::black_box(execute(&plan, &cat).unwrap().len()));
    });

    g.bench_function("hash_join", |b| {
        let plan = Plan::scan(&cat, "base").unwrap().join(
            Plan::scan(&cat, "side").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(0)],
            vec![Expr::col(0)],
        );
        b.iter(|| std::hint::black_box(execute(&plan, &cat).unwrap().len()));
    });

    g.bench_function("factorized_enumerate", |b| {
        let plan = Plan::factorized_scan(
            &cat,
            "fact",
            erbium_engine::plan::FactorizedSide::Join,
        )
        .unwrap();
        b.iter(|| std::hint::black_box(execute(&plan, &cat).unwrap().len()));
    });

    g.bench_function("unnest", |b| {
        let plan = Plan::scan(&cat, "base").unwrap().unnest(3).unwrap();
        b.iter(|| std::hint::black_box(execute(&plan, &cat).unwrap().len()));
    });

    g.bench_function("group_aggregate", |b| {
        let plan = Plan::scan(&cat, "base").unwrap().aggregate(
            vec![(Expr::col(1), "grp".into())],
            vec![
                (AggCall::new(AggFunc::Sum, Expr::col(2)), "total".into()),
                (AggCall::count_star(), "n".into()),
            ],
        );
        b.iter(|| std::hint::black_box(execute(&plan, &cat).unwrap().len()));
    });

    g.bench_function("array_agg_nest", |b| {
        let plan = Plan::scan(&cat, "side").unwrap().aggregate(
            vec![(Expr::col(0), "fk".into())],
            vec![(AggCall::new(AggFunc::ArrayAgg, Expr::col(1)), "ws".into())],
        );
        b.iter(|| std::hint::black_box(execute(&plan, &cat).unwrap().len()));
    });

    g.bench_function("pk_point_lookup", |b| {
        let plan = Plan::scan(&cat, "base")
            .unwrap()
            .filter(Expr::eq(Expr::col(0), Expr::lit(N / 2)));
        let optimized = erbium_engine::optimizer::optimize(plan, &cat).unwrap();
        b.iter(|| std::hint::black_box(execute(&optimized, &cat).unwrap().len()));
    });

    // Wave-heavy pull pattern: a tiny morsel size forces many waves per
    // drain, so this arm is dominated by per-wave overheads — it is the
    // sentinel for the per-worker batch-buffer reuse in `MorselStream`
    // (buffers keep their capacity across waves instead of a fresh
    // `Vec<Row>` per morsel per pull; see EXPERIMENTS.md A-parallel).
    g.bench_function("morsel_waves", |b| {
        let plan = Plan::scan(&cat, "base")
            .unwrap()
            .filter(Expr::binary(erbium_engine::BinOp::Lt, Expr::col(2), Expr::lit(500i64)));
        let ctx = erbium_engine::ExecContext::default().with_threads(1).with_morsel_size(64);
        b.iter(|| {
            let mut s = erbium_engine::execute_streaming(&plan, &cat, &ctx).unwrap();
            std::hint::black_box(s.drain().unwrap().len())
        });
    });

    g.bench_function("sort_limit", |b| {
        let plan = Plan::scan(&cat, "base")
            .unwrap()
            .sort(vec![erbium_engine::SortKey { expr: Expr::col(2), desc: true }])
            .limit(100);
        b.iter(|| std::hint::black_box(execute(&plan, &cat).unwrap().len()));
    });

    g.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
