//! Microbenchmarks of the decisions the cost-based optimizer makes:
//! hash-join build-side choice and join-chain order. Each group pins the
//! two hand-written extremes (good and bad physical plan) next to what
//! `optimize()` produces from the bad plan over an ANALYZEd catalog — the
//! cost-based line should track the good one.

use criterion::{criterion_group, criterion_main, Criterion};
use erbium_engine::{execute, optimizer::optimize, Expr, JoinKind, Plan};
use erbium_storage::{Catalog, Column, DataType, Table, TableSchema, Value};
use std::time::Duration;

/// big(id, k=id%1000): 50k rows; dim(k): 1k rows; tiny(k): 10 rows;
/// mid(k, 5 per value): 5k rows — all ANALYZEd.
fn setup() -> Catalog {
    let mut cat = Catalog::new();
    let mut big = Table::new(TableSchema::new(
        "big",
        vec![Column::not_null("id", DataType::Int), Column::new("k", DataType::Int)],
        vec![0],
    ));
    for i in 0..50_000i64 {
        big.insert(vec![Value::Int(i), Value::Int(i % 1_000)]).unwrap();
    }
    cat.create_table(big).unwrap();

    let mut dim =
        Table::new(TableSchema::new("dim", vec![Column::not_null("k", DataType::Int)], vec![0]));
    for i in 0..1_000i64 {
        dim.insert(vec![Value::Int(i)]).unwrap();
    }
    cat.create_table(dim).unwrap();

    let mut tiny =
        Table::new(TableSchema::new("tiny", vec![Column::not_null("k", DataType::Int)], vec![0]));
    for i in 0..10i64 {
        tiny.insert(vec![Value::Int(i)]).unwrap();
    }
    cat.create_table(tiny).unwrap();

    let mut mid = Table::new(TableSchema::new(
        "mid",
        vec![Column::not_null("mid_id", DataType::Int), Column::new("k", DataType::Int)],
        vec![0],
    ));
    for i in 0..5_000i64 {
        mid.insert(vec![Value::Int(i), Value::Int(i % 1_000)]).unwrap();
    }
    cat.create_table(mid).unwrap();
    cat.analyze();
    cat
}

fn bench_optimizer(c: &mut Criterion) {
    let cat = setup();
    let mut g = c.benchmark_group("optimizer");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));

    // --- Build-side choice: dim ⋈ big hashes whichever input is on the
    // right. Building 50k rows vs 1k rows for the same output.
    let build_big = Plan::scan(&cat, "dim").unwrap().join(
        Plan::scan(&cat, "big").unwrap(),
        JoinKind::Inner,
        vec![Expr::col(0)],
        vec![Expr::col(1)],
    );
    let build_dim = Plan::scan(&cat, "big").unwrap().join(
        Plan::scan(&cat, "dim").unwrap(),
        JoinKind::Inner,
        vec![Expr::col(1)],
        vec![Expr::col(0)],
    );
    let build_cost_based = optimize(build_big.clone(), &cat).unwrap();
    g.bench_function("build_side/forward_builds_big", |b| {
        b.iter(|| std::hint::black_box(execute(&build_big, &cat).unwrap().len()));
    });
    g.bench_function("build_side/reversed_builds_dim", |b| {
        b.iter(|| std::hint::black_box(execute(&build_dim, &cat).unwrap().len()));
    });
    g.bench_function("build_side/cost_based", |b| {
        b.iter(|| std::hint::black_box(execute(&build_cost_based, &cat).unwrap().len()));
    });

    // --- Join order: tiny (10 keys) ⋈ big ⋈ mid. The bad order joins the
    // two large tables first (250k intermediate rows); the good order
    // applies tiny's 1% selectivity before touching mid.
    let bad_order = Plan::scan(&cat, "big")
        .unwrap()
        .join(
            Plan::scan(&cat, "mid").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(1)],
            vec![Expr::col(1)],
        )
        .join(
            Plan::scan(&cat, "tiny").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(1)],
            vec![Expr::col(0)],
        );
    let good_order = Plan::scan(&cat, "tiny")
        .unwrap()
        .join(
            Plan::scan(&cat, "big").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(0)],
            vec![Expr::col(1)],
        )
        .join(
            Plan::scan(&cat, "mid").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(2)],
            vec![Expr::col(1)],
        );
    let order_cost_based = optimize(bad_order.clone(), &cat).unwrap();
    g.bench_function("join_order/bad_large_first", |b| {
        b.iter(|| std::hint::black_box(execute(&bad_order, &cat).unwrap().len()));
    });
    g.bench_function("join_order/good_selective_first", |b| {
        b.iter(|| std::hint::black_box(execute(&good_order, &cat).unwrap().len()));
    });
    g.bench_function("join_order/cost_based", |b| {
        b.iter(|| std::hint::black_box(execute(&order_cost_based, &cat).unwrap().len()));
    });

    g.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
