//! Durability ablation: the price of the write-ahead log, per commit,
//! under the three sync policies (`Always`, `EveryN(32)`, `Never`),
//! against the in-memory engine as the zero-cost baseline.
//!
//! Each iteration is one `Database::transaction` that inserts a single
//! entity — i.e. one WAL commit group (Begin + ops + Commit) under the
//! durable configurations. Reported in EXPERIMENTS.md as the durability
//! ablation row.

use criterion::{criterion_group, Criterion};
use erbium_bench::report;
use erbium_core::{Database, DurabilityOptions};
use erbium_storage::{SyncPolicy, Value};
use std::path::PathBuf;
use std::time::Duration;

const DDL: &str = "CREATE ENTITY event (
    id int KEY,
    kind text,
    amount int NULLABLE
)";

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("erbium-walbench-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_db(tag: &str, sync: SyncPolicy) -> Database {
    let dir = bench_dir(tag);
    let mut db = Database::open_with(&dir, DurabilityOptions { sync, ..Default::default() })
        .expect("open durable db");
    db.execute(DDL).unwrap();
    db.install_default().unwrap();
    db
}

fn memory_db() -> Database {
    let mut db = Database::new();
    db.execute(DDL).unwrap();
    db.install_default().unwrap();
    db
}

fn insert_one(db: &mut Database, id: i64) {
    db.insert(
        "event",
        &[
            ("id", Value::Int(id)),
            ("kind", Value::str("click")),
            ("amount", Value::Int(id % 97)),
        ],
    )
    .unwrap();
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));

    g.bench_function("commit_memory_baseline", |b| {
        let mut db = memory_db();
        let mut id = 0i64;
        b.iter(|| {
            id += 1;
            insert_one(&mut db, id);
        });
    });

    g.bench_function("commit_sync_never", |b| {
        let mut db = durable_db("never", SyncPolicy::Never);
        let mut id = 0i64;
        b.iter(|| {
            id += 1;
            insert_one(&mut db, id);
        });
    });

    g.bench_function("commit_sync_every32", |b| {
        let mut db = durable_db("every32", SyncPolicy::EveryN(32));
        let mut id = 0i64;
        b.iter(|| {
            id += 1;
            insert_one(&mut db, id);
        });
    });

    g.bench_function("commit_sync_always", |b| {
        let mut db = durable_db("always", SyncPolicy::Always);
        let mut id = 0i64;
        b.iter(|| {
            id += 1;
            insert_one(&mut db, id);
        });
    });

    // A 32-entity transaction is still one commit group: batching amortises
    // both the group framing and the fsync.
    g.bench_function("commit_batch32_sync_always", |b| {
        let mut db = durable_db("batch32", SyncPolicy::Always);
        let mut id = 0i64;
        b.iter(|| {
            db.transaction(|tx| {
                for _ in 0..32 {
                    id += 1;
                    tx.insert(
                        "event",
                        &[
                            ("id", Value::Int(id)),
                            ("kind", Value::str("click")),
                            ("amount", Value::Int(id % 97)),
                        ],
                    )?;
                }
                Ok(())
            })
            .unwrap();
        });
    });

    g.finish();
}

/// Headline numbers for the machine-readable report: median per-commit
/// cost under each sync policy, merged into the repo-root results file.
fn write_headline() {
    let mut entries = Vec::new();
    for (name, mut db) in [
        ("memory_us", memory_db()),
        ("sync_never_us", durable_db("hl-never", SyncPolicy::Never)),
        ("sync_always_us", durable_db("hl-always", SyncPolicy::Always)),
    ] {
        let mut id = 1_000_000i64;
        let t = erbium_bench::measure(20, || {
            id += 1;
            insert_one(&mut db, id);
        });
        entries.push((name, report::num(t.as_secs_f64() * 1e6)));
    }
    report::merge(
        "BENCH_throughput.json",
        "wal_commit",
        report::obj([
            ("unit", report::text("median microseconds per single-entity commit")),
            (entries[0].0, entries[0].1.clone()),
            (entries[1].0, entries[1].1.clone()),
            (entries[2].0, entries[2].1.clone()),
        ]),
    );
}

/// The group encode buffer is reused across `append_group` calls: after a
/// warm-up group has sized it, thousands of same-shaped commits must not
/// grow it again (no per-append allocation on the commit path).
fn assert_encode_buffer_reuse() {
    use erbium_storage::{Row, Wal, WalRecord};
    let dir = bench_dir("encode-buf");
    std::fs::create_dir_all(&dir).unwrap();
    let mut wal = Wal::open(dir.join("wal.erb"), SyncPolicy::Never, 1).unwrap();
    let group = |id: i64| {
        vec![WalRecord::Insert {
            table: "event".into(),
            rid: id as u64,
            row: vec![Value::Int(id), Value::str("click"), Value::Int(id % 97)] as Row,
        }]
    };
    wal.append_group(&group(0)).unwrap();
    let warm = wal.encode_buf_capacity();
    assert!(warm > 0, "warm-up sized the encode buffer");
    for id in 1..5_000 {
        wal.append_group(&group(id)).unwrap();
    }
    assert_eq!(
        wal.encode_buf_capacity(),
        warm,
        "encode buffer must be reused, not reallocated per append"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_wal);

fn main() {
    assert_encode_buffer_reuse();
    benches();
    // `cargo test --benches` smoke-runs with --test: skip the report.
    if !std::env::args().any(|a| a == "--test") {
        write_headline();
    }
}
