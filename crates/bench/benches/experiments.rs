//! Criterion benches: one group per paper experiment (E1–E9b), one bench
//! per mapping within the group — the criterion counterpart of the `repro`
//! binary. Scale via `ERBIUM_SCALE` (defaults to a criterion-friendly
//! 4,000-instance hierarchy).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use erbium_bench::{build, experiments, BenchDb, MAPPING_NAMES};
use erbium_datagen::ExperimentConfig;
use std::collections::HashMap;

fn config() -> ExperimentConfig {
    match std::env::var("ERBIUM_SCALE") {
        Ok(_) => ExperimentConfig::from_env(),
        Err(_) => ExperimentConfig { n_r: 4_000, mv_avg: 3, seed: 42 },
    }
}

fn bench_experiments(c: &mut Criterion) {
    let cfg = config();
    let dbs: HashMap<&str, BenchDb> =
        MAPPING_NAMES.iter().map(|&m| (m, build(m, &cfg))).collect();
    for exp in experiments() {
        let sql = (exp.query)(&cfg);
        let mut group = c.benchmark_group(exp.id);
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(500));
        group.measurement_time(Duration::from_secs(2));
        for &m in exp.mappings {
            let db = &dbs[m];
            group.bench_function(m, |b| b.iter(|| std::hint::black_box(db.run(&sql))));
        }
        group.finish();
    }
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
