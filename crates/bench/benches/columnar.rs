//! Ablation: columnar (vectorized) kernels vs. the row-at-a-time path
//! (A-columnar in EXPERIMENTS.md).
//!
//! Same E5/E6-class shapes as the `parallel` bench — the scan-heavy
//! operators where the paper's mapping comparisons are decided — run
//! with `ExecContext::with_columnar` on vs. off, everything else equal
//! (results are asserted bit-identical by `tests/parallel_invariance.rs`):
//!
//! * **selective scan** with a fused Filter/Project chain — vectorized
//!   predicates retain a selection vector over raw `i64` slices instead
//!   of cloning rows and re-entering the `Value` enum per cell;
//! * **pruned scan** — projection pruning narrows the gather to one
//!   column of a five-column table (with a 64-byte string column that
//!   the row path clones and the columnar path never touches);
//! * **dictionary predicate** — an equality filter on a text column,
//!   evaluated once per *distinct* string against the dictionary;
//! * **single-key join** — columnar build from a typed key slice;
//! * **single-key aggregate** — chunked columnar aggregation reading
//!   only the grouping and aggregate input columns.

use criterion::{criterion_group, criterion_main, Criterion};
use erbium_engine::{
    execute_streaming, optimizer::optimize, AggCall, AggFunc, BinOp, ExecContext, Expr, JoinKind,
    Plan,
};
use erbium_storage::{Catalog, Column, DataType, Table, TableSchema, Value};
use std::time::Duration;

const N: i64 = 200_000;

fn setup() -> Catalog {
    let mut cat = Catalog::new();
    let mut r = Table::new(TableSchema::new(
        "r",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("k", DataType::Int),
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
            Column::new("tag", DataType::Text),
        ],
        vec![0],
    ));
    let tags = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"];
    for i in 0..N {
        r.insert(vec![
            Value::Int(i),
            Value::Int(i % 1_000),
            Value::Int(i * 7 % 10_000),
            Value::Int(i % 97),
            Value::str(format!("{}-{}", tags[(i % 8) as usize], "x".repeat(56))),
        ])
        .unwrap();
    }
    cat.create_table(r).unwrap();

    let mut s = Table::new(TableSchema::new(
        "s",
        vec![Column::not_null("k", DataType::Int), Column::new("w", DataType::Int)],
        vec![0],
    ));
    for i in 0..1_000i64 {
        s.insert(vec![Value::Int(i), Value::Int(i * 3)]).unwrap();
    }
    cat.create_table(s).unwrap();
    cat
}

fn drain(plan: &Plan, cat: &Catalog, ctx: &ExecContext) -> usize {
    execute_streaming(plan, cat, ctx).unwrap().drain().unwrap().len()
}

fn bench_columnar(c: &mut Criterion) {
    let cat = setup();
    let mut g = c.benchmark_group("columnar");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));

    // Selective scan + fused Filter/Project (E5/E6 front end).
    let pipeline = Plan::scan(&cat, "r")
        .unwrap()
        .filter(Expr::binary(BinOp::Lt, Expr::col(2), Expr::lit(5_000i64)))
        .project(vec![
            (Expr::col(0), "id".into()),
            (Expr::binary(BinOp::Add, Expr::col(2), Expr::col(3)), "ab".into()),
        ]);

    // Pruned scan: one narrow column out of a wide row; the optimizer
    // stamps `projection` on the scan so the string column is never
    // gathered on the columnar path.
    let pruned = optimize(
        Plan::scan(&cat, "r")
            .unwrap()
            .filter(Expr::binary(BinOp::Ge, Expr::col(2), Expr::lit(2_500i64)))
            .project(vec![(Expr::col(3), "b".into())]),
        &cat,
    )
    .unwrap();

    // Dictionary predicate: text equality evaluated against the dict.
    let dict = Plan::scan(&cat, "r").unwrap().filter(Expr::eq(
        Expr::col(4),
        Expr::lit(Value::str(format!("gamma-{}", "x".repeat(56)))),
    ));

    // Single-key join: bare-scan build side → columnar build.
    let join = Plan::scan(&cat, "r")
        .unwrap()
        .filter(Expr::binary(BinOp::Lt, Expr::col(3), Expr::lit(48i64)))
        .join(
            Plan::scan(&cat, "s").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(1)],
            vec![Expr::col(0)],
        );

    // Single-key aggregate over a bare scan — the columnar fast path
    // reads only columns k, a, b of the five-column table.
    let agg = Plan::scan(&cat, "r").unwrap().aggregate(
        vec![(Expr::col(1), "k".into())],
        vec![
            (AggCall::new(AggFunc::Sum, Expr::col(2)), "total".into()),
            (AggCall::new(AggFunc::Avg, Expr::col(3)), "avg_b".into()),
            (AggCall::count_star(), "n".into()),
        ],
    );

    let cases: [(&str, &Plan); 5] = [
        ("scan_filter_project", &pipeline),
        ("pruned_scan", &pruned),
        ("dict_filter", &dict),
        ("join_single_key", &join),
        ("group_agg_single_key", &agg),
    ];
    for (name, plan) in cases {
        for threads in [1usize, 4] {
            for columnar in [true, false] {
                let ctx = ExecContext::default().with_threads(threads).with_columnar(columnar);
                let tag = if columnar { "col" } else { "row" };
                g.bench_function(format!("{name}/t{threads}_{tag}"), |b| {
                    b.iter(|| std::hint::black_box(drain(plan, &cat, &ctx)));
                });
            }
        }
    }

    g.finish();
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
