//! Multi-client throughput: N reader threads running the mixed E1–E9
//! workload over [`SharedDatabase`] snapshots while a writer commits
//! continuously, at N ∈ {1, 2, 4, 8, 16}.
//!
//! Reports QPS and p50/p99 read latency per fan-out, plus the
//! A-concurrency ablation (plan cache hit vs forced-miss point queries;
//! WAL group commit vs one-fsync-per-commit), and writes the repo-root
//! `BENCH_throughput.json` via [`erbium_bench::report`].
//!
//! Not a criterion harness: the workload is wall-clock-window driven and
//! the interesting numbers are aggregate QPS and tail latency, which the
//! per-iteration criterion model does not express.

use erbium_bench::{build, queries, report};
use erbium_client::RemoteClient;
use erbium_core::{Connection, Database, DurabilityOptions, SharedDatabase};
use erbium_datagen::ExperimentConfig;
use erbium_server::{Server, ServerOptions};
use erbium_storage::{SyncPolicy, Value};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Globally unique ids for writer-inserted S entities, far above the
/// populated id range so sweeps never collide with the dataset or each
/// other.
static NEXT_ID: AtomicI64 = AtomicI64::new(50_000_000);

/// The read mix: every experiment query E1–E9 (point lookups, scans,
/// unnests, relationship joins), as fixed SQL texts so repeated
/// executions exercise the plan cache the way real prepared workloads do.
fn workload(cfg: &ExperimentConfig) -> Vec<String> {
    vec![
        queries::E1.to_string(),
        queries::E2.to_string(),
        queries::e3((cfg.n_r / 2) as i64),
        queries::E4.to_string(),
        queries::E5.to_string(),
        queries::E6.to_string(),
        queries::e7(cfg),
        queries::E8.to_string(),
        queries::E9A.to_string(),
        queries::E9B.to_string(),
    ]
}

struct Sweep {
    clients: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    writer_commits: u64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e3
}

/// One fan-out point: `clients` reader threads loop the workload for
/// `window` wall-clock time while a writer thread commits small
/// transactions as fast as it can.
fn run_sweep(db: &SharedDatabase, sqls: &[String], clients: usize, window: Duration) -> Sweep {
    let stop = AtomicBool::new(false);
    let commits = AtomicU64::new(0);
    let mut latencies: Vec<u64> = Vec::new();

    std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                db.transaction(|tx| {
                    for _ in 0..4 {
                        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
                        tx.insert(
                            "S",
                            &[
                                ("s_id", Value::Int(id)),
                                ("s_a", Value::str(format!("w-{id}"))),
                                ("s_b", Value::Int(id % 50)),
                            ],
                        )?;
                    }
                    Ok(())
                })
                .expect("writer commit");
                commits.fetch_add(1, Ordering::Relaxed);
            }
        });

        let readers: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::new();
                    let mut i = c; // offset so threads interleave the mix
                    let t0 = Instant::now();
                    while t0.elapsed() < window {
                        let sql = &sqls[i % sqls.len()];
                        let t = Instant::now();
                        let rows = db.query(sql).expect("read query").rows;
                        lat.push(t.elapsed().as_nanos() as u64);
                        black_box(rows);
                        i += 1;
                    }
                    lat
                })
            })
            .collect();
        for r in readers {
            latencies.extend(r.join().expect("reader thread"));
        }
        stop.store(true, Ordering::Relaxed);
    });

    latencies.sort_unstable();
    Sweep {
        clients,
        qps: latencies.len() as f64 / window.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        writer_commits: commits.load(Ordering::Relaxed),
    }
}

/// One A-server fan-out point: `clients` reader threads, each with its own
/// connection from `connect`, looping the read mix through the
/// [`Connection`] trait — the *same* loop body whether the connection is a
/// `SharedDatabase` clone or a `RemoteClient` socket.
fn conn_sweep<C, F>(connect: &F, sqls: &[String], clients: usize, window: Duration) -> Sweep
where
    C: Connection,
    F: Fn() -> C + Sync,
{
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut conn = connect();
                    let mut lat = Vec::new();
                    let mut i = c;
                    let t0 = Instant::now();
                    while t0.elapsed() < window {
                        let sql = &sqls[i % sqls.len()];
                        let t = Instant::now();
                        let rows = conn.query(sql).expect("read query").rows;
                        lat.push(t.elapsed().as_nanos() as u64);
                        black_box(rows);
                        i += 1;
                    }
                    lat
                })
            })
            .collect();
        for r in readers {
            latencies.extend(r.join().expect("reader thread"));
        }
    });
    latencies.sort_unstable();
    Sweep {
        clients,
        qps: latencies.len() as f64 / window.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        writer_commits: 0,
    }
}

/// A-server: in-process vs ERSP/TCP for the identical read mix — what one
/// network hop and a frame encode/decode cost at each fan-out.
fn server_sweep(
    db: &SharedDatabase,
    sqls: &[String],
    fan: &[usize],
    window: Duration,
) -> Vec<(Sweep, Sweep)> {
    let mut server =
        Server::bind("127.0.0.1:0", db.clone(), ServerOptions::default()).expect("bind server");
    let addr = server.local_addr();
    let points = fan
        .iter()
        .map(|&n| {
            let inproc = conn_sweep(&|| db.clone(), sqls, n, window);
            let tcp =
                conn_sweep(&|| RemoteClient::connect(addr).expect("dial server"), sqls, n, window);
            (inproc, tcp)
        })
        .collect();
    assert!(server.drain(Duration::from_secs(10)), "bench server failed to drain");
    points
}

/// Plan-cache ablation: median latency of a point query when every run
/// hits the cache vs when a per-iteration comment forces a distinct cache
/// key (full parse + plan every time — the "cache off" path). Runs on a
/// small dedicated table so planning cost is visible next to execution.
fn plan_cache_ablation(reps: usize) -> report::Value {
    let mut db = Database::new();
    db.execute("CREATE ENTITY pt (id int KEY, v int)").unwrap();
    db.install_default().unwrap();
    for i in 0..100 {
        db.insert("pt", &[("id", Value::Int(i)), ("v", Value::Int(i % 7))]).unwrap();
    }
    let db = db.into_shared();
    let point = "SELECT p.v FROM pt p WHERE p.id = 50";
    let cached = erbium_bench::measure(reps, || {
        black_box(db.query(point).expect("cached point query").rows.len());
    });
    let mut i = 0u64;
    let uncached = erbium_bench::measure(reps, || {
        i += 1;
        let sql = format!("{point} -- miss {i}");
        black_box(db.query(&sql).expect("uncached point query").rows.len());
    });
    let stats = db.plan_cache_stats();
    report::obj([
        ("point_query_cached_us", report::num(cached.as_secs_f64() * 1e6)),
        ("point_query_uncached_us", report::num(uncached.as_secs_f64() * 1e6)),
        ("cache_hits", report::int(stats.hits)),
        ("cache_misses", report::int(stats.misses)),
    ])
}

/// Group-commit ablation: K threads committing through the shared handle
/// (one fsync covers a batch) vs the same commit count fsynced one-by-one
/// on an exclusive handle. Both run `SyncPolicy::Always`.
fn group_commit_ablation(k: usize, per_thread: usize) -> report::Value {
    let base = std::env::temp_dir().join(format!("erbium-tputbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let open = |tag: &str, window: Duration| {
        let dir = base.join(tag);
        let mut db = Database::open_with(
            &dir,
            DurabilityOptions {
                sync: SyncPolicy::Always,
                group_commit_window: window,
                ..Default::default()
            },
        )
        .expect("open durable db");
        db.execute("CREATE ENTITY ev (id int KEY, n int)").unwrap();
        db.install_default().unwrap();
        db
    };
    let commit = |db: &SharedDatabase, id: i64| {
        db.transaction(|tx| tx.insert("ev", &[("id", Value::Int(id)), ("n", Value::Int(0))]))
            .expect("durable commit");
    };

    // Serial baseline: every commit pays its own fsync.
    let serial_db = open("serial", Duration::ZERO).into_shared();
    let t = Instant::now();
    for id in 0..(k * per_thread) as i64 {
        commit(&serial_db, id);
    }
    let serial = t.elapsed();

    // Grouped: K concurrent committers share fsyncs via the commit queue.
    // Zero dally window — batching comes purely from commits that queue up
    // while the current leader's fsync is in flight.
    let grouped_db = open("grouped", Duration::ZERO).into_shared();
    let t = Instant::now();
    std::thread::scope(|s| {
        for c in 0..k {
            let db = &grouped_db;
            s.spawn(move || {
                for i in 0..per_thread {
                    commit(db, (c * per_thread + i) as i64);
                }
            });
        }
    });
    let grouped = t.elapsed();
    let (batches, commits) = grouped_db.group_commit_stats().expect("group committer active");
    let _ = std::fs::remove_dir_all(&base);

    let n = (k * per_thread) as f64;
    report::obj([
        ("threads", report::int(k as u64)),
        ("commits", report::int(commits)),
        ("fsync_batches", report::int(batches)),
        ("serial_commits_per_s", report::num(n / serial.as_secs_f64())),
        ("grouped_commits_per_s", report::num(n / grouped.as_secs_f64())),
    ])
}

fn main() {
    // `cargo test --benches` smoke mode: tiny scale, no report file.
    let test_mode = std::env::args().any(|a| a == "--test");
    let cfg = if test_mode {
        ExperimentConfig { n_r: 200, mv_avg: 2, seed: 42 }
    } else {
        ExperimentConfig { n_r: 2_000, mv_avg: 3, seed: 42 }
    };
    let window = if test_mode { Duration::from_millis(40) } else { Duration::from_millis(1500) };
    let fan: &[usize] = if test_mode { &[1, 2] } else { &[1, 2, 4, 8, 16] };

    let built = build("M1", &cfg);
    let db = Database::from_parts(built.catalog, built.lowering).into_shared();
    let sqls = workload(&cfg);
    for sql in &sqls {
        db.query(sql).unwrap_or_else(|e| panic!("workload query failed: {e}\n{sql}"));
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("throughput: mapping=M1 n_r={} cores={} window={:?}", cfg.n_r, cores, window);
    let mut sweeps = Vec::new();
    for &n in fan {
        let s = run_sweep(&db, &sqls, n, window);
        println!(
            "  clients={:<2} qps={:>8.1} p50={:>8.1}us p99={:>8.1}us writer_commits={}",
            s.clients, s.qps, s.p50_us, s.p99_us, s.writer_commits
        );
        sweeps.push(s);
    }

    let server_fan: &[usize] = if test_mode { &[1, 2] } else { &[1, 4, 8] };
    let server_points = server_sweep(&db, &sqls, server_fan, window);
    for (inproc, tcp) in &server_points {
        println!(
            "  A-server clients={:<2} in-process qps={:>8.1} p50={:>7.1}us | \
             tcp qps={:>8.1} p50={:>7.1}us p99={:>8.1}us",
            inproc.clients, inproc.qps, inproc.p50_us, tcp.qps, tcp.p50_us, tcp.p99_us
        );
    }

    if test_mode {
        return;
    }

    let cache = plan_cache_ablation(200);
    let group = group_commit_ablation(8, 24);
    report::merge(
        "BENCH_throughput.json",
        "meta",
        report::obj([
            ("mapping", report::text("M1")),
            ("n_r", report::int(cfg.n_r as u64)),
            ("cores", report::int(cores as u64)),
            ("window_ms", report::int(window.as_millis() as u64)),
            ("queries_in_mix", report::int(sqls.len() as u64)),
        ]),
    );
    report::merge(
        "BENCH_throughput.json",
        "read_throughput",
        report::Value::Array(
            sweeps
                .iter()
                .map(|s| {
                    report::obj([
                        ("clients", report::int(s.clients as u64)),
                        ("qps", report::num(s.qps)),
                        ("p50_us", report::num(s.p50_us)),
                        ("p99_us", report::num(s.p99_us)),
                        ("writer_commits", report::int(s.writer_commits)),
                    ])
                })
                .collect(),
        ),
    );
    report::merge(
        "BENCH_throughput.json",
        "server",
        report::Value::Array(
            server_points
                .iter()
                .map(|(inproc, tcp)| {
                    report::obj([
                        ("clients", report::int(inproc.clients as u64)),
                        ("inprocess_qps", report::num(inproc.qps)),
                        ("inprocess_p50_us", report::num(inproc.p50_us)),
                        ("tcp_qps", report::num(tcp.qps)),
                        ("tcp_p50_us", report::num(tcp.p50_us)),
                        ("tcp_p99_us", report::num(tcp.p99_us)),
                    ])
                })
                .collect(),
        ),
    );
    report::merge("BENCH_throughput.json", "plan_cache", cache);
    report::merge("BENCH_throughput.json", "group_commit", group);
    println!("wrote {}", report::path("BENCH_throughput.json").display());
}
