//! Ablation benchmarks for the pull-based streaming executor.
//!
//! Three axes:
//!
//! * **streaming vs. materializing drain** — `execute` (the compat wrapper
//!   that drains the stream) against pulling only the batches a consumer
//!   actually needs, which is where a pull executor wins;
//! * **LIMIT early termination** — `LIMIT k` over a large scan should cost
//!   ~k rows, not a full-table materialization;
//! * **1 vs. N threads** — morsel-parallel leaf scans and hash-join builds
//!   on scoped threads (on single-core CI boxes the two arms measure the
//!   scheduling overhead rather than a speedup; the equivalence of results
//!   is asserted by `crates/engine/tests/streaming.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use erbium_engine::{execute, execute_streaming, ExecContext, Expr, JoinKind, Plan};
use erbium_storage::{Catalog, Column, DataType, Table, TableSchema, Value};
use std::time::Duration;

const N: i64 = 100_000;

fn setup() -> Catalog {
    let mut cat = Catalog::new();
    let mut t = Table::new(TableSchema::new(
        "big",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("grp", DataType::Int),
            Column::new("v", DataType::Int),
        ],
        vec![0],
    ));
    for i in 0..N {
        t.insert(vec![Value::Int(i), Value::Int(i % 64), Value::Int(i * 7 % 10_000)]).unwrap();
    }
    cat.create_table(t).unwrap();

    let mut dim = Table::new(TableSchema::new(
        "dim",
        vec![Column::not_null("k", DataType::Int), Column::new("label", DataType::Int)],
        vec![0],
    ));
    for i in 0..64i64 {
        dim.insert(vec![Value::Int(i), Value::Int(i * 11)]).unwrap();
    }
    cat.create_table(dim).unwrap();
    cat
}

fn bench_streaming(c: &mut Criterion) {
    let cat = setup();
    let mut g = c.benchmark_group("streaming");
    g.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));

    let filtered = Plan::scan(&cat, "big")
        .unwrap()
        .filter(Expr::binary(erbium_engine::BinOp::Lt, Expr::col(2), Expr::lit(5_000i64)));

    // Materializing compat path: drain everything into one Vec.
    g.bench_function("scan_filter/drain", |b| {
        b.iter(|| std::hint::black_box(execute(&filtered, &cat).unwrap().len()));
    });

    // Streaming consumer that only needs the first batch.
    g.bench_function("scan_filter/first_batch", |b| {
        let ctx = ExecContext::default();
        b.iter(|| {
            let mut s = execute_streaming(&filtered, &cat, &ctx).unwrap();
            std::hint::black_box(s.next_batch().unwrap().map(|b| b.len()))
        });
    });

    // LIMIT early termination: the scan stops after ~k qualifying rows.
    let limited = filtered.clone().limit(64);
    g.bench_function("limit64/streaming", |b| {
        let ctx = ExecContext::default();
        b.iter(|| {
            let mut s = execute_streaming(&limited, &cat, &ctx).unwrap();
            std::hint::black_box(s.drain().unwrap().len())
        });
    });

    // Morsel-parallel scan: 1 thread vs. 4 threads over the same plan.
    for threads in [1usize, 4] {
        let ctx = ExecContext::default().with_threads(threads);
        g.bench_function(format!("scan_filter/drain_t{threads}"), |b| {
            b.iter(|| {
                let mut s = execute_streaming(&filtered, &cat, &ctx).unwrap();
                std::hint::black_box(s.drain().unwrap().len())
            });
        });
    }

    // Hash join (parallel build side when threads > 1).
    let join = Plan::scan(&cat, "big").unwrap().join(
        Plan::scan(&cat, "dim").unwrap(),
        JoinKind::Inner,
        vec![Expr::col(1)],
        vec![Expr::col(0)],
    );
    for threads in [1usize, 4] {
        let ctx = ExecContext::default().with_threads(threads);
        g.bench_function(format!("join/drain_t{threads}"), |b| {
            b.iter(|| {
                let mut s = execute_streaming(&join, &cat, &ctx).unwrap();
                std::hint::black_box(s.drain().unwrap().len())
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
