//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **A-index** — the paper attributes M1's 145x point-lookup loss to a
//!   missing index on the side table; adding one should close most of the
//!   gap (the rest is the extra fetch);
//! * **A-m6-format** — denormalized vs. factorized co-location: join
//!   speed, single-entity scan speed, and storage bytes (the paper argues
//!   compact multi-relation formats are what make M6 viable);
//! * **A-crud** — logical insert and entity-centric erase cost across
//!   mappings (the write amplification the mapping choice implies);
//! * **A-remap** — full physical migration between mappings;
//! * **A-stats** — cost-based optimization on vs. off: the same queries
//!   over the same instance, with and without ANALYZE-gathered statistics
//!   (stats unlock build-side selection, join reordering, and
//!   selectivity-ranked filters; without them those passes are no-ops);
//! * **A-bufferpool** — row-page buffer pool unbounded vs. an 8-frame
//!   budget: full row-store scan cost when every page must be spilled and
//!   re-faulted each pass, and query cost over the same bounded catalog
//!   (the columnar working set answers queries, so bounding row pages
//!   should cost queries ~nothing). Pool hit/miss/eviction counters are
//!   printed once at the end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use erbium_bench::{build, mapping_by_name, queries, BenchDb};
use erbium_datagen::{populate_experiment, ExperimentConfig};
use erbium_evolve::Migrator;
use erbium_mapping::{EntityData, EntityStore, Lowering};
use erbium_model::fixtures;
use erbium_storage::{BufferPool, Catalog, IndexKind, Transaction, Value};

fn config() -> ExperimentConfig {
    ExperimentConfig { n_r: 4_000, mv_avg: 3, seed: 42 }
}

fn bench_index_ablation(c: &mut Criterion) {
    let cfg = config();
    let mut g = c.benchmark_group("A-index");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let sql = queries::e3((cfg.n_r / 2) as i64);

    let db = build("M1", &cfg);
    g.bench_function("M1_no_side_index", |b| {
        b.iter(|| std::hint::black_box(db.run(&sql)))
    });

    let mut db2 = build("M1", &cfg);
    db2.catalog
        .table_mut("R__r_mv1")
        .unwrap()
        .create_index("side_by_rid", vec![0], IndexKind::Hash)
        .unwrap();
    g.bench_function("M1_with_side_index", |b| {
        b.iter(|| std::hint::black_box(db2.run(&sql)))
    });

    let db3 = build("M2", &cfg);
    g.bench_function("M2_inline", |b| b.iter(|| std::hint::black_box(db3.run(&sql))));
    g.finish();
}

fn bench_m6_format(c: &mut Criterion) {
    let cfg = config();
    let mut g = c.benchmark_group("A-m6-format");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let dbs = [build("M6d", &cfg), build("M6f", &cfg)];
    for db in &dbs {
        g.bench_function(format!("{}_join", db.name), |b| {
            b.iter(|| std::hint::black_box(db.run(queries::E9A)))
        });
        g.bench_function(format!("{}_single_entity", db.name), |b| {
            b.iter(|| std::hint::black_box(db.run(queries::E9B)))
        });
    }
    g.finish();
    // Storage comparison is printed once (criterion has no byte metric).
    let fact = dbs[1].catalog.factorized("r2_s1__co").unwrap();
    eprintln!(
        "A-m6-format storage: factorized={} bytes vs denormalized-equivalent={} bytes",
        fact.approx_bytes(),
        fact.denormalized_bytes()
    );
}

fn bench_crud(c: &mut Criterion) {
    let cfg = ExperimentConfig { n_r: 2_000, mv_avg: 3, seed: 42 };
    let mut g = c.benchmark_group("A-crud");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for name in ["M1", "M2", "M3", "M4", "M5"] {
        // Logical insert of an R3 instance (multi-table under M1, single
        // row under M3/M4).
        g.bench_function(format!("insert_r3_{name}"), |b| {
            let mut db = build(name, &cfg);
            let mut next_id = cfg.n_r as i64;
            b.iter(|| {
                let store = EntityStore::new(&db.lowering);
                let mut data = EntityData::default();
                data.insert("r_id".into(), Value::Int(next_id));
                data.insert("r_a".into(), Value::str("bench"));
                data.insert("r_b".into(), Value::Int(1));
                data.insert("r_mv1".into(), Value::Array(vec![Value::Int(1), Value::Int(2)]));
                data.insert("r_mv2".into(), Value::Array(vec![Value::Int(3)]));
                data.insert("r_mv3".into(), Value::Array(vec![Value::str("x")]));
                data.insert("r1_a".into(), Value::Int(5));
                data.insert("r1_b".into(), Value::str("y"));
                data.insert("r3_a".into(), Value::Int(7));
                let mut txn = Transaction::new();
                store
                    .insert(&mut db.catalog, &mut txn, "R3", &data, &[("r_s", vec![Value::Int(0)])])
                    .unwrap();
                txn.commit();
                next_id += 1;
            });
        });
        // Entity-centric erase: each iteration deletes an instance the
        // (untimed) setup inserted, so the pool never runs dry.
        g.bench_function(format!("erase_{name}"), |b| {
            let mut db = build(name, &cfg);
            let next_id = std::cell::Cell::new(10 * cfg.n_r as i64);
            let db = std::cell::RefCell::new(&mut db);
            b.iter_batched(
                || {
                    let id = next_id.get();
                    next_id.set(id + 1);
                    let mut dbr = db.borrow_mut();
                    let lowering = dbr.lowering.clone();
                    let store = EntityStore::new(&lowering);
                    let mut data = EntityData::default();
                    data.insert("r_id".into(), Value::Int(id));
                    data.insert("r_a".into(), Value::str("bench"));
                    data.insert("r_b".into(), Value::Int(1));
                    data.insert("r_mv1".into(), Value::Array(vec![Value::Int(1)]));
                    data.insert("r_mv2".into(), Value::Array(vec![]));
                    data.insert("r_mv3".into(), Value::Array(vec![]));
                    data.insert("r2_a".into(), Value::Int(2));
                    data.insert("r2_b".into(), Value::str("y"));
                    let mut txn = Transaction::new();
                    store
                        .insert(&mut dbr.catalog, &mut txn, "R2", &data, &[("r_s", vec![Value::Int(0)])])
                        .unwrap();
                    txn.commit();
                    id
                },
                |id| {
                    let mut dbr = db.borrow_mut();
                    let lowering = dbr.lowering.clone();
                    let store = EntityStore::new(&lowering);
                    let mut txn = Transaction::new();
                    store.delete(&mut dbr.catalog, &mut txn, "R", &[Value::Int(id)]).unwrap();
                    txn.commit();
                },
                criterion::BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let cfg = config();
    let mut g = c.benchmark_group("A-stats");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    // E6 is the skewed VIA join (build-side choice); E5 under M1 is the
    // paper's 3-way hierarchy join (join-order choice).
    for (qid, sql) in [("E5", queries::E5), ("E6", queries::E6)] {
        for name in ["M1", "M4"] {
            let db = build(name, &cfg);
            g.bench_function(format!("{name}_{qid}_stats_off"), |b| {
                b.iter(|| std::hint::black_box(db.run(sql)))
            });
            let mut db2 = build(name, &cfg);
            db2.catalog.analyze();
            g.bench_function(format!("{name}_{qid}_stats_on"), |b| {
                b.iter(|| std::hint::black_box(db2.run(sql)))
            });
        }
    }
    g.finish();
}

fn bench_remap(c: &mut Criterion) {
    let cfg = ExperimentConfig { n_r: 1_000, mv_avg: 3, seed: 42 };
    let mut g = c.benchmark_group("A-remap");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for target in ["M2", "M3", "M4", "M5"] {
        g.bench_function(format!("M1_to_{target}"), |b| {
            b.iter_batched(
                || build("M1", &cfg),
                |mut db| {
                    let mapping = erbium_bench::mapping_by_name(target);
                    Migrator::remap(&mut db.catalog, &db.lowering, mapping).unwrap();
                },
                criterion::BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

/// Like [`build`], but the catalog's row pages live behind a bounded
/// buffer pool: `frames` resident pages, everything else spilled to a
/// transient file under the system temp dir.
fn build_bounded(name: &str, cfg: &ExperimentConfig, frames: usize) -> BenchDb {
    let spill = std::env::temp_dir()
        .join(format!("erbium-ablation-bufferpool-{}-{name}-{frames}.erb", std::process::id()));
    let schema = fixtures::experiment();
    let mapping = mapping_by_name(name);
    let lowering = Lowering::build(&schema, &mapping).expect("paper mapping is valid");
    let mut catalog = Catalog::with_pool(BufferPool::bounded(frames, spill));
    lowering.install(&mut catalog).expect("fresh catalog");
    let stats = populate_experiment(&mut catalog, &lowering, cfg).expect("population succeeds");
    catalog.reclaim_pages();
    BenchDb { name: name.to_string(), catalog, lowering, stats }
}

/// Full row-store walk: every row of every plain table. Under a bounded
/// pool this faults every non-resident page back from the spill file.
fn scan_all_rows(catalog: &Catalog) -> usize {
    catalog
        .table_names()
        .iter()
        .map(|n| catalog.table(n).unwrap().scan().count())
        .sum()
}

fn bench_bufferpool(c: &mut Criterion) {
    const FRAMES: usize = 8;
    let cfg = config();
    let mut g = c.benchmark_group("A-bufferpool");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));

    // Unbounded scan: all pages resident, pure in-memory walk.
    let db = build("M1", &cfg);
    g.bench_function("M1_scan_unbounded", |b| {
        b.iter(|| std::hint::black_box(scan_all_rows(&db.catalog)))
    });

    // Bounded scan: each pass reclaims down to the budget first, so the
    // walk re-faults (and, the first time, writes back) nearly every page.
    // This is the worst case — a working set FRAMES/page_count the size of
    // the data, touched in full every pass.
    let mut bdb = build_bounded("M1", &cfg, FRAMES);
    g.bench_function(format!("M1_scan_bounded_{FRAMES}f"), |b| {
        b.iter(|| {
            bdb.catalog.reclaim_pages();
            std::hint::black_box(scan_all_rows(&bdb.catalog))
        })
    });
    let scan_stats = bdb.catalog.pool().stats();

    // Query cost under the same bounded catalog: E1 (scan-shaped) and E5
    // (3-way hierarchy join) run off the columnar working set, so the
    // frame budget on row pages should be ~invisible here.
    for (qid, sql) in [("E1", queries::E1), ("E5", queries::E5)] {
        g.bench_function(format!("M1_{qid}_unbounded"), |b| {
            b.iter(|| std::hint::black_box(db.run(sql)))
        });
        g.bench_function(format!("M1_{qid}_bounded_{FRAMES}f"), |b| {
            b.iter(|| {
                bdb.catalog.reclaim_pages();
                std::hint::black_box(bdb.run(sql))
            })
        });
    }
    g.finish();

    let end = bdb.catalog.pool().stats();
    let hit_rate = |s: &erbium_storage::BufferPoolStats| {
        100.0 * s.hits as f64 / (s.hits + s.misses).max(1) as f64
    };
    eprintln!(
        "A-bufferpool pool counters (budget {FRAMES} frames):\n  \
         after scans: hits={} misses={} evictions={} dirty_writebacks={} hit-rate={:.1}%\n  \
         after queries: hits={} misses={} evictions={} dirty_writebacks={} hit-rate={:.1}%",
        scan_stats.hits,
        scan_stats.misses,
        scan_stats.evictions,
        scan_stats.dirty_writebacks,
        hit_rate(&scan_stats),
        end.hits,
        end.misses,
        end.evictions,
        end.dirty_writebacks,
        hit_rate(&end),
    );
}

criterion_group!(
    benches,
    bench_index_ablation,
    bench_m6_format,
    bench_crud,
    bench_stats,
    bench_remap,
    bench_bufferpool
);
criterion_main!(benches);
