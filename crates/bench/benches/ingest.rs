//! Ingest-path benchmarks for the PR-9 hot-path work (experiment
//! `A-ingest` in EXPERIMENTS.md):
//!
//! * **per-row vs bulk** — loading the same batch through one
//!   `Database::insert` transaction per row versus one `copy_from` call
//!   (one WAL commit group, one index pass, one stats refresh);
//! * **checkpoint cost vs dirty fraction** — `Database::checkpoint` on a
//!   32-table catalog with 1, 4, or all 32 tables dirtied since the last
//!   checkpoint (delta snapshots vs the full rewrite);
//! * **CSR vs row traversal** — factorized-join expansion over the flat
//!   CSR adjacency versus the per-slot pointer `Vec`s.

use criterion::{criterion_group, Criterion};
use erbium_bench::report;
use erbium_core::{BulkEntity, CheckpointKind, Database, DurabilityOptions};
use erbium_storage::{
    Column, DataType, FactorizedTable, RowId, SyncPolicy, TableSchema, Value,
};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const PERSON_DDL: &str = "CREATE ENTITY person (id int KEY, name text, score int)";

fn bench_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("erbium-ingestbench-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Durable single-entity database. Under `SyncPolicy::Always` the per-row
/// path pays one commit group + fsync per row while `copy_from` pays one
/// per batch — the amortization the bulk path exists for. `SyncPolicy::Never`
/// isolates the CPU side of the same comparison (commit-group framing,
/// index maintenance, snapshot bookkeeping).
fn person_db(tag: &str, sync: SyncPolicy) -> Database {
    let dir = bench_dir(tag);
    let mut db = Database::open_with(&dir, DurabilityOptions { sync, ..Default::default() })
        .expect("open durable db");
    db.execute(PERSON_DDL).unwrap();
    db.install_default().unwrap();
    db
}

fn person(i: i64) -> BulkEntity {
    BulkEntity::new(&[
        ("id", Value::Int(i)),
        ("name", Value::str(format!("p{i}"))),
        ("score", Value::Int(i % 10)),
    ])
}

fn insert_person(db: &mut Database, i: i64) {
    db.insert(
        "person",
        &[
            ("id", Value::Int(i)),
            ("name", Value::str(format!("p{i}"))),
            ("score", Value::Int(i % 10)),
        ],
    )
    .unwrap();
}

const BATCH: i64 = 1_000;

fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));

    for (tag, sync) in [("fsync", SyncPolicy::Always), ("nosync", SyncPolicy::Never)] {
        g.bench_function(format!("per_row_1000_{tag}"), |b| {
            let mut db = person_db(&format!("per-row-{tag}"), sync);
            let mut id = 0i64;
            b.iter(|| {
                for _ in 0..BATCH {
                    id += 1;
                    insert_person(&mut db, id);
                }
            });
        });

        g.bench_function(format!("bulk_1000_{tag}"), |b| {
            let mut db = person_db(&format!("bulk-{tag}"), sync);
            let mut id = 0i64;
            b.iter(|| {
                let batch: Vec<BulkEntity> = (id..id + BATCH).map(person).collect();
                id += BATCH;
                db.copy_from("person", &batch).unwrap();
            });
        });
    }

    g.finish();
}

// ---------------------------------------------------------------------------
// Checkpoint cost vs dirty fraction.
//
// Criterion's free-running iteration count would push a delta chain past the
// compaction threshold mid-measurement (every 8th checkpoint becomes a full
// rewrite), so this family uses explicit median-of-N timing on a fresh
// database per point instead of a criterion group.
// ---------------------------------------------------------------------------

/// A durable database with `tables` entities of `rows` instances each,
/// checkpointed to a clean full base (nothing dirty, empty delta chain).
fn many_table_db(tag: &str, tables: usize, rows: i64) -> Database {
    let dir = bench_dir(tag);
    let mut db = Database::open_with(
        &dir,
        DurabilityOptions { sync: SyncPolicy::Never, ..Default::default() },
    )
    .expect("open durable db");
    let mut ddl = String::new();
    for t in 0..tables {
        ddl.push_str(&format!("CREATE ENTITY t{t:02} (id int KEY, v int);\n"));
    }
    db.execute(&ddl).unwrap();
    db.install_default().unwrap();
    for t in 0..tables {
        let batch: Vec<BulkEntity> = (0..rows)
            .map(|i| BulkEntity::new(&[("id", Value::Int(i)), ("v", Value::Int(i % 97))]))
            .collect();
        db.copy_from(&format!("t{t:02}"), &batch).unwrap();
    }
    // Population dirtied every table: compact to a fresh full base so each
    // measured point starts from a clean chain.
    let kind = db.checkpoint().unwrap().expect("durable db checkpoints");
    assert_eq!(kind, CheckpointKind::Full, "whole-catalog churn compacts");
    db
}

/// Median checkpoint cost after dirtying `dirty` of the catalog's tables
/// (one single-row insert each, outside the timed section). Asserts the
/// checkpoint kind so the point measures what its label claims. `reps` must
/// stay below the delta-chain compaction threshold.
fn checkpoint_cost(db: &mut Database, dirty: usize, expect: &CheckpointKind, reps: usize) -> Duration {
    let mut times = Vec::new();
    let mut next_id = 1_000_000i64;
    for _ in 0..reps {
        for t in 0..dirty {
            next_id += 1;
            db.insert(&format!("t{t:02}"), &[("id", Value::Int(next_id)), ("v", Value::Int(0))])
                .unwrap();
        }
        let t0 = Instant::now();
        let kind = db.checkpoint().unwrap().expect("durable db checkpoints");
        times.push(t0.elapsed());
        assert_eq!(&kind, expect, "dirtying {dirty} tables");
    }
    times.sort();
    times[times.len() / 2]
}

/// Run the checkpoint family at the given scale; returns `(label, median)`
/// per point. Shared by the smoke run (tiny scale) and the headline.
fn checkpoint_family(tables: usize, rows: i64, reps: usize) -> Vec<(String, Duration)> {
    let full = CheckpointKind::Full;
    let delta = |n| CheckpointKind::Delta { tables: n, factorized: 0 };
    // Fresh database per point: delta chains must not leak across points.
    [(1, delta(1)), (tables / 8, delta(tables / 8)), (tables, full)]
        .into_iter()
        .map(|(dirty, expect)| {
            let mut db = many_table_db(&format!("ckpt-{dirty}"), tables, rows);
            let label = if dirty == tables {
                format!("full_{tables}_of_{tables}")
            } else {
                format!("delta_{dirty}_of_{tables}")
            };
            (label, checkpoint_cost(&mut db, dirty, &expect, reps))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// CSR vs row traversal.
// ---------------------------------------------------------------------------

const CSR_LEFTS: usize = 20_000;
const CSR_RIGHTS: usize = 20_000;
const CSR_FANOUT: usize = 8;

fn adjacency() -> FactorizedTable {
    let left = TableSchema::new(
        "l",
        vec![Column::not_null("lid", DataType::Int), Column::new("lv", DataType::Int)],
        vec![0],
    );
    let right = TableSchema::new(
        "r",
        vec![Column::not_null("rid", DataType::Int), Column::new("rv", DataType::Int)],
        vec![0],
    );
    let mut f = FactorizedTable::new("bench", left, right);
    let rids: Vec<RowId> = (0..CSR_RIGHTS as i64)
        .map(|i| f.insert_right(vec![Value::Int(i), Value::Int(i % 101)]).unwrap())
        .collect();
    for i in 0..CSR_LEFTS {
        let l = f.insert_left(vec![Value::Int(i as i64), Value::Int((i % 7) as i64)]).unwrap();
        for j in 0..CSR_FANOUT {
            f.link(l, rids[(i * CSR_FANOUT + j) * 7919 % CSR_RIGHTS]).unwrap();
        }
    }
    f
}

fn bench_csr(c: &mut Criterion) {
    let f = adjacency();
    let csr = f.csr_forward();
    let slots = f.left().slot_count();

    let mut g = c.benchmark_group("csr");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));

    // Pure adjacency walk: the executor's inner loop shape. The row path
    // chases one heap Vec per source slot; CSR walks two flat arrays.
    g.bench_function("edge_walk_row_path", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for slot in 0..slots {
                for r in f.neighbours_right(RowId(slot as u64)) {
                    acc += r.0;
                }
            }
            black_box(acc)
        });
    });

    g.bench_function("edge_walk_csr", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for slot in 0..slots {
                for r in csr.neighbours_of(slot) {
                    acc += r.0;
                }
            }
            black_box(acc)
        });
    });

    // Full join expansion, as the factorized scan operator runs it.
    g.bench_function("join_expand_row_path", |b| {
        b.iter(|| black_box(f.iter_join_slots(0..slots).count()));
    });

    g.bench_function("join_expand_csr", |b| {
        b.iter(|| black_box(f.iter_join_slots_csr(&csr, 0..slots).count()));
    });

    g.finish();
}

criterion_group!(benches, bench_ingest, bench_csr);

/// Headline numbers for EXPERIMENTS.md (`A-ingest`) merged into the
/// repo-root results file.
fn write_headline() {
    // Per-row vs bulk: rows per second over 1,000-row batches, durable
    // (fsync per commit group) and with fsync disabled (CPU path only).
    let ingest_pair = |sync: SyncPolicy, tag: &str| {
        let mut db = person_db(&format!("hl-per-row-{tag}"), sync);
        let mut id = 0i64;
        let per_row = erbium_bench::measure(5, || {
            for _ in 0..BATCH {
                id += 1;
                insert_person(&mut db, id);
            }
        });
        let mut db = person_db(&format!("hl-bulk-{tag}"), sync);
        let mut id = 0i64;
        let bulk = erbium_bench::measure(5, || {
            let batch: Vec<BulkEntity> = (id..id + BATCH).map(person).collect();
            id += BATCH;
            db.copy_from("person", &batch).unwrap();
        });
        (per_row, bulk)
    };
    let (per_row, bulk) = ingest_pair(SyncPolicy::Always, "fsync");
    let (per_row_ns, bulk_ns) = ingest_pair(SyncPolicy::Never, "nosync");
    let rows_per_s = |d: Duration| BATCH as f64 / d.as_secs_f64();

    // Checkpoint cost vs dirty fraction at 32 tables x 2,000 rows.
    let ckpt = checkpoint_family(32, 2_000, 5);

    // CSR vs row adjacency walk.
    let f = adjacency();
    let csr = f.csr_forward();
    let slots = f.left().slot_count();
    let row_walk = erbium_bench::measure(10, || {
        let mut acc = 0u64;
        for slot in 0..slots {
            for r in f.neighbours_right(RowId(slot as u64)) {
                acc += r.0;
            }
        }
        black_box(acc);
    });
    let csr_walk = erbium_bench::measure(10, || {
        let mut acc = 0u64;
        for slot in 0..slots {
            for r in csr.neighbours_of(slot) {
                acc += r.0;
            }
        }
        black_box(acc);
    });

    println!("ingest (durable): per-row {:.0} rows/s, bulk {:.0} rows/s ({:.1}x)",
        rows_per_s(per_row), rows_per_s(bulk),
        rows_per_s(bulk) / rows_per_s(per_row));
    println!("ingest (no fsync): per-row {:.0} rows/s, bulk {:.0} rows/s ({:.1}x)",
        rows_per_s(per_row_ns), rows_per_s(bulk_ns),
        rows_per_s(bulk_ns) / rows_per_s(per_row_ns));
    for (label, t) in &ckpt {
        println!("checkpoint: {label} {:.2} ms", t.as_secs_f64() * 1e3);
    }
    println!("csr walk: row {:.0} us, csr {:.0} us ({:.2}x)",
        row_walk.as_secs_f64() * 1e6, csr_walk.as_secs_f64() * 1e6,
        row_walk.as_secs_f64() / csr_walk.as_secs_f64());

    let ckpt_keys: Vec<String> =
        ckpt.iter().map(|(label, _)| format!("checkpoint_{label}_ms")).collect();
    report::merge(
        "BENCH_throughput.json",
        "ingest",
        report::obj([
            ("unit", report::text("rows/s; checkpoint ms; adjacency walk us")),
            ("per_row_rows_per_s", report::num(rows_per_s(per_row))),
            ("bulk_rows_per_s", report::num(rows_per_s(bulk))),
            ("bulk_speedup", report::num(rows_per_s(bulk) / rows_per_s(per_row))),
            ("per_row_nosync_rows_per_s", report::num(rows_per_s(per_row_ns))),
            ("bulk_nosync_rows_per_s", report::num(rows_per_s(bulk_ns))),
            ("bulk_nosync_speedup", report::num(rows_per_s(bulk_ns) / rows_per_s(per_row_ns))),
            (ckpt_keys[0].as_str(), report::num(ckpt[0].1.as_secs_f64() * 1e3)),
            (ckpt_keys[1].as_str(), report::num(ckpt[1].1.as_secs_f64() * 1e3)),
            (ckpt_keys[2].as_str(), report::num(ckpt[2].1.as_secs_f64() * 1e3)),
            ("row_edge_walk_us", report::num(row_walk.as_secs_f64() * 1e6)),
            ("csr_edge_walk_us", report::num(csr_walk.as_secs_f64() * 1e6)),
            ("csr_speedup", report::num(row_walk.as_secs_f64() / csr_walk.as_secs_f64())),
        ]),
    );
}

fn main() {
    benches();
    if std::env::args().any(|a| a == "--test") {
        // Smoke mode: exercise the checkpoint family (kind assertions
        // included) at a tiny scale, skip the report.
        checkpoint_family(8, 20, 1);
    } else {
        write_headline();
    }
}
