//! Ablation: full-pipeline morsel parallelism on the persistent worker
//! pool (A-parallel in EXPERIMENTS.md).
//!
//! Two axes over an E5/E6-class synthetic workload (selective filter →
//! hash join → grouped aggregation, the operators where the paper's
//! factorized-vs-1NF comparisons are decided):
//!
//! * **1 vs. N threads** — scans (with fused Filter/Project), join build
//!   *and probe*, and partial aggregation all ride the shared
//!   [`erbium_engine::WorkerPool`]; on a multi-core box the parallel arms
//!   should approach linear speedup, while on single-core CI boxes both
//!   arms measure the same work plus pool scheduling overhead (results
//!   are asserted bit-identical by `tests/parallel_invariance.rs`).
//! * **fusion on vs. off** — whether the Filter/Project chain above each
//!   scan executes inside the scan's morsel workers or as serial
//!   post-passes.

use criterion::{criterion_group, criterion_main, Criterion};
use erbium_engine::{execute_streaming, AggCall, AggFunc, ExecContext, Expr, JoinKind, Plan};
use erbium_storage::{Catalog, Column, DataType, Table, TableSchema, Value};
use std::time::Duration;

const N: i64 = 200_000;

fn setup() -> Catalog {
    let mut cat = Catalog::new();
    let mut r = Table::new(TableSchema::new(
        "r",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("k", DataType::Int),
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ],
        vec![0],
    ));
    for i in 0..N {
        r.insert(vec![
            Value::Int(i),
            Value::Int(i % 1_000),
            Value::Int(i * 7 % 10_000),
            Value::Int(i % 97),
        ])
        .unwrap();
    }
    cat.create_table(r).unwrap();

    let mut s = Table::new(TableSchema::new(
        "s",
        vec![Column::not_null("k", DataType::Int), Column::new("w", DataType::Int)],
        vec![0],
    ));
    for i in 0..1_000i64 {
        s.insert(vec![Value::Int(i), Value::Int(i * 3)]).unwrap();
    }
    cat.create_table(s).unwrap();
    cat
}

fn drain(plan: &Plan, cat: &Catalog, ctx: &ExecContext) -> usize {
    execute_streaming(plan, cat, ctx).unwrap().drain().unwrap().len()
}

fn bench_parallel(c: &mut Criterion) {
    let cat = setup();
    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));

    // Scan with a Filter + Project chain above it — the fusion target.
    let pipeline = Plan::scan(&cat, "r")
        .unwrap()
        .filter(Expr::binary(erbium_engine::BinOp::Lt, Expr::col(2), Expr::lit(5_000i64)))
        .project(vec![
            (Expr::col(0), "id".into()),
            (
                Expr::binary(erbium_engine::BinOp::Add, Expr::col(2), Expr::col(3)),
                "ab".into(),
            ),
        ]);
    for threads in [1usize, 2, 4] {
        for fusion in [true, false] {
            let ctx = ExecContext::default().with_threads(threads).with_fusion(fusion);
            let tag = if fusion { "fused" } else { "unfused" };
            g.bench_function(format!("scan_filter_project/t{threads}_{tag}"), |b| {
                b.iter(|| std::hint::black_box(drain(&pipeline, &cat, &ctx)));
            });
        }
    }

    // E6-class join: selective probe side against a shared build table.
    let join = Plan::scan(&cat, "r")
        .unwrap()
        .filter(Expr::binary(erbium_engine::BinOp::Lt, Expr::col(3), Expr::lit(48i64)))
        .join(
            Plan::scan(&cat, "s").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(1)],
            vec![Expr::col(0)],
        );
    for threads in [1usize, 2, 4] {
        let ctx = ExecContext::default().with_threads(threads);
        g.bench_function(format!("join_probe/t{threads}"), |b| {
            b.iter(|| std::hint::black_box(drain(&join, &cat, &ctx)));
        });
    }

    // E5/E6-class aggregation: grouped partial aggregation above the join.
    let agg = join.clone().aggregate(
        vec![(Expr::col(1), "k".into())],
        vec![
            (AggCall::new(AggFunc::Sum, Expr::col(2)), "total".into()),
            (AggCall::new(AggFunc::Avg, Expr::col(3)), "avg_b".into()),
            (AggCall::count_star(), "n".into()),
        ],
    );
    for threads in [1usize, 2, 4] {
        let ctx = ExecContext::default().with_threads(threads);
        g.bench_function(format!("join_group_agg/t{threads}"), |b| {
            b.iter(|| std::hint::black_box(drain(&agg, &cat, &ctx)));
        });
    }

    // Global (single-group) aggregation — the partial-merge fast path.
    let global = Plan::scan(&cat, "r").unwrap().aggregate(
        vec![],
        vec![
            (AggCall::new(AggFunc::Sum, Expr::col(2)), "total".into()),
            (AggCall::new(AggFunc::Min, Expr::col(3)), "lo".into()),
            (AggCall::count_star(), "n".into()),
        ],
    );
    for threads in [1usize, 4] {
        let ctx = ExecContext::default().with_threads(threads);
        g.bench_function(format!("global_agg/t{threads}"), |b| {
            b.iter(|| std::hint::black_box(drain(&global, &cat, &ctx)));
        });
    }

    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
