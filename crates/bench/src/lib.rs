//! # erbium-bench
//!
//! Benchmark harness reproducing the paper's Section-6 evaluation.
//!
//! The paper reports relative query performance across six physical
//! mappings (M1–M6) of the Figure-4 schema at ~5M entries. This crate
//! provides:
//!
//! * [`build`] — materialize the experiment instance under any paper
//!   mapping at a configurable scale;
//! * [`queries`] — the ERQL text of every experiment query (E1–E9);
//! * [`measure`] — median-of-N wall-clock timing, as the paper does ("all
//!   queries were run 10 times, and the median time is reported");
//! * the `repro` binary — runs every experiment, prints measured times and
//!   ratios next to the paper's, and flags direction mismatches;
//! * criterion benches (`experiments`, `engine_micro`, `ablations`).

use erbium_datagen::{populate_experiment, ExperimentConfig, PopulationStats};
use erbium_mapping::presets::paper;
use erbium_mapping::rewrite::run_query;
use erbium_mapping::{CoFormat, Lowering, Mapping};
use erbium_model::fixtures;
use erbium_storage::Catalog;
use std::time::{Duration, Instant};

/// The mappings of the evaluation, by paper name. `M6d`/`M6f` are the
/// denormalized and factorized variants of M6.
pub const MAPPING_NAMES: [&str; 7] = ["M1", "M2", "M3", "M4", "M5", "M6d", "M6f"];

/// Build the paper mapping with the given name over the experiment schema.
pub fn mapping_by_name(name: &str) -> Mapping {
    let schema = fixtures::experiment();
    match name {
        "M1" => paper::m1(&schema),
        "M2" => paper::m2(&schema),
        "M3" => paper::m3(&schema),
        "M4" => paper::m4(&schema),
        "M5" => paper::m5(&schema).expect("experiment schema supports M5"),
        "M6d" => paper::m6(&schema, CoFormat::Denormalized).expect("schema supports M6"),
        "M6f" => paper::m6(&schema, CoFormat::Factorized).expect("schema supports M6"),
        other => panic!("unknown mapping '{other}'"),
    }
}

/// A populated experiment database under one mapping.
pub struct BenchDb {
    pub name: String,
    pub catalog: Catalog,
    pub lowering: Lowering,
    pub stats: PopulationStats,
}

impl BenchDb {
    /// Row count of a query (executes it once).
    pub fn run(&self, sql: &str) -> usize {
        run_query(&self.lowering, &self.catalog, sql)
            .unwrap_or_else(|e| panic!("[{}] query failed: {e}\n{sql}", self.name))
            .1
            .len()
    }
}

/// Materialize the experiment instance under one mapping.
pub fn build(name: &str, cfg: &ExperimentConfig) -> BenchDb {
    let schema = fixtures::experiment();
    let mapping = mapping_by_name(name);
    let lowering = Lowering::build(&schema, &mapping).expect("paper mapping is valid");
    let mut catalog = Catalog::new();
    lowering.install(&mut catalog).expect("fresh catalog");
    let stats = populate_experiment(&mut catalog, &lowering, cfg).expect("population succeeds");
    BenchDb { name: name.to_string(), catalog, lowering, stats }
}

/// Median wall-clock time of `reps` runs of `f` (plus one warm-up run).
pub fn measure(reps: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Machine-readable benchmark output: repo-root `BENCH_*.json` files.
///
/// Each bench binary appends its own headline section under a distinct
/// key via [`report::merge`], so `cargo bench` runs accumulate into one
/// document instead of clobbering each other.
pub mod report {
    use std::fs;
    use std::path::PathBuf;

    pub use serde_json::{Map, Number, Value};

    /// Build a JSON object from `(key, value)` pairs.
    pub fn obj<const N: usize>(entries: [(&str, Value); N]) -> Value {
        Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A float JSON number.
    pub fn num(v: f64) -> Value {
        Value::Number(Number::from_f64(v))
    }

    /// An integer JSON number.
    pub fn int(v: u64) -> Value {
        Value::Number(Number::from_u64(v))
    }

    /// A string JSON value.
    pub fn text(v: impl Into<String>) -> Value {
        Value::String(v.into())
    }

    /// Repo-root path of a results file (benches run from the crate dir).
    pub fn path(file: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join(file)
    }

    /// Merge `key: value` into the JSON object stored at the repo-root
    /// `file`, creating the file if absent or unreadable.
    pub fn merge(file: &str, key: &str, value: Value) {
        let p = path(file);
        let mut root = fs::read_to_string(&p)
            .ok()
            .and_then(|s| serde_json::from_str::<Value>(&s).ok())
            .and_then(|v| match v {
                Value::Object(m) => Some(m),
                _ => None,
            })
            .unwrap_or_default();
        root.insert(key.to_string(), value);
        let rendered =
            serde_json::to_string_pretty(&Value::Object(root)).expect("render bench report");
        fs::write(&p, rendered + "\n").unwrap_or_else(|e| panic!("write {}: {e}", p.display()));
    }
}

/// The experiment queries (Section 6).
pub mod queries {
    use erbium_datagen::ExperimentConfig;

    /// E1: the three multi-valued attributes for all R entities
    /// (paper: M1 = 66.42 s vs M2 = 2.88 s — 22x in favour of M2).
    pub const E1: &str = "SELECT r.r_id, r.r_mv1, r.r_mv2, r.r_mv3 FROM R r";

    /// E2: all values of one multi-valued attribute
    /// (paper: M1 = 0.39 s vs M2 = 0.5 s — M1 ~30% faster).
    pub const E2: &str = "SELECT UNNEST(r.r_mv1) FROM R r";

    /// E3: r_mv1 for one r_id (paper: M1 = 40 ms vs M2 = 0.3 ms — 145x,
    /// M1 cannot use an index).
    pub fn e3(r_id: i64) -> String {
        format!("SELECT r.r_mv1 FROM R r WHERE r.r_id = {r_id}")
    }

    /// E4: per-tuple intersection of r_mv1 and r_mv2
    /// (paper: M1 = 0.63 s vs M2 = 2.29 s — M1 3.6x faster; unnesting
    /// overhead hurts M2).
    pub const E4: &str = "SELECT r.r_id, UNNEST(r.r_mv1) AS v FROM R r \
                          WHERE UNNEST(r.r_mv1) = UNNEST(r.r_mv2)";

    /// E5: all (single-valued) information for the R3 entities
    /// (paper: M1 = 2 s vs M3 = 0.4 s — 5x; M3 vs M4 — 2.7x).
    pub const E5: &str =
        "SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r";

    /// E6: R ⋈ S with predicates on both sides (paper: M1 ≈ M4 despite the
    /// 5-relation union).
    pub const E6: &str = "SELECT r.r_id, s.s_id FROM R r JOIN S s VIA r_s \
                          WHERE r.r_b < 10 AND s.s_b < 5";

    /// E7: all information across S, S1, S2 for a set of s_ids
    /// (paper: 10,000 ids; M1 2.2x slower than M5).
    pub fn e7(cfg: &ExperimentConfig) -> String {
        // The paper fetches 10,000 of ~80,000 S entities (1/8); keep the
        // proportion at any scale.
        let n = (cfg.n_s() / 8).max(1);
        let ids: Vec<String> = (0..n as i64).map(|i| (i * 8).to_string()).collect();
        format!(
            "SELECT s.s_id, s.s_a, w.s1_no, w.s1_a, z.s2_no, z.s2_a \
             FROM S s JOIN S1 w VIA s_s1 LEFT JOIN S2 z VIA s_s2 \
             WHERE s.s_id IN ({})",
            ids.join(", ")
        )
    }

    /// E8: S1 ⋈ R join (paper: ~4x slower on M5 than M1 — unnesting the
    /// folded weak entities).
    pub const E8: &str =
        "SELECT w.s_id, w.s1_no, r.r_id, r.r_a FROM S1 w JOIN R2 r VIA r2_s1";

    /// E9a: the co-located join (paper: much faster on M6).
    pub const E9A: &str = "SELECT r.r_id, r.r2_a, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1";

    /// E9b: a single-entity query on a co-located entity (paper: more
    /// expensive on M6).
    pub const E9B: &str = "SELECT r.r_id, r.r2_a, r.r2_b FROM R2 r";
}

/// One experiment: id, description, the mappings compared, query builder,
/// and the paper's observation.
pub struct Experiment {
    pub id: &'static str,
    pub description: &'static str,
    pub mappings: &'static [&'static str],
    pub paper_claim: &'static str,
    /// Build the query for a given scale.
    pub query: fn(&ExperimentConfig) -> String,
    /// `(winner, loser)` mapping names for the direction check.
    pub direction: (&'static str, &'static str),
}

/// Every quantitative claim of Section 6, as a runnable experiment.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "E1",
            description: "all three multi-valued attributes for all R",
            mappings: &["M1", "M2"],
            paper_claim: "M1=66.42s vs M2=2.88s (M2 ~22x faster)",
            query: |_| queries::E1.to_string(),
            direction: ("M2", "M1"),
        },
        Experiment {
            id: "E2",
            description: "all values of r_mv1 (unnested)",
            mappings: &["M1", "M2"],
            paper_claim: "M1=0.39s vs M2=0.5s (M1 ~30% faster)",
            query: |_| queries::E2.to_string(),
            direction: ("M1", "M2"),
        },
        Experiment {
            id: "E3",
            description: "r_mv1 for a single r_id (point lookup)",
            mappings: &["M1", "M2"],
            paper_claim: "M1=40ms vs M2=0.3ms (M2 ~145x faster; no index reach on M1)",
            query: |cfg| queries::e3((cfg.n_r / 2) as i64),
            direction: ("M2", "M1"),
        },
        Experiment {
            id: "E4",
            description: "per-tuple intersection of r_mv1 and r_mv2",
            mappings: &["M1", "M2"],
            paper_claim: "M1=0.63s vs M2=2.29s (M1 ~3.6x faster; unnest overhead)",
            query: |_| queries::E4.to_string(),
            direction: ("M1", "M2"),
        },
        Experiment {
            id: "E5a",
            description: "all information for R3 entities (M1 vs M3)",
            mappings: &["M1", "M3"],
            paper_claim: "M1=2s vs M3=0.4s (M3 ~5x faster; 3-way join on M1)",
            query: |_| queries::E5.to_string(),
            direction: ("M3", "M1"),
        },
        Experiment {
            id: "E5b",
            description: "all information for R3 entities (M3 vs M4)",
            mappings: &["M3", "M4"],
            paper_claim: "M3 ~2.7x slower than M4 (less data scanned on M4)",
            query: |_| queries::E5.to_string(),
            direction: ("M4", "M3"),
        },
        Experiment {
            id: "E6",
            description: "R ⋈ S with predicates on both sides",
            mappings: &["M1", "M3", "M4"],
            paper_claim: "M1 ≈ M4 despite the 5-relation union",
            query: |_| queries::E6.to_string(),
            direction: ("M1", "M1"), // parity: no strict winner expected
        },
        Experiment {
            id: "E7",
            description: "S, S1, S2 info for a set of s_ids",
            mappings: &["M1", "M5"],
            paper_claim: "M1 ~2.2x slower than M5 (extra joins)",
            query: |cfg| queries::e7(cfg),
            direction: ("M5", "M1"),
        },
        Experiment {
            id: "E8",
            description: "S1 ⋈ R2 relationship join",
            mappings: &["M1", "M5"],
            paper_claim: "M5 ~4x slower than M1 (unnesting composite arrays)",
            query: |_| queries::E8.to_string(),
            direction: ("M1", "M5"),
        },
        Experiment {
            id: "E9a",
            description: "the pre-computed R2 ⋈ S1 join",
            mappings: &["M1", "M6d", "M6f"],
            paper_claim: "significantly faster on M6 (pre-computed join)",
            query: |_| queries::E9A.to_string(),
            direction: ("M6f", "M1"),
        },
        Experiment {
            id: "E9b",
            description: "single-entity query on a co-located entity",
            mappings: &["M1", "M6d", "M6f"],
            paper_claim: "queries on one of the two tables get more expensive on (denormalized) M6",
            query: |_| queries::E9B.to_string(),
            direction: ("M1", "M6d"),
        },
    ]
}
