//! Bounded-memory smoke for the tier-1 gate: run the experiment workload
//! under every paper mapping with a row-page buffer pool of **4 frames**,
//! on a dataset that spans strictly more pages than the budget, and prove
//! three things per mapping:
//!
//! 1. the pool actually worked for its living — pages were evicted, dirty
//!    pages were written back to the spill file, and cold pages were
//!    faulted back in (`misses > 0`);
//! 2. memory is bounded — after the end-of-workload reclaim the resident
//!    frame count is back at (or under) the budget, and the process-wide
//!    peak RSS stays under a fixed ceiling across the whole sweep;
//! 3. nothing changed semantically — the M1–M6 query results and the full
//!    row-store fingerprint are bit-identical to an unbounded reopen of
//!    the same database directory.
//!
//! Exits nonzero (with a message) on the first violated invariant.

use erbium_bench::{mapping_by_name, queries, MAPPING_NAMES};
use erbium_core::{BulkEntity, Database, DurabilityOptions};
use erbium_storage::Value;

const FRAME_BUDGET: usize = 4;
/// Process-wide peak-RSS tripwire (KiB). Generous on purpose: the point
/// is to catch the pool silently keeping every page resident (which grows
/// with the dataset), not to shave allocator noise.
const PEAK_RSS_CEILING_KIB: u64 = 512 * 1024;

const DDL: &str = "
    CREATE ENTITY R (r_id int KEY, r_a text, r_b int,
        r_mv1 int MULTIVALUED, r_mv2 int MULTIVALUED,
        r_mv3 text MULTIVALUED) PARTIAL DISJOINT;
    CREATE ENTITY R1 EXTENDS R (r1_a int NULLABLE, r1_b text NULLABLE) PARTIAL DISJOINT;
    CREATE ENTITY R2 EXTENDS R (r2_a int NULLABLE, r2_b text NULLABLE) PARTIAL DISJOINT;
    CREATE ENTITY R3 EXTENDS R1 (r3_a int NULLABLE);
    CREATE ENTITY R4 EXTENDS R2 (r4_a text NULLABLE);
    CREATE ENTITY S (s_id int KEY, s_a text, s_b int);
    CREATE RELATIONSHIP s_s1 FROM S1 MANY TOTAL TO S ONE;
    CREATE RELATIONSHIP s_s2 FROM S2 MANY TOTAL TO S ONE;
    CREATE WEAK ENTITY S1 OWNED BY S VIA s_s1
        (s1_no int KEY, s1_a int NULLABLE, s1_b text NULLABLE);
    CREATE WEAK ENTITY S2 OWNED BY S VIA s_s2 (s2_no int KEY, s2_a text NULLABLE);
    CREATE RELATIONSHIP r_s FROM R MANY TO S ONE;
    CREATE RELATIONSHIP r2_s1 FROM R2 MANY TO S1 MANY;
    CREATE RELATIONSHIP r1_r3 FROM R1 ROLE src MANY TO R3 ROLE dst MANY;
";

fn fail(msg: String) -> ! {
    eprintln!("bounded_memory_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// `VmHWM` (peak resident set) of this process in KiB, from procfs.
/// `None` where procfs is unavailable (non-Linux dev machines).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Canonical answer digest: every experiment query's sorted result rows,
/// plus a sorted row-store fingerprint of every plain and factorized
/// table. The fingerprint part deliberately walks the *row* pages (the
/// columnar working set answers most of the queries), so a bounded run
/// must fault evicted pages back in to produce it.
fn digest(db: &Database) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let sweep = [
        queries::E1,
        queries::E2,
        &queries::e3(2),
        queries::E4,
        queries::E5,
        queries::E6,
        queries::E8,
        queries::E9A,
        queries::E9B,
    ];
    for sql in sweep {
        let mut rows: Vec<String> = db
            .query(sql)
            .unwrap_or_else(|e| fail(format!("query failed: {e}\n{sql}")))
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        rows.sort();
        writeln!(out, "Q {sql} -> {rows:?}").unwrap();
    }
    let cat = db.catalog();
    let mut names = cat.table_names();
    names.sort();
    for name in names {
        let t = cat.table(&name).unwrap();
        let mut rows: Vec<String> = t.scan().map(|(rid, r)| format!("{}:{r:?}", rid.0)).collect();
        rows.sort();
        writeln!(out, "T {name} {rows:?}").unwrap();
    }
    let mut names = cat.factorized_names();
    names.sort();
    for name in names {
        let f = cat.factorized(&name).unwrap();
        let mut pairs: Vec<String> = f.enumerate_join().iter().map(|r| format!("{r:?}")).collect();
        pairs.sort();
        writeln!(out, "F {name} {pairs:?}").unwrap();
    }
    out
}

/// Seed the experiment instance through the public bulk + CRUD surface:
/// enough `S` and `R2` rows to span several 64 KiB row pages, weak `S1`
/// members, and `r_s` / `r2_s1` relationship instances.
fn seed(db: &mut Database) {
    let s_batch: Vec<BulkEntity> = (0..1600)
        .map(|i| {
            BulkEntity::new(&[
                ("s_id", Value::Int(i)),
                ("s_a", Value::str(format!("s{i}"))),
                ("s_b", Value::Int(i % 13)),
            ])
        })
        .collect();
    db.copy_from("S", &s_batch).unwrap_or_else(|e| fail(format!("copy_from S: {e}")));
    let r_batch: Vec<BulkEntity> = (0..600)
        .map(|i| {
            BulkEntity::new(&[
                ("r_id", Value::Int(i)),
                ("r_a", Value::str(format!("r{i}"))),
                ("r_b", Value::Int(i % 7)),
                ("r_mv1", Value::Array(vec![Value::Int(i), Value::Int(i + 1)])),
                ("r_mv2", Value::Array(vec![Value::Int(-i)])),
                ("r_mv3", Value::Array(vec![Value::str(format!("m{}", i % 3))])),
                ("r2_a", Value::Int(1000 + i)),
                ("r2_b", Value::str(format!("b{i}"))),
            ])
        })
        .collect();
    db.copy_from("R2", &r_batch).unwrap_or_else(|e| fail(format!("copy_from R2: {e}")));
    for no in 0..40i64 {
        db.insert(
            "S1",
            &[("s_id", Value::Int(no % 16)), ("s1_no", Value::Int(no)), ("s1_a", Value::Int(no))],
        )
        .unwrap_or_else(|e| fail(format!("insert S1 #{no}: {e}")));
    }
    for i in 0..40i64 {
        db.link("r2_s1", &[Value::Int(i)], &[Value::Int(i % 16), Value::Int(i % 40)], &[])
            .unwrap_or_else(|e| fail(format!("link r2_s1 #{i}: {e}")));
        db.link("r_s", &[Value::Int(i)], &[Value::Int(i)], &[])
            .unwrap_or_else(|e| fail(format!("link r_s #{i}: {e}")));
    }
    // A small mutation tail so recovery replays more than bulk groups.
    for i in 0..8i64 {
        db.update_entity("S", &[Value::Int(i)], &[("s_b", Value::Int(999))])
            .unwrap_or_else(|e| fail(format!("update S #{i}: {e}")));
    }
    db.delete_entity("R2", &[Value::Int(599)])
        .unwrap_or_else(|e| fail(format!("delete R2: {e}")));
}

fn run_mapping(name: &str) {
    let dir = std::env::temp_dir()
        .join(format!("erbium-bounded-smoke-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts =
        DurabilityOptions { buffer_pool_frames: Some(FRAME_BUDGET), ..Default::default() };

    let mut db = Database::open_with(&dir, opts.clone())
        .unwrap_or_else(|e| fail(format!("[{name}] open bounded: {e}")));
    db.execute(DDL).unwrap_or_else(|e| fail(format!("[{name}] ddl: {e}")));
    db.install(mapping_by_name(name)).unwrap_or_else(|e| fail(format!("[{name}] install: {e}")));
    seed(&mut db);

    let pages: usize = {
        let cat = db.catalog();
        let plain: usize =
            cat.table_names().iter().map(|n| cat.table(n).unwrap().page_count()).sum();
        let fact: usize = cat
            .factorized_names()
            .iter()
            .map(|n| {
                let f = cat.factorized(n).unwrap();
                f.left().page_count() + f.right().page_count()
            })
            .sum();
        plain + fact
    };
    if pages <= FRAME_BUDGET {
        fail(format!("[{name}] dataset spans {pages} pages — not larger than the {FRAME_BUDGET}-frame budget"));
    }

    let bounded = digest(&db);
    db.checkpoint().unwrap_or_else(|e| fail(format!("[{name}] checkpoint: {e}")));
    let stats = db.buffer_pool_stats();
    if stats.evictions == 0 || stats.dirty_writebacks == 0 || stats.misses == 0 {
        fail(format!("[{name}] pool never cycled pages: {stats:?}"));
    }
    if stats.resident > FRAME_BUDGET {
        fail(format!("[{name}] {} pages resident after reclaim (budget {FRAME_BUDGET})", stats.resident));
    }
    drop(db);

    // Unbounded reopen of the same directory: recovery through an
    // unconstrained pool must land on the exact same answers and rows.
    let udb =
        Database::open(&dir).unwrap_or_else(|e| fail(format!("[{name}] open unbounded: {e}")));
    if digest(&udb) != bounded {
        fail(format!("[{name}] bounded and unbounded runs disagree"));
    }
    drop(udb);

    // And a bounded recovery of the same state agrees too.
    let bdb = Database::open_with(&dir, opts)
        .unwrap_or_else(|e| fail(format!("[{name}] bounded reopen: {e}")));
    if digest(&bdb) != bounded {
        fail(format!("[{name}] bounded recovery disagrees with the original run"));
    }
    drop(bdb);
    let _ = std::fs::remove_dir_all(&dir);
    println!("bounded_memory_smoke: [{name}] OK ({pages} pages through {FRAME_BUDGET} frames)");
}

fn main() {
    for name in MAPPING_NAMES {
        run_mapping(name);
    }
    match peak_rss_kib() {
        Some(kib) if kib > PEAK_RSS_CEILING_KIB => fail(format!(
            "peak RSS {kib} KiB exceeds the {PEAK_RSS_CEILING_KIB} KiB ceiling"
        )),
        Some(kib) => println!("bounded_memory_smoke: peak RSS {kib} KiB (ceiling {PEAK_RSS_CEILING_KIB})"),
        None => println!("bounded_memory_smoke: procfs unavailable; RSS ceiling not checked"),
    }
    println!("bounded_memory_smoke: OK");
}
