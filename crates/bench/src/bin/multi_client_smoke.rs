//! Multi-client smoke for the tier-1 gate: two writer threads churn
//! insert/update/delete transactions while four reader threads hammer
//! aggregate queries over snapshots.
//!
//! The whole workload is written once against the [`Connection`] trait and
//! runs over either transport:
//!
//! * default — each thread holds a [`SharedDatabase`] clone (in-process);
//! * `--remote` — an ERSP [`Server`] is started on an ephemeral port and
//!   each thread dials its own [`RemoteClient`]; the run ends with a
//!   graceful-drain assertion.
//!
//! Every committed transaction preserves the invariant `SUM(item.qty) = 0`
//! (rows are inserted and deleted in `+v`/`-v` pairs), so any reader that
//! observes a nonzero sum caught a torn transaction. The process exits
//! nonzero on any query/commit error, a broken invariant, an unstable
//! snapshot, or a cold plan cache.

use erbium_client::RemoteClient;
use erbium_core::{Connection, Database, ReadSession, Rows, Value};
use erbium_server::{Server, ServerOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const SUM_SQL: &str = "SELECT SUM(i.qty) AS s FROM item i";
const COUNT_SQL: &str = "SELECT COUNT(*) AS n FROM item i";

fn total(rows: &Rows) -> i64 {
    match rows.rows[0][0] {
        Value::Int(v) => v,
        Value::Float(v) => v as i64,
        ref other => panic!("unexpected SUM value {other:?}"),
    }
}

fn writer<C: Connection>(conn: &mut C, w: i64, stop: &AtomicBool, commits: &AtomicU64) {
    let mut next = 0i64;
    let mut live: Vec<i64> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let id = w * 10_000_000 + next * 2;
        next += 1;
        let v = 1 + (next % 9);
        conn.transaction(|tx| {
            tx.insert("item", &[("id", Value::Int(id)), ("qty", Value::Int(v))])?;
            tx.insert("item", &[("id", Value::Int(id + 1)), ("qty", Value::Int(-v))])?;
            Ok(())
        })
        .expect("writer insert txn");
        live.push(id);
        commits.fetch_add(1, Ordering::Relaxed);

        // Every fourth pair: bump both sides (sum stays 0), then retire
        // the oldest pair — update and delete churn in one loop.
        if next % 4 == 0 {
            let bump = live[live.len() / 2];
            let old = live[0];
            conn.transaction(|tx| {
                tx.update_entity("item", &[Value::Int(bump)], &[("qty", Value::Int(v + 1))])?;
                tx.update_entity("item", &[Value::Int(bump + 1)], &[("qty", Value::Int(-v - 1))])?;
                tx.delete_entity("item", &[Value::Int(old)])?;
                tx.delete_entity("item", &[Value::Int(old + 1)])?;
                Ok(())
            })
            .expect("writer churn txn");
            live.remove(0);
            commits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn reader<C: Connection>(conn: &mut C, window: Duration, reads: &AtomicU64) {
    let t0 = Instant::now();
    while t0.elapsed() < window {
        // Live one-shot read: the pair invariant must hold.
        let sum = conn.query(SUM_SQL).expect("live read");
        assert_eq!(total(&sum), 0, "reader saw a torn transaction");

        // Pinned snapshot: answers are stable across concurrent commits.
        let mut snap = conn.snapshot().expect("pin snapshot");
        let n1 = snap.query(COUNT_SQL).expect("snapshot read");
        let s1 = snap.query(SUM_SQL).expect("snapshot read");
        let n2 = snap.query(COUNT_SQL).expect("snapshot re-read");
        assert_eq!(n1.rows, n2.rows, "snapshot answer changed between reads");
        assert_eq!(total(&s1), 0, "snapshot saw a torn transaction");
        reads.fetch_add(4, Ordering::Relaxed);
    }
}

/// The transport-independent smoke: 2 writers + 4 readers, each thread
/// with its own connection from `connect`. Returns `(commits, reads,
/// cache_hits, cache_misses)`.
fn run_smoke<C, F>(connect: F, window: Duration) -> (u64, u64, u64, u64)
where
    C: Connection,
    F: Fn() -> C + Sync,
{
    let stop = AtomicBool::new(false);
    let commits = AtomicU64::new(0);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..2i64 {
            let (connect, stop, commits) = (&connect, &stop, &commits);
            s.spawn(move || writer(&mut connect(), w, stop, commits));
        }
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (connect, reads) = (&connect, &reads);
                s.spawn(move || reader(&mut connect(), window, reads))
            })
            .collect();
        for r in readers {
            r.join().expect("reader thread");
        }
        stop.store(true, Ordering::Relaxed);
    });
    let stats = connect().cache_stats().expect("cache stats");
    (commits.load(Ordering::Relaxed), reads.load(Ordering::Relaxed), stats.hits, stats.misses)
}

fn seeded_shared() -> erbium_core::SharedDatabase {
    let mut db = Database::new();
    db.execute("CREATE ENTITY item (id int KEY, qty int)").unwrap();
    db.install_default().unwrap();
    // Seed one balanced pair so aggregates never run over an empty table.
    db.insert("item", &[("id", Value::Int(-2)), ("qty", Value::Int(5))]).unwrap();
    db.insert("item", &[("id", Value::Int(-1)), ("qty", Value::Int(-5))]).unwrap();
    db.into_shared()
}

fn main() {
    let remote = std::env::args().any(|a| a == "--remote");
    let window = Duration::from_millis(800);
    let db = seeded_shared();

    let (transport, commits, reads, hits, misses) = if remote {
        let mut server =
            Server::bind("127.0.0.1:0", db, ServerOptions::default()).expect("bind server");
        let addr = server.local_addr();
        let (commits, reads, hits, misses) =
            run_smoke(|| RemoteClient::connect(addr).expect("dial server"), window);
        // Every client (including run_smoke's stats probe) is gone; the
        // server must drain to empty promptly.
        assert!(
            server.drain(Duration::from_secs(10)),
            "server failed to drain after clients disconnected"
        );
        assert_eq!(server.active_sessions(), 0, "sessions left behind after drain");
        ("remote", commits, reads, hits, misses)
    } else {
        let (commits, reads, hits, misses) = run_smoke(|| db.clone(), window);
        ("in-process", commits, reads, hits, misses)
    };

    assert!(hits > 0, "plan cache served no hits under the smoke workload");
    assert!(commits > 0, "writers made no commits");
    println!(
        "multi-client smoke [{transport}]: OK (commits={commits}, reads={reads}, \
         plan cache hits={hits} misses={misses})"
    );
}
