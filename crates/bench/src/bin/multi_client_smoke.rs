//! Multi-client smoke for the tier-1 gate: two writer threads churn
//! insert/update/delete transactions through a [`SharedDatabase`] while
//! four reader threads hammer aggregate queries over snapshots.
//!
//! Every committed transaction preserves the invariant `SUM(item.qty) = 0`
//! (rows are inserted and deleted in `+v`/`-v` pairs), so any reader that
//! observes a nonzero sum caught a torn transaction. The process exits
//! nonzero on any query/commit error, a broken invariant, an unstable
//! snapshot, or a cold plan cache.

use erbium_core::{Database, SharedDatabase};
use erbium_storage::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const SUM_SQL: &str = "SELECT SUM(i.qty) AS s FROM item i";
const COUNT_SQL: &str = "SELECT COUNT(*) AS n FROM item i";

fn total(db_sum: &erbium_core::QueryResult) -> i64 {
    match db_sum.rows[0][0] {
        Value::Int(v) => v,
        Value::Float(v) => v as i64,
        ref other => panic!("unexpected SUM value {other:?}"),
    }
}

fn writer(db: &SharedDatabase, w: i64, stop: &AtomicBool, commits: &AtomicU64) {
    let mut next = 0i64;
    let mut live: Vec<i64> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let id = w * 10_000_000 + next * 2;
        next += 1;
        let v = 1 + (next % 9);
        db.transaction(|tx| {
            tx.insert("item", &[("id", Value::Int(id)), ("qty", Value::Int(v))])?;
            tx.insert("item", &[("id", Value::Int(id + 1)), ("qty", Value::Int(-v))])?;
            Ok(())
        })
        .expect("writer insert txn");
        live.push(id);
        commits.fetch_add(1, Ordering::Relaxed);

        // Every fourth pair: bump both sides (sum stays 0), then retire
        // the oldest pair — update and delete churn in one loop.
        if next % 4 == 0 {
            let bump = live[live.len() / 2];
            db.transaction(|tx| {
                tx.update_entity("item", &[Value::Int(bump)], &[("qty", Value::Int(v + 1))])?;
                tx.update_entity("item", &[Value::Int(bump + 1)], &[("qty", Value::Int(-v - 1))])?;
                let old = live[0];
                tx.delete_entity("item", &[Value::Int(old)])?;
                tx.delete_entity("item", &[Value::Int(old + 1)])?;
                Ok(())
            })
            .expect("writer churn txn");
            live.remove(0);
            commits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn reader(db: &SharedDatabase, window: Duration, reads: &AtomicU64) {
    let t0 = Instant::now();
    while t0.elapsed() < window {
        // Live one-shot read: the pair invariant must hold.
        let sum = db.query(SUM_SQL).expect("live read");
        assert_eq!(total(&sum), 0, "reader saw a torn transaction");

        // Pinned snapshot: answers are stable across concurrent commits.
        let snap = db.snapshot();
        let n1 = snap.query(COUNT_SQL).expect("snapshot read");
        let s1 = snap.query(SUM_SQL).expect("snapshot read");
        let n2 = snap.query(COUNT_SQL).expect("snapshot re-read");
        assert_eq!(n1.rows, n2.rows, "snapshot answer changed between reads");
        assert_eq!(total(&s1), 0, "snapshot saw a torn transaction");
        reads.fetch_add(4, Ordering::Relaxed);
    }
}

fn main() {
    let mut db = Database::new();
    db.execute("CREATE ENTITY item (id int KEY, qty int)").unwrap();
    db.install_default().unwrap();
    // Seed one balanced pair so aggregates never run over an empty table.
    db.insert("item", &[("id", Value::Int(-2)), ("qty", Value::Int(5))]).unwrap();
    db.insert("item", &[("id", Value::Int(-1)), ("qty", Value::Int(-5))]).unwrap();
    let db = db.into_shared();

    let window = Duration::from_millis(800);
    let stop = AtomicBool::new(false);
    let commits = AtomicU64::new(0);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..2i64 {
            let (db, stop, commits) = (&db, &stop, &commits);
            s.spawn(move || writer(db, w, stop, commits));
        }
        let readers: Vec<_> = (0..4).map(|_| s.spawn(|| reader(&db, window, &reads))).collect();
        for r in readers {
            r.join().expect("reader thread");
        }
        stop.store(true, Ordering::Relaxed);
    });

    let stats = db.plan_cache_stats();
    assert!(stats.hits > 0, "plan cache served no hits under the smoke workload");
    assert!(commits.load(Ordering::Relaxed) > 0, "writers made no commits");
    println!(
        "multi-client smoke: OK (commits={}, reads={}, plan cache hits={} misses={})",
        commits.load(Ordering::Relaxed),
        reads.load(Ordering::Relaxed),
        stats.hits,
        stats.misses
    );
}
