//! Reproduce every Section-6 experiment and print paper-vs-measured.
//!
//! ```text
//! cargo run --release -p erbium-bench --bin repro            # bench scale
//! ERBIUM_SCALE=paper cargo run --release -p erbium-bench --bin repro
//! ERBIUM_REPS=10 ...                                         # paper's 10 runs
//! ```

use erbium_bench::{build, experiments, measure, BenchDb};
use erbium_datagen::ExperimentConfig;
use std::collections::HashMap;
use std::time::Duration;

fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let reps: usize = std::env::var("ERBIUM_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("ErbiumDB paper-experiment reproduction");
    println!(
        "scale: n_r={} (set ERBIUM_SCALE=paper|tiny|<n> to change), reps={reps} (median reported)\n",
        cfg.n_r
    );

    // Build each mapping's database once.
    let mut dbs: HashMap<String, BenchDb> = HashMap::new();
    for name in erbium_bench::MAPPING_NAMES {
        eprint!("building {name} ... ");
        let t = std::time::Instant::now();
        let db = build(name, &cfg);
        eprintln!(
            "{} entities / {} mv values / {} links in {}",
            db.stats.entities,
            db.stats.mv_values,
            db.stats.links,
            fmt_dur(t.elapsed())
        );
        dbs.insert(name.to_string(), db);
    }
    println!();

    let mut failures = 0usize;
    for exp in experiments() {
        let sql = (exp.query)(&cfg);
        println!("== {}: {}", exp.id, exp.description);
        println!("   paper: {}", exp.paper_claim);
        let mut times: HashMap<&str, Duration> = HashMap::new();
        for &m in exp.mappings {
            let db = &dbs[m];
            let mut rows = 0usize;
            let t = measure(reps, || {
                rows = db.run(&sql);
            });
            times.insert(m, t);
            println!("   {m:<4} {:>10}   ({rows} rows)", fmt_dur(t));
        }
        let (winner, loser) = exp.direction;
        if winner != loser {
            let (tw, tl) = (times[winner], times[loser]);
            let ratio = tl.as_secs_f64() / tw.as_secs_f64().max(1e-9);
            let ok = tw <= tl;
            if !ok {
                failures += 1;
            }
            println!(
                "   direction: {winner} should beat {loser} — measured {loser}/{winner} = {ratio:.1}x  [{}]",
                if ok { "OK" } else { "MISMATCH" }
            );
        } else {
            // Parity expectation (E6): report the spread.
            let max = times.values().max().copied().unwrap_or_default();
            let min = times.values().min().copied().unwrap_or_default();
            let spread = max.as_secs_f64() / min.as_secs_f64().max(1e-9);
            println!("   parity check: max/min spread = {spread:.1}x");
        }
        println!();
    }
    if failures == 0 {
        println!("all directional claims reproduced ✔");
    } else {
        println!("{failures} directional claim(s) NOT reproduced ✘");
        std::process::exit(1);
    }
}
