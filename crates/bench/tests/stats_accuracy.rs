//! Cardinality-estimation accuracy and cost-based-plan safety, checked
//! across the paper's mapping presets (M1–M6).
//!
//! Three properties:
//!
//! 1. **Safety** — for every (mapping, query) pair, running ANALYZE and
//!    re-planning never changes the result multiset; the cost-based passes
//!    only reorder physical work.
//! 2. **Accuracy** — scan and filter estimates stay within a small q-error
//!    bound of the observed row counts (the generator draws filter columns
//!    uniformly, so linear min/max interpolation should land close).
//! 3. **Effectiveness** — on a skewed VIA join the optimizer provably
//!    flips the hash-join build side to the smaller input, observable in
//!    the executor metrics.

use erbium_core::Database;
use erbium_datagen::{experiment_database, ExperimentConfig};
use erbium_engine::{ExecContext, ExecMetrics};
use erbium_mapping::presets::paper;
use erbium_mapping::{CoFormat, Mapping};
use erbium_model::fixtures;
use erbium_storage::Value;

const CFG: ExperimentConfig = ExperimentConfig { n_r: 400, mv_avg: 3, seed: 42 };

fn mappings() -> Vec<(&'static str, Mapping)> {
    let s = fixtures::experiment();
    vec![
        ("M1", paper::m1(&s)),
        ("M2", paper::m2(&s)),
        ("M3", paper::m3(&s)),
        ("M4", paper::m4(&s)),
        ("M5", paper::m5(&s).unwrap()),
        ("M6d", paper::m6(&s, CoFormat::Denormalized).unwrap()),
        ("M6f", paper::m6(&s, CoFormat::Factorized).unwrap()),
    ]
}

const QUERIES: &[(&str, &str)] = &[
    ("E1", "SELECT r.r_id, r.r_mv1, r.r_mv2, r.r_mv3 FROM R r"),
    ("E2", "SELECT UNNEST(r.r_mv1) FROM R r"),
    ("E5", "SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r"),
    (
        "E6",
        "SELECT r.r_id, s.s_id FROM R r JOIN S s VIA r_s \
         WHERE r.r_b < 10 AND s.s_b < 5",
    ),
    ("E8", "SELECT w.s_id, w.s1_no, r.r_id, r.r_a FROM S1 w JOIN R2 r VIA r2_s1"),
    ("E9a", "SELECT r.r_id, r.r2_a, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1"),
    ("E9b", "SELECT r.r_id, r.r2_a, r.r2_b FROM R2 r"),
];

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

#[test]
fn analyze_never_changes_results_under_any_mapping() {
    for (name, mapping) in mappings() {
        let mut db = experiment_database(&mapping, &CFG).unwrap();
        let before: Vec<Vec<Vec<Value>>> = QUERIES
            .iter()
            .map(|(qid, sql)| {
                sorted(
                    db.query(sql)
                        .unwrap_or_else(|e| panic!("{name}/{qid}: {e}"))
                        .rows,
                )
            })
            .collect();
        assert!(db.analyze() > 0, "{name}: analyze found tables");
        for ((qid, sql), expect) in QUERIES.iter().zip(&before) {
            let after = sorted(db.query(sql).unwrap().rows);
            assert_eq!(
                &after, expect,
                "{name}/{qid}: cost-based plan changed the result multiset"
            );
        }
    }
}

/// Root-level q-error of a query under an analyzed database.
fn root_q(db: &Database, sql: &str) -> f64 {
    let res = db.query_with(sql, &ExecContext::default()).unwrap();
    let metrics = res.metrics.unwrap();
    metrics
        .q_error()
        .unwrap_or_else(|| panic!("no estimate at plan root:\n{}", metrics.render()))
}

#[test]
fn scan_and_filter_estimates_within_q_error_bound() {
    for (name, mapping) in mappings() {
        let mut db = experiment_database(&mapping, &CFG).unwrap();
        db.analyze();
        // Pure scans: row counts are known exactly.
        for sql in ["SELECT r.r_id FROM R r", "SELECT s.s_id FROM S s"] {
            let q = root_q(&db, sql);
            assert!(q <= 1.5, "{name}: scan estimate off by {q:.2}x for {sql}");
        }
        // Range filter over a uniform column (r_b ~ U[0,100)): linear
        // interpolation between the gathered min/max should be close.
        let q = root_q(&db, "SELECT r.r_id FROM R r WHERE r.r_b < 50");
        assert!(q <= 2.0, "{name}: range-filter estimate off by {q:.2}x");
        // Equality on the key: (1 - null_frac) / ndv picks out one row.
        // Split-hierarchy mappings union one point estimate per branch
        // (the estimator cannot know the key lives in exactly one), so the
        // bound is the branch count, not 1.
        let q = root_q(&db, "SELECT r.r_a FROM R r WHERE r.r_id = 7");
        assert!(q <= 6.0, "{name}: equality estimate off by {q:.2}x");
    }
}

fn first_join(m: &ExecMetrics) -> Option<&ExecMetrics> {
    if m.name.starts_with("Join") {
        return Some(m);
    }
    m.children.iter().find_map(first_join)
}

#[test]
fn skewed_via_join_builds_the_smaller_side_after_analyze() {
    // R (400 rows) joins S (80 rows) via r_s; filtering R hard makes the R
    // side ~20 rows while S stays at 80 — whichever static order the
    // rewriter picks, the cost-based pass must end up building the side
    // that actually feeds fewer rows into the hash table.
    let sql = "SELECT r.r_id, s.s_id FROM R r JOIN S s VIA r_s WHERE r.r_b < 5";
    let s = fixtures::experiment();
    let mut db = experiment_database(&paper::m1(&s), &CFG).unwrap();

    let plain = db.query(sql).unwrap();
    let static_plan = db.plan(sql).unwrap().explain();
    db.analyze();
    let cost_plan = db.plan(sql).unwrap().explain();
    // Structural flip: the build input (the right side, rendered second)
    // changes from S to the filtered-R subtree once stats exist.
    let pos = |plan: &str, scan| plan.find(scan).expect("both scans in plan");
    assert!(
        pos(&static_plan, "Scan R") < pos(&static_plan, "Scan S"),
        "static plan builds S:\n{static_plan}"
    );
    assert!(
        pos(&cost_plan, "Scan S") < pos(&cost_plan, "Scan R"),
        "cost-based plan must flip the build side to filtered R:\n{cost_plan}"
    );
    let res = db.query_with(sql, &ExecContext::default()).unwrap();
    let metrics = res.metrics.clone().unwrap();
    let join = first_join(&metrics).expect("join operator in metrics");
    let [probe, build] = &join.children[..] else {
        panic!("join has two inputs:\n{}", metrics.render());
    };
    assert!(
        build.rows_out <= probe.rows_out,
        "build side ({} rows) must not exceed probe side ({} rows):\n{}",
        build.rows_out,
        probe.rows_out,
        metrics.render()
    );
    // The estimates that drove the decision are annotated on the plan.
    assert!(db.explain(sql).unwrap().contains("[est="));
    // And the reordered plan returns the same rows.
    assert_eq!(sorted(res.rows), sorted(plain.rows));
}
