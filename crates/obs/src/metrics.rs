//! Process-wide metrics registry.
//!
//! Three instrument kinds, all lock-free on the hot path:
//!
//! * [`Counter`] — monotonically increasing `u64` (`inc`/`add`).
//! * [`Gauge`] — settable `i64` point-in-time value (`set`/`add`).
//! * [`Histogram`] — fixed log-scale buckets (factor-4 geometric series),
//!   `observe(f64)` is a handful of relaxed atomic ops.
//!
//! Instruments are interned in a global [`Registry`] keyed by name; call
//! sites cache the returned `Arc` handle (typically in a
//! `std::sync::OnceLock`) so steady-state recording never touches the
//! registry lock. [`Registry::render`] produces Prometheus text
//! exposition format, surfaced to users as `Database::metrics_text()`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable point-in-time value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Record `v` if it exceeds the current value (racy best-effort max,
    /// fine for high-water marks).
    #[inline]
    pub fn record_max(&self, v: i64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        while v > cur {
            match self
                .value
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets (plus an implicit `+Inf` overflow).
const BUCKETS: usize = 16;

/// A histogram with fixed log-scale buckets.
///
/// Bucket upper bounds form a geometric series `base * 4^i` for
/// `i in 0..BUCKETS`; everything above the last bound lands in the
/// overflow (`+Inf`) bucket. With the default base of `1e-6` (one
/// microsecond, for latencies recorded in seconds) the finite range spans
/// 1 µs .. ~1073 s, which covers every latency this engine can produce.
#[derive(Debug)]
pub struct Histogram {
    base: f64,
    counts: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    /// Sum of observed values, stored as f64 bits for atomic CAS updates.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(base: f64) -> Self {
        Histogram {
            base,
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Upper bound of finite bucket `i`.
    #[inline]
    fn bound(&self, i: usize) -> f64 {
        self.base * 4f64.powi(i as i32)
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() && v >= 0.0 { v } else { 0.0 };
        // Find the first bucket whose upper bound >= v. log-scale search is
        // a tiny loop over 16 slots; branch-predictable and allocation-free.
        let mut placed = false;
        for i in 0..BUCKETS {
            if v <= self.bound(i) {
                self.counts[i].fetch_add(1, Ordering::Relaxed);
                placed = true;
                break;
            }
        }
        if !placed {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        // Atomic f64 add via CAS on the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record a duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    #[inline]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Name → (help text, instrument). `BTreeMap` gives deterministic render
/// order, which keeps `metrics_text()` output diff-stable.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, (&'static str, Metric)>>,
}

impl Registry {
    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// Get or create a counter. Panics if `name` is already registered as
    /// a different instrument kind (a programming error).
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name)
            .or_insert_with(|| (help, Metric::Counter(Arc::new(Counter::default()))))
        {
            (_, Metric::Counter(c)) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name)
            .or_insert_with(|| (help, Metric::Gauge(Arc::new(Gauge::default()))))
        {
            (_, Metric::Gauge(g)) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create a histogram with the default latency-oriented base
    /// (1 µs first bucket; factor-4 series).
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with_base(name, help, 1e-6)
    }

    /// Get or create a histogram with an explicit first-bucket bound.
    pub fn histogram_with_base(
        &self,
        name: &'static str,
        help: &'static str,
        base: f64,
    ) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name)
            .or_insert_with(|| (help, Metric::Histogram(Arc::new(Histogram::new(base)))))
        {
            (_, Metric::Histogram(h)) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Number of distinct registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap().len()
    }

    /// True when nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render all registered metrics as Prometheus text exposition format.
    pub fn render(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut out = String::with_capacity(4096 + m.len() * 128);
        for (name, (help, metric)) in m.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(" counter\n");
                    out.push_str(name);
                    out.push(' ');
                    out.push_str(&c.get().to_string());
                    out.push('\n');
                }
                Metric::Gauge(g) => {
                    out.push_str(" gauge\n");
                    out.push_str(name);
                    out.push(' ');
                    out.push_str(&g.get().to_string());
                    out.push('\n');
                }
                Metric::Histogram(h) => {
                    out.push_str(" histogram\n");
                    let mut cumulative = 0u64;
                    for i in 0..BUCKETS {
                        cumulative += h.counts[i].load(Ordering::Relaxed);
                        out.push_str(name);
                        out.push_str("_bucket{le=\"");
                        out.push_str(&format_bound(h.bound(i)));
                        out.push_str("\"} ");
                        out.push_str(&cumulative.to_string());
                        out.push('\n');
                    }
                    cumulative += h.overflow.load(Ordering::Relaxed);
                    out.push_str(name);
                    out.push_str("_bucket{le=\"+Inf\"} ");
                    out.push_str(&cumulative.to_string());
                    out.push('\n');
                    out.push_str(name);
                    out.push_str("_sum ");
                    out.push_str(&format_float(h.sum()));
                    out.push('\n');
                    out.push_str(name);
                    out.push_str("_count ");
                    out.push_str(&h.count().to_string());
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Format a bucket bound compactly (`1e-06`-style for tiny values,
/// plain decimal otherwise) so `le` labels stay stable and readable.
fn format_bound(v: f64) -> String {
    if v != 0.0 && v.abs() < 1e-3 {
        format!("{v:e}")
    } else {
        format_float(v)
    }
}

/// Trim trailing zeros from a float rendering.
fn format_float(v: f64) -> String {
    let s = format!("{v:.9}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() { "0".to_string() } else { s.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::default();
        let c = r.counter("t_counter", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same instrument.
        assert_eq!(r.counter("t_counter", "a counter").get(), 5);

        let g = r.gauge("t_gauge", "a gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.record_max(10);
        g.record_max(2);
        assert_eq!(g.get(), 10);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let r = Registry::default();
        let h = r.histogram("t_hist", "a histogram");
        h.observe(0.0); // first bucket
        h.observe(5e-7); // <= 1e-6, first bucket
        h.observe(1.0);
        h.observe(1e12); // overflow
        assert_eq!(h.count(), 4);
        assert!((h.sum() - (5e-7 + 1.0 + 1e12)).abs() < 1.0);
        let text = r.render();
        assert!(text.contains("# TYPE t_hist histogram"));
        assert!(text.contains("t_hist_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("t_hist_count 4"));
        // Cumulative: the first bucket holds exactly the two tiny values.
        assert!(text.contains("t_hist_bucket{le=\"1e-6\"} 2"));
    }

    #[test]
    fn render_is_sorted_and_typed() {
        let r = Registry::default();
        r.counter("z_last", "z").inc();
        r.gauge("a_first", "a").set(1);
        let text = r.render();
        let a = text.find("a_first").unwrap();
        let z = text.find("z_last").unwrap();
        assert!(a < z, "render must be name-sorted");
        assert!(text.contains("# TYPE a_first gauge"));
        assert!(text.contains("# TYPE z_last counter"));
    }

    /// The ingest / incremental-checkpoint / CSR counters registered by the
    /// storage and core crates: same-name registration hands back the same
    /// instance (so increments from different call sites aggregate), and
    /// all three render as proper counter families.
    #[test]
    fn ingest_checkpoint_and_csr_counters_register_once_and_render() {
        let r = Registry::default();
        let names = [
            "erbium_ingest_rows_total",
            "erbium_checkpoint_delta_tables",
            "erbium_csr_rebuilds_total",
        ];
        for name in names {
            let a = r.counter(name, "first registration");
            let b = r.counter(name, "help ignored on re-registration");
            a.add(2);
            b.inc();
            assert_eq!(a.get(), 3, "{name}: both handles hit one counter");
        }
        let text = r.render();
        for name in names {
            assert!(text.contains(&format!("# TYPE {name} counter")), "{name}:\n{text}");
            assert!(text.contains(&format!("{name} 3")), "{name}:\n{text}");
        }
    }

    #[test]
    fn negative_and_nan_observations_are_clamped() {
        let r = Registry::default();
        let h = r.histogram("t_clamp", "clamp");
        h.observe(-5.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
    }
}
