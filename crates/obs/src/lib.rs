//! # erbium-obs — engine-wide observability for ErbiumDB
//!
//! Sits *below* the storage/engine/core crates in the dependency graph so
//! every layer can record into the same process-wide instruments:
//!
//! * [`metrics`] — a global [`Registry`] of counters, gauges and
//!   log-scale-bucket histograms, rendered as Prometheus text by
//!   `Database::metrics_text()`.
//! * [`trace`] — zero-cost-when-disabled structured spans (parse → plan
//!   → optimize → execute, WAL append/fsync, checkpoint, recovery, pool
//!   waves), correlated by query id, emitted to an in-memory ring buffer
//!   and optionally a JSONL file.
//!
//! The crate is std-only by design: it must never drag dependencies into
//! storage's build, and its hot-path cost budget (one relaxed atomic load
//! per disabled span; a handful of relaxed adds per metric update) is
//! enforced by the `morsel_waves` overhead sentinel in `crates/bench`.

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{current_query_id, span, QueryIdScope, Span, SpanRecord, Tracer};
