//! Lightweight structured tracing.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero cost when disabled.** `span(name)` is one relaxed
//!    `AtomicBool` load; the returned [`Span`] is inert (no `Instant`
//!    read, no allocation, `Drop` is a no-op). The engine hot path — a
//!    span per pool wave — must stay within measurement noise of the
//!    PR-4 baseline when tracing is off (see the `morsel_waves` sentinel
//!    in `crates/bench`).
//! 2. **Query-scoped correlation.** A thread-local current query id is
//!    installed by [`QueryIdScope`] at query entry; every span opened on
//!    that thread while the guard lives inherits the id. Pool workers
//!    executing on behalf of a query can propagate the id explicitly via
//!    [`current_query_id`] + [`QueryIdScope::enter`].
//! 3. **Pluggable sinks.** Finished spans always land in a bounded
//!    in-memory ring buffer (cheap post-hoc inspection, powers tests) and
//!    optionally stream to a JSONL file (one object per line) for
//!    offline workload analysis.
//!
//! This is deliberately *not* a general tracing framework: no span
//! parents, no levels, no fields beyond a static name + optional detail
//! string. The engine needs "what happened, for which query, how long" —
//! anything richer belongs in the metrics registry or the slow-query log.

use std::collections::VecDeque;
use std::fs::File;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Maximum number of finished spans retained in the in-memory ring.
const RING_CAP: usize = 4096;

/// A finished span, as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"execute"`, `"wal_fsync"`).
    pub name: &'static str,
    /// Query id active when the span was opened; 0 = none.
    pub query_id: u64,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub start_unix_us: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Optional free-form detail (e.g. SQL text, byte counts).
    pub detail: Option<String>,
}

struct TracerState {
    ring: VecDeque<SpanRecord>,
    file: Option<File>,
}

/// The process-global tracer.
pub struct Tracer {
    enabled: AtomicBool,
    next_query_id: AtomicU64,
    state: Mutex<TracerState>,
}

thread_local! {
    static CURRENT_QUERY_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

impl Tracer {
    /// The process-global tracer instance.
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(|| Tracer {
            enabled: AtomicBool::new(false),
            next_query_id: AtomicU64::new(1),
            state: Mutex::new(TracerState { ring: VecDeque::new(), file: None }),
        })
    }

    /// Enable or disable tracing process-wide.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is tracing currently enabled?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Attach a JSONL file sink (one span object per line). Pass `None`
    /// to detach. The ring buffer keeps recording either way.
    pub fn set_jsonl_sink(&self, path: Option<&std::path::Path>) -> std::io::Result<()> {
        let file = match path {
            Some(p) => Some(File::create(p)?),
            None => None,
        };
        self.state.lock().unwrap().file = file;
        Ok(())
    }

    /// Allocate a fresh query id (monotonic, process-wide, never 0).
    pub fn next_query_id(&self) -> u64 {
        self.next_query_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Snapshot of the most recent finished spans, oldest first.
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.state.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Drop all retained spans (tests).
    pub fn clear(&self) {
        self.state.lock().unwrap().ring.clear();
    }

    fn record(&self, rec: SpanRecord) {
        let mut st = self.state.lock().unwrap();
        if let Some(f) = st.file.as_mut() {
            // Best-effort: a full disk must not take the engine down.
            let _ = writeln!(f, "{}", render_jsonl(&rec));
        }
        if st.ring.len() == RING_CAP {
            st.ring.pop_front();
        }
        st.ring.push_back(rec);
    }
}

/// Render one span as a single JSON object line. Hand-rolled because the
/// obs crate is std-only; the escape set covers everything SQL text can
/// contain.
fn render_jsonl(rec: &SpanRecord) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"span\":\"");
    out.push_str(rec.name); // static names: no escaping needed
    out.push_str("\",\"qid\":");
    out.push_str(&rec.query_id.to_string());
    out.push_str(",\"start_us\":");
    out.push_str(&rec.start_unix_us.to_string());
    out.push_str(",\"dur_ns\":");
    out.push_str(&rec.duration_ns.to_string());
    if let Some(d) = &rec.detail {
        out.push_str(",\"detail\":\"");
        escape_json_into(&mut out, d);
        out.push('"');
    }
    out.push('}');
    out
}

fn escape_json_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// An in-flight span. Created by [`span`]; records itself on `Drop` when
/// tracing was enabled at open time. When tracing is disabled the struct
/// is inert — `start` is `None` and `Drop` does nothing.
pub struct Span {
    name: &'static str,
    start: Option<(Instant, u64)>, // (monotonic start, wall-clock µs)
    query_id: u64,
    detail: Option<String>,
}

impl Span {
    /// Attach a free-form detail string (lazily: the closure only runs
    /// when the span is live).
    pub fn with_detail(mut self, f: impl FnOnce() -> String) -> Self {
        if self.start.is_some() {
            self.detail = Some(f());
        }
        self
    }

    /// Is this span actually recording?
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((t0, wall_us)) = self.start {
            let rec = SpanRecord {
                name: self.name,
                query_id: self.query_id,
                start_unix_us: wall_us,
                duration_ns: t0.elapsed().as_nanos() as u64,
                detail: self.detail.take(),
            };
            Tracer::global().record(rec);
        }
    }
}

/// Open a span. One relaxed atomic load when tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    let tracer = Tracer::global();
    if !tracer.enabled() {
        return Span { name, start: None, query_id: 0, detail: None };
    }
    let wall_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    Span {
        name,
        start: Some((Instant::now(), wall_us)),
        query_id: current_query_id(),
        detail: None,
    }
}

/// The query id installed on this thread, or 0.
#[inline]
pub fn current_query_id() -> u64 {
    CURRENT_QUERY_ID.with(|c| c.get())
}

/// RAII guard installing a thread-local query id; restores the previous
/// id on drop (nesting-safe).
pub struct QueryIdScope {
    prev: u64,
}

impl QueryIdScope {
    /// Install `qid` as the current query id on this thread.
    pub fn enter(qid: u64) -> QueryIdScope {
        let prev = CURRENT_QUERY_ID.with(|c| c.replace(qid));
        QueryIdScope { prev }
    }
}

impl Drop for QueryIdScope {
    fn drop(&mut self) {
        CURRENT_QUERY_ID.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global; serialize tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_is_inert() {
        let _g = LOCK.lock().unwrap();
        let t = Tracer::global();
        t.set_enabled(false);
        t.clear();
        {
            let s = span("noop");
            assert!(!s.is_recording());
        }
        assert!(t.recent_spans().is_empty());
    }

    #[test]
    fn enabled_span_records_with_query_id() {
        let _g = LOCK.lock().unwrap();
        let t = Tracer::global();
        t.set_enabled(true);
        t.clear();
        {
            let _q = QueryIdScope::enter(42);
            let _s = span("unit_test").with_detail(|| "hello \"world\"\n".into());
        }
        t.set_enabled(false);
        let spans = t.recent_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "unit_test");
        assert_eq!(spans[0].query_id, 42);
        assert_eq!(spans[0].detail.as_deref(), Some("hello \"world\"\n"));
        // query id restored after scope drop
        assert_eq!(current_query_id(), 0);
    }

    #[test]
    fn jsonl_escaping() {
        let rec = SpanRecord {
            name: "x",
            query_id: 1,
            start_unix_us: 2,
            duration_ns: 3,
            detail: Some("a\"b\\c\nd\te\u{1}".into()),
        };
        let line = render_jsonl(&rec);
        assert_eq!(
            line,
            "{\"span\":\"x\",\"qid\":1,\"start_us\":2,\"dur_ns\":3,\
             \"detail\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}"
        );
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let _g = LOCK.lock().unwrap();
        let t = Tracer::global();
        let path = std::env::temp_dir().join(format!(
            "erbium-obs-trace-{}-{}.jsonl",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        t.set_jsonl_sink(Some(&path)).unwrap();
        t.set_enabled(true);
        t.clear();
        drop(span("file_test"));
        t.set_enabled(false);
        t.set_jsonl_sink(None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"span\":\"file_test\""), "got: {text}");
    }

    #[test]
    fn query_ids_are_monotonic_and_nonzero() {
        let t = Tracer::global();
        let a = t.next_query_id();
        let b = t.next_query_id();
        assert!(a > 0 && b > a);
    }
}
