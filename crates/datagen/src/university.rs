//! Generator for the Figure-1 university schema (used by examples).

use erbium_core::{BulkEntity, Database, DbResult};
use erbium_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

const DEPTS: [(&str, &str); 4] =
    [("cs", "AVW"), ("math", "KIR"), ("physics", "PHY"), ("biology", "BIO")];
const FIRST: [&str; 8] = ["ada", "alan", "grace", "edsger", "barbara", "donald", "tony", "edgar"];
const CITIES: [&str; 4] = ["College Park", "Greenbelt", "Hyattsville", "Laurel"];

/// Outcome of a bulk load: how many entity instances went through the bulk
/// path and how long the whole population took (links included).
#[derive(Debug, Clone, Copy)]
pub struct IngestReport {
    /// Entity instances loaded via [`Database::copy_from`].
    pub rows: usize,
    /// Wall-clock time for the whole population.
    pub elapsed: Duration,
}

impl IngestReport {
    /// Bulk-loaded entity instances per second.
    pub fn rows_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.rows as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// Populate a university instance through the `Database` bulk-ingest API:
/// `n_instructors` instructors, `n_students` students (each with an
/// advisor), 12 courses with 2 sections each, and takes/teaches links.
/// Each entity extent loads as one `copy_from` batch — one transaction,
/// one WAL commit group, one index pass per table. Deterministic for a
/// fixed seed, with slot assignment identical to per-row insertion.
pub fn populate_university(
    db: &mut Database,
    n_instructors: usize,
    n_students: usize,
    seed: u64,
) -> DbResult<IngestReport> {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = 0usize;

    let depts: Vec<BulkEntity> = DEPTS
        .iter()
        .map(|(name, building)| {
            BulkEntity::new(&[("dept_name", Value::str(*name)), ("building", Value::str(*building))])
        })
        .collect();
    rows += db.copy_from("department", &depts)?;

    let mut instructors = Vec::with_capacity(n_instructors);
    for i in 0..n_instructors as i64 {
        let dept = DEPTS[rng.gen_range(0..DEPTS.len())].0;
        instructors.push(BulkEntity::linked(
            &[
                ("id", Value::Int(i)),
                ("name", Value::str(format!("{} {}", FIRST[rng.gen_range(0..8usize)], i))),
                (
                    "address",
                    Value::Struct(vec![
                        Value::str(format!("{} Main St", rng.gen_range(1..999))),
                        Value::str(CITIES[rng.gen_range(0..4usize)]),
                    ]),
                ),
                (
                    "phone",
                    Value::Array(
                        (0..rng.gen_range(1..3))
                            .map(|k| Value::str(format!("555-{i:04}-{k}")))
                            .collect(),
                    ),
                ),
                ("rank", Value::str(["assistant", "associate", "professor"][rng.gen_range(0..3usize)])),
            ],
            &[("member_of", vec![Value::str(dept)])],
        ));
    }
    rows += db.copy_from("instructor", &instructors)?;

    let mut students = Vec::with_capacity(n_students);
    for i in 0..n_students as i64 {
        let id = 10_000 + i;
        let advisor = rng.gen_range(0..n_instructors as i64);
        students.push(BulkEntity::linked(
            &[
                ("id", Value::Int(id)),
                ("name", Value::str(format!("{} {}", FIRST[rng.gen_range(0..8usize)], id))),
                (
                    "address",
                    Value::Struct(vec![
                        Value::str(format!("{} Campus Dr", rng.gen_range(1..999))),
                        Value::str(CITIES[rng.gen_range(0..4usize)]),
                    ]),
                ),
                ("phone", Value::Array(vec![Value::str(format!("556-{id:05}"))])),
                ("tot_credits", Value::Int(rng.gen_range(0..120))),
            ],
            &[("advisor", vec![Value::Int(advisor)])],
        ));
    }
    rows += db.copy_from("student", &students)?;

    // Courses and sections are buffered (keeping the RNG draw order of the
    // original per-row loop) and loaded as one batch each; teaches links
    // follow once their endpoints exist.
    let mut courses = Vec::with_capacity(12);
    let mut sections = Vec::with_capacity(24);
    let mut teaches: Vec<(i64, String, i64, &str)> = Vec::with_capacity(24);
    for c in 0..12i64 {
        let course_id = format!("C{c:03}");
        courses.push(BulkEntity::new(&[
            ("course_id", Value::str(&course_id)),
            ("title", Value::str(format!("Topic {c}"))),
            ("credits", Value::Int(rng.gen_range(1..5))),
        ]));
        for sec in 1..=2i64 {
            let sem = if sec == 1 { "Spring" } else { "Fall" };
            sections.push(BulkEntity::new(&[
                ("course_id", Value::str(&course_id)),
                ("sec_id", Value::Int(sec)),
                ("semester", Value::str(sem)),
                ("year", Value::Int(2026)),
            ]));
            // One instructor teaches each section.
            let inst = rng.gen_range(0..n_instructors as i64);
            teaches.push((inst, course_id.clone(), sec, sem));
        }
    }
    rows += db.copy_from("course", &courses)?;
    rows += db.copy_from("section", &sections)?;
    for (inst, course_id, sec, sem) in teaches {
        db.link(
            "teaches",
            &[Value::Int(inst)],
            &[Value::str(course_id), Value::Int(sec), Value::str(sem), Value::Int(2026)],
            &[],
        )?;
    }

    // Each student takes 3 random sections.
    for i in 0..n_students as i64 {
        let id = 10_000 + i;
        for _ in 0..3 {
            let c = rng.gen_range(0..12);
            let sec = rng.gen_range(1..=2i64);
            let sem = if sec == 1 { "Spring" } else { "Fall" };
            // Duplicate takes links are rejected by the join-table PK;
            // ignore collisions.
            let _ = db.link(
                "takes",
                &[Value::Int(id)],
                &[Value::str(format!("C{c:03}")), Value::Int(sec), Value::str(sem), Value::Int(2026)],
                &[],
            );
        }
    }
    Ok(IngestReport { rows, elapsed: start.elapsed() })
}

/// Build a university [`Database`] with the Figure-1 schema installed under
/// the fully normalized mapping and populated.
pub fn university_database(n_instructors: usize, n_students: usize, seed: u64) -> DbResult<Database> {
    let mut db = Database::with_schema(erbium_model::fixtures::university())?;
    db.install_default()?;
    populate_university(&mut db, n_instructors, n_students, seed)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populates_consistently() {
        let db = university_database(5, 30, 1).unwrap();
        let r = db.query("SELECT COUNT(*) AS n FROM student s").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(30));
        let r = db
            .query(
                "SELECT i.id, COUNT(*) AS advisees FROM instructor i JOIN student s VIA advisor",
            )
            .unwrap();
        let total: i64 = r.rows.iter().map(|row| row[1].as_int().unwrap()).sum();
        assert_eq!(total, 30, "every student has an advisor");
        let r = db
            .query("SELECT c.course_id, NEST(s.sec_id, s.semester) AS secs \
                    FROM course c JOIN section s VIA sec_of")
            .unwrap();
        assert_eq!(r.rows.len(), 12);
    }

    #[test]
    fn bulk_report_counts_every_entity_instance() {
        let mut db =
            Database::with_schema(erbium_model::fixtures::university()).unwrap();
        db.install_default().unwrap();
        let report = populate_university(&mut db, 5, 30, 1).unwrap();
        // 4 departments + 5 instructors + 30 students + 12 courses + 24 sections.
        assert_eq!(report.rows, 4 + 5 + 30 + 12 + 24);
        assert!(report.rows_per_sec() > 0.0);
    }
}
