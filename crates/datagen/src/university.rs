//! Generator for the Figure-1 university schema (used by examples).

use erbium_core::{Database, DbResult};
use erbium_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DEPTS: [(&str, &str); 4] =
    [("cs", "AVW"), ("math", "KIR"), ("physics", "PHY"), ("biology", "BIO")];
const FIRST: [&str; 8] = ["ada", "alan", "grace", "edsger", "barbara", "donald", "tony", "edgar"];
const CITIES: [&str; 4] = ["College Park", "Greenbelt", "Hyattsville", "Laurel"];

/// Populate a university instance through the `Database` API:
/// `n_instructors` instructors, `n_students` students (each with an
/// advisor), 12 courses with 2 sections each, and takes/teaches links.
/// Deterministic for a fixed seed.
pub fn populate_university(
    db: &mut Database,
    n_instructors: usize,
    n_students: usize,
    seed: u64,
) -> DbResult<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    for (name, building) in DEPTS {
        db.insert("department", &[("dept_name", Value::str(name)), ("building", Value::str(building))])?;
    }
    for i in 0..n_instructors as i64 {
        let dept = DEPTS[rng.gen_range(0..DEPTS.len())].0;
        db.insert_linked(
            "instructor",
            &[
                ("id", Value::Int(i)),
                ("name", Value::str(format!("{} {}", FIRST[rng.gen_range(0..8usize)], i))),
                (
                    "address",
                    Value::Struct(vec![
                        Value::str(format!("{} Main St", rng.gen_range(1..999))),
                        Value::str(CITIES[rng.gen_range(0..4usize)]),
                    ]),
                ),
                (
                    "phone",
                    Value::Array(
                        (0..rng.gen_range(1..3))
                            .map(|k| Value::str(format!("555-{i:04}-{k}")))
                            .collect(),
                    ),
                ),
                ("rank", Value::str(["assistant", "associate", "professor"][rng.gen_range(0..3usize)])),
            ],
            &[("member_of", vec![Value::str(dept)])],
        )?;
    }
    for i in 0..n_students as i64 {
        let id = 10_000 + i;
        let advisor = rng.gen_range(0..n_instructors as i64);
        db.insert_linked(
            "student",
            &[
                ("id", Value::Int(id)),
                ("name", Value::str(format!("{} {}", FIRST[rng.gen_range(0..8usize)], id))),
                (
                    "address",
                    Value::Struct(vec![
                        Value::str(format!("{} Campus Dr", rng.gen_range(1..999))),
                        Value::str(CITIES[rng.gen_range(0..4usize)]),
                    ]),
                ),
                ("phone", Value::Array(vec![Value::str(format!("556-{id:05}"))])),
                ("tot_credits", Value::Int(rng.gen_range(0..120))),
            ],
            &[("advisor", vec![Value::Int(advisor)])],
        )?;
    }
    for c in 0..12i64 {
        let course_id = format!("C{c:03}");
        db.insert(
            "course",
            &[
                ("course_id", Value::str(&course_id)),
                ("title", Value::str(format!("Topic {c}"))),
                ("credits", Value::Int(rng.gen_range(1..5))),
            ],
        )?;
        for sec in 1..=2i64 {
            db.insert(
                "section",
                &[
                    ("course_id", Value::str(&course_id)),
                    ("sec_id", Value::Int(sec)),
                    ("semester", Value::str(if sec == 1 { "Spring" } else { "Fall" })),
                    ("year", Value::Int(2026)),
                ],
            )?;
            // One instructor teaches each section.
            let inst = rng.gen_range(0..n_instructors as i64);
            db.link(
                "teaches",
                &[Value::Int(inst)],
                &[Value::str(&course_id), Value::Int(sec), Value::str(if sec == 1 { "Spring" } else { "Fall" }), Value::Int(2026)],
                &[],
            )?;
        }
    }
    // Each student takes 3 random sections.
    for i in 0..n_students as i64 {
        let id = 10_000 + i;
        for _ in 0..3 {
            let c = rng.gen_range(0..12);
            let sec = rng.gen_range(1..=2i64);
            let sem = if sec == 1 { "Spring" } else { "Fall" };
            // Duplicate takes links are rejected by the join-table PK;
            // ignore collisions.
            let _ = db.link(
                "takes",
                &[Value::Int(id)],
                &[Value::str(format!("C{c:03}")), Value::Int(sec), Value::str(sem), Value::Int(2026)],
                &[],
            );
        }
    }
    Ok(())
}

/// Build a university [`Database`] with the Figure-1 schema installed under
/// the fully normalized mapping and populated.
pub fn university_database(n_instructors: usize, n_students: usize, seed: u64) -> DbResult<Database> {
    let mut db = Database::with_schema(erbium_model::fixtures::university())?;
    db.install_default()?;
    populate_university(&mut db, n_instructors, n_students, seed)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populates_consistently() {
        let db = university_database(5, 30, 1).unwrap();
        let r = db.query("SELECT COUNT(*) AS n FROM student s").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(30));
        let r = db
            .query(
                "SELECT i.id, COUNT(*) AS advisees FROM instructor i JOIN student s VIA advisor",
            )
            .unwrap();
        let total: i64 = r.rows.iter().map(|row| row[1].as_int().unwrap()).sum();
        assert_eq!(total, 30, "every student has an advisor");
        let r = db
            .query("SELECT c.course_id, NEST(s.sec_id, s.semester) AS secs \
                    FROM course c JOIN section s VIA sec_of")
            .unwrap();
        assert_eq!(r.rows.len(), 12);
    }
}
