//! Generator for the Figure-4 experiment schema.

use erbium_mapping::{BulkEntity, EntityData, EntityStore, Lowering, MappingResult};
use erbium_storage::{Catalog, Transaction, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale and shape of the generated instance.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Number of instances in the `R` hierarchy (split evenly across the
    /// five types).
    pub n_r: usize,
    /// Average values per multi-valued attribute (uniform 1..=2*avg-1).
    pub mv_avg: usize,
    /// RNG seed — same seed, same instance.
    pub seed: u64,
}

impl ExperimentConfig {
    /// ~5,000,000 total entries, matching the paper's scale.
    pub fn paper_scale() -> ExperimentConfig {
        ExperimentConfig { n_r: 410_000, mv_avg: 3, seed: 42 }
    }

    /// Default benchmark scale (~15x smaller; same shape).
    pub fn bench_default() -> ExperimentConfig {
        ExperimentConfig { n_r: 22_000, mv_avg: 3, seed: 42 }
    }

    /// Tiny scale for tests.
    pub fn tiny() -> ExperimentConfig {
        ExperimentConfig { n_r: 100, mv_avg: 3, seed: 42 }
    }

    /// Scale from the `ERBIUM_SCALE` environment variable (`paper`,
    /// `bench`, `tiny`, or an explicit `n_r` count), defaulting to bench.
    pub fn from_env() -> ExperimentConfig {
        match std::env::var("ERBIUM_SCALE").ok().as_deref() {
            Some("paper") => Self::paper_scale(),
            Some("tiny") => Self::tiny(),
            Some(n) => match n.parse::<usize>() {
                Ok(n_r) if n_r > 0 => ExperimentConfig { n_r, ..Self::bench_default() },
                _ => Self::bench_default(),
            },
            None => Self::bench_default(),
        }
    }

    /// Number of `S` entities.
    pub fn n_s(&self) -> usize {
        (self.n_r / 5).max(1)
    }

    /// Number of `S1` weak entities (≈ the R2-subtree extent so that
    /// `r2_s1` is nearly one-to-one, as the paper requires for M6).
    pub fn n_s1(&self) -> usize {
        (self.n_r * 2 / 5).max(1)
    }

    /// Number of `S2` weak entities.
    pub fn n_s2(&self) -> usize {
        (self.n_s() / 2).max(1)
    }
}

/// What was generated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PopulationStats {
    pub entities: usize,
    pub mv_values: usize,
    pub links: usize,
}

impl PopulationStats {
    /// Total "entries" in the paper's counting.
    pub fn total_entries(&self) -> usize {
        self.entities + self.mv_values + self.links
    }
}

const TYPES: [&str; 5] = ["R", "R1", "R2", "R3", "R4"];
const VOCAB: [&str; 8] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"];

/// Populate the experiment instance through the CRUD translator of the
/// given lowering. Deterministic for a fixed config.
pub fn populate_experiment(
    cat: &mut Catalog,
    lw: &Lowering,
    cfg: &ExperimentConfig,
) -> MappingResult<PopulationStats> {
    let store = EntityStore::new(lw);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = PopulationStats::default();
    let mut txn = Transaction::new();

    let n_s = cfg.n_s() as i64;
    // S entities — one bulk batch.
    let s_batch: Vec<BulkEntity> = (0..n_s)
        .map(|sid| BulkEntity {
            data: entity_data(&[
                ("s_id", Value::Int(sid)),
                ("s_a", Value::str(format!("s-{}-{}", VOCAB[(sid % 8) as usize], sid))),
                ("s_b", Value::Int(sid % 50)),
            ]),
            links: Vec::new(),
        })
        .collect();
    stats.entities += s_batch.len();
    store.bulk_insert(cat, &mut txn, "S", &s_batch)?;
    // Weak entities: S1 spread across owners, S2 on even owners. Batched
    // too — the bulk path falls back to per-row writes where the mapping
    // folds them into their owner.
    let n_s1 = cfg.n_s1() as i64;
    let s1_batch: Vec<BulkEntity> = (0..n_s1)
        .map(|i| {
            let owner = i % n_s;
            let no = i / n_s;
            BulkEntity {
                data: entity_data(&[
                    ("s_id", Value::Int(owner)),
                    ("s1_no", Value::Int(no)),
                    ("s1_a", Value::Int(rng.gen_range(0..10_000))),
                    ("s1_b", Value::str(format!("w{owner}-{no}"))),
                ]),
                links: Vec::new(),
            }
        })
        .collect();
    stats.entities += s1_batch.len();
    store.bulk_insert(cat, &mut txn, "S1", &s1_batch)?;
    let n_s2 = cfg.n_s2() as i64;
    let s2_batch: Vec<BulkEntity> = (0..n_s2)
        .map(|i| {
            let owner = (i * 2) % n_s;
            let no = i / n_s + 100;
            BulkEntity {
                data: entity_data(&[
                    ("s_id", Value::Int(owner)),
                    ("s2_no", Value::Int(no)),
                    ("s2_a", Value::str(VOCAB[rng.gen_range(0..8usize)])),
                ]),
                links: Vec::new(),
            }
        })
        .collect();
    stats.entities += s2_batch.len();
    store.bulk_insert(cat, &mut txn, "S2", &s2_batch)?;

    // R hierarchy. Instance data is generated in the original per-row
    // order (so the RNG sequence — and thus the content — is unchanged),
    // batched per concrete type, then bulk-loaded one type at a time.
    let mv_hi = (cfg.mv_avg * 2).max(2) as i64;
    let mut r2_members: Vec<i64> = Vec::new(); // R2-subtree keys for r2_s1
    let mut r1_members: Vec<i64> = Vec::new();
    let mut r3_members: Vec<i64> = Vec::new();
    let mut r_batches: [Vec<BulkEntity>; 5] = Default::default();
    for i in 0..cfg.n_r as i64 {
        let ty_index = (i % 5) as usize;
        let ty = TYPES[ty_index];
        let mut data = entity_data(&[
            ("r_id", Value::Int(i)),
            ("r_a", Value::str(format!("r-{}-{}", VOCAB[(i % 7) as usize], i))),
            ("r_b", Value::Int(rng.gen_range(0..100))),
        ]);
        for mv in ["r_mv1", "r_mv2"] {
            let n = rng.gen_range(1..mv_hi) as usize;
            let vals: Vec<Value> =
                (0..n).map(|_| Value::Int(rng.gen_range(0..1_000))).collect();
            stats.mv_values += vals.len();
            data.insert(mv.to_string(), Value::Array(vals));
        }
        {
            let n = rng.gen_range(1..mv_hi) as usize;
            let vals: Vec<Value> =
                (0..n).map(|_| Value::str(VOCAB[rng.gen_range(0..8usize)])).collect();
            stats.mv_values += vals.len();
            data.insert("r_mv3".to_string(), Value::Array(vals));
        }
        match ty {
            "R1" | "R3" => {
                data.insert("r1_a".into(), Value::Int(rng.gen_range(0..1_000)));
                data.insert("r1_b".into(), Value::str(VOCAB[rng.gen_range(0..8usize)]));
                r1_members.push(i);
            }
            "R2" | "R4" => {
                data.insert("r2_a".into(), Value::Int(rng.gen_range(0..1_000)));
                data.insert("r2_b".into(), Value::str(VOCAB[rng.gen_range(0..8usize)]));
                r2_members.push(i);
            }
            _ => {}
        }
        if ty == "R3" {
            data.insert("r3_a".into(), Value::Int(rng.gen_range(0..1_000)));
            r3_members.push(i);
        }
        if ty == "R4" {
            data.insert("r4_a".into(), Value::str(VOCAB[rng.gen_range(0..8usize)]));
        }
        let s_target = rng.gen_range(0..n_s);
        r_batches[ty_index].push(BulkEntity {
            data,
            links: vec![("r_s".to_string(), vec![Value::Int(s_target)])],
        });
        stats.entities += 1;
        stats.links += 1;
    }
    for (ty, batch) in TYPES.iter().zip(&r_batches) {
        store.bulk_insert(cat, &mut txn, ty, batch)?;
    }

    // r2_s1: nearly one-to-one — each R2-subtree member links to one S1
    // (a few get two, keeping average fan-out just above 1).
    let empty = EntityData::default();
    let n_s1_total = cfg.n_s1() as i64;
    for (idx, &r2) in r2_members.iter().enumerate() {
        let s1_index = (idx as i64) % n_s1_total;
        let (owner, no) = (s1_index % n_s, s1_index / n_s);
        store.link(
            cat,
            &mut txn,
            "r2_s1",
            &[Value::Int(r2)],
            &[Value::Int(owner), Value::Int(no)],
            &empty,
        )?;
        stats.links += 1;
        if idx % 16 == 0 {
            let s1_index = (s1_index + 1) % n_s1_total;
            let (owner, no) = (s1_index % n_s, s1_index / n_s);
            store.link(
                cat,
                &mut txn,
                "r2_s1",
                &[Value::Int(r2)],
                &[Value::Int(owner), Value::Int(no)],
                &empty,
            )?;
            stats.links += 1;
        }
    }

    // r1_r3: many-to-many between R1 and R3 extents.
    for (idx, &r1) in r1_members.iter().enumerate() {
        if idx % 4 == 0 && !r3_members.is_empty() {
            let r3 = r3_members[idx % r3_members.len()];
            if r1 != r3 {
                store.link(cat, &mut txn, "r1_r3", &[Value::Int(r1)], &[Value::Int(r3)], &empty)?;
                stats.links += 1;
            }
        }
    }

    txn.commit();
    Ok(stats)
}

fn entity_data(pairs: &[(&str, Value)]) -> EntityData {
    pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

/// Build a ready-to-query [`erbium_core::Database`] holding the experiment
/// instance under the given mapping.
pub fn experiment_database(
    mapping: &erbium_mapping::Mapping,
    cfg: &ExperimentConfig,
) -> MappingResult<erbium_core::Database> {
    let schema = erbium_model::fixtures::experiment();
    let lw = Lowering::build(&schema, mapping)?;
    let mut cat = Catalog::new();
    lw.install(&mut cat)?;
    populate_experiment(&mut cat, &lw, cfg)?;
    Ok(erbium_core::Database::from_parts(cat, lw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use erbium_mapping::presets::paper;
    use erbium_mapping::Lowering;
    use erbium_model::fixtures;

    #[test]
    fn tiny_population_shape() {
        let schema = fixtures::experiment();
        let lw = Lowering::build(&schema, &paper::m1(&schema)).unwrap();
        let mut cat = Catalog::new();
        lw.install(&mut cat).unwrap();
        let cfg = ExperimentConfig::tiny();
        let stats = populate_experiment(&mut cat, &lw, &cfg).unwrap();
        assert_eq!(cat.table("R").unwrap().len(), 100, "all hierarchy members in root");
        assert_eq!(cat.table("R3").unwrap().len(), 20);
        assert_eq!(cat.table("S").unwrap().len(), cfg.n_s());
        assert_eq!(cat.table("S1").unwrap().len(), cfg.n_s1());
        assert!(stats.mv_values > 200, "three mv attributes with avg ≈3 values");
        // r2_s1 nearly 1:1 over the R2 subtree (40 members).
        let pairs = cat.table("r2_s1").unwrap().len();
        assert!((40..=44).contains(&pairs), "{pairs}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let schema = fixtures::experiment();
        let run = || {
            let lw = Lowering::build(&schema, &paper::m1(&schema)).unwrap();
            let mut cat = Catalog::new();
            lw.install(&mut cat).unwrap();
            let stats =
                populate_experiment(&mut cat, &lw, &ExperimentConfig::tiny()).unwrap();
            (stats, cat.table("R__r_mv1").unwrap().compute_stats().row_count)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn paper_scale_entry_count_close_to_5m() {
        // Analytic check (no data generated): entities + mv values + links.
        let cfg = ExperimentConfig::paper_scale();
        let entities = cfg.n_r + cfg.n_s() + cfg.n_s1() + cfg.n_s2();
        let mv = cfg.n_r * 3 * cfg.mv_avg;
        let links = cfg.n_r // r_s
            + cfg.n_r * 2 / 5 // r2_s1 (≈1 per R2-subtree member)
            + cfg.n_r / 5 / 4; // r1_r3
        let total = entities + mv + links;
        assert!(
            (4_500_000..=5_500_000).contains(&total),
            "paper-scale total entries ≈ 5M, got {total}"
        );
    }

    #[test]
    fn same_logical_content_under_m1_and_m2() {
        let schema = fixtures::experiment();
        let cfg = ExperimentConfig { n_r: 50, mv_avg: 2, seed: 7 };
        let extract = |mapping| {
            let lw = Lowering::build(&schema, &mapping).unwrap();
            let mut cat = Catalog::new();
            lw.install(&mut cat).unwrap();
            populate_experiment(&mut cat, &lw, &cfg).unwrap();
            let store = EntityStore::new(&lw);
            let mut rows: Vec<Vec<(String, Value)>> = store
                .extract_entities(&cat, "R")
                .unwrap()
                .into_iter()
                .map(|d| {
                    let mut kv: Vec<(String, Value)> = d
                        .into_iter()
                        .map(|(k, mut v)| {
                            if let Value::Array(a) = &mut v {
                                a.sort();
                            }
                            (k, v)
                        })
                        .collect();
                    kv.sort();
                    kv
                })
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(extract(paper::m1(&schema)), extract(paper::m2(&schema)));
    }
}
