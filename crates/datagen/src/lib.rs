//! # erbium-datagen
//!
//! Deterministic synthetic data generators for the paper's experiments.
//!
//! The paper evaluates "a synthetically generated database containing
//! approximately 5,000,000 entries in total" over the Figure-4 schema.
//! [`ExperimentConfig`] reproduces that composition at any scale: entity
//! instances, multi-valued attribute values, and relationship instances
//! all count as "entries". `ExperimentConfig::paper_scale()` hits ~5M;
//! smaller scales keep the same shape (subclass mix, fan-outs, the nearly
//! one-to-one `r2_s1` connectivity that motivates mapping M6).
//!
//! All generation flows through the mapping layer's CRUD translator, so
//! the *same* logical instance can be materialized under any mapping —
//! which is exactly what the benchmark harness needs.

pub mod experiment;
pub mod university;

pub use experiment::{experiment_database, populate_experiment, ExperimentConfig, PopulationStats};
pub use university::{populate_university, university_database, IngestReport};
