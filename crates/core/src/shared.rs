//! Concurrent access: snapshot reads racing a single writer.
//!
//! [`SharedDatabase`] wraps a [`Database`] for multi-client use with a
//! simple, robust concurrency model:
//!
//! * **One writer at a time** — every mutating operation takes an interior
//!   writer mutex. Write throughput is the single-writer throughput (WAL
//!   group commit gives back most of what serialization costs under
//!   `SyncPolicy::Always`, see below).
//! * **Readers never block and are never blocked** — a [`Snapshot`] is a
//!   pinned, immutable view: an `Arc` of a shallow [`Catalog`] clone whose
//!   tables are copy-on-write (`Arc<Table>` inside the catalog, detached
//!   by the writer via `Arc::make_mut` only when shared). Acquiring one is
//!   an `RwLock` read + `Arc` clone — no data is copied — and scans run
//!   against it without any coordination with the writer.
//!
//! Isolation is *structural*: the writer mutates its own detached copies,
//! so a pinned snapshot cannot observe partial transactions — not because
//! a visibility predicate filters rows, but because the snapshot's memory
//! is never written to. The epoch stamps on row slots
//! ([`erbium_storage::Table::slot_visible_at`]) make that ordering
//! observable and testable, and pin each snapshot to a commit point.
//!
//! **Publish protocol**: a mutator locks the writer, applies its change,
//! captures a fresh [`ReadView`] (still under the lock, tagged with a
//! monotonic sequence number), then publishes it into the `RwLock`d slot,
//! newest sequence wins. Transactions on a durable database under
//! `SyncPolicy::Always` append their WAL group under the lock but fsync
//! *after releasing it* through a [`GroupCommitter`], so concurrent
//! commits batch into shared fsyncs; the new view is published only after
//! the commit is durable (readers never see a committed-but-not-yet-synced
//! state). If that fsync fails the transaction is applied in memory but
//! reported as an error and not published — the same acknowledgment rule
//! group-committing systems use: no success until durable.
use crate::database::{Database, DbResult, QueryResult, SlowQueryRecord};
use crate::governance::AccessPolicy;
use crate::DbError;
use erbium_engine::{ExecContext, PlanCache, PlanCacheStats};
use erbium_mapping::{EntityData, EntityStore, Lowering};
use erbium_model::ErSchema;
use erbium_storage::{Catalog, GroupCommitter, SyncPolicy, Value};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable, consistent view of the database at one commit point.
/// Cheap to capture (shallow catalog clone: per-table `Arc` bumps) and to
/// hand out (`Arc<ReadView>`).
pub(crate) struct ReadView {
    /// Publish order, assigned under the writer lock — strictly increasing
    /// in state order, so a delayed publish can never overwrite a newer
    /// view (the catalog epoch alone can't arbitrate: structural ops
    /// change state without advancing it).
    seq: u64,
    /// Catalog epoch this view pins; row slots created at a later epoch
    /// are structurally absent from this view's tables.
    epoch: u64,
    pub(crate) schema: ErSchema,
    pub(crate) catalog: Catalog,
    pub(crate) lowering: Option<Arc<Lowering>>,
    pub(crate) policy: Option<AccessPolicy>,
    pub(crate) plan_generation: u64,
}

struct SharedInner {
    writer: Mutex<Database>,
    published: RwLock<Arc<ReadView>>,
    seq: AtomicU64,
    /// Present iff the wrapped database is durable with
    /// `SyncPolicy::Always` — the only configuration where commits fsync
    /// individually and therefore benefit from batching.
    group: Option<GroupCommitter>,
    slow_log: Arc<Mutex<crate::database::SlowLog>>,
    plan_cache: Arc<PlanCache>,
}

/// A handle to a database shared between concurrent clients. Clone freely —
/// all clones address the same underlying database. See the module docs
/// for the concurrency model.
#[derive(Clone)]
pub struct SharedDatabase {
    inner: Arc<SharedInner>,
    /// Session-scoped execution overrides (see
    /// [`erbium_model::Connection::set_option`]). Deliberately *outside*
    /// the shared `Arc`: every clone of the handle is its own session, so
    /// a `SET threads = 1` in one session can never bleed into another —
    /// or into the process defaults.
    pub(crate) session_ctx: ExecContext,
}

impl Database {
    /// Convert this database into a [`SharedDatabase`] for concurrent use.
    /// The single-caller API remains available through the shared handle's
    /// `&self` methods.
    pub fn into_shared(self) -> SharedDatabase {
        let group = self.durability.as_ref().and_then(|d| {
            if d.wal.policy() == SyncPolicy::Always {
                let (file, appended) = d.wal.sync_handle();
                Some(GroupCommitter::new(file, appended, self.group_commit_window))
            } else {
                None
            }
        });
        let slow_log = Arc::clone(&self.slow_log);
        let plan_cache = Arc::clone(&self.plan_cache);
        let view = Arc::new(capture_view(&self, 0));
        SharedDatabase {
            inner: Arc::new(SharedInner {
                writer: Mutex::new(self),
                published: RwLock::new(view),
                seq: AtomicU64::new(0),
                group,
                slow_log,
                plan_cache,
            }),
            session_ctx: ExecContext::default(),
        }
    }

    /// Pin the current state as an immutable [`Snapshot`] without going
    /// through [`Database::into_shared`]. Subsequent writes through this
    /// handle detach the tables they touch (copy-on-write), so the
    /// snapshot keeps returning the pinned answers.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            view: Arc::new(capture_view(self, 0)),
            slow_log: Arc::clone(&self.slow_log),
            plan_cache: Arc::clone(&self.plan_cache),
        }
    }
}

fn capture_view(db: &Database, seq: u64) -> ReadView {
    ReadView {
        seq,
        epoch: db.catalog.epoch(),
        schema: db.schema.clone(),
        catalog: db.catalog.clone(),
        lowering: db.lowering.clone(),
        policy: db.policy.clone(),
        plan_generation: db.plan_cache.generation(),
    }
}

impl SharedDatabase {
    /// Capture a view of `db`'s current state. Must be called while
    /// holding the writer lock so sequence order matches state order.
    fn capture(&self, db: &Database) -> Arc<ReadView> {
        let seq = self.inner.seq.fetch_add(1, Ordering::AcqRel) + 1;
        Arc::new(capture_view(db, seq))
    }

    /// Swap in `view` if it is newer than what's published.
    fn publish(&self, view: Arc<ReadView>) {
        let mut cur = self.inner.published.write();
        if view.seq > cur.seq {
            *cur = view;
        }
    }

    /// Run a mutating operation under the writer lock and publish the
    /// resulting state (even on `Err` — a failed operation may have
    /// partially succeeded at a coarser granularity, e.g. a migration that
    /// checkpointed; publishing the writer's actual state is always safe
    /// because mutators leave the database consistent).
    fn mutate<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut db = self.inner.writer.lock();
        let out = f(&mut db);
        let view = self.capture(&db);
        drop(db);
        self.publish(view);
        out
    }

    /// Run a read-only operation against the writer's live state (used for
    /// accessors that need the `Database` itself rather than a view).
    fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.inner.writer.lock())
    }

    // ---- reads -----------------------------------------------------------------

    /// Pin the latest published state. The snapshot sees no writes
    /// committed after this call; acquiring it is lock-free in the fast
    /// path sense — an uncontended `RwLock` read plus an `Arc` clone, with
    /// no data copied and no interaction with the writer.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            view: Arc::clone(&self.inner.published.read()),
            slow_log: Arc::clone(&self.inner.slow_log),
            plan_cache: Arc::clone(&self.inner.plan_cache),
        }
    }

    /// One-shot query against the latest published snapshot (see
    /// [`Database::query`]).
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        self.snapshot().query(sql)
    }

    /// One-shot `?`-parameterized query against the latest published
    /// snapshot (see [`Database::query_params`]).
    pub fn query_params(&self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        self.snapshot().query_params(sql, params)
    }

    /// One-shot instrumented query against the latest published snapshot
    /// (see [`Database::query_with`]).
    pub fn query_with(&self, sql: &str, ctx: &ExecContext) -> DbResult<QueryResult> {
        self.snapshot().query_with(sql, ctx)
    }

    /// Fetch one instance by key from the latest published snapshot.
    pub fn get(&self, entity: &str, key: &[Value]) -> DbResult<Option<EntityData>> {
        self.snapshot().get(entity, key)
    }

    /// Render the optimized plan of a query (see [`Database::explain`]).
    pub fn explain(&self, sql: &str) -> DbResult<String> {
        self.snapshot().explain(sql)
    }

    // ---- writes ----------------------------------------------------------------

    /// Run several logical CRUD operations as one atomic transaction (see
    /// [`Database::transaction`]). Holds the writer lock for the closure
    /// and the WAL append; under `SyncPolicy::Always` the fsync happens
    /// *after* the lock is released, through the group committer, so
    /// concurrent transactions share fsyncs. The new state is published to
    /// readers only once durable.
    pub fn transaction<T>(
        &self,
        f: impl FnOnce(&mut crate::database::Tx<'_>) -> DbResult<T>,
    ) -> DbResult<T> {
        let defer = self.inner.group.is_some();
        let mut db = self.inner.writer.lock();
        let (out, lsn) = db.transaction_inner(f, defer)?;
        let view = self.capture(&db);
        drop(db);
        if lsn > 0 {
            if let Some(gc) = &self.inner.group {
                gc.wait_durable(lsn).map_err(DbError::from)?;
            }
        }
        self.publish(view);
        Ok(out)
    }

    /// Insert an entity instance (see [`Database::insert`]).
    pub fn insert(&self, entity: &str, data: &[(&str, Value)]) -> DbResult<()> {
        self.transaction(|tx| tx.insert(entity, data))
    }

    /// Insert with relationship targets (see [`Database::insert_linked`]).
    pub fn insert_linked(
        &self,
        entity: &str,
        data: &[(&str, Value)],
        links: &[(&str, Vec<Value>)],
    ) -> DbResult<()> {
        self.transaction(|tx| tx.insert_linked(entity, data, links))
    }

    /// Update attributes of one instance (see [`Database::update_entity`]).
    pub fn update_entity(
        &self,
        entity: &str,
        key: &[Value],
        changes: &[(&str, Value)],
    ) -> DbResult<()> {
        self.transaction(|tx| tx.update_entity(entity, key, changes))
    }

    /// Delete one instance entirely (see [`Database::delete_entity`]).
    pub fn delete_entity(&self, entity: &str, key: &[Value]) -> DbResult<()> {
        self.transaction(|tx| tx.delete_entity(entity, key))
    }

    /// Create a relationship instance (see [`Database::link`]).
    pub fn link(
        &self,
        rel: &str,
        from_key: &[Value],
        to_key: &[Value],
        attrs: &[(&str, Value)],
    ) -> DbResult<()> {
        self.transaction(|tx| tx.link(rel, from_key, to_key, attrs))
    }

    /// Remove a relationship instance (see [`Database::unlink`]).
    pub fn unlink(&self, rel: &str, from_key: &[Value], to_key: &[Value]) -> DbResult<()> {
        self.transaction(|tx| tx.unlink(rel, from_key, to_key))
    }

    /// Entity-centric erasure (see [`Database::erase`]).
    pub fn erase(&self, entity: &str, key: &[Value]) -> DbResult<crate::ErasureReport> {
        self.transaction(|tx| tx.erase(entity, key))
    }

    /// Execute an ERQL script (see [`Database::execute`]).
    pub fn execute(&self, script: &str) -> DbResult<()> {
        self.mutate(|db| db.execute(script))
    }

    /// Install a physical mapping (see [`Database::install`]).
    pub fn install(&self, mapping: erbium_mapping::Mapping) -> DbResult<()> {
        self.mutate(|db| db.install(mapping))
    }

    /// Install the fully normalized mapping (see
    /// [`Database::install_default`]).
    pub fn install_default(&self) -> DbResult<()> {
        self.mutate(|db| db.install_default())
    }

    /// Apply a schema-evolution operation (see [`Database::evolve`]).
    pub fn evolve(&self, op: erbium_evolve::EvolutionOp) -> DbResult<erbium_evolve::MigrationReport> {
        self.mutate(|db| db.evolve(op))
    }

    /// Migrate to a different physical mapping (see [`Database::remap`]).
    pub fn remap(&self, mapping: erbium_mapping::Mapping) -> DbResult<erbium_evolve::MigrationReport> {
        self.mutate(|db| db.remap(mapping))
    }

    /// Roll back to an earlier schema version (see
    /// [`Database::rollback_to`]).
    pub fn rollback_to(&self, version: u64) -> DbResult<erbium_evolve::MigrationReport> {
        self.mutate(|db| db.rollback_to(version))
    }

    /// ANALYZE (see [`Database::analyze`]). Readers pinned before this
    /// keep planning against the old statistics.
    pub fn analyze(&self) -> usize {
        self.mutate(|db| db.analyze())
    }

    /// Install (or clear) the access policy (see [`Database::set_policy`]).
    pub fn set_policy(&self, policy: Option<AccessPolicy>) {
        self.mutate(|db| db.set_policy(policy))
    }

    /// Checkpoint and truncate the WAL (see [`Database::checkpoint`]).
    pub fn checkpoint(&self) -> DbResult<Option<erbium_storage::CheckpointKind>> {
        self.mutate(|db| db.checkpoint())
    }

    // ---- introspection ---------------------------------------------------------

    /// Apply observability configuration (see
    /// [`Database::configure_observability`]).
    pub fn configure_observability(&self, opts: crate::ObservabilityOptions) -> DbResult<()> {
        self.with_db(|db| db.configure_observability(opts))
    }

    /// Snapshot of the slow-query log (see [`Database::slow_queries`]).
    pub fn slow_queries(&self) -> Vec<SlowQueryRecord> {
        self.inner.slow_log.lock().ring.iter().cloned().collect()
    }

    /// Prometheus-format rendering of all process-wide metrics.
    pub fn metrics_text(&self) -> String {
        erbium_obs::Registry::global().render()
    }

    /// Per-database plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.inner.plan_cache.stats()
    }

    /// Group-commit batching counters `(batches, commits)`, or `None` when
    /// group commit is inactive (in-memory database or a sync policy other
    /// than `Always`). `commits` transactions were made durable by
    /// `batches` fsyncs; `batches < commits` is batching at work.
    pub fn group_commit_stats(&self) -> Option<(u64, u64)> {
        self.inner.group.as_ref().map(|g| (g.batches(), g.commits()))
    }

    /// The catalog epoch of the latest published view.
    pub fn epoch(&self) -> u64 {
        self.inner.published.read().epoch
    }
}

/// A pinned, immutable view of the database at one commit point. Queries
/// on a snapshot run the identical code path as [`Database::query`] — same
/// plan cache, same slow-query log — against state that no concurrent
/// writer can touch. Cheap to clone; hold it as long as needed (the only
/// cost is keeping the pinned tables' memory alive).
#[derive(Clone)]
pub struct Snapshot {
    view: Arc<ReadView>,
    slow_log: Arc<Mutex<crate::database::SlowLog>>,
    plan_cache: Arc<PlanCache>,
}

impl Snapshot {
    pub(crate) fn ctx(&self) -> crate::database::QueryCtx<'_> {
        crate::database::QueryCtx {
            schema: &self.view.schema,
            catalog: &self.view.catalog,
            lowering: self.view.lowering.as_deref(),
            policy: self.view.policy.as_ref(),
            slow_log: &self.slow_log,
            plan_cache: &self.plan_cache,
            plan_generation: self.view.plan_generation,
        }
    }

    /// Run an ERQL SELECT against this pinned view (see
    /// [`Database::query`]).
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        self.ctx().run_query(sql, &[], &ExecContext::default(), false)
    }

    /// Run a `?`-parameterized ERQL SELECT against this pinned view (see
    /// [`Database::query_params`]).
    pub fn query_params(&self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        self.ctx().run_query(sql, params, &ExecContext::default(), false)
    }

    /// Instrumented query against this pinned view (see
    /// [`Database::query_with`]).
    pub fn query_with(&self, sql: &str, ctx: &ExecContext) -> DbResult<QueryResult> {
        self.ctx().run_query(sql, &[], ctx, true)
    }

    /// Fetch one instance by key from this pinned view.
    pub fn get(&self, entity: &str, key: &[Value]) -> DbResult<Option<EntityData>> {
        let lw = self.view.lowering.as_deref().ok_or(DbError::NotInstalled)?;
        Ok(EntityStore::new(lw).get(&self.view.catalog, entity, key)?)
    }

    /// Render the optimized plan of a query against this pinned view.
    pub fn explain(&self, sql: &str) -> DbResult<String> {
        let plan = self.ctx().plan(sql)?;
        Ok(erbium_engine::explain_with_estimates(&plan, &self.view.catalog))
    }

    /// The catalog epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.view.epoch
    }

    /// The pinned catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.view.catalog
    }

    /// The pinned E/R schema.
    pub fn schema(&self) -> &ErSchema {
        &self.view.schema
    }
}
