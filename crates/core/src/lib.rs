//! # erbium-core — ErbiumDB
//!
//! The entity-relationship database system of the CIDR'25 paper "Beyond
//! Relations: A Case for Elevating to the Entity-Relationship Abstraction",
//! reimplemented in Rust with an embedded relational substrate instead of
//! PostgreSQL.
//!
//! [`Database`] ties the layers together, mirroring the paper's Figure-3
//! architecture:
//!
//! * **DDL layer** — [`Database::execute`] accepts ERQL `CREATE ENTITY` /
//!   `CREATE RELATIONSHIP` statements, maintains the E/R schema and graph;
//! * **mapping** — [`Database::install`] chooses the physical mapping (a
//!   cover of the E/R graph), persisted in the catalog as JSON;
//! * **CRUD translation** — [`Database::insert`]/[`Database::get`]/
//!   [`Database::update_entity`]/[`Database::delete_entity`]/
//!   [`Database::link`] map entity-centric operations onto physical tables,
//!   atomically;
//! * **query translation** — [`Database::query`] parses ERQL, rewrites it
//!   against the installed mapping, optimizes, and executes;
//! * **schema evolution & versioning** — [`Database::evolve`],
//!   [`Database::remap`], [`Database::rollback_to`];
//! * **governance** — [`Database::erase`] (entity-centric GDPR-style
//!   deletion), [`governance::pii_inventory`], and tag-based
//!   [`governance::AccessPolicy`] enforcement on queries;
//! * **self-description** — [`Database::describe_schema`] renders the
//!   schema with its attached descriptions (the paper: descriptive text
//!   "can be automatically used, e.g., for creating API documentations").
//!
//! ```
//! use erbium_core::Database;
//! use erbium_storage::Value;
//!
//! let mut db = Database::new();
//! db.execute(
//!     "CREATE ENTITY person (id int KEY, name text TAG 'pii',
//!                            phone text MULTIVALUED);
//!      CREATE ENTITY instructor EXTENDS person (rank text NULLABLE);
//!      CREATE RELATIONSHIP mentors FROM person MANY TO instructor ONE;",
//! ).unwrap();
//! db.install_default().unwrap();
//! db.insert("instructor", &[
//!     ("id", Value::Int(1)),
//!     ("name", Value::str("ada")),
//!     ("phone", Value::Array(vec![Value::str("555")])),
//!     ("rank", Value::str("prof")),
//! ]).unwrap();
//! let result = db.query("SELECT p.name, p.rank FROM instructor p").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

pub mod connection;
pub mod database;
pub mod governance;
pub mod shared;

pub use connection::{PreparedStatement, SnapshotReads};
pub use database::{
    Database, DbError, DbResult, DurabilityOptions, ObservabilityOptions, QueryResult,
    SlowQueryRecord, Tx,
};
pub use governance::{AccessPolicy, ErasureReport};
pub use shared::{SharedDatabase, Snapshot};
pub use erbium_mapping::BulkEntity;
pub use erbium_storage::CheckpointKind;

// The transport-independent client API (see `erbium_model::api`): the
// [`Connection`] trait implemented by [`Database`], [`SharedDatabase`] and
// the wire client, re-exported so embedded users need only this crate.
pub use erbium_model::api::{CacheStats, Connection, ReadSession, Rows, TxOps};
pub use erbium_model::Value;

// Re-export the layer crates for downstream convenience.
pub use erbium_advisor as advisor;
pub use erbium_obs as obs;
pub use erbium_engine as engine;
pub use erbium_evolve as evolve;
pub use erbium_mapping as mapping;
pub use erbium_model as model;
pub use erbium_query as query;
pub use erbium_storage as storage;
