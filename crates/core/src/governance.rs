//! Data governance: PII inventory, entity-centric erasure reporting, and
//! tag-based access policies.
//!
//! The paper's second motivation: "compliance often also requires
//! fine-grained access control and ability to delete data of specific
//! individuals, both of which are fundamentally entity-centric operations
//! ... challenging to do in a verifiable manner for normalized relational
//! schemas where personal data may be spread across many tables". With the
//! E/R layer in charge of the physical design, it knows *exactly* which
//! tables hold an entity's data under the current mapping — erasure and
//! attribute-level policies fall out of the mapping contract.

use erbium_model::{AttrType, Attribute, ErSchema};
use erbium_query::{QExpr, SelectItem, SelectStmt};

/// Result of an entity-centric erasure.
#[derive(Debug, Clone, PartialEq)]
pub struct ErasureReport {
    pub entity: String,
    /// Physical operations (row inserts/updates/deletes) performed.
    pub physical_operations: usize,
    /// Net rows removed across all tables.
    pub rows_removed: usize,
}

/// One entry of the PII inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct PiiEntry {
    pub entity: String,
    pub attribute: String,
    pub tags: Vec<String>,
}

/// All attributes carrying governance tags, across the schema (nested
/// composite attributes included, dotted paths).
pub fn pii_inventory(schema: &ErSchema) -> Vec<PiiEntry> {
    let mut out = Vec::new();
    for e in schema.entities() {
        for a in &e.attributes {
            collect_tagged(&e.name, a, "", &mut out);
        }
    }
    for r in schema.relationships() {
        for a in &r.attributes {
            collect_tagged(&r.name, a, "", &mut out);
        }
    }
    out
}

fn collect_tagged(owner: &str, a: &Attribute, prefix: &str, out: &mut Vec<PiiEntry>) {
    let path = if prefix.is_empty() { a.name.clone() } else { format!("{prefix}.{}", a.name) };
    if !a.tags.is_empty() {
        out.push(PiiEntry {
            entity: owner.to_string(),
            attribute: path.clone(),
            tags: a.tags.clone(),
        });
    }
    if let AttrType::Composite(fields) = &a.ty {
        for f in fields {
            collect_tagged(owner, f, &path, out);
        }
    }
}

/// A tag-based access policy: queries may not reference attributes carrying
/// any of the forbidden tags.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPolicy {
    pub forbidden_tags: Vec<String>,
}

impl AccessPolicy {
    pub fn deny_tag(tag: impl Into<String>) -> AccessPolicy {
        AccessPolicy { forbidden_tags: vec![tag.into()] }
    }

    /// Check a statement against the policy. Wildcards are rejected
    /// whenever any attribute of a bound entity is forbidden.
    pub fn check(&self, schema: &ErSchema, stmt: &SelectStmt) -> Result<(), String> {
        let forbidden: Vec<(String, String)> = pii_inventory(schema)
            .into_iter()
            .filter(|p| p.tags.iter().any(|t| self.forbidden_tags.contains(t)))
            .map(|p| (p.entity, p.attribute))
            .collect();
        if forbidden.is_empty() {
            return Ok(());
        }
        // Attribute names (unqualified) that are off limits anywhere.
        let bad_names: Vec<&str> = forbidden
            .iter()
            .map(|(_, a)| a.split('.').next().expect("nonempty path"))
            .collect();
        let mut refs = Vec::new();
        collect_stmt_refs(stmt, &mut refs);
        for (has_wildcard, name) in refs {
            if has_wildcard {
                // `*` over an entity with forbidden attributes: check the
                // bound entities.
                let mut bindings = vec![&stmt.from];
                bindings.extend(stmt.joins.iter().map(|j| &j.table));
                for b in &bindings {
                    if let Ok(attrs) = schema.all_attributes(&b.entity) {
                        for a in attrs {
                            if forbidden.iter().any(|(_, f)| f == &a.name) {
                                return Err(format!(
                                    "wildcard exposes restricted attribute '{}'",
                                    a.name
                                ));
                            }
                        }
                    }
                }
            } else if bad_names.contains(&name.as_str()) {
                return Err(format!("attribute '{name}' is restricted"));
            }
        }
        Ok(())
    }
}

fn collect_stmt_refs(stmt: &SelectStmt, out: &mut Vec<(bool, String)>) {
    for item in &stmt.items {
        match item {
            SelectItem::Expr { expr, .. } => collect_expr_refs(expr, out),
            SelectItem::Nest { items, .. } => {
                for (e, _) in items {
                    collect_expr_refs(e, out);
                }
            }
            SelectItem::Wildcard { .. } => out.push((true, String::new())),
        }
    }
    if let Some(w) = &stmt.where_clause {
        collect_expr_refs(w, out);
    }
    for g in &stmt.group_by {
        collect_expr_refs(g, out);
    }
    for o in &stmt.order_by {
        collect_expr_refs(&o.expr, out);
    }
}

fn collect_expr_refs(e: &QExpr, out: &mut Vec<(bool, String)>) {
    match e {
        QExpr::Column { name, .. } => out.push((false, name.clone())),
        QExpr::Lit(_) | QExpr::Param(_) => {}
        QExpr::FieldAccess { base, field } => {
            collect_expr_refs(base, out);
            out.push((false, field.clone()));
        }
        QExpr::Binary { left, right, .. } => {
            collect_expr_refs(left, out);
            collect_expr_refs(right, out);
        }
        QExpr::Not(x) | QExpr::Neg(x) | QExpr::Unnest(x) => collect_expr_refs(x, out),
        QExpr::Agg { arg, .. } => {
            if let Some(a) = arg {
                collect_expr_refs(a, out);
            }
        }
        QExpr::Call { args, .. } => {
            for a in args {
                collect_expr_refs(a, out);
            }
        }
        QExpr::InList { expr, .. } => collect_expr_refs(expr, out),
        QExpr::IsNull(x) | QExpr::IsNotNull(x) => collect_expr_refs(x, out),
    }
}

/// Markdown rendering of the schema with descriptions and tags — the
/// automatic documentation the paper wants DDL descriptions to feed.
pub fn describe_schema(schema: &ErSchema) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Schema\n");
    for e in schema.entities() {
        let kind = if e.is_weak() { " *(weak entity set)*" } else { "" };
        let extends = e
            .parent
            .as_ref()
            .map(|p| format!(" extends **{p}**"))
            .unwrap_or_default();
        let _ = writeln!(out, "## {}{extends}{kind}\n", e.name);
        if let Some(d) = &e.description {
            let _ = writeln!(out, "{d}\n");
        }
        if let Some(w) = &e.weak {
            let _ = writeln!(
                out,
                "Owned by **{}** via *{}*.\n",
                w.owner, w.identifying_relationship
            );
        }
        for a in &e.attributes {
            let mut flags = Vec::new();
            if e.key.contains(&a.name) {
                flags.push("key".to_string());
            }
            if a.multi_valued {
                flags.push("multi-valued".to_string());
            }
            if a.optional {
                flags.push("nullable".to_string());
            }
            for t in &a.tags {
                flags.push(format!("tag:{t}"));
            }
            let flags =
                if flags.is_empty() { String::new() } else { format!(" [{}]", flags.join(", ")) };
            let desc = a.description.as_deref().map(|d| format!(" — {d}")).unwrap_or_default();
            let _ = writeln!(out, "- `{}`{flags}{desc}", a.name);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "# Relationships\n");
    for r in schema.relationships() {
        let card = |c: erbium_model::Cardinality| match c {
            erbium_model::Cardinality::One => "1",
            erbium_model::Cardinality::Many => "N",
        };
        let _ = writeln!(
            out,
            "- **{}**: {} ({}) — {} ({}){}",
            r.name,
            r.from.entity,
            card(r.from.cardinality),
            r.to.entity,
            card(r.to.cardinality),
            r.description.as_deref().map(|d| format!(" — {d}")).unwrap_or_default()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use erbium_model::{Attribute, EntitySet, ScalarType};

    fn schema() -> ErSchema {
        let mut s = ErSchema::new();
        s.add_entity(EntitySet::new(
            "user",
            vec![
                Attribute::scalar("id", ScalarType::Int),
                Attribute::scalar("email", ScalarType::Text).tagged("pii").tagged("contact"),
                Attribute::composite(
                    "profile",
                    vec![
                        Attribute::scalar("bio", ScalarType::Text),
                        Attribute::scalar("ssn", ScalarType::Text).tagged("pii"),
                    ],
                )
                .nullable(),
            ],
            vec!["id"],
        ))
        .unwrap();
        s
    }

    #[test]
    fn inventory_includes_nested_composite_paths() {
        let inv = pii_inventory(&schema());
        let paths: Vec<&str> = inv.iter().map(|p| p.attribute.as_str()).collect();
        assert!(paths.contains(&"email"));
        assert!(paths.contains(&"profile.ssn"), "{paths:?}");
        assert!(!paths.contains(&"profile.bio"));
        let email = inv.iter().find(|p| p.attribute == "email").unwrap();
        assert_eq!(email.tags, vec!["pii".to_string(), "contact".to_string()]);
    }

    #[test]
    fn policy_checks_multiple_tags() {
        let s = schema();
        let stmt = |sql: &str| match erbium_query::parse_single(sql).unwrap() {
            erbium_query::Statement::Select(sel) => sel,
            other => panic!("unexpected {other:?}"),
        };
        let contact_only = AccessPolicy::deny_tag("contact");
        assert!(contact_only.check(&s, &stmt("SELECT u.email FROM user u")).is_err());
        // ssn is pii but not contact.
        assert!(contact_only
            .check(&s, &stmt("SELECT u.profile.ssn FROM user u"))
            .is_ok());
        let pii = AccessPolicy::deny_tag("pii");
        assert!(pii.check(&s, &stmt("SELECT u.profile.ssn FROM user u")).is_err());
        assert!(pii.check(&s, &stmt("SELECT u.id FROM user u")).is_ok());
        // Referencing a restricted attribute in WHERE is also blocked.
        assert!(pii
            .check(&s, &stmt("SELECT u.id FROM user u WHERE u.email = 'x'"))
            .is_err());
    }

    #[test]
    fn describe_lists_weak_and_tags() {
        let mut s = schema();
        s.add_relationship(erbium_model::Relationship::new(
            "owns",
            erbium_model::RelEnd::many("device").total(),
            erbium_model::RelEnd::one("user"),
        ))
        .unwrap();
        s.add_entity(EntitySet::weak(
            "device",
            "user",
            "owns",
            vec![Attribute::scalar("serial", ScalarType::Text)],
            vec!["serial"],
        ))
        .unwrap();
        let doc = describe_schema(&s);
        assert!(doc.contains("*(weak entity set)*"));
        assert!(doc.contains("tag:pii"));
        assert!(doc.contains("Owned by **user**"));
        assert!(doc.contains("**owns**: device (N) — user (1)"));
    }
}
