//! [`Connection`] implementations for the embedded handles.
//!
//! The transport-independent client API lives in [`erbium_model::api`];
//! this module plugs [`Database`] (exclusive, single-caller) and
//! [`SharedDatabase`] (concurrent, clone-per-session) into it, so any
//! workload written against [`Connection`] runs unmodified embedded or —
//! through `erbium_client::RemoteClient` — over the wire.
//!
//! Session scoping: both impls keep an [`ExecContext`] *in the handle*
//! (for [`SharedDatabase`], outside its shared `Arc`), so
//! [`Connection::set_option`] configures exactly one session. Cloning a
//! `SharedDatabase` starts a fresh session that inherits the clone
//! source's options but diverges independently afterwards.

use crate::database::{Database, DbError, DbResult, QueryResult, Tx};
use crate::shared::{SharedDatabase, Snapshot};
use erbium_engine::ExecContext;
use erbium_model::api::{CacheStats, Connection, ReadSession, Rows, TxOps};
use erbium_model::Value;

impl From<QueryResult> for Rows {
    fn from(r: QueryResult) -> Rows {
        // `erbium_storage::Row` *is* `Vec<Value>`, so this drops only the
        // embedded-only metrics tree — no per-row conversion.
        Rows { columns: r.columns, rows: r.rows }
    }
}

/// A prepared `?`-template on an embedded connection. Holds the template
/// text; the compiled plan lives in the database's generation-keyed plan
/// cache, so executions skip parse + plan while the cache entry is valid
/// and transparently replan after DDL/ANALYZE invalidate it.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    pub(crate) sql: String,
}

impl PreparedStatement {
    /// The template text this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }
}

/// A pinned read session: a [`Snapshot`] paired with the session's
/// execution options at the time [`Connection::snapshot`] was called.
pub struct SnapshotReads {
    snap: Snapshot,
    ctx: ExecContext,
}

impl SnapshotReads {
    /// The underlying pinned [`Snapshot`].
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }
}

impl ReadSession for SnapshotReads {
    fn query(&mut self, sql: &str) -> DbResult<Rows> {
        self.snap.ctx().run_query(sql, &[], &self.ctx, false).map(Rows::from)
    }

    fn query_params(&mut self, sql: &str, params: &[Value]) -> DbResult<Rows> {
        self.snap.ctx().run_query(sql, params, &self.ctx, false).map(Rows::from)
    }
}

impl TxOps for Tx<'_> {
    fn insert(&mut self, entity: &str, data: &[(&str, Value)]) -> DbResult<()> {
        Tx::insert(self, entity, data)
    }

    fn insert_linked(
        &mut self,
        entity: &str,
        data: &[(&str, Value)],
        links: &[(&str, Vec<Value>)],
    ) -> DbResult<()> {
        Tx::insert_linked(self, entity, data, links)
    }

    fn update_entity(
        &mut self,
        entity: &str,
        key: &[Value],
        changes: &[(&str, Value)],
    ) -> DbResult<()> {
        Tx::update_entity(self, entity, key, changes)
    }

    fn delete_entity(&mut self, entity: &str, key: &[Value]) -> DbResult<()> {
        Tx::delete_entity(self, entity, key)
    }

    fn link(
        &mut self,
        rel: &str,
        from_key: &[Value],
        to_key: &[Value],
        attrs: &[(&str, Value)],
    ) -> DbResult<()> {
        Tx::link(self, rel, from_key, to_key, attrs)
    }

    fn unlink(&mut self, rel: &str, from_key: &[Value], to_key: &[Value]) -> DbResult<()> {
        Tx::unlink(self, rel, from_key, to_key)
    }
}

/// Apply one `SET`-style option to a session's [`ExecContext`]. Shared by
/// the embedded impls here and by the server's session handler, so the
/// option vocabulary is identical on every transport.
pub fn apply_session_option(ctx: &mut ExecContext, key: &str, value: &str) -> DbResult<()> {
    fn num(key: &str, value: &str) -> DbResult<usize> {
        match value.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(DbError::Parse(format!(
                "invalid value '{value}' for session option '{key}' (want a positive integer)"
            ))),
        }
    }
    fn flag(key: &str, value: &str) -> DbResult<bool> {
        match value {
            "true" | "on" | "1" => Ok(true),
            "false" | "off" | "0" => Ok(false),
            _ => Err(DbError::Parse(format!(
                "invalid value '{value}' for session option '{key}' (want on/off)"
            ))),
        }
    }
    match key {
        "threads" => ctx.threads = num(key, value)?.min(64),
        "batch_size" => ctx.batch_size = num(key, value)?,
        "morsel_size" => ctx.morsel_size = num(key, value)?,
        "fusion" => ctx.fusion = flag(key, value)?,
        "columnar" => ctx.columnar = flag(key, value)?,
        _ => {
            return Err(DbError::Parse(format!(
                "unknown session option '{key}' (supported: threads, batch_size, \
                 morsel_size, fusion, columnar)"
            )))
        }
    }
    Ok(())
}

fn stats_of(s: erbium_engine::PlanCacheStats) -> CacheStats {
    CacheStats { hits: s.hits, misses: s.misses }
}

impl Connection for Database {
    type Prepared = PreparedStatement;
    type Reads = SnapshotReads;

    fn execute(&mut self, script: &str) -> DbResult<()> {
        Database::execute(self, script)
    }

    fn query(&mut self, sql: &str) -> DbResult<Rows> {
        self.query_ctx().run_query(sql, &[], &self.session_ctx, false).map(Rows::from)
    }

    fn query_params(&mut self, sql: &str, params: &[Value]) -> DbResult<Rows> {
        self.query_ctx().run_query(sql, params, &self.session_ctx, false).map(Rows::from)
    }

    fn prepare(&mut self, sql: &str) -> DbResult<PreparedStatement> {
        // Compile now: surfaces parse/bind errors at prepare time and seeds
        // the plan cache, so the first execute is already a hit.
        self.query_ctx().plan(sql)?;
        Ok(PreparedStatement { sql: sql.to_string() })
    }

    fn execute_prepared(
        &mut self,
        stmt: &PreparedStatement,
        params: &[Value],
    ) -> DbResult<Rows> {
        self.query_ctx()
            .run_query(&stmt.sql, params, &self.session_ctx, false)
            .map(Rows::from)
    }

    fn transaction(&mut self, f: impl FnOnce(&mut dyn TxOps) -> DbResult<()>) -> DbResult<()> {
        Database::transaction(self, |tx| f(tx))
    }

    fn snapshot(&mut self) -> DbResult<SnapshotReads> {
        Ok(SnapshotReads { snap: Database::snapshot(self), ctx: self.session_ctx.clone() })
    }

    fn set_option(&mut self, key: &str, value: &str) -> DbResult<()> {
        apply_session_option(&mut self.session_ctx, key, value)
    }

    fn cache_stats(&mut self) -> DbResult<CacheStats> {
        Ok(stats_of(self.plan_cache_stats()))
    }
}

impl Connection for SharedDatabase {
    type Prepared = PreparedStatement;
    type Reads = SnapshotReads;

    fn execute(&mut self, script: &str) -> DbResult<()> {
        SharedDatabase::execute(self, script)
    }

    fn query(&mut self, sql: &str) -> DbResult<Rows> {
        let snap = SharedDatabase::snapshot(self);
        snap.ctx().run_query(sql, &[], &self.session_ctx, false).map(Rows::from)
    }

    fn query_params(&mut self, sql: &str, params: &[Value]) -> DbResult<Rows> {
        let snap = SharedDatabase::snapshot(self);
        snap.ctx().run_query(sql, params, &self.session_ctx, false).map(Rows::from)
    }

    fn prepare(&mut self, sql: &str) -> DbResult<PreparedStatement> {
        SharedDatabase::snapshot(self).ctx().plan(sql)?;
        Ok(PreparedStatement { sql: sql.to_string() })
    }

    fn execute_prepared(
        &mut self,
        stmt: &PreparedStatement,
        params: &[Value],
    ) -> DbResult<Rows> {
        let snap = SharedDatabase::snapshot(self);
        snap.ctx().run_query(&stmt.sql, params, &self.session_ctx, false).map(Rows::from)
    }

    fn transaction(&mut self, f: impl FnOnce(&mut dyn TxOps) -> DbResult<()>) -> DbResult<()> {
        SharedDatabase::transaction(self, |tx| f(tx))
    }

    fn snapshot(&mut self) -> DbResult<SnapshotReads> {
        Ok(SnapshotReads {
            snap: SharedDatabase::snapshot(self),
            ctx: self.session_ctx.clone(),
        })
    }

    fn set_option(&mut self, key: &str, value: &str) -> DbResult<()> {
        apply_session_option(&mut self.session_ctx, key, value)
    }

    fn cache_stats(&mut self) -> DbResult<CacheStats> {
        Ok(stats_of(self.plan_cache_stats()))
    }
}
