//! The `Database` facade.

use crate::governance::{AccessPolicy, ErasureReport};
use erbium_advisor::{Advisor, Recommendation, Workload};
use erbium_engine::{ExecContext, Plan};
use erbium_evolve::{EvolutionOp, MigrationReport, Migrator, VersionLog};
use erbium_mapping::{
    presets, EntityData, EntityStore, Lowering, Mapping, MappingError, QueryRewriter,
};
use erbium_model::{ErGraph, ErSchema};
use erbium_query::Statement;
use erbium_storage::{Catalog, Row, Transaction, Value};
use std::fmt;

/// Top-level error type of ErbiumDB.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    Parse(String),
    Model(erbium_model::ModelError),
    Mapping(MappingError),
    /// No mapping installed yet (DDL-only phase), or operation requires one.
    NotInstalled,
    /// A mapping is already installed; use `evolve`/`remap`.
    AlreadyInstalled,
    /// Query rejected by the active access policy.
    PolicyViolation(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Model(e) => write!(f, "schema error: {e}"),
            DbError::Mapping(e) => write!(f, "{e}"),
            DbError::NotInstalled => write!(f, "no physical mapping installed"),
            DbError::AlreadyInstalled => {
                write!(f, "a mapping is already installed; use evolve() or remap()")
            }
            DbError::PolicyViolation(m) => write!(f, "access policy violation: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<erbium_model::ModelError> for DbError {
    fn from(e: erbium_model::ModelError) -> Self {
        DbError::Model(e)
    }
}

impl From<MappingError> for DbError {
    fn from(e: MappingError) -> Self {
        DbError::Mapping(e)
    }
}

impl From<erbium_storage::StorageError> for DbError {
    fn from(e: erbium_storage::StorageError) -> Self {
        DbError::Mapping(MappingError::Storage(e))
    }
}

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

/// Result of a query: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    /// Per-operator runtime metrics (`EXPLAIN ANALYZE`-style). Populated
    /// only by [`Database::query_analyze`]; plain [`Database::query`] leaves
    /// it `None` so the common path pays nothing for instrumentation
    /// beyond the executor's atomic counters.
    pub metrics: Option<erbium_engine::ExecMetrics>,
}

impl QueryResult {
    /// Render as an aligned text table (for examples and the REPL-style
    /// binaries).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if s.len() > widths[i] {
                            widths[i] = s.len();
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for w in &widths {
            out.push_str(&"-".repeat(*w));
            out.push_str("  ");
        }
        out.push('\n');
        for row in rendered {
            for (i, v) in row.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", v, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// An ErbiumDB database instance.
pub struct Database {
    schema: ErSchema,
    catalog: Catalog,
    lowering: Option<Lowering>,
    policy: Option<AccessPolicy>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database: define the schema with DDL, then [`install`] a
    /// mapping.
    ///
    /// [`install`]: Database::install
    pub fn new() -> Database {
        Database { schema: ErSchema::new(), catalog: Catalog::new(), lowering: None, policy: None }
    }

    /// Create a database from a prebuilt schema.
    pub fn with_schema(schema: ErSchema) -> DbResult<Database> {
        schema.validate()?;
        Ok(Database { schema, catalog: Catalog::new(), lowering: None, policy: None })
    }

    /// Assemble a database around an already-installed, possibly populated
    /// catalog (bulk loaders like `erbium-datagen` build state at the
    /// mapping layer and wrap it afterwards).
    pub fn from_parts(catalog: Catalog, lowering: Lowering) -> Database {
        Database {
            schema: lowering.schema.clone(),
            catalog,
            lowering: Some(lowering),
            policy: None,
        }
    }

    // ---- DDL -------------------------------------------------------------------

    /// Execute a script of ERQL DDL statements (`;`-separated). SELECTs are
    /// rejected here — use [`Database::query`].
    pub fn execute(&mut self, script: &str) -> DbResult<()> {
        let stmts = erbium_query::parse(script).map_err(|e| DbError::Parse(e.to_string()))?;
        for stmt in stmts {
            match stmt {
                Statement::CreateEntity(ce) => {
                    self.require_not_installed()?;
                    self.schema.add_entity(ce.to_entity_set()?)?;
                }
                Statement::CreateRelationship(cr) => {
                    self.require_not_installed()?;
                    self.schema.add_relationship(cr.to_relationship()?)?;
                }
                Statement::DropEntity(name) => {
                    self.require_not_installed()?;
                    self.schema.remove_entity(&name)?;
                }
                Statement::DropRelationship(name) => {
                    self.require_not_installed()?;
                    self.schema.remove_relationship(&name)?;
                }
                Statement::Select(_) | Statement::Explain(_) => {
                    return Err(DbError::Parse(
                        "SELECT passed to execute(); use query()".into(),
                    ))
                }
            }
        }
        Ok(())
    }

    fn require_not_installed(&self) -> DbResult<()> {
        if self.lowering.is_some() {
            return Err(DbError::AlreadyInstalled);
        }
        Ok(())
    }

    /// The current E/R schema.
    pub fn schema(&self) -> &ErSchema {
        &self.schema
    }

    /// The E/R graph of the current schema.
    pub fn er_graph(&self) -> DbResult<ErGraph> {
        Ok(ErGraph::from_schema(&self.schema)?)
    }

    /// The installed mapping, if any.
    pub fn mapping(&self) -> Option<&Mapping> {
        self.lowering.as_ref().map(|lw| &lw.mapping)
    }

    /// Direct access to the physical catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The lowering (homes + physical specs), if installed.
    pub fn lowering(&self) -> DbResult<&Lowering> {
        self.lowering.as_ref().ok_or(DbError::NotInstalled)
    }

    // ---- mapping installation --------------------------------------------------

    /// Validate the schema and install a specific physical mapping.
    pub fn install(&mut self, mapping: Mapping) -> DbResult<()> {
        self.require_not_installed()?;
        self.schema.validate()?;
        let lw = Lowering::build(&self.schema, &mapping)?;
        lw.install(&mut self.catalog)?;
        let mut log = VersionLog::load(&self.catalog)?;
        log.record(&lw, format!("install mapping '{}'", mapping.name));
        log.save(&mut self.catalog)?;
        self.lowering = Some(lw);
        Ok(())
    }

    /// Install the fully normalized mapping (the sensible default).
    pub fn install_default(&mut self) -> DbResult<()> {
        let mapping = presets::normalized(&self.schema);
        self.install(mapping)
    }

    // ---- CRUD --------------------------------------------------------------------

    /// Insert an entity instance. `data` uses attribute names; multi-valued
    /// attributes take `Value::Array`, composite attributes `Value::Struct`.
    pub fn insert(&mut self, entity: &str, data: &[(&str, Value)]) -> DbResult<()> {
        self.insert_linked(entity, data, &[])
    }

    /// Insert with many-to-one relationship targets applied atomically
    /// (required when participation is total).
    pub fn insert_linked(
        &mut self,
        entity: &str,
        data: &[(&str, Value)],
        links: &[(&str, Vec<Value>)],
    ) -> DbResult<()> {
        let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
        let store = EntityStore::new(lw);
        let map: EntityData =
            data.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        let cat = &mut self.catalog;
        erbium_storage::Transaction::run(cat, |txn, cat| {
            store
                .insert(cat, txn, entity, &map, links)
                .map_err(storage_shim)
        })
        .map_err(unshim)?;
        Ok(())
    }

    /// Fetch one instance by key (all attributes at this entity's level).
    pub fn get(&self, entity: &str, key: &[Value]) -> DbResult<Option<EntityData>> {
        let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
        Ok(EntityStore::new(lw).get(&self.catalog, entity, key)?)
    }

    /// Update attributes of one instance.
    pub fn update_entity(
        &mut self,
        entity: &str,
        key: &[Value],
        changes: &[(&str, Value)],
    ) -> DbResult<()> {
        let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
        let store = EntityStore::new(lw);
        let map: EntityData =
            changes.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        Transaction::run(&mut self.catalog, |txn, cat| {
            store.update(cat, txn, entity, key, &map).map_err(storage_shim)
        })
        .map_err(unshim)?;
        Ok(())
    }

    /// Delete one instance entirely (hierarchy rows, multi-valued side
    /// rows, owned weak entities, relationship instances).
    pub fn delete_entity(&mut self, entity: &str, key: &[Value]) -> DbResult<()> {
        let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
        let store = EntityStore::new(lw);
        Transaction::run(&mut self.catalog, |txn, cat| {
            store.delete(cat, txn, entity, key).map_err(storage_shim)
        })
        .map_err(unshim)?;
        Ok(())
    }

    /// Create a relationship instance.
    pub fn link(&mut self, rel: &str, from_key: &[Value], to_key: &[Value]) -> DbResult<()> {
        self.link_with_attrs(rel, from_key, to_key, &[])
    }

    /// Create a relationship instance carrying relationship attributes.
    pub fn link_with_attrs(
        &mut self,
        rel: &str,
        from_key: &[Value],
        to_key: &[Value],
        attrs: &[(&str, Value)],
    ) -> DbResult<()> {
        let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
        let store = EntityStore::new(lw);
        let map: EntityData = attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        Transaction::run(&mut self.catalog, |txn, cat| {
            store.link(cat, txn, rel, from_key, to_key, &map).map_err(storage_shim)
        })
        .map_err(unshim)?;
        Ok(())
    }

    /// Remove a relationship instance.
    pub fn unlink(&mut self, rel: &str, from_key: &[Value], to_key: &[Value]) -> DbResult<()> {
        let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
        let store = EntityStore::new(lw);
        Transaction::run(&mut self.catalog, |txn, cat| {
            store.unlink(cat, txn, rel, from_key, to_key).map_err(storage_shim)
        })
        .map_err(unshim)?;
        Ok(())
    }

    // ---- statistics ---------------------------------------------------------------

    /// ANALYZE: gather fresh table statistics for every physical table (plain
    /// and factorized) in the catalog. The optimizer's cost-based passes
    /// (hash-join build-side selection, join reordering, selectivity-ranked
    /// filters) and the EXPLAIN estimate column activate only after this has
    /// run; subsequent CRUD writes mark the affected tables' statistics stale
    /// until the next `analyze()`. Returns the number of statistics entries
    /// gathered.
    pub fn analyze(&mut self) -> usize {
        self.catalog.analyze()
    }

    // ---- queries ------------------------------------------------------------------

    /// Run an ERQL SELECT against the logical schema. `EXPLAIN SELECT ...`
    /// returns the rendered physical plan as a one-column result instead.
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        if let Ok(Statement::Explain(sel)) = erbium_query::parse_single(sql) {
            let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
            if let Some(policy) = &self.policy {
                policy.check(&self.schema, &sel).map_err(DbError::PolicyViolation)?;
            }
            let rewriter = QueryRewriter::new(lw, &self.catalog);
            let plan = rewriter.rewrite_optimized(&sel)?;
            let rows = erbium_engine::explain_with_estimates(&plan, &self.catalog)
                .lines()
                .map(|l| vec![Value::str(l)])
                .collect();
            return Ok(QueryResult { columns: vec!["plan".into()], rows, metrics: None });
        }
        let plan = self.plan(sql)?;
        let mut stream =
            erbium_engine::execute_streaming(&plan, &self.catalog, &ExecContext::default())
                .map_err(|e| DbError::Mapping(MappingError::Engine(e)))?;
        let rows = stream.drain().map_err(|e| DbError::Mapping(MappingError::Engine(e)))?;
        Ok(QueryResult {
            columns: plan.fields.iter().map(|f| f.name.clone()).collect(),
            rows,
            metrics: None,
        })
    }

    /// Run an ERQL SELECT and additionally return the executed plan's
    /// per-operator metrics tree (rows in/out, batches, wall-clock time per
    /// operator) in [`QueryResult::metrics`] — the programmatic equivalent
    /// of `EXPLAIN ANALYZE`. When statistics have been gathered (see
    /// [`Database::analyze`]), each metrics node also carries the
    /// optimizer's row estimate, so its rendering shows estimate-vs-actual
    /// q-error per operator.
    pub fn query_analyze(&self, sql: &str, ctx: &ExecContext) -> DbResult<QueryResult> {
        let plan = self.plan(sql)?;
        let mut stream = erbium_engine::execute_streaming(&plan, &self.catalog, ctx)
            .map_err(|e| DbError::Mapping(MappingError::Engine(e)))?;
        let rows = stream.drain().map_err(|e| DbError::Mapping(MappingError::Engine(e)))?;
        let mut metrics = stream.metrics();
        erbium_engine::annotate_metrics(&mut metrics, &plan, &self.catalog);
        Ok(QueryResult {
            columns: plan.fields.iter().map(|f| f.name.clone()).collect(),
            rows,
            metrics: Some(metrics),
        })
    }

    /// Compile an ERQL SELECT to an optimized physical plan.
    pub fn plan(&self, sql: &str) -> DbResult<Plan> {
        let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
        let stmt =
            erbium_query::parse_single(sql).map_err(|e| DbError::Parse(e.to_string()))?;
        let Statement::Select(sel) = stmt else {
            return Err(DbError::Parse("query() expects a SELECT".into()));
        };
        if let Some(policy) = &self.policy {
            policy.check(&self.schema, &sel).map_err(DbError::PolicyViolation)?;
        }
        let rewriter = QueryRewriter::new(lw, &self.catalog);
        Ok(rewriter.rewrite_optimized(&sel)?)
    }

    /// Render the optimized physical plan of a query — shows how the same
    /// ERQL compiles differently under different mappings. After
    /// [`Database::analyze`] every node is annotated with the optimizer's
    /// row estimate (`[est=N]`).
    pub fn explain(&self, sql: &str) -> DbResult<String> {
        let plan = self.plan(sql)?;
        Ok(erbium_engine::explain_with_estimates(&plan, &self.catalog))
    }

    // ---- evolution -------------------------------------------------------------------

    /// Apply a logical schema-evolution operation, migrating the data and
    /// recording a new schema version.
    pub fn evolve(&mut self, op: EvolutionOp) -> DbResult<MigrationReport> {
        let lw = self.lowering.take().ok_or(DbError::NotInstalled)?;
        match Migrator::apply(&mut self.catalog, &lw, &op) {
            Ok((new_lw, report)) => {
                self.schema = new_lw.schema.clone();
                let mut log = VersionLog::load(&self.catalog)?;
                log.record(&new_lw, report.description.clone());
                log.save(&mut self.catalog)?;
                self.lowering = Some(new_lw);
                Ok(report)
            }
            Err(e) => {
                self.lowering = Some(lw);
                Err(e.into())
            }
        }
    }

    /// Migrate to a different physical mapping without any schema change.
    pub fn remap(&mut self, mapping: Mapping) -> DbResult<MigrationReport> {
        let lw = self.lowering.take().ok_or(DbError::NotInstalled)?;
        match Migrator::remap(&mut self.catalog, &lw, mapping) {
            Ok((new_lw, report)) => {
                let mut log = VersionLog::load(&self.catalog)?;
                log.record(&new_lw, report.description.clone());
                log.save(&mut self.catalog)?;
                self.lowering = Some(new_lw);
                Ok(report)
            }
            Err(e) => {
                self.lowering = Some(lw);
                Err(e.into())
            }
        }
    }

    /// The recorded schema versions.
    pub fn versions(&self) -> DbResult<VersionLog> {
        Ok(VersionLog::load(&self.catalog)?)
    }

    /// Roll back to an earlier schema version (appends a new version).
    pub fn rollback_to(&mut self, version: u64) -> DbResult<MigrationReport> {
        let lw = self.lowering.take().ok_or(DbError::NotInstalled)?;
        let mut log = VersionLog::load(&self.catalog)?;
        match log.rollback_to(&mut self.catalog, &lw, version) {
            Ok((new_lw, report)) => {
                self.schema = new_lw.schema.clone();
                self.lowering = Some(new_lw);
                Ok(report)
            }
            Err(e) => {
                self.lowering = Some(lw);
                Err(e.into())
            }
        }
    }

    /// Run the workload-aware advisor against the current data.
    pub fn advise(&self, workload: &Workload) -> DbResult<Recommendation> {
        let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
        let advisor = Advisor::from_database(&self.catalog, lw)?;
        Ok(advisor.recommend(workload)?)
    }

    // ---- governance --------------------------------------------------------------------

    /// Entity-centric erasure: remove one instance and every trace of it
    /// (all fragments, side tables, owned weak entities, relationship
    /// instances), reporting what was touched.
    pub fn erase(&mut self, entity: &str, key: &[Value]) -> DbResult<ErasureReport> {
        let lw = self.lowering.as_ref().ok_or(DbError::NotInstalled)?;
        let store = EntityStore::new(lw);
        let before: usize = self.catalog.total_rows();
        let mut ops = 0usize;
        Transaction::run(&mut self.catalog, |txn, cat| {
            store.delete(cat, txn, entity, key).map_err(storage_shim)?;
            ops = txn.len();
            Ok(())
        })
        .map_err(unshim)?;
        let after: usize = self.catalog.total_rows();
        Ok(ErasureReport {
            entity: entity.to_string(),
            physical_operations: ops,
            rows_removed: before.saturating_sub(after),
        })
    }

    /// Install (or clear) the tag-based access policy applied to queries.
    pub fn set_policy(&mut self, policy: Option<AccessPolicy>) {
        self.policy = policy;
    }

    /// Markdown description of the schema, generated from the attached
    /// `DESCRIPTION` texts and governance tags.
    pub fn describe_schema(&self) -> String {
        crate::governance::describe_schema(&self.schema)
    }
}

/// `Transaction::run` expects `StorageResult`; tunnel `MappingError`
/// through a storage `Internal` error and restore it on the way out.
fn storage_shim(e: MappingError) -> erbium_storage::StorageError {
    erbium_storage::StorageError::Internal(format!("__mapping__:{e}"))
}

fn unshim(e: erbium_storage::StorageError) -> DbError {
    match &e {
        erbium_storage::StorageError::Internal(m) if m.starts_with("__mapping__:") => {
            DbError::Mapping(MappingError::Unsupported(
                m.trim_start_matches("__mapping__:").to_string(),
            ))
        }
        _ => DbError::Mapping(MappingError::Storage(e)),
    }
}
