//! The `Database` facade.

use crate::governance::{AccessPolicy, ErasureReport};
use erbium_advisor::{Advisor, Recommendation, Workload};
use erbium_engine::{ExecContext, Plan, PlanCache, PlanCacheStats};
use erbium_evolve::{EvolutionOp, MigrationReport, Migrator, VersionLog};
use erbium_mapping::{
    lower::{META_MAPPING, META_SCHEMA},
    presets, BulkEntity, EntityData, EntityStore, Lowering, Mapping, QueryRewriter,
};
use erbium_model::{ErGraph, ErSchema};
use erbium_query::Statement;
use erbium_storage::{
    snapshot, Catalog, CheckpointKind, Row, SyncPolicy, Transaction, Value, Wal, WAL_FILE,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Top-level error type of ErbiumDB — the unified, wire-encodable
/// [`erbium_model::DbError`] with stable numeric codes. Every layer error
/// (`StorageError`, `EngineError`, `ParseError`, `MappingError`,
/// `ModelError`) converts into it via `From`, so the embedded API and the
/// ERSP protocol report identical codes.
pub use erbium_model::{DbError, DbResult};

/// Result of a query: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    /// Per-operator runtime metrics (`EXPLAIN ANALYZE`-style). Populated
    /// only by [`Database::query_with`]; plain [`Database::query`] leaves
    /// it `None` so the common path pays nothing for instrumentation
    /// beyond the executor's atomic counters.
    pub metrics: Option<erbium_engine::ExecMetrics>,
}

impl QueryResult {
    /// Render as an aligned text table (for examples and the REPL-style
    /// binaries).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if s.len() > widths[i] {
                            widths[i] = s.len();
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for w in &widths {
            out.push_str(&"-".repeat(*w));
            out.push_str("  ");
        }
        out.push('\n');
        for row in rendered {
            for (i, v) in row.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", v, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// How a durable database syncs and checkpoints. See
/// [`Database::open_with`].
#[derive(Debug, Clone, Default)]
pub struct DurabilityOptions {
    /// WAL fsync policy (see [`SyncPolicy`]); defaults to `EveryN(32)`.
    pub sync: SyncPolicy,
    /// Leader dally window for WAL group commit, used only by
    /// [`crate::SharedDatabase`] under `SyncPolicy::Always`: the first
    /// committer to reach the fsync waits this long so concurrent commits
    /// can join its batch. `Duration::ZERO` (the default) adds no
    /// artificial latency — commits that overlap a running `fdatasync`
    /// still share the next one.
    pub group_commit_window: Duration,
    /// Frame budget of the row-page buffer pool: the number of 64 KiB row
    /// pages kept resident before cold pages spill to `pages.erb` in the
    /// database directory. `None` (the default) is unbounded — every page
    /// stays resident, exactly the pre-pool behavior. Query results are
    /// identical either way; only memory residency changes.
    pub buffer_pool_frames: Option<usize>,
}

/// Observability configuration, applied with
/// [`Database::configure_observability`]. Mirrors the
/// [`DurabilityOptions`] style: a plain struct of knobs with sensible
/// zero-cost defaults (no slow-query capture, tracing off).
#[derive(Debug, Clone, Default)]
pub struct ObservabilityOptions {
    /// Queries running at least this long are recorded in the slow-query
    /// log with their SQL, plan digest, metrics tree and q-error.
    /// `None` disables capture. `Some(Duration::ZERO)` records every query
    /// (useful for offline workload analysis feeding the advisor).
    pub slow_query_threshold: Option<Duration>,
    /// Enable structured tracing spans (process-wide; see
    /// [`erbium_obs::trace`]). Off by default — a disabled span costs one
    /// relaxed atomic load.
    pub tracing: bool,
    /// Stream finished spans to this JSONL file (one object per line) in
    /// addition to the in-memory ring buffer. Requires `tracing: true` to
    /// produce anything.
    pub trace_file: Option<PathBuf>,
}

/// One slow-query log entry (see [`Database::slow_queries`]).
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    /// Tracing query id — correlates with span records in the trace sink.
    pub query_id: u64,
    /// The ERQL text as submitted.
    pub sql: String,
    /// Stable digest of the optimized physical plan's rendering: queries
    /// with the same digest executed the same plan shape, so a workload
    /// analysis can group records by plan rather than by SQL string.
    pub plan_digest: u64,
    /// End-to-end latency (parse → plan → optimize → execute → drain).
    pub elapsed: Duration,
    /// Per-operator metrics tree, annotated with optimizer estimates when
    /// statistics were available.
    pub metrics: erbium_engine::ExecMetrics,
    /// Worst estimate-vs-actual q-error across the plan (`None` when no
    /// node carried an estimate — e.g. stats were never gathered).
    pub max_q_error: Option<f64>,
}

/// Interior-mutable slow-query state. `run_query` takes `&self`, so the
/// ring lives behind a mutex; the lock is touched once per query (a load
/// of the threshold) and only contended when records are actually pushed.
/// Shared (`Arc`) so snapshots record offenders into the same ring as the
/// database they were pinned from.
pub(crate) struct SlowLog {
    pub(crate) threshold: Option<Duration>,
    pub(crate) ring: VecDeque<SlowQueryRecord>,
}

/// Retained slow-query records (oldest evicted first).
const SLOW_LOG_CAP: usize = 128;

/// Durable-state handles attached to an opened database.
pub(crate) struct Durability {
    pub(crate) dir: PathBuf,
    pub(crate) wal: Wal,
}

// ---- process-wide query metrics --------------------------------------------

fn m_queries() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_queries_total", "Queries executed (EXPLAIN excluded)")
    })
}

fn m_query_seconds() -> &'static erbium_obs::Histogram {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Histogram>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .histogram("erbium_query_seconds", "End-to-end query latency")
    })
}

fn m_rows_scanned() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_rows_scanned_total",
            "Rows produced by leaf scan operators across all queries",
        )
    })
}

fn m_rows_emitted() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_rows_emitted_total", "Result rows returned to callers")
    })
}

fn m_ingest_rows() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_ingest_rows_total", "Entity instances loaded through the bulk path")
    })
}

fn m_slow_queries() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_slow_queries_total", "Queries recorded in the slow-query log")
    })
}

/// An ErbiumDB database instance.
pub struct Database {
    pub(crate) schema: ErSchema,
    pub(crate) catalog: Catalog,
    /// `Arc` so a pinned [`crate::Snapshot`] keeps the lowering it was
    /// planned against alive while the writer remaps underneath it.
    pub(crate) lowering: Option<Arc<Lowering>>,
    pub(crate) policy: Option<AccessPolicy>,
    /// `Some` for databases opened from a directory ([`Database::open`]);
    /// `None` for in-memory instances — the CRUD paths then skip WAL
    /// logging entirely, so the in-memory fast path pays nothing.
    pub(crate) durability: Option<Durability>,
    /// Slow-query capture state (threshold + bounded ring of records).
    pub(crate) slow_log: Arc<Mutex<SlowLog>>,
    /// Cache of optimized plans, keyed on (generation, normalized SQL);
    /// shared with snapshots, invalidated on anything that changes plan
    /// shape (install/evolve/remap/rollback/ANALYZE/policy change).
    pub(crate) plan_cache: Arc<PlanCache>,
    /// Group-commit dally window carried from [`DurabilityOptions`] to
    /// [`Database::into_shared`].
    pub(crate) group_commit_window: Duration,
    /// Session-scoped execution overrides, set through
    /// [`erbium_model::Connection::set_option`]. Defaults apply until the
    /// session issues a `SET`; never shared with other sessions.
    pub(crate) session_ctx: ExecContext,
}

/// Convert a parsed ERQL literal (from a `COPY ... VALUES` tuple) into a
/// storage value.
fn literal_value(lit: &erbium_query::Literal) -> Value {
    match lit {
        erbium_query::Literal::Null => Value::Null,
        erbium_query::Literal::Bool(b) => Value::Bool(*b),
        erbium_query::Literal::Int(i) => Value::Int(*i),
        erbium_query::Literal::Float(x) => Value::Float(*x),
        erbium_query::Literal::Str(s) => Value::str(s),
    }
}

fn new_slow_log() -> Arc<Mutex<SlowLog>> {
    Arc::new(Mutex::new(SlowLog { threshold: None, ring: VecDeque::new() }))
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database: define the schema with DDL, then [`install`] a
    /// mapping.
    ///
    /// [`install`]: Database::install
    pub fn new() -> Database {
        Database {
            schema: ErSchema::new(),
            catalog: Catalog::new(),
            lowering: None,
            policy: None,
            durability: None,
            slow_log: new_slow_log(),
            plan_cache: Arc::new(PlanCache::default()),
            group_commit_window: Duration::ZERO,
            session_ctx: ExecContext::default(),
        }
    }

    /// Create a database from a prebuilt schema.
    pub fn with_schema(schema: ErSchema) -> DbResult<Database> {
        schema.validate()?;
        Ok(Database {
            schema,
            catalog: Catalog::new(),
            lowering: None,
            policy: None,
            durability: None,
            slow_log: new_slow_log(),
            plan_cache: Arc::new(PlanCache::default()),
            group_commit_window: Duration::ZERO,
            session_ctx: ExecContext::default(),
        })
    }

    /// Assemble a database around an already-installed, possibly populated
    /// catalog (bulk loaders like `erbium-datagen` build state at the
    /// mapping layer and wrap it afterwards).
    pub fn from_parts(catalog: Catalog, lowering: Lowering) -> Database {
        Database {
            schema: lowering.schema.clone(),
            catalog,
            lowering: Some(Arc::new(lowering)),
            policy: None,
            durability: None,
            slow_log: new_slow_log(),
            plan_cache: Arc::new(PlanCache::default()),
            group_commit_window: Duration::ZERO,
            session_ctx: ExecContext::default(),
        }
    }

    // ---- durability ------------------------------------------------------------

    /// Open (or create) a durable database rooted at directory `dir` with
    /// default [`DurabilityOptions`]. Recovery runs automatically: the
    /// latest checkpoint snapshot is loaded and the committed WAL suffix is
    /// replayed on top of it; an installed mapping is rebuilt from the
    /// persisted catalog metadata.
    pub fn open(dir: impl AsRef<Path>) -> DbResult<Database> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// [`Database::open`] with explicit durability options.
    pub fn open_with(dir: impl AsRef<Path>, opts: DurabilityOptions) -> DbResult<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| {
            DbError::from(erbium_storage::StorageError::Io(format!(
                "create database directory {}: {e}",
                dir.display()
            )))
        })?;
        let pool = match opts.buffer_pool_frames {
            Some(frames) => erbium_storage::BufferPool::bounded(frames, dir.join("pages.erb")),
            None => erbium_storage::BufferPool::unbounded(),
        };
        let recovered = Catalog::recover_with(&dir, pool)?;
        let catalog = recovered.catalog;

        // Rebuild the installed mapping (if any) from the persisted catalog
        // metadata: the typed E/R schema plus the mapping JSON. `build` is
        // pure — the physical tables already exist in the recovered catalog.
        let lowering = match (
            catalog.get_meta_typed::<ErSchema>(META_SCHEMA)?,
            catalog.get_meta(META_MAPPING),
        ) {
            (Some(schema), Some(mapping_json)) => {
                let mapping = Mapping::from_json(mapping_json).map_err(|e| {
                    DbError::from(erbium_storage::StorageError::Metadata(format!(
                        "persisted mapping does not parse: {e}"
                    )))
                })?;
                Some(Lowering::build(&schema, &mapping)?)
            }
            _ => None,
        };
        let schema = lowering.as_ref().map(|lw| lw.schema.clone()).unwrap_or_default();

        let wal = Wal::open(dir.join(WAL_FILE), opts.sync, recovered.next_txn)?;
        Ok(Database {
            schema,
            catalog,
            lowering: lowering.map(Arc::new),
            policy: None,
            durability: Some(Durability { dir, wal }),
            slow_log: new_slow_log(),
            plan_cache: Arc::new(PlanCache::default()),
            group_commit_window: opts.group_commit_window,
            session_ctx: ExecContext::default(),
        })
    }

    /// Is this database backed by a WAL + checkpoint directory?
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Checkpoint the catalog and truncate the WAL. Incremental: only
    /// tables dirtied since the previous checkpoint are written, as an
    /// `ERBSNAP2` delta chained onto the base snapshot; a full snapshot is
    /// written instead (compacting the chain away) after structural
    /// changes, when most of the catalog is dirty, or when the chain grows
    /// past [`erbium_storage::MAX_DELTA_CHAIN`]. A crash at any byte
    /// leaves either the old chain plus the full log, or the new chain —
    /// never a hybrid. Returns what was written (`None` for in-memory
    /// databases, where this is a no-op).
    pub fn checkpoint(&mut self) -> DbResult<Option<CheckpointKind>> {
        let Some(d) = self.durability.as_mut() else { return Ok(None) };
        d.wal.sync()?;
        let kind = snapshot::write_checkpoint(&mut self.catalog, d.wal.next_txn_id(), &d.dir)?;
        d.wal.truncate()?;
        // Checkpointing walked every dirty table (faulting pages in for
        // encoding); claw residency back under the frame budget before
        // returning to the workload.
        self.catalog.reclaim_pages();
        Ok(Some(kind))
    }

    /// Live counters of the row-page buffer pool this database's tables
    /// are bound to (residency, budget, hit/miss/eviction totals).
    pub fn buffer_pool_stats(&self) -> erbium_storage::BufferPoolStats {
        self.catalog.pool().stats()
    }

    /// Heavyweight structural operations (install / evolve / remap /
    /// rollback) rewrite whole tables outside the WAL, so they are made
    /// durable by checkpointing instead of logging.
    fn checkpoint_after_structural_change(&mut self) -> DbResult<()> {
        self.checkpoint().map(|_| ())
    }

    // ---- DDL -------------------------------------------------------------------

    /// Execute a script of ERQL statements (`;`-separated). DDL statements
    /// mutate the schema; SELECT / EXPLAIN statements run through the
    /// plan-cached query path (results are discarded — use
    /// [`Database::query`] to get rows back). The script is split at lexed
    /// statement boundaries so each SELECT keeps its own source text,
    /// which is what the plan cache keys on: re-executing a script hits
    /// the cache instead of replanning every statement.
    pub fn execute(&mut self, script: &str) -> DbResult<()> {
        let pieces =
            erbium_query::split_statements(script).map_err(|e| DbError::Parse(e.to_string()))?;
        for sql in pieces {
            let stmt =
                erbium_query::parse_single(sql).map_err(|e| DbError::Parse(e.to_string()))?;
            match stmt {
                Statement::CreateEntity(ce) => {
                    self.require_not_installed()?;
                    self.schema.add_entity(ce.to_entity_set()?)?;
                    self.plan_cache.invalidate();
                }
                Statement::CreateRelationship(cr) => {
                    self.require_not_installed()?;
                    self.schema.add_relationship(cr.to_relationship()?)?;
                    self.plan_cache.invalidate();
                }
                Statement::DropEntity(name) => {
                    self.require_not_installed()?;
                    self.schema.remove_entity(&name)?;
                    self.plan_cache.invalidate();
                }
                Statement::DropRelationship(name) => {
                    self.require_not_installed()?;
                    self.schema.remove_relationship(&name)?;
                    self.plan_cache.invalidate();
                }
                Statement::InstallMapping => {
                    self.install_default()?;
                }
                Statement::Copy(c) => {
                    let batch: Vec<BulkEntity> = c
                        .rows
                        .iter()
                        .map(|tuple| BulkEntity {
                            data: c
                                .columns
                                .iter()
                                .zip(tuple)
                                .map(|(name, lit)| (name.clone(), literal_value(lit)))
                                .collect(),
                            links: Vec::new(),
                        })
                        .collect();
                    self.copy_from(&c.entity, &batch)?;
                }
                Statement::Select(_) | Statement::Explain(_) => {
                    self.query_ctx().run_query(sql, &[], &ExecContext::default(), false)?;
                }
            }
        }
        Ok(())
    }

    fn require_not_installed(&self) -> DbResult<()> {
        if self.lowering.is_some() {
            return Err(DbError::AlreadyInstalled);
        }
        Ok(())
    }

    /// The current E/R schema.
    pub fn schema(&self) -> &ErSchema {
        &self.schema
    }

    /// The E/R graph of the current schema.
    pub fn er_graph(&self) -> DbResult<ErGraph> {
        Ok(ErGraph::from_schema(&self.schema)?)
    }

    /// The installed mapping, if any.
    pub fn mapping(&self) -> Option<&Mapping> {
        self.lowering.as_ref().map(|lw| &lw.mapping)
    }

    /// Direct access to the physical catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The lowering (homes + physical specs), if installed.
    pub fn lowering(&self) -> DbResult<&Lowering> {
        self.lowering.as_deref().ok_or(DbError::NotInstalled)
    }

    // ---- mapping installation --------------------------------------------------

    /// Validate the schema and install a specific physical mapping.
    pub fn install(&mut self, mapping: Mapping) -> DbResult<()> {
        self.require_not_installed()?;
        self.schema.validate()?;
        let lw = Lowering::build(&self.schema, &mapping)?;
        lw.install(&mut self.catalog)?;
        let mut log = VersionLog::load(&self.catalog)?;
        log.record(&lw, format!("install mapping '{}'", mapping.name));
        log.save(&mut self.catalog)?;
        self.lowering = Some(Arc::new(lw));
        self.plan_cache.invalidate();
        self.checkpoint_after_structural_change()?;
        Ok(())
    }

    /// Install the fully normalized mapping (the sensible default).
    pub fn install_default(&mut self) -> DbResult<()> {
        let mapping = presets::normalized(&self.schema);
        self.install(mapping)
    }

    // ---- transactions ------------------------------------------------------------

    /// Run several logical CRUD operations as one atomic transaction.
    ///
    /// The closure receives a [`Tx`] handle exposing the full CRUD surface
    /// (insert / update / delete / link / unlink / erase). If the closure
    /// returns `Ok`, every change is kept and — for durable databases — the
    /// whole group is written to the WAL under a single Begin/Commit pair,
    /// so recovery replays it all-or-nothing. If the closure returns `Err`
    /// (or any single operation fails), every change made so far is rolled
    /// back, including secondary indexes and factorized link structures,
    /// and nothing reaches the log.
    ///
    /// ```no_run
    /// # use erbium_core::Database;
    /// # use erbium_storage::Value;
    /// # let mut db = Database::new();
    /// db.transaction(|tx| {
    ///     tx.insert("Person", &[("name", Value::str("ada"))])?;
    ///     tx.insert("Person", &[("name", Value::str("lin"))])?;
    ///     tx.link("Knows", &[Value::str("ada")], &[Value::str("lin")], &[])
    /// })?;
    /// # Ok::<(), erbium_core::DbError>(())
    /// ```
    pub fn transaction<T>(
        &mut self,
        f: impl FnOnce(&mut Tx<'_>) -> DbResult<T>,
    ) -> DbResult<T> {
        self.transaction_inner(f, false).map(|(out, _)| out)
    }

    /// [`Database::transaction`] plus the machinery shared mode needs:
    /// every transaction commits under a fresh catalog epoch (so slot
    /// epoch stamps order writes against pinned snapshots), and with
    /// `defer_sync` the WAL group is appended but *not* fsynced — the
    /// returned LSN is handed to a [`erbium_storage::GroupCommitter`]
    /// after the writer lock is released, so concurrent committers share
    /// fsyncs. An LSN of 0 means there is nothing to wait for (in-memory
    /// database, empty transaction, or `defer_sync == false`). A failed
    /// WAL append still rolls back here, under the writer's exclusive
    /// borrow.
    pub(crate) fn transaction_inner<T>(
        &mut self,
        f: impl FnOnce(&mut Tx<'_>) -> DbResult<T>,
        defer_sync: bool,
    ) -> DbResult<(T, u64)> {
        let lw = Arc::clone(self.lowering.as_ref().ok_or(DbError::NotInstalled)?);
        let durable = self.durability.is_some();
        self.catalog.advance_epoch();
        // Advance the pool's write clock: pages dirtied by this transaction
        // stamp the new clock value, which stays above the write-back
        // barrier until the transaction ends — eviction can never spill
        // uncommitted state (see `erbium_storage::buffer_pool`).
        self.catalog.pool().note_txn_start();
        let mut tx = Tx {
            store: EntityStore::new(&lw),
            cat: &mut self.catalog,
            txn: if durable { Transaction::logged() } else { Transaction::new() },
        };
        match f(&mut tx) {
            Ok(out) => {
                let Tx { cat, mut txn, .. } = tx;
                let mut lsn = 0;
                if let Some(d) = self.durability.as_mut() {
                    let flushed = if defer_sync {
                        txn.flush_to_wal_deferred(&mut d.wal).map(|(_, l)| l)
                    } else {
                        txn.flush_to_wal(&mut d.wal).map(|_| 0)
                    };
                    match flushed {
                        Ok(l) => lsn = l,
                        Err(e) => {
                            txn.rollback(cat).map_err(|re| {
                                DbError::from(erbium_storage::StorageError::Internal(format!(
                                    "rollback failed: {re} (original error: {e})"
                                )))
                            })?;
                            return Err(e.into());
                        }
                    }
                }
                txn.commit();
                // The group is in the WAL (or this is an in-memory
                // database): raise the write-back barrier so this
                // transaction's pages become evictable, then shed any
                // residency overshoot.
                cat.pool().note_txn_end();
                cat.reclaim_pages();
                Ok((out, lsn))
            }
            Err(e) => {
                let Tx { cat, txn, .. } = tx;
                txn.rollback(cat).map_err(|re| {
                    DbError::from(erbium_storage::StorageError::Internal(format!(
                        "rollback failed: {re} (original error: {e})"
                    )))
                })?;
                // The undo log restored committed state, so the touched
                // pages are clean to write back again.
                cat.pool().note_txn_end();
                cat.reclaim_pages();
                Err(e)
            }
        }
    }

    // ---- CRUD --------------------------------------------------------------------

    /// Insert an entity instance. `data` uses attribute names; multi-valued
    /// attributes take `Value::Array`, composite attributes `Value::Struct`.
    pub fn insert(&mut self, entity: &str, data: &[(&str, Value)]) -> DbResult<()> {
        self.transaction(|tx| tx.insert(entity, data))
    }

    /// Insert with many-to-one relationship targets applied atomically
    /// (required when participation is total).
    pub fn insert_linked(
        &mut self,
        entity: &str,
        data: &[(&str, Value)],
        links: &[(&str, Vec<Value>)],
    ) -> DbResult<()> {
        self.transaction(|tx| tx.insert_linked(entity, data, links))
    }

    /// Bulk-load a batch of one entity's instances — the fast path behind
    /// `COPY ... FROM`. The whole batch commits as **one** transaction and
    /// one WAL commit group carrying a compact record per touched table;
    /// column vectors are extended wholesale and secondary indexes updated
    /// in a single pass per table. Tables already under `ANALYZE` coverage
    /// get their statistics recomputed once at the end of the batch (and
    /// the plan cache invalidated exactly once); tables never analyzed
    /// stay stats-less, preserving the no-stats-until-`ANALYZE` contract.
    /// Returns the number of instances loaded.
    pub fn copy_from(&mut self, entity: &str, batch: &[BulkEntity]) -> DbResult<usize> {
        if batch.is_empty() {
            return Ok(0);
        }
        let touched = self.transaction(|tx| tx.copy_from(entity, batch))?;
        if self.catalog.reanalyze_tables(&touched) > 0 {
            self.plan_cache.invalidate();
        }
        m_ingest_rows().add(batch.len() as u64);
        Ok(batch.len())
    }

    /// Fetch one instance by key (all attributes at this entity's level).
    pub fn get(&self, entity: &str, key: &[Value]) -> DbResult<Option<EntityData>> {
        let lw = self.lowering.as_deref().ok_or(DbError::NotInstalled)?;
        Ok(EntityStore::new(lw).get(&self.catalog, entity, key)?)
    }

    /// Update attributes of one instance.
    pub fn update_entity(
        &mut self,
        entity: &str,
        key: &[Value],
        changes: &[(&str, Value)],
    ) -> DbResult<()> {
        self.transaction(|tx| tx.update_entity(entity, key, changes))
    }

    /// Delete one instance entirely (hierarchy rows, multi-valued side
    /// rows, owned weak entities, relationship instances).
    pub fn delete_entity(&mut self, entity: &str, key: &[Value]) -> DbResult<()> {
        self.transaction(|tx| tx.delete_entity(entity, key))
    }

    /// Create a relationship instance, optionally carrying relationship
    /// attributes (`&[]` for none).
    pub fn link(
        &mut self,
        rel: &str,
        from_key: &[Value],
        to_key: &[Value],
        attrs: &[(&str, Value)],
    ) -> DbResult<()> {
        self.transaction(|tx| tx.link(rel, from_key, to_key, attrs))
    }

    /// Remove a relationship instance.
    pub fn unlink(&mut self, rel: &str, from_key: &[Value], to_key: &[Value]) -> DbResult<()> {
        self.transaction(|tx| tx.unlink(rel, from_key, to_key))
    }

    // ---- statistics ---------------------------------------------------------------

    /// ANALYZE: gather fresh table statistics for every physical table (plain
    /// and factorized) in the catalog. The optimizer's cost-based passes
    /// (hash-join build-side selection, join reordering, selectivity-ranked
    /// filters) and the EXPLAIN estimate column activate only after this has
    /// run; subsequent CRUD writes mark the affected tables' statistics stale
    /// until the next `analyze()`. Returns the number of statistics entries
    /// gathered.
    pub fn analyze(&mut self) -> usize {
        let gathered = self.catalog.analyze();
        // Fresh statistics can change plan shape (join order, build side),
        // so cached plans are stale the useful way: replan once, re-cache.
        self.plan_cache.invalidate();
        gathered
    }

    // ---- queries ------------------------------------------------------------------

    /// The borrowed query context of this database's current state (see
    /// [`QueryCtx`]). The plan-cache generation is captured here, so a
    /// context assembled before an invalidation can't serve plans cached
    /// after it (and vice versa).
    pub(crate) fn query_ctx(&self) -> QueryCtx<'_> {
        QueryCtx {
            schema: &self.schema,
            catalog: &self.catalog,
            lowering: self.lowering.as_deref(),
            policy: self.policy.as_ref(),
            slow_log: &self.slow_log,
            plan_cache: &self.plan_cache,
            plan_generation: self.plan_cache.generation(),
        }
    }

    /// Run an ERQL SELECT against the logical schema. `EXPLAIN SELECT ...`
    /// returns the rendered physical plan as a one-column result instead.
    /// Metrics collection is off — the common path pays nothing for
    /// instrumentation beyond the executor's atomic counters; use
    /// [`Database::query_with`] for the instrumented variant.
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        self.query_ctx().run_query(sql, &[], &ExecContext::default(), false)
    }

    /// Run a `?`-parameterized ERQL SELECT, binding `params` positionally
    /// (left to right). The template is planned once and cached; repeated
    /// executions with different values hit the plan cache and skip parse
    /// and plan entirely. Arity is strict: the number of values must match
    /// the number of `?` placeholders exactly.
    pub fn query_params(&self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        self.query_ctx().run_query(sql, params, &ExecContext::default(), false)
    }

    /// Run an ERQL SELECT under an explicit [`ExecContext`] and return the
    /// executed plan's per-operator metrics tree (rows in/out, batches,
    /// wall-clock time per operator) in [`QueryResult::metrics`] — the
    /// programmatic equivalent of `EXPLAIN ANALYZE`. When statistics have
    /// been gathered (see [`Database::analyze`]), each metrics node also
    /// carries the optimizer's row estimate, so its rendering shows
    /// estimate-vs-actual q-error per operator.
    pub fn query_with(&self, sql: &str, ctx: &ExecContext) -> DbResult<QueryResult> {
        self.query_ctx().run_query(sql, &[], ctx, true)
    }

    /// Compile an ERQL SELECT to an optimized physical plan (through the
    /// plan cache).
    pub fn plan(&self, sql: &str) -> DbResult<Plan> {
        self.query_ctx().plan(sql).map(|p| (*p).clone())
    }

    /// Per-database plan-cache counters (hits/misses/invalidations/entries).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    // ---- observability ----------------------------------------------------------

    /// Render every process-wide metric (counters, gauges, histograms across
    /// queries, WAL/checkpoint/recovery, the executor pool and the
    /// optimizer) in Prometheus text exposition format.
    ///
    /// The registry is process-global — it aggregates over every `Database`
    /// in the process, exactly like a `/metrics` endpoint would.
    pub fn metrics_text(&self) -> String {
        erbium_obs::Registry::global().render()
    }

    /// Apply observability configuration: the slow-query threshold is
    /// per-database; tracing enablement and the JSONL sink are process-wide
    /// (spans from all databases interleave in one stream, distinguished by
    /// query id).
    pub fn configure_observability(&self, opts: ObservabilityOptions) -> DbResult<()> {
        self.slow_log.lock().threshold = opts.slow_query_threshold;
        let tracer = erbium_obs::Tracer::global();
        tracer
            .set_jsonl_sink(opts.trace_file.as_deref())
            .map_err(|e| {
                DbError::from(erbium_storage::StorageError::Io(format!("trace sink: {e}")))
            })?;
        tracer.set_enabled(opts.tracing);
        Ok(())
    }

    /// Snapshot of the slow-query log, oldest first (bounded ring; see
    /// [`ObservabilityOptions::slow_query_threshold`]).
    pub fn slow_queries(&self) -> Vec<SlowQueryRecord> {
        self.slow_log.lock().ring.iter().cloned().collect()
    }

    /// Render the optimized physical plan of a query — shows how the same
    /// ERQL compiles differently under different mappings. After
    /// [`Database::analyze`] every node is annotated with the optimizer's
    /// row estimate (`[est=N]`).
    pub fn explain(&self, sql: &str) -> DbResult<String> {
        let plan = self.query_ctx().plan(sql)?;
        Ok(erbium_engine::explain_with_estimates(&plan, &self.catalog))
    }

    // ---- evolution -------------------------------------------------------------------

    /// Apply a logical schema-evolution operation, migrating the data and
    /// recording a new schema version.
    pub fn evolve(&mut self, op: EvolutionOp) -> DbResult<MigrationReport> {
        let lw = self.lowering.take().ok_or(DbError::NotInstalled)?;
        match Migrator::apply(&mut self.catalog, &lw, &op) {
            Ok((new_lw, report)) => {
                self.schema = new_lw.schema.clone();
                let mut log = VersionLog::load(&self.catalog)?;
                log.record(&new_lw, report.description.clone());
                log.save(&mut self.catalog)?;
                self.lowering = Some(Arc::new(new_lw));
                self.plan_cache.invalidate();
                self.checkpoint_after_structural_change()?;
                Ok(report)
            }
            Err(e) => {
                self.lowering = Some(lw);
                Err(e.into())
            }
        }
    }

    /// Migrate to a different physical mapping without any schema change.
    pub fn remap(&mut self, mapping: Mapping) -> DbResult<MigrationReport> {
        let lw = self.lowering.take().ok_or(DbError::NotInstalled)?;
        match Migrator::remap(&mut self.catalog, &lw, mapping) {
            Ok((new_lw, report)) => {
                let mut log = VersionLog::load(&self.catalog)?;
                log.record(&new_lw, report.description.clone());
                log.save(&mut self.catalog)?;
                self.lowering = Some(Arc::new(new_lw));
                self.plan_cache.invalidate();
                self.checkpoint_after_structural_change()?;
                Ok(report)
            }
            Err(e) => {
                self.lowering = Some(lw);
                Err(e.into())
            }
        }
    }

    /// The recorded schema versions.
    pub fn versions(&self) -> DbResult<VersionLog> {
        Ok(VersionLog::load(&self.catalog)?)
    }

    /// Roll back to an earlier schema version (appends a new version).
    pub fn rollback_to(&mut self, version: u64) -> DbResult<MigrationReport> {
        let lw = self.lowering.take().ok_or(DbError::NotInstalled)?;
        let mut log = VersionLog::load(&self.catalog)?;
        match log.rollback_to(&mut self.catalog, &lw, version) {
            Ok((new_lw, report)) => {
                self.schema = new_lw.schema.clone();
                self.lowering = Some(Arc::new(new_lw));
                self.plan_cache.invalidate();
                self.checkpoint_after_structural_change()?;
                Ok(report)
            }
            Err(e) => {
                self.lowering = Some(lw);
                Err(e.into())
            }
        }
    }

    /// Run the workload-aware advisor against the current data.
    pub fn advise(&self, workload: &Workload) -> DbResult<Recommendation> {
        let lw = self.lowering.as_deref().ok_or(DbError::NotInstalled)?;
        let advisor = Advisor::from_database(&self.catalog, lw)?;
        Ok(advisor.recommend(workload)?)
    }

    // ---- governance --------------------------------------------------------------------

    /// Entity-centric erasure: remove one instance and every trace of it
    /// (all fragments, side tables, owned weak entities, relationship
    /// instances), reporting what was touched.
    pub fn erase(&mut self, entity: &str, key: &[Value]) -> DbResult<ErasureReport> {
        self.transaction(|tx| tx.erase(entity, key))
    }

    /// Install (or clear) the tag-based access policy applied to queries.
    pub fn set_policy(&mut self, policy: Option<AccessPolicy>) {
        self.policy = policy;
        // Policy approval is baked into cached plans (a cache hit skips
        // the check), so a policy change must discard them all.
        self.plan_cache.invalidate();
    }

    /// Markdown description of the schema, generated from the attached
    /// `DESCRIPTION` texts and governance tags.
    pub fn describe_schema(&self) -> String {
        crate::governance::describe_schema(&self.schema)
    }
}

/// Everything the read path needs, borrowed. Both [`Database`] (borrowing
/// its own live state) and [`crate::Snapshot`] (borrowing a pinned
/// [`crate::shared::ReadView`]) assemble one of these, so a snapshot query
/// runs the *identical* code as a direct query — same plan cache, same
/// slow-query ring, same instrumentation — just against different borrows.
pub(crate) struct QueryCtx<'a> {
    pub(crate) schema: &'a ErSchema,
    pub(crate) catalog: &'a Catalog,
    pub(crate) lowering: Option<&'a Lowering>,
    pub(crate) policy: Option<&'a AccessPolicy>,
    pub(crate) slow_log: &'a Mutex<SlowLog>,
    pub(crate) plan_cache: &'a PlanCache,
    /// Plan-cache generation this context plans under. A [`Database`]
    /// context reads the current generation; a snapshot carries the
    /// generation captured when its view was published, so it keeps
    /// hitting (and repopulating) entries consistent with its pinned
    /// schema and statistics even after the writer invalidates.
    pub(crate) plan_generation: u64,
}

impl QueryCtx<'_> {
    /// Compile `sql` through the plan cache: probe, plan fresh on a miss.
    pub(crate) fn plan(&self, sql: &str) -> DbResult<Arc<Plan>> {
        if let Some(plan) = self.plan_cache.get(self.plan_generation, sql) {
            return Ok(plan);
        }
        self.plan_fresh(sql)
    }

    /// Parse, policy-check, rewrite, optimize, and cache. The policy check
    /// runs only here — a cache hit skips it, which is sound because
    /// [`Database::set_policy`] invalidates the cache (the generation
    /// encodes the policy a plan was approved under).
    fn plan_fresh(&self, sql: &str) -> DbResult<Arc<Plan>> {
        let lw = self.lowering.ok_or(DbError::NotInstalled)?;
        let stmt = {
            let _span = erbium_obs::span("parse");
            erbium_query::parse_single(sql).map_err(|e| DbError::Parse(e.to_string()))?
        };
        let Statement::Select(sel) = stmt else {
            return Err(DbError::Parse("query() expects a SELECT".into()));
        };
        if let Some(policy) = self.policy {
            policy.check(self.schema, &sel).map_err(DbError::PolicyViolation)?;
        }
        // The `plan` span covers mapping-aware rewrite + optimization; the
        // optimizer emits its own nested `optimize` span.
        let _span = erbium_obs::span("plan");
        let rewriter = QueryRewriter::new(lw, self.catalog);
        let plan = Arc::new(rewriter.rewrite_optimized(&sel)?);
        self.plan_cache.insert(self.plan_generation, sql, Arc::clone(&plan));
        Ok(plan)
    }

    /// Single entry point behind `query`/`query_params`/`query_with` (on
    /// both `Database` and `Snapshot`): handles `EXPLAIN SELECT ...`,
    /// plans through the cache, binds positional `?` parameters, executes,
    /// and optionally collects the per-operator metrics tree.
    ///
    /// The cache always holds the *template* plan (parameters still as
    /// `Expr::Param`), so N executions of one `?`-template cost one miss
    /// and N−1 hits; binding substitutes values on a per-execution copy.
    pub(crate) fn run_query(
        &self,
        sql: &str,
        params: &[Value],
        ctx: &ExecContext,
        collect_metrics: bool,
    ) -> DbResult<QueryResult> {
        // Probe the cache before anything else: a hit skips parsing
        // entirely. Only SELECT plans are ever inserted, so an
        // `EXPLAIN ...` text can't false-hit — it misses and is recognized
        // by the parse below.
        let cached = self.plan_cache.get(self.plan_generation, sql);
        if cached.is_none() {
            if let Ok(Statement::Explain(sel)) = erbium_query::parse_single(sql) {
                let lw = self.lowering.ok_or(DbError::NotInstalled)?;
                if let Some(policy) = self.policy {
                    policy.check(self.schema, &sel).map_err(DbError::PolicyViolation)?;
                }
                let rewriter = QueryRewriter::new(lw, self.catalog);
                let plan = rewriter.rewrite_optimized(&sel)?;
                let rows = erbium_engine::explain_with_estimates(&plan, self.catalog)
                    .lines()
                    .map(|l| vec![Value::str(l)])
                    .collect();
                return Ok(QueryResult { columns: vec!["plan".into()], rows, metrics: None });
            }
        }
        // Query lifecycle instrumentation: a fresh query id scopes every
        // span opened below (parse/plan/optimize on a cache miss, execute
        // here, plus any storage spans the query triggers on this thread).
        let qid = erbium_obs::Tracer::global().next_query_id();
        let _qscope = erbium_obs::QueryIdScope::enter(qid);
        let _span = erbium_obs::span("query").with_detail(|| sql.to_string());
        let t0 = std::time::Instant::now();

        let plan = match cached {
            Some(plan) => plan,
            None => self.plan_fresh(sql)?,
        };
        // Parameter binding happens here, after the cache, so the cached
        // entry stays parameter-shaped and is shared by every binding.
        // Arity is strict in both directions: executing a `?`-template
        // without values is as much an error as passing values to a
        // parameterless statement.
        let exec_plan: Arc<Plan> =
            if params.is_empty() && erbium_engine::param_count(&plan) == 0 {
                Arc::clone(&plan)
            } else {
                Arc::new(erbium_engine::bind_params(&plan, params).map_err(DbError::from)?)
            };
        let mut stream = erbium_engine::execute_streaming(&exec_plan, self.catalog, ctx)
            .map_err(DbError::from)?;
        let rows = {
            let _exec_span = erbium_obs::span("execute");
            stream.drain().map_err(DbError::from)?
        };
        let elapsed = t0.elapsed();

        // Process-wide counters ride the executor's always-on atomic
        // counters, so they cost the same whether or not the caller asked
        // for a metrics tree.
        let snapshot = stream.metrics();
        let scanned: u64 = snapshot.leaves().iter().map(|l| l.rows_out).sum();
        m_queries().inc();
        m_query_seconds().observe_duration(elapsed);
        m_rows_scanned().add(scanned);
        m_rows_emitted().add(rows.len() as u64);

        // Slow-query capture: one cheap threshold load per query; the
        // expensive work (annotation, digest) happens only for offenders.
        let threshold = self.slow_log.lock().threshold;
        if let Some(th) = threshold {
            if elapsed >= th {
                self.record_slow_query(qid, sql, elapsed, &plan, snapshot.clone());
            }
        }

        let metrics = if collect_metrics {
            let mut metrics = snapshot;
            erbium_engine::annotate_metrics(&mut metrics, &plan, self.catalog);
            Some(metrics)
        } else {
            None
        };
        Ok(QueryResult {
            columns: plan.fields.iter().map(|f| f.name.clone()).collect(),
            rows,
            metrics,
        })
    }

    /// Annotate, digest and append one slow-query record.
    fn record_slow_query(
        &self,
        query_id: u64,
        sql: &str,
        elapsed: Duration,
        plan: &Plan,
        mut metrics: erbium_engine::ExecMetrics,
    ) {
        use std::hash::{Hash, Hasher};
        erbium_engine::annotate_metrics(&mut metrics, plan, self.catalog);
        let rendered = erbium_engine::explain_with_estimates(plan, self.catalog);
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        rendered.hash(&mut hasher);
        let plan_digest = hasher.finish();
        fn max_q(m: &erbium_engine::ExecMetrics) -> Option<f64> {
            let mine = m.q_error();
            m.children
                .iter()
                .filter_map(max_q)
                .chain(mine)
                .fold(None, |acc, q| Some(acc.map_or(q, |a: f64| a.max(q))))
        }
        let rec = SlowQueryRecord {
            query_id,
            sql: sql.to_string(),
            plan_digest,
            elapsed,
            max_q_error: max_q(&metrics),
            metrics,
        };
        m_slow_queries().inc();
        let mut log = self.slow_log.lock();
        if log.ring.len() == SLOW_LOG_CAP {
            log.ring.pop_front();
        }
        log.ring.push_back(rec);
    }
}

/// An open transaction on a [`Database`], handed to the closure of
/// [`Database::transaction`]. Exposes the CRUD surface; every call records
/// undo information (and, for durable databases, a WAL record) so the whole
/// group commits or rolls back as a unit.
pub struct Tx<'a> {
    store: EntityStore<'a>,
    cat: &'a mut Catalog,
    txn: Transaction,
}

impl Tx<'_> {
    /// Insert an entity instance (see [`Database::insert`]).
    pub fn insert(&mut self, entity: &str, data: &[(&str, Value)]) -> DbResult<()> {
        self.insert_linked(entity, data, &[])
    }

    /// Insert with many-to-one relationship targets applied atomically
    /// (see [`Database::insert_linked`]).
    pub fn insert_linked(
        &mut self,
        entity: &str,
        data: &[(&str, Value)],
        links: &[(&str, Vec<Value>)],
    ) -> DbResult<()> {
        let map: EntityData = data.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        self.store.insert(self.cat, &mut self.txn, entity, &map, links)?;
        Ok(())
    }

    /// Bulk insert a batch of one entity's instances (the transactional
    /// core of [`Database::copy_from`]). Returns the physical tables that
    /// received batched appends (empty when the mapping forced the
    /// per-row fallback).
    pub fn copy_from(&mut self, entity: &str, batch: &[BulkEntity]) -> DbResult<Vec<String>> {
        Ok(self.store.bulk_insert(self.cat, &mut self.txn, entity, batch)?)
    }

    /// Fetch one instance by key. Reads inside a transaction see its own
    /// uncommitted writes.
    pub fn get(&self, entity: &str, key: &[Value]) -> DbResult<Option<EntityData>> {
        Ok(self.store.get(self.cat, entity, key)?)
    }

    /// Update attributes of one instance (see [`Database::update_entity`]).
    pub fn update_entity(
        &mut self,
        entity: &str,
        key: &[Value],
        changes: &[(&str, Value)],
    ) -> DbResult<()> {
        let map: EntityData =
            changes.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        self.store.update(self.cat, &mut self.txn, entity, key, &map)?;
        Ok(())
    }

    /// Delete one instance entirely (see [`Database::delete_entity`]).
    pub fn delete_entity(&mut self, entity: &str, key: &[Value]) -> DbResult<()> {
        self.store.delete(self.cat, &mut self.txn, entity, key)?;
        Ok(())
    }

    /// Create a relationship instance, optionally with attributes.
    pub fn link(
        &mut self,
        rel: &str,
        from_key: &[Value],
        to_key: &[Value],
        attrs: &[(&str, Value)],
    ) -> DbResult<()> {
        let map: EntityData =
            attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        self.store.link(self.cat, &mut self.txn, rel, from_key, to_key, &map)?;
        Ok(())
    }

    /// Remove a relationship instance.
    pub fn unlink(&mut self, rel: &str, from_key: &[Value], to_key: &[Value]) -> DbResult<()> {
        self.store.unlink(self.cat, &mut self.txn, rel, from_key, to_key)?;
        Ok(())
    }

    /// Entity-centric erasure (see [`Database::erase`]): delete the
    /// instance and every trace of it, reporting what was touched.
    pub fn erase(&mut self, entity: &str, key: &[Value]) -> DbResult<ErasureReport> {
        let rows_before = self.cat.total_rows();
        let ops_before = self.txn.len();
        self.store.delete(self.cat, &mut self.txn, entity, key)?;
        let rows_after = self.cat.total_rows();
        Ok(ErasureReport {
            entity: entity.to_string(),
            physical_operations: self.txn.len() - ops_before,
            rows_removed: rows_before.saturating_sub(rows_after),
        })
    }

    /// Number of physical operations recorded so far in this transaction.
    pub fn ops(&self) -> usize {
        self.txn.len()
    }
}
