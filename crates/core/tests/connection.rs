//! The transport-independent [`Connection`] API on the embedded handles:
//! prepared `?`-templates through the plan cache (hit-rate and
//! zero-reparse guarantees), strict parameter arity, session-scoped
//! `set_option` isolation, and transactions/snapshots written once against
//! the trait and run against both `Database` and `SharedDatabase`.

use erbium_core::{Connection, Database, DbError, ReadSession, Rows};
use erbium_storage::Value;
use std::sync::Mutex;

/// Serializes tests that flip the process-wide tracer.
static TRACER_LOCK: Mutex<()> = Mutex::new(());

const DDL: &str = "
    CREATE ENTITY person (id int KEY, name text, score int);
    CREATE ENTITY mentor EXTENDS person (rank text NULLABLE);
    CREATE RELATIONSHIP guides FROM person MANY TO mentor ONE;
";

fn seeded() -> Database {
    let mut db = Database::new();
    db.execute(DDL).unwrap();
    db.install_default().unwrap();
    for i in 0..50 {
        db.insert(
            "person",
            &[
                ("id", Value::Int(i)),
                ("name", Value::str(format!("p{i}"))),
                ("score", Value::Int(i * 10)),
            ],
        )
        .unwrap();
    }
    db
}

/// The whole point of the trait: one workload source, any transport. This
/// function is written purely against `Connection` and is run below
/// against both embedded handles (the server smoke binary runs the same
/// shape against `RemoteClient`).
fn workload<C: Connection>(conn: &mut C) {
    conn.transaction(|tx| {
        tx.insert(
            "person",
            &[("id", Value::Int(1000)), ("name", Value::str("tx")), ("score", Value::Int(7))],
        )
    })
    .unwrap();

    let rows = conn.query("SELECT p.name FROM person p WHERE p.id = 1000").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("tx")]]);

    let rows = conn
        .query_params("SELECT p.name FROM person p WHERE p.id = ?", &[Value::Int(1000)])
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("tx")]]);

    let stmt = conn.prepare("SELECT p.score FROM person p WHERE p.id = ?").unwrap();
    let a = conn.execute_prepared(&stmt, &[Value::Int(3)]).unwrap();
    let b = conn.execute_prepared(&stmt, &[Value::Int(4)]).unwrap();
    assert_eq!(a.rows, vec![vec![Value::Int(30)]]);
    assert_eq!(b.rows, vec![vec![Value::Int(40)]]);

    // A snapshot pins state: a write committed after it is invisible to
    // it but visible to a fresh query on the connection.
    let mut snap = conn.snapshot().unwrap();
    conn.transaction(|tx| tx.delete_entity("person", &[Value::Int(1000)])).unwrap();
    let pinned = snap.query("SELECT p.name FROM person p WHERE p.id = 1000").unwrap();
    assert_eq!(pinned.rows.len(), 1);
    let live = conn.query("SELECT p.name FROM person p WHERE p.id = 1000").unwrap();
    assert_eq!(live.rows.len(), 0);

    conn.set_option("threads", "1").unwrap();
    conn.set_option("batch_size", "64").unwrap();
    let rows: Rows = conn.query("SELECT COUNT(*) FROM person p").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);
}

#[test]
fn workload_runs_against_database() {
    workload(&mut seeded());
}

#[test]
fn workload_runs_against_shared_database() {
    workload(&mut seeded().into_shared());
}

#[test]
fn prepared_template_caches_once() {
    let mut db = seeded();
    let before = db.cache_stats().unwrap();

    // `prepare` plans the template (one miss, seeding the cache); every
    // execute after that — whatever the bound values — must hit.
    let stmt = db.prepare("SELECT p.name FROM person p WHERE p.score > ?").unwrap();
    const N: u64 = 10;
    for i in 0..N {
        db.execute_prepared(&stmt, &[Value::Int(i as i64 * 50)]).unwrap();
    }

    let after = db.cache_stats().unwrap();
    assert_eq!(after.misses - before.misses, 1, "template must plan exactly once");
    assert_eq!(after.hits - before.hits, N, "every execute must be a cache hit");
}

#[test]
fn query_params_reuses_template_plan() {
    let mut db = seeded();
    let before = db.cache_stats().unwrap();
    // Same effect without explicit prepare: the `?`-text is the cache key,
    // so repeated query_params of one template replan nothing.
    for i in 0..5 {
        let rows = db
            .query_params("SELECT p.name FROM person p WHERE p.id = ?", &[Value::Int(i)])
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str(format!("p{i}"))]]);
    }
    let after = db.cache_stats().unwrap();
    assert_eq!(after.misses - before.misses, 1);
    assert_eq!(after.hits - before.hits, 4);
}

#[test]
fn prepared_executes_never_reparse() {
    let _g = TRACER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut db = seeded();
    let stmt = db.prepare("SELECT p.name FROM person p WHERE p.id = ?").unwrap();

    let tracer = erbium_core::obs::Tracer::global();
    tracer.set_enabled(true);
    tracer.clear();
    for i in 0..8 {
        db.execute_prepared(&stmt, &[Value::Int(i)]).unwrap();
    }
    let spans = tracer.recent_spans();
    tracer.set_enabled(false);

    let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    assert!(
        !names.contains(&"parse") && !names.contains(&"plan"),
        "prepared execution must skip parse and plan entirely, saw spans: {names:?}"
    );
    assert_eq!(
        names.iter().filter(|n| **n == "execute").count(),
        8,
        "each execute must still record an execute span"
    );
}

#[test]
fn param_arity_is_strict_both_directions() {
    let db = seeded();
    // Too few values for the template.
    let err = db
        .query_params("SELECT p.name FROM person p WHERE p.id = ? AND p.score = ?", &[
            Value::Int(1),
        ])
        .unwrap_err();
    assert!(matches!(err, DbError::Engine(_)), "got {err:?}");
    assert!(err.to_string().contains("expects 2 parameter(s), got 1"), "{err}");

    // Values supplied to a parameterless statement.
    let err = db
        .query_params("SELECT p.name FROM person p WHERE p.id = 1", &[Value::Int(1)])
        .unwrap_err();
    assert!(err.to_string().contains("expects 0 parameter(s), got 1"), "{err}");

    // Executing a `?`-template with no values at all is the same arity
    // error, not an execution-time surprise.
    let err = db.query("SELECT p.name FROM person p WHERE p.id = ?").unwrap_err();
    assert!(err.to_string().contains("expects 1 parameter(s), got 0"), "{err}");
}

#[test]
fn bound_params_match_literal_results() {
    let db = seeded();
    let lit = db.query("SELECT p.name, p.score FROM person p WHERE p.score > 400").unwrap();
    let bound = db
        .query_params("SELECT p.name, p.score FROM person p WHERE p.score > ?", &[Value::Int(
            400,
        )])
        .unwrap();
    assert_eq!(lit.rows, bound.rows);
    assert!(!lit.rows.is_empty());
}

#[test]
fn set_option_is_session_scoped() {
    let shared = seeded().into_shared();

    // Two sessions over the same database: a clone of the handle.
    let mut a = shared.clone();
    let mut b = shared.clone();

    a.set_option("threads", "1").unwrap();
    a.set_option("columnar", "off").unwrap();

    // Session B and a third, later session still see the defaults: the
    // override lives in A's handle, not in any shared or global state.
    let defaults = erbium_core::engine::ExecContext::default();
    let mut c = shared.clone();
    for conn in [&mut b, &mut c] {
        let rows = conn.query("SELECT COUNT(*) FROM person p").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);
    }
    assert_eq!(erbium_core::engine::ExecContext::default().threads, defaults.threads);

    // A's own reads run with its overrides and still give the same answer
    // (parallelism never changes results).
    let rows = a.query("SELECT COUNT(*) FROM person p").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);

    // Unknown keys and malformed values are rejected.
    assert!(a.set_option("wal_voodoo", "1").is_err());
    assert!(a.set_option("threads", "zero").is_err());
    assert!(a.set_option("threads", "0").is_err());
}

#[test]
fn prepare_rejects_bad_sql_eagerly() {
    let mut db = seeded();
    let err = db.prepare("SELECT FROM WHERE").unwrap_err();
    assert!(matches!(err, DbError::Parse(_)), "got {err:?}");
    let err = db.prepare("SELECT x.nope FROM person x WHERE x.id = ?").unwrap_err();
    assert!(matches!(err, DbError::Mapping(_)), "got {err:?}");
}
