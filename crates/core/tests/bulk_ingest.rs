//! Bulk-ingest fast path: `Database::copy_from`, the `COPY ... FROM`
//! script statement, plan-cache generation semantics around bulk loads,
//! and incremental checkpoint kinds after bulk mutation.
//!
//! Metric assertions use deltas on the process-global registry, serialized
//! through a file-local mutex (tests in this binary share the process).

use erbium_core::{BulkEntity, CheckpointKind, Database, DbError};
use erbium_storage::Value;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const DDL: &str = "
    CREATE ENTITY person (id int KEY, name text, score int);
    CREATE ENTITY mentor EXTENDS person (rank text NULLABLE);
    CREATE RELATIONSHIP guides FROM person MANY TO mentor ONE;
";

fn installed() -> Database {
    let mut db = Database::new();
    db.execute(DDL).unwrap();
    db.install_default().unwrap();
    db
}

fn person(i: i64) -> BulkEntity {
    BulkEntity::new(&[
        ("id", Value::Int(i)),
        ("name", Value::str(format!("p{i}"))),
        ("score", Value::Int(i % 10)),
    ])
}

fn count(db: &Database) -> i64 {
    db.query("SELECT COUNT(*) FROM person p").unwrap().rows[0][0].as_int().unwrap()
}

#[test]
fn copy_from_loads_a_batch_and_rejects_duplicates_atomically() {
    let mut db = installed();
    let batch: Vec<BulkEntity> = (0..100).map(person).collect();
    assert_eq!(db.copy_from("person", &batch).unwrap(), 100);
    assert_eq!(count(&db), 100);

    // A duplicate anywhere in the batch (here: against existing rows)
    // rolls the whole batch back.
    let bad: Vec<BulkEntity> = vec![person(500), person(42)];
    assert!(matches!(db.copy_from("person", &bad).unwrap_err(), DbError::Storage(_)));
    assert_eq!(count(&db), 100, "failed batch left nothing behind");

    // An in-batch duplicate is caught too, before any row lands.
    let bad: Vec<BulkEntity> = vec![person(600), person(600)];
    assert!(db.copy_from("person", &bad).is_err());
    assert_eq!(count(&db), 100);

    assert_eq!(db.copy_from("person", &[]).unwrap(), 0, "empty batch is a no-op");
}

#[test]
fn copy_statement_loads_through_the_script_path() {
    let mut db = installed();
    db.execute(
        "COPY person (id, name, score) FROM VALUES \
         (1, 'ada', 10), (2, 'alan', -5), (3, 'grace', 7);
         SELECT p.name FROM person p",
    )
    .unwrap();
    assert_eq!(count(&db), 3);
    let rows = db
        .query("SELECT p.name FROM person p WHERE p.score < 0")
        .unwrap()
        .rows;
    assert_eq!(rows, vec![vec![Value::str("alan")]]);
}

#[test]
fn bulk_load_invalidates_the_plan_cache_exactly_once() {
    let _g = lock();
    let mut db = installed();
    let batch: Vec<BulkEntity> = (0..50).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert!(db.analyze() > 0);

    // Warm the cache and confirm it serves hits.
    let sql = "SELECT p.name FROM person p WHERE p.score = 3";
    db.query(sql).unwrap();
    let warm = db.plan_cache_stats();
    db.query(sql).unwrap();
    assert!(db.plan_cache_stats().hits > warm.hits, "plan cache serves the repeat");

    // One bulk batch refreshes the stats of the touched table and bumps
    // the generation exactly once — not once per row or per table pass.
    let before = db.plan_cache_stats().invalidations;
    let batch: Vec<BulkEntity> = (1000..1500).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert_eq!(db.plan_cache_stats().invalidations, before + 1);

    // The refreshed stats are live: estimates reflect the new extent
    // without an intervening ANALYZE.
    let explain = db.explain("SELECT p.name FROM person p").unwrap();
    assert!(explain.contains("[est=550"), "bulk refresh visible in estimates:\n{explain}");
}

#[test]
fn bulk_load_without_analyzed_stats_leaves_the_plan_cache_alone() {
    let _g = lock();
    let mut db = installed();
    let sql = "SELECT p.name FROM person p";
    db.query(sql).unwrap();
    let before = db.plan_cache_stats().invalidations;
    let batch: Vec<BulkEntity> = (0..50).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert_eq!(
        db.plan_cache_stats().invalidations,
        before,
        "no stats to refresh → cached plans stay valid (no-stats-until-ANALYZE)"
    );
    let explain = db.explain(sql).unwrap();
    assert!(!explain.contains("[est="), "stats did not appear out of thin air");
}

#[test]
fn ingest_rows_counter_counts_bulk_loaded_instances() {
    let _g = lock();
    let c = erbium_core::obs::Registry::global().counter("erbium_ingest_rows_total", "");
    let before = c.get();
    let mut db = installed();
    let batch: Vec<BulkEntity> = (0..37).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert!(c.get() >= before + 37, "counter advanced by at least the batch size");
}

#[test]
fn checkpoints_after_bulk_loads_are_deltas_and_recovery_chains_them() {
    let dir = std::env::temp_dir()
        .join(format!("erbium-bulk-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Database::open(&dir).unwrap();
    db.execute(DDL).unwrap();
    db.install_default().unwrap(); // structural → full base snapshot

    let batch: Vec<BulkEntity> = (0..40).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert_eq!(
        db.checkpoint().unwrap(),
        Some(CheckpointKind::Delta { tables: 1, factorized: 0 }),
        "bulk load dirties one table → one-table delta"
    );
    // Nothing changed since: the next checkpoint is an empty delta (it
    // still carries the authoritative txn horizon, making WAL truncation
    // safe), not a full rewrite.
    assert_eq!(
        db.checkpoint().unwrap(),
        Some(CheckpointKind::Delta { tables: 0, factorized: 0 })
    );
    let batch: Vec<BulkEntity> = (40..70).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    drop(db); // un-checkpointed suffix stays in the WAL

    // Recovery chains base + deltas + WAL suffix.
    let db = Database::open(&dir).unwrap();
    assert_eq!(count(&db), 70);
    std::fs::remove_dir_all(&dir).ok();
}
