//! Bulk-ingest fast path: `Database::copy_from`, the `COPY ... FROM`
//! script statement, plan-cache generation semantics around bulk loads,
//! and incremental checkpoint kinds after bulk mutation.
//!
//! Metric assertions use deltas on the process-global registry, serialized
//! through a file-local mutex (tests in this binary share the process).

use erbium_core::{BulkEntity, CheckpointKind, Database, DbError};
use erbium_storage::Value;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const DDL: &str = "
    CREATE ENTITY person (id int KEY, name text, score int);
    CREATE ENTITY mentor EXTENDS person (rank text NULLABLE);
    CREATE RELATIONSHIP guides FROM person MANY TO mentor ONE;
";

fn installed() -> Database {
    let mut db = Database::new();
    db.execute(DDL).unwrap();
    db.install_default().unwrap();
    db
}

fn person(i: i64) -> BulkEntity {
    BulkEntity::new(&[
        ("id", Value::Int(i)),
        ("name", Value::str(format!("p{i}"))),
        ("score", Value::Int(i % 10)),
    ])
}

fn count(db: &Database) -> i64 {
    db.query("SELECT COUNT(*) FROM person p").unwrap().rows[0][0].as_int().unwrap()
}

#[test]
fn copy_from_loads_a_batch_and_rejects_duplicates_atomically() {
    let mut db = installed();
    let batch: Vec<BulkEntity> = (0..100).map(person).collect();
    assert_eq!(db.copy_from("person", &batch).unwrap(), 100);
    assert_eq!(count(&db), 100);

    // A duplicate anywhere in the batch (here: against existing rows)
    // rolls the whole batch back.
    let bad: Vec<BulkEntity> = vec![person(500), person(42)];
    assert!(matches!(db.copy_from("person", &bad).unwrap_err(), DbError::Storage(_)));
    assert_eq!(count(&db), 100, "failed batch left nothing behind");

    // An in-batch duplicate is caught too, before any row lands.
    let bad: Vec<BulkEntity> = vec![person(600), person(600)];
    assert!(db.copy_from("person", &bad).is_err());
    assert_eq!(count(&db), 100);

    assert_eq!(db.copy_from("person", &[]).unwrap(), 0, "empty batch is a no-op");
}

#[test]
fn copy_statement_loads_through_the_script_path() {
    let mut db = installed();
    db.execute(
        "COPY person (id, name, score) FROM VALUES \
         (1, 'ada', 10), (2, 'alan', -5), (3, 'grace', 7);
         SELECT p.name FROM person p",
    )
    .unwrap();
    assert_eq!(count(&db), 3);
    let rows = db
        .query("SELECT p.name FROM person p WHERE p.score < 0")
        .unwrap()
        .rows;
    assert_eq!(rows, vec![vec![Value::str("alan")]]);
}

#[test]
fn bulk_load_invalidates_the_plan_cache_exactly_once() {
    let _g = lock();
    let mut db = installed();
    let batch: Vec<BulkEntity> = (0..50).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert!(db.analyze() > 0);

    // Warm the cache and confirm it serves hits.
    let sql = "SELECT p.name FROM person p WHERE p.score = 3";
    db.query(sql).unwrap();
    let warm = db.plan_cache_stats();
    db.query(sql).unwrap();
    assert!(db.plan_cache_stats().hits > warm.hits, "plan cache serves the repeat");

    // One bulk batch refreshes the stats of the touched table and bumps
    // the generation exactly once — not once per row or per table pass.
    let before = db.plan_cache_stats().invalidations;
    let batch: Vec<BulkEntity> = (1000..1500).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert_eq!(db.plan_cache_stats().invalidations, before + 1);

    // The refreshed stats are live: estimates reflect the new extent
    // without an intervening ANALYZE.
    let explain = db.explain("SELECT p.name FROM person p").unwrap();
    assert!(explain.contains("[est=550"), "bulk refresh visible in estimates:\n{explain}");
}

#[test]
fn bulk_load_without_analyzed_stats_leaves_the_plan_cache_alone() {
    let _g = lock();
    let mut db = installed();
    let sql = "SELECT p.name FROM person p";
    db.query(sql).unwrap();
    let before = db.plan_cache_stats().invalidations;
    let batch: Vec<BulkEntity> = (0..50).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert_eq!(
        db.plan_cache_stats().invalidations,
        before,
        "no stats to refresh → cached plans stay valid (no-stats-until-ANALYZE)"
    );
    let explain = db.explain(sql).unwrap();
    assert!(!explain.contains("[est="), "stats did not appear out of thin air");
}

#[test]
fn fallback_bulk_paths_refresh_stats_and_bump_generation_once() {
    let _g = lock();
    let mut db = Database::new();
    db.execute(
        "CREATE ENTITY course (cid int KEY, title text);
         CREATE RELATIONSHIP sec_of FROM section MANY TOTAL TO course ONE;
         CREATE WEAK ENTITY section OWNED BY course VIA sec_of (sec_no int KEY, room text NULLABLE);
         CREATE ENTITY student (sid int KEY, sname text);
         CREATE ENTITY dorm (did int KEY, dname text);
         CREATE RELATIONSHIP lives_in FROM student MANY TO dorm MANY;",
    )
    .unwrap();
    // Mixed-home mapping: sections fold into course rows (per-instance
    // read-modify-write) and students co-locate with dorms in one
    // denormalized table — both route copy_from through the per-instance
    // fallback rather than the batched path.
    let mapping = {
        use erbium_core::mapping::{presets, CoFormat};
        let m = presets::normalized(db.schema());
        let m = presets::fold_weak(m, db.schema(), "section").unwrap();
        presets::colocate(m, db.schema(), "lives_in", CoFormat::Denormalized).unwrap()
    };
    db.install(mapping).unwrap();

    let courses: Vec<BulkEntity> = (0..8)
        .map(|i| BulkEntity::new(&[("cid", Value::Int(i)), ("title", Value::str(format!("c{i}")))]))
        .collect();
    db.copy_from("course", &courses).unwrap();
    assert!(db.analyze() > 0);
    db.query("SELECT c.title FROM course c").unwrap();

    // Folded-weak fallback: the batch rewrites course rows in place. One
    // batch must refresh the owner table's stats and bump the plan-cache
    // generation exactly once — not zero times (the old bug: the fallback
    // reported no touched tables) and not once per instance.
    let sections: Vec<BulkEntity> = (0..20)
        .map(|i| {
            BulkEntity::new(&[
                ("cid", Value::Int(i % 8)),
                ("sec_no", Value::Int(i)),
                ("room", Value::str(format!("r{i}"))),
            ])
        })
        .collect();
    let before = db.plan_cache_stats().invalidations;
    db.copy_from("section", &sections).unwrap();
    assert_eq!(
        db.plan_cache_stats().invalidations,
        before + 1,
        "folded-weak fallback bumps the generation exactly once per batch"
    );

    // Co-located fallback: rows land in the denormalized table, so the
    // refreshed statistics are live without another ANALYZE.
    let students: Vec<BulkEntity> = (0..40)
        .map(|i| BulkEntity::new(&[("sid", Value::Int(i)), ("sname", Value::str(format!("s{i}")))]))
        .collect();
    let before = db.plan_cache_stats().invalidations;
    db.copy_from("student", &students).unwrap();
    assert_eq!(
        db.plan_cache_stats().invalidations,
        before + 1,
        "co-located fallback bumps the generation exactly once per batch"
    );
    let co = erbium_core::mapping::presets::co_table("lives_in");
    let stats = db.catalog().table_stats(&co).expect("co-located table was analyzed");
    assert_eq!(stats.row_count, 40, "fallback refresh is live in the stats");
}

#[test]
fn ingest_rows_counter_counts_bulk_loaded_instances() {
    let _g = lock();
    let c = erbium_core::obs::Registry::global().counter("erbium_ingest_rows_total", "");
    let before = c.get();
    let mut db = installed();
    let batch: Vec<BulkEntity> = (0..37).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert!(c.get() >= before + 37, "counter advanced by at least the batch size");
}

#[test]
fn checkpoints_after_bulk_loads_are_deltas_and_recovery_chains_them() {
    let dir = std::env::temp_dir()
        .join(format!("erbium-bulk-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Database::open(&dir).unwrap();
    db.execute(DDL).unwrap();
    db.install_default().unwrap(); // structural → full base snapshot

    let batch: Vec<BulkEntity> = (0..40).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    assert_eq!(
        db.checkpoint().unwrap(),
        Some(CheckpointKind::Delta { tables: 1, factorized: 0 }),
        "bulk load dirties one table → one-table delta"
    );
    // Nothing changed since: the next checkpoint is an empty delta (it
    // still carries the authoritative txn horizon, making WAL truncation
    // safe), not a full rewrite.
    assert_eq!(
        db.checkpoint().unwrap(),
        Some(CheckpointKind::Delta { tables: 0, factorized: 0 })
    );
    let batch: Vec<BulkEntity> = (40..70).map(person).collect();
    db.copy_from("person", &batch).unwrap();
    drop(db); // un-checkpointed suffix stays in the WAL

    // Recovery chains base + deltas + WAL suffix.
    let db = Database::open(&dir).unwrap();
    assert_eq!(count(&db), 70);
    std::fs::remove_dir_all(&dir).ok();
}
