//! End-to-end observability tests: tracing spans across the query
//! lifecycle, the Prometheus-text metrics export, the slow-query log, and
//! — the headline regression — optimizer statistics surviving a durable
//! checkpoint/recovery cycle.
//!
//! The metrics registry and tracer are process-wide singletons, so every
//! test (a) serializes on a shared mutex and (b) asserts on counter
//! *deltas*, never absolute values.

use erbium_core::engine::ExecContext;
use erbium_core::{obs, BulkEntity, CheckpointKind, Database, ObservabilityOptions};
use erbium_storage::Value;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests that flip global tracer state or assert counter deltas.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("erbium-obs-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

const DDL: &str = "
    CREATE ENTITY person (id int KEY, name text, score int);
    CREATE ENTITY mentor EXTENDS person (rank text NULLABLE);
    CREATE RELATIONSHIP guides FROM person MANY TO mentor ONE;
";

fn populate(db: &mut Database, n: i64) {
    db.execute(DDL).unwrap();
    db.install_default().unwrap();
    for i in 0..n {
        db.insert(
            "person",
            &[
                ("id", Value::Int(i)),
                ("name", Value::str(format!("p{i}"))),
                ("score", Value::Int(i % 10)),
            ],
        )
        .unwrap();
    }
}

/// Fetch a registered counter by name (the registry hands back the existing
/// instance; the help string only matters on first registration).
fn counter(name: &'static str) -> std::sync::Arc<obs::Counter> {
    obs::Registry::global().counter(name, "")
}

// ---- headline regression: stats survive checkpoint + recovery --------------

/// The PR-4 bug: `ANALYZE` → `checkpoint()` → reopen silently dropped
/// `CatalogStats`, so every cost-based pass disabled itself after a restart
/// (and nothing reported it). Now stats ride in the snapshot: after reopen
/// EXPLAIN still annotates `[est=N]`, the CBO-applied counter still ticks,
/// and `stats_missing` stays flat.
#[test]
fn optimizer_stats_survive_checkpoint_and_reopen() {
    let _g = lock();
    let dir = tmpdir("stats");
    let mut db = Database::open(&dir).unwrap();
    populate(&mut db, 60);
    assert!(db.analyze() > 0, "analyze gathers stats");
    let restored_before = counter("erbium_recovery_stats_restored_total").get();
    db.checkpoint().unwrap();
    drop(db);

    let db = Database::open(&dir).unwrap();
    assert!(
        counter("erbium_recovery_stats_restored_total").get() > restored_before,
        "recovery restored gathered statistics from the snapshot"
    );

    // Cost-based planning still works after the restart: EXPLAIN carries
    // row estimates, and planning exercises the CBO branch without a
    // single stats_missing event. Counters are read before the EXPLAIN —
    // the query() below reuses its cached plan rather than re-optimizing.
    let missing_before = counter("erbium_optimizer_stats_missing_total").get();
    let cbo_before = counter("erbium_optimizer_cbo_applied_total").get();
    let explain = db.explain("SELECT p.name FROM person p WHERE p.score = 3").unwrap();
    assert!(explain.contains("[est="), "estimates survive reopen:\n{explain}");
    let rows = db.query("SELECT p.name FROM person p WHERE p.score = 3").unwrap().rows;
    assert_eq!(rows.len(), 6);
    assert_eq!(
        counter("erbium_optimizer_stats_missing_total").get(),
        missing_before,
        "no stats_missing events after recovery"
    );
    assert!(
        counter("erbium_optimizer_cbo_applied_total").get() > cbo_before,
        "cost-based passes fired after recovery"
    );

    // PR-9 extension: the same guarantee holds across a base+delta chain.
    // A bulk load dirties only `person`, so the next checkpoint writes an
    // ERBSNAP2 delta instead of a full snapshot; recovery then chains
    // base + delta, and the (bulk-refreshed) statistics still ride along.
    let mut db = db;
    let batch: Vec<BulkEntity> = (60..90)
        .map(|i| {
            BulkEntity::new(&[
                ("id", Value::Int(i)),
                ("name", Value::str(format!("p{i}"))),
                ("score", Value::Int(i % 10)),
            ])
        })
        .collect();
    db.copy_from("person", &batch).unwrap();
    let delta_before = counter("erbium_checkpoint_delta_tables").get();
    let kind = db.checkpoint().unwrap();
    assert_eq!(
        kind,
        Some(CheckpointKind::Delta { tables: 1, factorized: 0 }),
        "only the bulk-loaded table goes into the delta"
    );
    assert_eq!(counter("erbium_checkpoint_delta_tables").get(), delta_before + 1);
    drop(db);

    let db = Database::open(&dir).unwrap();
    let missing_before = counter("erbium_optimizer_stats_missing_total").get();
    let explain = db.explain("SELECT p.name FROM person p WHERE p.score = 3").unwrap();
    assert!(explain.contains("[est="), "estimates survive base+delta recovery:\n{explain}");
    let rows = db.query("SELECT p.name FROM person p WHERE p.score = 3").unwrap().rows;
    assert_eq!(rows.len(), 9, "60 + 30 bulk rows, score uniform mod 10");
    assert_eq!(
        counter("erbium_optimizer_stats_missing_total").get(),
        missing_before,
        "no stats_missing events after base+delta recovery"
    );
    fs::remove_dir_all(&dir).ok();
}

// ---- tracing ---------------------------------------------------------------

#[test]
fn tracing_spans_cover_the_query_lifecycle() {
    let _g = lock();
    let dir = tmpdir("trace");
    let trace_file = dir.join("trace.jsonl");
    let mut db = Database::new();
    populate(&mut db, 20);

    db.configure_observability(ObservabilityOptions {
        tracing: true,
        trace_file: Some(trace_file.clone()),
        ..Default::default()
    })
    .unwrap();
    obs::Tracer::global().clear();
    db.query("SELECT p.name FROM person p WHERE p.score = 1").unwrap();
    // Tear down global tracing before asserting so a failure can't leak
    // an enabled tracer into other tests.
    db.configure_observability(ObservabilityOptions::default()).unwrap();

    let spans = obs::Tracer::global().recent_spans();
    let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    for expected in ["query", "parse", "plan", "optimize", "execute"] {
        assert!(names.contains(&expected), "missing span {expected:?} in {names:?}");
    }
    // Every lifecycle span carries the same query id as the enclosing
    // "query" span — that is what makes the JSONL stream groupable.
    let qid = spans.iter().find(|s| s.name == "query").unwrap().query_id;
    assert!(qid > 0);
    for s in spans.iter().filter(|s| ["parse", "plan", "optimize", "execute"].contains(&s.name)) {
        assert_eq!(s.query_id, qid, "span {} not correlated", s.name);
    }
    // The "query" span records the submitted SQL as its detail.
    let q = spans.iter().find(|s| s.name == "query").unwrap();
    assert!(q.detail.as_deref().unwrap_or("").contains("SELECT p.name"));

    // And the same records landed in the JSONL sink, one object per line.
    let text = fs::read_to_string(&trace_file).unwrap();
    assert!(text.lines().count() >= 5, "jsonl lines:\n{text}");
    assert!(text.contains(r#""span":"query""#) && text.contains(r#""span":"execute""#));
    assert!(text.contains(&format!(r#""qid":{qid}"#)));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn disabled_tracing_records_nothing() {
    let _g = lock();
    let db = {
        let mut db = Database::new();
        populate(&mut db, 5);
        db
    };
    db.configure_observability(ObservabilityOptions::default()).unwrap();
    obs::Tracer::global().clear();
    db.query("SELECT p.name FROM person p").unwrap();
    assert!(obs::Tracer::global().recent_spans().is_empty());
}

// ---- metrics export --------------------------------------------------------

#[test]
fn metrics_text_exports_engine_wal_and_pool_families() {
    let _g = lock();
    let dir = tmpdir("metrics");
    let mut db = Database::open(&dir).unwrap();
    populate(&mut db, 300);
    db.analyze();
    // A bulk batch plus a second checkpoint: `install_default` already
    // wrote the full base snapshot, so this one is an incremental delta —
    // both the ingest and the delta-checkpoint counters tick.
    db.copy_from(
        "person",
        &[BulkEntity::new(&[
            ("id", Value::Int(9000)),
            ("name", Value::str("bulk")),
            ("score", Value::Int(0)),
        ])],
    )
    .unwrap();
    db.checkpoint().unwrap();
    // Force morsel-parallel execution so the pool metrics tick.
    let ctx = ExecContext::new().with_threads(2).with_morsel_size(32);
    db.query_with("SELECT p.name FROM person p WHERE p.score < 9", &ctx).unwrap();

    let text = db.metrics_text();
    let expected = [
        // engine / query lifecycle
        "erbium_queries_total",
        "erbium_query_seconds",
        "erbium_rows_scanned_total",
        "erbium_rows_emitted_total",
        "erbium_optimizer_cbo_applied_total",
        "erbium_optimizer_stats_missing_total",
        // WAL / checkpoint / recovery
        "erbium_wal_bytes_total",
        "erbium_wal_fsync_seconds",
        "erbium_checkpoints_total",
        "erbium_checkpoint_delta_tables",
        "erbium_recoveries_total",
        // bulk ingest
        "erbium_ingest_rows_total",
        // buffer pool (registered eagerly at pool construction)
        "erbium_bufferpool_hits_total",
        "erbium_bufferpool_misses_total",
        "erbium_bufferpool_evictions_total",
        "erbium_bufferpool_dirty_writebacks_total",
        // worker pool
        "erbium_pool_waves_total",
        "erbium_pool_jobs_total",
        "erbium_pool_workers",
    ];
    for name in expected {
        assert!(
            text.contains(&format!("# TYPE {name} ")),
            "metric {name} missing from export:\n{text}"
        );
    }
    assert!(expected.len() >= 10, "export spans at least ten distinct metrics");
    // Histograms render cumulative buckets plus sum/count.
    assert!(text.contains("erbium_query_seconds_bucket{le="));
    assert!(text.contains("erbium_query_seconds_count"));
    fs::remove_dir_all(&dir).ok();
}

// ---- slow-query log --------------------------------------------------------

#[test]
fn slow_query_log_captures_plan_digest_metrics_and_q_error() {
    let _g = lock();
    let mut db = Database::new();
    populate(&mut db, 50);
    db.analyze();

    // Threshold zero → every query is "slow": useful for workload capture.
    db.configure_observability(ObservabilityOptions {
        slow_query_threshold: Some(Duration::ZERO),
        ..Default::default()
    })
    .unwrap();
    let slow_before = counter("erbium_slow_queries_total").get();
    db.query("SELECT p.name FROM person p WHERE p.score = 2").unwrap();
    db.query("SELECT p.name FROM person p WHERE p.score = 2").unwrap();
    db.query("SELECT p.name FROM person p").unwrap();

    let records = db.slow_queries();
    assert_eq!(records.len(), 3);
    assert_eq!(counter("erbium_slow_queries_total").get(), slow_before + 3);
    let r = &records[0];
    assert!(r.sql.contains("p.score = 2"));
    assert!(r.query_id > 0);
    // Same plan ⇒ same digest (the grouping key for workload analysis);
    // a structurally different plan digests differently.
    assert_eq!(records[0].plan_digest, records[1].plan_digest);
    assert_ne!(records[0].plan_digest, records[2].plan_digest);
    // The metrics tree is populated and annotated against ANALYZE stats,
    // so a worst-case q-error is derivable.
    assert!(r.metrics.rows_out > 0 || !r.metrics.children.is_empty());
    let q = r.max_q_error.expect("stats were gathered, q-error must exist");
    assert!(q >= 1.0 && q.is_finite(), "q-error={q}");

    // Disabling capture stops recording (existing records are retained).
    db.configure_observability(ObservabilityOptions::default()).unwrap();
    db.query("SELECT p.name FROM person p").unwrap();
    assert_eq!(db.slow_queries().len(), 3);
}

#[test]
fn explain_is_excluded_from_query_counters() {
    let _g = lock();
    let mut db = Database::new();
    populate(&mut db, 10);
    let before = counter("erbium_queries_total").get();
    db.query("EXPLAIN SELECT p.name FROM person p").unwrap();
    assert_eq!(counter("erbium_queries_total").get(), before);
    db.query("SELECT p.name FROM person p").unwrap();
    assert_eq!(counter("erbium_queries_total").get(), before + 1);
}
