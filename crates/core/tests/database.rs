//! End-to-end tests of the `Database` facade.

use erbium_core::{AccessPolicy, Database, DbError};
use erbium_evolve::{EvolutionOp, MvPlacement};
use erbium_mapping::presets;
use erbium_storage::Value;

fn university_db() -> Database {
    let mut db = Database::new();
    db.execute(
        "CREATE ENTITY person (
             id int KEY,
             name text TAG 'pii' DESCRIPTION 'legal name',
             address (street text, city text) NULLABLE TAG 'pii',
             phone text MULTIVALUED TAG 'pii'
         ) PARTIAL DISJOINT DESCRIPTION 'people on campus';
         CREATE ENTITY instructor EXTENDS person (rank text NULLABLE);
         CREATE ENTITY student EXTENDS person (tot_credits int NULLABLE);
         CREATE ENTITY department (dept_name text KEY, building text NULLABLE);
         CREATE RELATIONSHIP advisor FROM student MANY TO instructor ONE;
         CREATE RELATIONSHIP member_of FROM instructor MANY TOTAL TO department ONE;",
    )
    .unwrap();
    db.install_default().unwrap();
    db.insert("department", &[("dept_name", Value::str("cs")), ("building", Value::str("AVW"))])
        .unwrap();
    db.insert_linked(
        "instructor",
        &[
            ("id", Value::Int(1)),
            ("name", Value::str("ada")),
            ("address", Value::Struct(vec![Value::str("Main St"), Value::str("College Park")])),
            ("phone", Value::Array(vec![Value::str("555-1"), Value::str("555-2")])),
            ("rank", Value::str("prof")),
        ],
        &[("member_of", vec![Value::str("cs")])],
    )
    .unwrap();
    for i in 0..3i64 {
        db.insert_linked(
            "student",
            &[
                ("id", Value::Int(10 + i)),
                ("name", Value::str(format!("student{i}"))),
                ("phone", Value::Array(vec![Value::str(format!("556-{i}"))])),
                ("tot_credits", Value::Int(30 * (i + 1))),
            ],
            &[("advisor", vec![Value::Int(1)])],
        )
        .unwrap();
    }
    db
}

#[test]
fn ddl_crud_query_roundtrip() {
    let db = university_db();
    let result = db
        .query(
            "SELECT i.name, AVG(s.tot_credits) AS avg_credits \
             FROM instructor i JOIN student s VIA advisor",
        )
        .unwrap();
    assert_eq!(result.columns, vec!["name".to_string(), "avg_credits".to_string()]);
    assert_eq!(result.rows, vec![vec![Value::str("ada"), Value::Float(60.0)]]);
}

#[test]
fn composite_field_access_in_queries() {
    let db = university_db();
    let result =
        db.query("SELECT p.name FROM person p WHERE p.address.city = 'College Park'").unwrap();
    assert_eq!(result.rows.len(), 1);
}

#[test]
fn nested_output_via_nest() {
    let db = university_db();
    let result = db
        .query(
            "SELECT i.name, NEST(s.name, s.tot_credits) AS advisees \
             FROM instructor i JOIN student s VIA advisor",
        )
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    match &result.rows[0][1] {
        Value::Array(advisees) => assert_eq!(advisees.len(), 3),
        other => panic!("expected nested array, got {other}"),
    }
}

#[test]
fn ddl_after_install_rejected() {
    let mut db = university_db();
    let err = db.execute("CREATE ENTITY extra (id int KEY)").unwrap_err();
    assert_eq!(err, DbError::AlreadyInstalled);
}

#[test]
fn query_before_install_rejected() {
    let mut db = Database::new();
    db.execute("CREATE ENTITY e (id int KEY)").unwrap();
    assert_eq!(db.query("SELECT x FROM e").unwrap_err(), DbError::NotInstalled);
}

#[test]
fn crud_get_update_delete() {
    let mut db = university_db();
    let got = db.get("student", &[Value::Int(10)]).unwrap().unwrap();
    assert_eq!(got.get("tot_credits"), Some(&Value::Int(30)));
    db.update_entity("student", &[Value::Int(10)], &[("tot_credits", Value::Int(45))]).unwrap();
    let got = db.get("student", &[Value::Int(10)]).unwrap().unwrap();
    assert_eq!(got.get("tot_credits"), Some(&Value::Int(45)));
    db.delete_entity("student", &[Value::Int(10)]).unwrap();
    assert!(db.get("student", &[Value::Int(10)]).unwrap().is_none());
}

#[test]
fn erase_reports_physical_footprint() {
    let mut db = university_db();
    // Erasing the instructor also unlinks the three advisor FKs.
    let report = db.erase("person", &[Value::Int(1)]).unwrap();
    assert_eq!(report.entity, "person");
    assert!(report.rows_removed >= 3, "person + instructor rows + phone rows");
    assert!(report.physical_operations >= 4);
    // Students remain but advisor links are gone.
    let r = db.query("SELECT s.id FROM student s").unwrap();
    assert_eq!(r.rows.len(), 3);
    let r = db
        .query("SELECT s.id FROM student s JOIN instructor i VIA advisor")
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn access_policy_blocks_pii() {
    let mut db = university_db();
    db.set_policy(Some(AccessPolicy::deny_tag("pii")));
    let err = db.query("SELECT p.name FROM person p").unwrap_err();
    assert!(matches!(err, DbError::PolicyViolation(_)));
    let err = db.query("SELECT * FROM person p").unwrap_err();
    assert!(matches!(err, DbError::PolicyViolation(_)));
    // Non-PII queries pass.
    db.query("SELECT s.tot_credits FROM student s").unwrap();
    // Clearing the policy restores access.
    db.set_policy(None);
    db.query("SELECT p.name FROM person p").unwrap();
}

#[test]
fn evolve_through_database_records_versions() {
    let mut db = university_db();
    let q = "SELECT d.dept_name, d.building FROM department d";
    assert_eq!(db.query(q).unwrap().rows.len(), 1);
    let report = db
        .evolve(EvolutionOp::MakeMultiValued {
            entity: "department".into(),
            attribute: "building".into(),
            placement: MvPlacement::Inline,
        })
        .unwrap();
    assert!(report.description.contains("multi-valued"));
    // Bare reference now yields the array form.
    let r = db.query(q).unwrap();
    assert_eq!(r.rows[0][1], Value::Array(vec![Value::str("AVW")]));
    // Version log: install + evolve.
    let log = db.versions().unwrap();
    assert_eq!(log.versions().len(), 2);
    // Roll back; the scalar form returns.
    db.rollback_to(1).unwrap();
    let r = db.query(q).unwrap();
    assert_eq!(r.rows[0][1], Value::str("AVW"));
}

#[test]
fn remap_preserves_queries() {
    let mut db = university_db();
    let q = "SELECT p.id, p.phone FROM person p ORDER BY id";
    let before = db.query(q).unwrap();
    let m2 = presets::inline_all_multivalued(presets::normalized(db.schema()), db.schema());
    db.remap(m2).unwrap();
    let after = db.query(q).unwrap();
    // Arrays may differ in order; compare lengths + ids.
    assert_eq!(before.rows.len(), after.rows.len());
    for (b, a) in before.rows.iter().zip(after.rows.iter()) {
        assert_eq!(b[0], a[0]);
    }
    assert!(db.mapping().unwrap().name.contains("inline_mv"));
}

#[test]
fn explain_shows_mapping_dependent_plans() {
    let mut db = university_db();
    let q = "SELECT p.phone FROM person p WHERE p.id = 1";
    let normalized_plan = db.explain(q).unwrap();
    assert!(normalized_plan.contains("person__phone"), "{normalized_plan}");
    let m2 = presets::inline_all_multivalued(presets::normalized(db.schema()), db.schema());
    db.remap(m2).unwrap();
    let inline_plan = db.explain(q).unwrap();
    assert!(!inline_plan.contains("person__phone"), "{inline_plan}");
    assert!(inline_plan.contains("IndexLookup"), "{inline_plan}");
}

#[test]
fn describe_schema_renders_documentation() {
    let db = university_db();
    let doc = db.describe_schema();
    assert!(doc.contains("## person"));
    assert!(doc.contains("people on campus"));
    assert!(doc.contains("legal name"));
    assert!(doc.contains("tag:pii"));
    assert!(doc.contains("extends **person**"));
    assert!(doc.contains("**advisor**"));
}

#[test]
fn pii_inventory_lists_tagged_attributes() {
    let db = university_db();
    let inv = erbium_core::governance::pii_inventory(db.schema());
    let names: Vec<String> = inv.iter().map(|p| format!("{}.{}", p.entity, p.attribute)).collect();
    assert!(names.contains(&"person.name".to_string()));
    assert!(names.contains(&"person.phone".to_string()));
    assert!(names.contains(&"person.address".to_string()));
}

#[test]
fn duplicate_key_insert_fails_cleanly() {
    let mut db = university_db();
    let err = db
        .insert("department", &[("dept_name", Value::str("cs"))])
        .unwrap_err();
    assert!(matches!(err, DbError::Storage(_)));
    // Database still consistent.
    assert_eq!(db.query("SELECT d.dept_name FROM department d").unwrap().rows.len(), 1);
}

#[test]
fn advise_over_live_database() {
    let db = university_db();
    let wl = erbium_advisor::Workload::new()
        .weighted("SELECT p.phone FROM person p WHERE p.id = 1", 100.0)
        .unwrap();
    let rec = db.advise(&wl).unwrap();
    assert!(rec.cost <= rec.baseline_cost);
}

#[test]
fn analyze_activates_estimates_without_changing_results() {
    let mut db = university_db();
    let q = "SELECT i.name, s.name FROM instructor i JOIN student s VIA advisor";
    // Before ANALYZE: no estimates anywhere.
    let before_plan = db.explain(q).unwrap();
    assert!(!before_plan.contains("est="), "{before_plan}");
    let mut before = db.query(q).unwrap().rows;

    let entries = db.analyze();
    assert!(entries > 0, "analyze() gathered {entries} stats entries");

    // After ANALYZE: EXPLAIN carries per-node row estimates...
    let after_plan = db.explain(q).unwrap();
    assert!(after_plan.contains("[est="), "{after_plan}");
    // ...the EXPLAIN statement form too...
    let r = db.query(&format!("EXPLAIN {q}")).unwrap();
    let text: String =
        r.rows.iter().map(|row| row[0].as_str().unwrap().to_string() + "\n").collect();
    assert!(text.contains("[est="), "{text}");
    // ...and the result multiset is unchanged by the cost-based passes.
    let mut after = db.query(q).unwrap().rows;
    before.sort();
    after.sort();
    assert_eq!(before, after);

    // EXPLAIN ANALYZE: metrics nodes carry estimates and q-error.
    let res = db
        .query_with(q, &erbium_engine::ExecContext::default())
        .unwrap();
    let metrics = res.metrics.unwrap();
    assert!(metrics.est_rows.is_some(), "root metrics node annotated:\n{}", metrics.render());
    assert!(metrics.render().contains(" q="), "{}", metrics.render());
}

#[test]
fn explain_statement_returns_plan_text() {
    let db = university_db();
    let r = db.query("EXPLAIN SELECT s.name FROM student s WHERE s.id = 10").unwrap();
    assert_eq!(r.columns, vec!["plan".to_string()]);
    let text: String =
        r.rows.iter().map(|row| row[0].as_str().unwrap().to_string() + "\n").collect();
    assert!(text.contains("IndexLookup"), "{text}");
}

// ---- transactions ----------------------------------------------------------

#[test]
fn transaction_commits_multiple_operations_atomically() {
    let mut db = university_db();
    db.transaction(|tx| {
        tx.insert(
            "student",
            &[
                ("id", Value::Int(99)),
                ("name", Value::str("late-add")),
                ("phone", Value::Array(vec![Value::str("557-9")])),
            ],
        )?;
        tx.link("advisor", &[Value::Int(99)], &[Value::Int(1)], &[])?;
        // Reads inside the transaction see its own writes.
        assert!(tx.get("student", &[Value::Int(99)])?.is_some());
        Ok(())
    })
    .unwrap();
    let rows = db
        .query("SELECT s.id FROM student s JOIN instructor i VIA advisor WHERE s.id = 99")
        .unwrap()
        .rows;
    assert_eq!(rows, vec![vec![Value::Int(99)]]);
}

#[test]
fn transaction_rolls_back_every_operation_on_error() {
    let mut db = university_db();
    let before = db.query("SELECT s.id FROM student s").unwrap().rows.len();
    let err = db
        .transaction(|tx| {
            tx.insert(
                "student",
                &[("id", Value::Int(77)), ("name", Value::str("phantom"))],
            )?;
            tx.link("advisor", &[Value::Int(77)], &[Value::Int(1)], &[])?;
            Err::<(), _>(DbError::Parse("business rule violated".into()))
        })
        .unwrap_err();
    assert_eq!(err, DbError::Parse("business rule violated".into()));
    // Nothing from the aborted transaction is visible.
    assert!(db.get("student", &[Value::Int(77)]).unwrap().is_none());
    assert_eq!(db.query("SELECT s.id FROM student s").unwrap().rows.len(), before);
    // Point lookups (secondary index paths) also see the rollback.
    let rows = db
        .query("SELECT s.name FROM student s WHERE s.id = 77")
        .unwrap()
        .rows;
    assert!(rows.is_empty());
}

#[test]
fn transaction_failed_operation_rolls_back_earlier_ones() {
    let mut db = university_db();
    let err = db
        .transaction(|tx| {
            tx.insert(
                "student",
                &[("id", Value::Int(55)), ("name", Value::str("half"))],
            )?;
            // Duplicate key: fails after the first insert succeeded.
            tx.insert(
                "student",
                &[("id", Value::Int(10)), ("name", Value::str("dup"))],
            )
        })
        .unwrap_err();
    assert!(matches!(err, DbError::Storage(_)), "{err}");
    assert!(db.get("student", &[Value::Int(55)]).unwrap().is_none());
}

#[test]
fn consolidated_entry_points_cover_former_shims() {
    // `link(.., attrs)` with an empty attribute slice and `query_with`
    // are the single entry points (the PR-3 `link_with_attrs` /
    // `query_analyze` shims are gone).
    let mut db = university_db();
    db.link("advisor", &[Value::Int(11)], &[Value::Int(1)], &[]).unwrap_or(());
    let a = db
        .query_with("SELECT s.id FROM student s", &erbium_engine::ExecContext::default())
        .unwrap();
    let b = db.query("SELECT s.id FROM student s").unwrap();
    assert_eq!(a.rows, b.rows);
    assert!(a.metrics.is_some() && b.metrics.is_none());
}

// ---- value canonicalization across ingest paths ----------------------------

/// Regression test: relationship attributes ingested as `Int` into a
/// `float` column must be canonicalized to `Float` at storage time, so
/// filters and joins on the attribute behave identically regardless of
/// which Rust literal the caller happened to use.
#[test]
fn relationship_attribute_int_ingest_canonicalizes_to_float() {
    let mut db = Database::new();
    db.execute(
        "CREATE ENTITY student (id int KEY);
         CREATE ENTITY course (id int KEY);
         CREATE RELATIONSHIP takes FROM student MANY TO course MANY (score float);",
    )
    .unwrap();
    db.install_default().unwrap();
    db.insert("student", &[("id", Value::Int(1))]).unwrap();
    db.insert("student", &[("id", Value::Int(2))]).unwrap();
    db.insert("course", &[("id", Value::Int(7))]).unwrap();
    // Mixed ingest: one link passes an Int for the float attribute, the
    // other a Float.
    db.link("takes", &[Value::Int(1)], &[Value::Int(7)], &[("score", Value::Int(4))]).unwrap();
    db.link("takes", &[Value::Int(2)], &[Value::Int(7)], &[("score", Value::Float(4.5))])
        .unwrap();

    // A float-literal filter on the relationship attribute must match the
    // Int-ingested instance.
    let rows = db
        .query(
            "SELECT s.id FROM student s JOIN course c VIA takes WHERE score = 4.0",
        )
        .unwrap()
        .rows;
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
    // And aggregating over the mixed-ingest attribute sees uniform floats.
    let rows = db
        .query("SELECT AVG(score) AS avg_score FROM student s JOIN course c VIA takes")
        .unwrap()
        .rows;
    assert_eq!(rows, vec![vec![Value::Float(4.25)]]);
}

// ---- plan cache (PR-7) -----------------------------------------------------

#[test]
fn repeated_queries_hit_the_plan_cache() {
    let db = university_db();
    const Q: &str = "SELECT p.name FROM instructor p WHERE p.id = 1";
    let first = db.query(Q).unwrap().rows;
    let s0 = db.plan_cache_stats();
    assert!(s0.misses >= 1 && s0.entries >= 1, "first run populates: {s0:?}");
    let hits_before = s0.hits;
    for _ in 0..3 {
        assert_eq!(db.query(Q).unwrap().rows, first);
    }
    // Trivially reformatted SQL shares the entry (whitespace-insensitive).
    assert_eq!(db.query("SELECT p.name  FROM instructor p\n WHERE p.id = 1").unwrap().rows, first);
    let s1 = db.plan_cache_stats();
    assert_eq!(s1.hits, hits_before + 4, "repeats must be cache hits: {s1:?}");
    assert_eq!(s1.misses, s0.misses, "no replans for repeats");
}

#[test]
fn execute_routes_selects_through_the_plan_cache() {
    let mut db = university_db();
    const SCRIPT: &str = "SELECT p.name FROM instructor p;
         SELECT s.tot_credits FROM student s WHERE s.id = 11;";
    db.execute(SCRIPT).unwrap();
    let s0 = db.plan_cache_stats();
    assert!(s0.entries >= 2, "both statements cached: {s0:?}");
    let (hits0, misses0) = (s0.hits, s0.misses);
    // Re-executing the same script must replan nothing.
    db.execute(SCRIPT).unwrap();
    let s1 = db.plan_cache_stats();
    assert_eq!(s1.hits, hits0 + 2, "re-executed statements must hit: {s1:?}");
    assert_eq!(s1.misses, misses0, "re-executed statements must not replan");
}

#[test]
fn plan_cache_invalidates_on_analyze_remap_and_policy() {
    let mut db = university_db();
    const Q: &str = "SELECT p.name FROM instructor p WHERE p.id = 1";
    let rows = db.query(Q).unwrap().rows;
    let inv0 = db.plan_cache_stats().invalidations;

    // ANALYZE: fresh statistics can change plan shape.
    db.analyze();
    let s = db.plan_cache_stats();
    assert!(s.invalidations > inv0, "ANALYZE must invalidate");
    assert_eq!(s.entries, 0, "entries purged");
    let misses_before = s.misses;
    assert_eq!(db.query(Q).unwrap().rows, rows, "same answer after replan");
    assert_eq!(db.plan_cache_stats().misses, misses_before + 1, "replanned once");

    // Remap: the physical mapping the cached plans were lowered against
    // is gone.
    let inv1 = db.plan_cache_stats().invalidations;
    db.remap(presets::inline_all_multivalued(presets::normalized(db.schema()), db.schema()))
        .unwrap();
    assert!(db.plan_cache_stats().invalidations > inv1, "remap must invalidate");
    assert_eq!(db.query(Q).unwrap().rows, rows, "same answer under the new mapping");

    // Policy change: cache hits skip the policy check, so installing a
    // policy must discard plans approved under the old one.
    let inv2 = db.plan_cache_stats().invalidations;
    db.set_policy(Some(AccessPolicy { forbidden_tags: vec!["pii".into()] }));
    assert!(db.plan_cache_stats().invalidations > inv2, "set_policy must invalidate");
    let err = db.query(Q).unwrap_err();
    assert!(matches!(err, DbError::PolicyViolation(_)), "policy enforced, not a stale hit: {err}");
}

#[test]
fn plan_cache_invalidates_on_evolve() {
    let mut db = university_db();
    const Q: &str = "SELECT p.name FROM instructor p";
    let n = db.query(Q).unwrap().rows.len();
    let inv0 = db.plan_cache_stats().invalidations;
    db.evolve(EvolutionOp::AddAttribute {
        entity: "instructor".into(),
        attribute: erbium_model::Attribute::scalar("office", erbium_model::ScalarType::Text)
            .nullable(),
        default: Value::Null,
        placement: MvPlacement::SideTable,
    })
    .unwrap();
    assert!(db.plan_cache_stats().invalidations > inv0, "evolve must invalidate");
    assert_eq!(db.query(Q).unwrap().rows.len(), n);
}
