//! The ERQL abstract syntax tree.

use erbium_model::{
    AttrType, Attribute, Cardinality, EntitySet, ModelResult, Participation, RelEnd, Relationship,
    ScalarType,
};

/// A parsed ERQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateEntity(CreateEntity),
    CreateRelationship(CreateRelationship),
    DropEntity(String),
    DropRelationship(String),
    Select(SelectStmt),
    /// `EXPLAIN SELECT ...` — show the physical plan chosen under the
    /// installed mapping instead of executing.
    Explain(SelectStmt),
    /// `INSTALL MAPPING DEFAULT` — lower the declared schema with the
    /// default (fully normalized) mapping. This is what lets a client
    /// bring an empty networked server all the way to queryable over the
    /// wire: DDL, then INSTALL, then data.
    InstallMapping,
    /// `COPY entity (attrs) FROM VALUES (...), (...)` — bulk ingest: the
    /// whole batch commits as one WAL group with secondary indexes and
    /// statistics refreshed once at the end.
    Copy(CopyStmt),
}

/// `COPY entity (a, b, ...) FROM VALUES (1, 'x', ...), (2, 'y', ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyStmt {
    pub entity: String,
    /// Attribute names, in the order the value tuples supply them.
    pub columns: Vec<String>,
    /// Literal tuples; each must match `columns` in arity.
    pub rows: Vec<Vec<Literal>>,
}

/// `CREATE [WEAK] ENTITY name [EXTENDS parent] [OWNED BY owner VIA rel]
/// (attr defs) [SPECIALIZATION ...] [DESCRIPTION '...']`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateEntity {
    pub name: String,
    pub parent: Option<String>,
    /// `(owner, identifying relationship)` for weak entity sets.
    pub weak: Option<(String, String)>,
    pub attributes: Vec<AttrDef>,
    /// Specialization annotations on a superclass (set when declared).
    pub total: Option<bool>,
    pub disjoint: Option<bool>,
    pub description: Option<String>,
}

/// One attribute definition in DDL.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDef {
    pub name: String,
    pub ty: AttrDefType,
    pub key: bool,
    pub multi_valued: bool,
    pub nullable: bool,
    pub description: Option<String>,
    pub tags: Vec<String>,
}

/// Attribute types in DDL: a named scalar or an inline composite.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrDefType {
    Scalar(String),
    Composite(Vec<AttrDef>),
}

/// `CREATE RELATIONSHIP name FROM e1 [ROLE r] <MANY|ONE> [TOTAL|PARTIAL]
/// TO e2 [ROLE r] <MANY|ONE> [TOTAL|PARTIAL] [(attrs)] [DESCRIPTION '...']`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateRelationship {
    pub name: String,
    pub from: EndDef,
    pub to: EndDef,
    pub attributes: Vec<AttrDef>,
    pub description: Option<String>,
}

/// One relationship end in DDL.
#[derive(Debug, Clone, PartialEq)]
pub struct EndDef {
    pub entity: String,
    pub role: Option<String>,
    pub many: bool,
    pub total: bool,
}

/// A SELECT statement over the logical E/R schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<QExpr>,
    /// Explicit GROUP BY (optional — inferred from the select list when
    /// aggregates or NEST items are present and this is empty).
    pub group_by: Vec<QExpr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
}

/// An entity reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub entity: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference binds in the query scope.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.entity)
    }
}

/// `JOIN entity [alias] [VIA relationship] [ON expr]`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: TableRef,
    /// Relationship name — the paper's headline query extension.
    pub via: Option<String>,
    /// Explicit join predicate (standard SQL fallback).
    pub on: Option<QExpr>,
    pub left: bool,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Plain expression (may contain aggregates).
    Expr { expr: QExpr, alias: Option<String> },
    /// `NEST(e1 [AS n1], ...) AS name` — hierarchical output.
    Nest { items: Vec<(QExpr, Option<String>)>, alias: Option<String> },
    /// `*` or `alias.*`.
    Wildcard { qualifier: Option<String> },
}

/// Sort specification.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: QExpr,
    pub desc: bool,
}

/// Literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

/// Binary operators at the language level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Aggregate function names at the language level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QAggFunc {
    Count,
    CountStar,
    Sum,
    Avg,
    Min,
    Max,
    ArrayAgg,
}

/// Query-level scalar expressions, resolved against the E/R schema by the
/// mapping layer.
#[derive(Debug, Clone, PartialEq)]
pub enum QExpr {
    /// `attr` or `alias.attr`.
    Column { qualifier: Option<String>, name: String },
    /// Composite-attribute field access: `alias.attr.field`.
    FieldAccess { base: Box<QExpr>, field: String },
    Lit(Literal),
    /// Positional `?` placeholder, numbered left to right from 0 within
    /// one statement. Bound to a value at execute time (prepared
    /// statements); the `?`-template is what the plan cache keys on.
    Param(u16),
    Binary { op: QBinOp, left: Box<QExpr>, right: Box<QExpr> },
    Not(Box<QExpr>),
    Neg(Box<QExpr>),
    /// Aggregate call; `distinct` only meaningful for COUNT.
    Agg { func: QAggFunc, arg: Option<Box<QExpr>>, distinct: bool },
    /// Scalar function call by name (resolved by the mapping layer).
    Call { name: String, args: Vec<QExpr> },
    /// `UNNEST(multi_valued_attr)` in the select list.
    Unnest(Box<QExpr>),
    InList { expr: Box<QExpr>, list: Vec<Literal> },
    IsNull(Box<QExpr>),
    IsNotNull(Box<QExpr>),
}

impl QExpr {
    pub fn column(name: impl Into<String>) -> QExpr {
        QExpr::Column { qualifier: None, name: name.into() }
    }

    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> QExpr {
        QExpr::Column { qualifier: Some(qualifier.into()), name: name.into() }
    }

    /// Does this expression contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            QExpr::Agg { .. } => true,
            QExpr::Column { .. } | QExpr::Lit(_) | QExpr::Param(_) => false,
            QExpr::FieldAccess { base, .. } => base.contains_aggregate(),
            QExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            QExpr::Not(e) | QExpr::Neg(e) | QExpr::Unnest(e) => e.contains_aggregate(),
            QExpr::Call { args, .. } => args.iter().any(QExpr::contains_aggregate),
            QExpr::InList { expr, .. } => expr.contains_aggregate(),
            QExpr::IsNull(e) | QExpr::IsNotNull(e) => e.contains_aggregate(),
        }
    }

    /// Does this expression contain an `UNNEST` call?
    pub fn contains_unnest(&self) -> bool {
        match self {
            QExpr::Unnest(_) => true,
            QExpr::Column { .. } | QExpr::Lit(_) | QExpr::Param(_) => false,
            QExpr::FieldAccess { base, .. } => base.contains_unnest(),
            QExpr::Binary { left, right, .. } => left.contains_unnest() || right.contains_unnest(),
            QExpr::Not(e) | QExpr::Neg(e) => e.contains_unnest(),
            QExpr::Call { args, .. } => args.iter().any(QExpr::contains_unnest),
            QExpr::Agg { arg, .. } => arg.as_ref().map(|a| a.contains_unnest()).unwrap_or(false),
            QExpr::InList { expr, .. } => expr.contains_unnest(),
            QExpr::IsNull(e) | QExpr::IsNotNull(e) => e.contains_unnest(),
        }
    }
}

// ---- DDL → model conversions -------------------------------------------------

impl AttrDef {
    /// Convert to a model [`Attribute`].
    pub fn to_attribute(&self) -> ModelResult<Attribute> {
        let ty = match &self.ty {
            AttrDefType::Scalar(name) => AttrType::Scalar(parse_scalar(name)?),
            AttrDefType::Composite(fields) => AttrType::Composite(
                fields.iter().map(AttrDef::to_attribute).collect::<ModelResult<_>>()?,
            ),
        };
        Ok(Attribute {
            name: self.name.clone(),
            ty,
            multi_valued: self.multi_valued,
            optional: self.nullable,
            description: self.description.clone(),
            tags: self.tags.clone(),
        })
    }
}

fn parse_scalar(name: &str) -> ModelResult<ScalarType> {
    match name.to_ascii_lowercase().as_str() {
        "int" | "integer" | "bigint" => Ok(ScalarType::Int),
        "float" | "double" | "real" => Ok(ScalarType::Float),
        "text" | "varchar" | "string" => Ok(ScalarType::Text),
        "bool" | "boolean" => Ok(ScalarType::Bool),
        other => Err(erbium_model::ModelError::Invalid(format!("unknown scalar type '{other}'"))),
    }
}

impl CreateEntity {
    /// Convert to a model [`EntitySet`].
    pub fn to_entity_set(&self) -> ModelResult<EntitySet> {
        let attributes: Vec<Attribute> =
            self.attributes.iter().map(AttrDef::to_attribute).collect::<ModelResult<_>>()?;
        let key: Vec<String> =
            self.attributes.iter().filter(|a| a.key).map(|a| a.name.clone()).collect();
        let mut e = EntitySet {
            name: self.name.clone(),
            attributes,
            key,
            parent: self.parent.clone(),
            specialization: erbium_model::Specialization {
                total: self.total.unwrap_or(false),
                disjoint: self.disjoint.unwrap_or(true),
            },
            weak: self.weak.as_ref().map(|(owner, rel)| erbium_model::WeakInfo {
                owner: owner.clone(),
                identifying_relationship: rel.clone(),
            }),
            description: self.description.clone(),
        };
        if e.is_subclass() {
            e.key.clear(); // keys are inherited; tolerate stray KEY markers
        }
        Ok(e)
    }
}

impl CreateRelationship {
    /// Convert to a model [`Relationship`].
    pub fn to_relationship(&self) -> ModelResult<Relationship> {
        let end = |d: &EndDef| RelEnd {
            entity: d.entity.clone(),
            role: d.role.clone(),
            cardinality: if d.many { Cardinality::Many } else { Cardinality::One },
            participation: if d.total { Participation::Total } else { Participation::Partial },
        };
        Ok(Relationship {
            name: self.name.clone(),
            from: end(&self.from),
            to: end(&self.to),
            attributes: self
                .attributes
                .iter()
                .map(AttrDef::to_attribute)
                .collect::<ModelResult<_>>()?,
            description: self.description.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erbium_model::Cardinality;

    fn attr(name: &str, ty: &str) -> AttrDef {
        AttrDef {
            name: name.into(),
            ty: AttrDefType::Scalar(ty.into()),
            key: false,
            multi_valued: false,
            nullable: false,
            description: None,
            tags: vec![],
        }
    }

    #[test]
    fn scalar_type_aliases() {
        for (name, expected) in [
            ("int", ScalarType::Int),
            ("INTEGER", ScalarType::Int),
            ("bigint", ScalarType::Int),
            ("float", ScalarType::Float),
            ("DOUBLE", ScalarType::Float),
            ("varchar", ScalarType::Text),
            ("string", ScalarType::Text),
            ("boolean", ScalarType::Bool),
        ] {
            let a = attr("x", name).to_attribute().unwrap();
            assert_eq!(a.ty, AttrType::Scalar(expected), "{name}");
        }
        assert!(attr("x", "jsonb").to_attribute().is_err());
    }

    #[test]
    fn nested_composite_conversion() {
        let mut inner = attr("lat", "float");
        inner.multi_valued = true;
        let def = AttrDef {
            name: "geo".into(),
            ty: AttrDefType::Composite(vec![inner]),
            key: false,
            multi_valued: false,
            nullable: true,
            description: Some("where".into()),
            tags: vec!["pii".into()],
        };
        let a = def.to_attribute().unwrap();
        assert!(a.optional && a.has_tag("pii"));
        match &a.ty {
            AttrType::Composite(fields) => assert!(fields[0].multi_valued),
            other => panic!("expected composite, got {other:?}"),
        }
    }

    #[test]
    fn subclass_key_markers_tolerated_but_cleared() {
        let mut id = attr("id", "int");
        id.key = true;
        let ce = CreateEntity {
            name: "child".into(),
            parent: Some("parent".into()),
            weak: None,
            attributes: vec![id],
            total: None,
            disjoint: None,
            description: None,
        };
        let es = ce.to_entity_set().unwrap();
        assert!(es.key.is_empty(), "subclasses inherit the key");
        assert!(es.is_subclass());
    }

    #[test]
    fn relationship_conversion_cardinalities() {
        let cr = CreateRelationship {
            name: "r".into(),
            from: EndDef { entity: "a".into(), role: Some("x".into()), many: true, total: true },
            to: EndDef { entity: "b".into(), role: None, many: false, total: false },
            attributes: vec![attr("since", "int")],
            description: Some("d".into()),
        };
        let r = cr.to_relationship().unwrap();
        assert_eq!(r.from.cardinality, Cardinality::Many);
        assert_eq!(r.to.cardinality, Cardinality::One);
        assert_eq!(r.from.participation, erbium_model::Participation::Total);
        assert_eq!(r.from.role.as_deref(), Some("x"));
        assert_eq!(r.attributes.len(), 1);
        assert!(r.is_many_to_one());
    }

    #[test]
    fn weak_entity_conversion() {
        let mut d = attr("no", "int");
        d.key = true;
        let ce = CreateEntity {
            name: "w".into(),
            parent: None,
            weak: Some(("owner".into(), "ident".into())),
            attributes: vec![d],
            total: None,
            disjoint: None,
            description: None,
        };
        let es = ce.to_entity_set().unwrap();
        assert!(es.is_weak());
        assert_eq!(es.weak.as_ref().unwrap().owner, "owner");
        assert_eq!(es.key, vec!["no"]);
    }
}
