//! # erbium-query
//!
//! ERQL — the SQL-like language of ErbiumDB, spoken against the **logical
//! E/R schema** rather than physical tables.
//!
//! The paper (Section 2) extends SQL in two ways, both supported here:
//!
//! 1. **Relationship joins** — `JOIN student VIA advisor` names the E/R
//!    relationship connecting two entity sets instead of spelling out key
//!    equalities (which differ per physical mapping);
//! 2. **Hierarchical outputs** — `NEST(expr, ...) AS name` in the SELECT
//!    clause builds nested results natively (the paper borrows Apache
//!    DataFusion's syntax for this). `GROUP BY` is inferred from the
//!    non-aggregate, non-nested select items, as the paper proposes.
//!
//! The DDL mirrors Figure 1(ii): `CREATE ENTITY` with composite and
//! `MULTIVALUED` attributes, `EXTENDS` for specialization (with
//! `TOTAL/PARTIAL` + `DISJOINT/OVERLAPPING` annotations), `CREATE WEAK
//! ENTITY ... OWNED BY ... VIA ...`, and `CREATE RELATIONSHIP ... FROM e1
//! <card> TO e2 <card>` with participation constraints, plus `DESCRIPTION`
//! and `TAG` clauses for documentation and governance metadata.
//!
//! ```
//! use erbium_query::parse;
//! let stmts = parse(
//!     "CREATE ENTITY person (
//!          id int KEY,
//!          name text TAG 'pii',
//!          address (street text, city text) NULLABLE,
//!          phone text MULTIVALUED
//!      ) DESCRIPTION 'people on campus';
//!      SELECT p.name, NEST(s.sec_id, s.year) AS sections
//!      FROM person p JOIN section s VIA teaches
//!      WHERE p.id = 42;",
//! ).unwrap();
//! assert_eq!(stmts.len(), 2);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use error::{ParseError, ParseResult};
pub use parser::{parse, parse_expression, parse_single};

/// Split a multi-statement script into the source text of each statement,
/// without parsing. Splitting happens at lexed `;` tokens, so semicolons
/// inside string literals and comments don't break statements. Empty
/// pieces (leading/trailing/double semicolons) are dropped.
///
/// Callers that execute scripts statement-by-statement use this to
/// preserve each statement's own SQL text — which is what a plan cache
/// keys on — instead of re-serializing the parsed AST.
pub fn split_statements(script: &str) -> ParseResult<Vec<&str>> {
    let tokens = lexer::lex(script)?;
    let mut out = Vec::new();
    let mut start = 0usize;
    // Track whether the current piece contains any real token, so pieces
    // that are empty or comment-only (e.g. a trailing `-- note` after the
    // last semicolon) are dropped instead of handed to the parser.
    let mut has_token = false;
    for t in &tokens {
        if matches!(t.token, lexer::Token::Semi) {
            if has_token {
                out.push(script[start..t.offset].trim());
            }
            start = t.offset + 1;
            has_token = false;
        } else {
            has_token = true;
        }
    }
    if has_token {
        out.push(script[start..].trim());
    }
    Ok(out)
}

#[cfg(test)]
mod split_tests {
    use super::split_statements;

    #[test]
    fn splits_on_semicolons_outside_literals() {
        let pieces =
            split_statements("SELECT ';' FROM t; -- trailing; comment\n SELECT 2;;").unwrap();
        assert_eq!(pieces, vec!["SELECT ';' FROM t", "-- trailing; comment\n SELECT 2"]);
    }

    #[test]
    fn empty_script_yields_nothing() {
        assert!(split_statements("  ;; \n").unwrap().is_empty());
        assert!(
            split_statements("-- only a comment; nothing else\n").unwrap().is_empty(),
            "comment-only scripts produce no statements"
        );
    }
}
