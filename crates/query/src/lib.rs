//! # erbium-query
//!
//! ERQL — the SQL-like language of ErbiumDB, spoken against the **logical
//! E/R schema** rather than physical tables.
//!
//! The paper (Section 2) extends SQL in two ways, both supported here:
//!
//! 1. **Relationship joins** — `JOIN student VIA advisor` names the E/R
//!    relationship connecting two entity sets instead of spelling out key
//!    equalities (which differ per physical mapping);
//! 2. **Hierarchical outputs** — `NEST(expr, ...) AS name` in the SELECT
//!    clause builds nested results natively (the paper borrows Apache
//!    DataFusion's syntax for this). `GROUP BY` is inferred from the
//!    non-aggregate, non-nested select items, as the paper proposes.
//!
//! The DDL mirrors Figure 1(ii): `CREATE ENTITY` with composite and
//! `MULTIVALUED` attributes, `EXTENDS` for specialization (with
//! `TOTAL/PARTIAL` + `DISJOINT/OVERLAPPING` annotations), `CREATE WEAK
//! ENTITY ... OWNED BY ... VIA ...`, and `CREATE RELATIONSHIP ... FROM e1
//! <card> TO e2 <card>` with participation constraints, plus `DESCRIPTION`
//! and `TAG` clauses for documentation and governance metadata.
//!
//! ```
//! use erbium_query::parse;
//! let stmts = parse(
//!     "CREATE ENTITY person (
//!          id int KEY,
//!          name text TAG 'pii',
//!          address (street text, city text) NULLABLE,
//!          phone text MULTIVALUED
//!      ) DESCRIPTION 'people on campus';
//!      SELECT p.name, NEST(s.sec_id, s.year) AS sections
//!      FROM person p JOIN section s VIA teaches
//!      WHERE p.id = 42;",
//! ).unwrap();
//! assert_eq!(stmts.len(), 2);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use error::{ParseError, ParseResult};
pub use parser::{parse, parse_expression, parse_single};
