//! Recursive-descent parser for ERQL.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::lexer::{lex, Spanned, Token};

/// Parse a script of `;`-separated statements.
pub fn parse(input: &str) -> ParseResult<Vec<Statement>> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0, next_param: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.statement()?);
        while p.eat(&Token::Semi) {}
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_single(input: &str) -> ParseResult<Statement> {
    let mut stmts = parse(input)?;
    match stmts.len() {
        1 => Ok(stmts.pop().expect("checked")),
        n => Err(ParseError::new(format!("expected exactly one statement, found {n}"), 0)),
    }
}

/// Parse a standalone scalar expression (used in tests and by the advisor's
/// workload templates).
pub fn parse_expression(input: &str) -> ParseResult<QExpr> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0, next_param: 0 };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Next positional `?` parameter number. Placeholders are numbered
    /// left to right within one statement; reset at each statement start.
    next_param: u16,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|s| s.offset).unwrap_or_else(|| {
            self.tokens.last().map(|s| s.offset + 1).unwrap_or(0)
        })
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.offset())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Token::Keyword(k)) if k == kw => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn expect(&mut self, t: &Token) -> ParseResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> ParseResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    /// Accept an identifier (or non-reserved keyword used as a name).
    fn ident(&mut self) -> ParseResult<String> {
        match self.peek().cloned() {
            Some(Token::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string(&mut self) -> ParseResult<String> {
        match self.peek().cloned() {
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected string literal, found {other:?}"))),
        }
    }

    // ---- statements --------------------------------------------------------

    fn statement(&mut self) -> ParseResult<Statement> {
        self.next_param = 0;
        if self.peek_kw("CREATE") {
            self.create()
        } else if self.eat_kw("DROP") {
            if self.eat_kw("ENTITY") {
                Ok(Statement::DropEntity(self.ident()?))
            } else if self.eat_kw("RELATIONSHIP") {
                Ok(Statement::DropRelationship(self.ident()?))
            } else {
                Err(self.err("expected ENTITY or RELATIONSHIP after DROP"))
            }
        } else if self.peek_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("EXPLAIN") {
            Ok(Statement::Explain(self.select()?))
        } else if self.eat_kw("INSTALL") {
            self.expect_kw("MAPPING")?;
            self.expect_kw("DEFAULT")?;
            Ok(Statement::InstallMapping)
        } else if self.eat_kw("COPY") {
            self.copy()
        } else {
            Err(self.err(format!("expected statement, found {:?}", self.peek())))
        }
    }

    fn create(&mut self) -> ParseResult<Statement> {
        self.expect_kw("CREATE")?;
        let weak = self.eat_kw("WEAK");
        if self.eat_kw("ENTITY") {
            let name = self.ident()?;
            let parent = if self.eat_kw("EXTENDS") { Some(self.ident()?) } else { None };
            let weak_info = if self.eat_kw("OWNED") {
                self.expect_kw("BY")?;
                let owner = self.ident()?;
                self.expect_kw("VIA")?;
                let rel = self.ident()?;
                Some((owner, rel))
            } else {
                None
            };
            if weak && weak_info.is_none() {
                return Err(self.err("WEAK ENTITY requires OWNED BY ... VIA ..."));
            }
            self.expect(&Token::LParen)?;
            let attributes = self.attr_defs()?;
            self.expect(&Token::RParen)?;
            let mut total = None;
            let mut disjoint = None;
            loop {
                if self.eat_kw("TOTAL") {
                    total = Some(true);
                } else if self.eat_kw("PARTIAL") {
                    total = Some(false);
                } else if self.eat_kw("DISJOINT") {
                    disjoint = Some(true);
                } else if self.eat_kw("OVERLAPPING") {
                    disjoint = Some(false);
                } else {
                    break;
                }
            }
            let description =
                if self.eat_kw("DESCRIPTION") { Some(self.string()?) } else { None };
            Ok(Statement::CreateEntity(CreateEntity {
                name,
                parent,
                weak: weak_info,
                attributes,
                total,
                disjoint,
                description,
            }))
        } else if self.eat_kw("RELATIONSHIP") {
            let name = self.ident()?;
            self.expect_kw("FROM")?;
            let from = self.end_def()?;
            self.expect_kw("TO")?;
            let to = self.end_def()?;
            let attributes = if self.eat(&Token::LParen) {
                let a = self.attr_defs()?;
                self.expect(&Token::RParen)?;
                a
            } else {
                Vec::new()
            };
            let description =
                if self.eat_kw("DESCRIPTION") { Some(self.string()?) } else { None };
            Ok(Statement::CreateRelationship(CreateRelationship {
                name,
                from,
                to,
                attributes,
                description,
            }))
        } else {
            Err(self.err("expected ENTITY or RELATIONSHIP after CREATE"))
        }
    }

    /// `COPY entity (a, b, ...) FROM VALUES (...), (...)` — the leading
    /// `COPY` keyword has already been consumed.
    fn copy(&mut self) -> ParseResult<Statement> {
        let entity = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = vec![self.ident()?];
        while self.eat(&Token::Comma) {
            columns.push(self.ident()?);
        }
        self.expect(&Token::RParen)?;
        self.expect_kw("FROM")?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.literal()?];
            while self.eat(&Token::Comma) {
                row.push(self.literal()?);
            }
            self.expect(&Token::RParen)?;
            if row.len() != columns.len() {
                return Err(self.err(format!(
                    "COPY tuple has {} values, expected {}",
                    row.len(),
                    columns.len()
                )));
            }
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Copy(CopyStmt { entity, columns, rows }))
    }

    fn end_def(&mut self) -> ParseResult<EndDef> {
        let entity = self.ident()?;
        let role = if self.eat_kw("ROLE") { Some(self.ident()?) } else { None };
        let many = if self.eat_kw("MANY") {
            true
        } else if self.eat_kw("ONE") {
            false
        } else {
            return Err(self.err("expected MANY or ONE cardinality"));
        };
        let total = if self.eat_kw("TOTAL") {
            true
        } else {
            self.eat_kw("PARTIAL");
            false
        };
        Ok(EndDef { entity, role, many, total })
    }

    fn attr_defs(&mut self) -> ParseResult<Vec<AttrDef>> {
        let mut out = Vec::new();
        loop {
            if matches!(self.peek(), Some(Token::RParen)) {
                break;
            }
            out.push(self.attr_def()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn attr_def(&mut self) -> ParseResult<AttrDef> {
        let name = self.ident()?;
        let ty = if self.eat(&Token::LParen) {
            let fields = self.attr_defs()?;
            self.expect(&Token::RParen)?;
            AttrDefType::Composite(fields)
        } else {
            AttrDefType::Scalar(self.ident()?)
        };
        let mut def = AttrDef {
            name,
            ty,
            key: false,
            multi_valued: false,
            nullable: false,
            description: None,
            tags: Vec::new(),
        };
        loop {
            if self.eat_kw("KEY") {
                def.key = true;
            } else if self.eat_kw("MULTIVALUED") {
                def.multi_valued = true;
            } else if self.eat_kw("NULLABLE") {
                def.nullable = true;
            } else if self.eat_kw("DESCRIPTION") {
                def.description = Some(self.string()?);
            } else if self.eat_kw("TAG") {
                def.tags.push(self.string()?);
            } else {
                break;
            }
        }
        Ok(def)
    }

    // ---- SELECT -------------------------------------------------------------

    fn select(&mut self) -> ParseResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let left = if self.peek_kw("LEFT") {
                // LEFT JOIN
                self.pos += 1;
                self.expect_kw("JOIN")?;
                true
            } else if self.eat_kw("JOIN") {
                false
            } else {
                break;
            };
            let table = self.table_ref()?;
            let via = if self.eat_kw("VIA") { Some(self.ident()?) } else { None };
            let on = if self.eat_kw("ON") { Some(self.expr()?) } else { None };
            joins.push(JoinClause { table, via, on, left });
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(self.err(format!("expected LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt { distinct, items, from, joins, where_clause, group_by, order_by, limit })
    }

    fn table_ref(&mut self) -> ParseResult<TableRef> {
        let entity = self.ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(_)) => Some(self.ident()?),
            _ => None,
        };
        Ok(TableRef { entity, alias })
    }

    fn select_item(&mut self) -> ParseResult<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard { qualifier: None });
        }
        // alias.* wildcard
        if let (Some(Token::Ident(q)), Some(Token::Dot), Some(Token::Star)) = (
            self.tokens.get(self.pos).map(|s| &s.token),
            self.tokens.get(self.pos + 1).map(|s| &s.token),
            self.tokens.get(self.pos + 2).map(|s| &s.token),
        ) {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem::Wildcard { qualifier: Some(q) });
        }
        if self.eat_kw("NEST") {
            self.expect(&Token::LParen)?;
            let mut items = Vec::new();
            loop {
                let e = self.expr()?;
                let alias = self.optional_alias()?;
                items.push((e, alias));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            let alias = self.optional_alias()?;
            return Ok(SelectItem::Nest { items, alias });
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> ParseResult<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        if let Some(Token::Ident(_)) = self.peek() {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    // ---- expressions ---------------------------------------------------------

    fn expr(&mut self) -> ParseResult<QExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> ParseResult<QExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = QExpr::Binary { op: QBinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> ParseResult<QExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = QExpr::Binary { op: QBinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> ParseResult<QExpr> {
        if self.eat_kw("NOT") {
            Ok(QExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> ParseResult<QExpr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(QBinOp::Eq),
            Some(Token::Ne) => Some(QBinOp::Ne),
            Some(Token::Lt) => Some(QBinOp::Lt),
            Some(Token::Le) => Some(QBinOp::Le),
            Some(Token::Gt) => Some(QBinOp::Gt),
            Some(Token::Ge) => Some(QBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            return Ok(QExpr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(if negated {
                QExpr::IsNotNull(Box::new(left))
            } else {
                QExpr::IsNull(Box::new(left))
            });
        }
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(QExpr::InList { expr: Box::new(left), list });
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> ParseResult<QExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => QBinOp::Add,
                Some(Token::Minus) => QBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = QExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> ParseResult<QExpr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => QBinOp::Mul,
                Some(Token::Slash) => QBinOp::Div,
                Some(Token::Percent) => QBinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = QExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> ParseResult<QExpr> {
        if self.eat(&Token::Minus) {
            return Ok(QExpr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> ParseResult<QExpr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(QExpr::Lit(Literal::Int(n)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(QExpr::Lit(Literal::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(QExpr::Lit(Literal::Str(s)))
            }
            Some(Token::Qmark) => {
                self.pos += 1;
                let n = self.next_param;
                self.next_param = n.checked_add(1).ok_or_else(|| {
                    ParseError::new("too many `?` parameters in one statement", self.offset())
                })?;
                Ok(QExpr::Param(n))
            }
            Some(Token::Keyword(k)) => match k.as_str() {
                "NULL" => {
                    self.pos += 1;
                    Ok(QExpr::Lit(Literal::Null))
                }
                "TRUE" => {
                    self.pos += 1;
                    Ok(QExpr::Lit(Literal::Bool(true)))
                }
                "FALSE" => {
                    self.pos += 1;
                    Ok(QExpr::Lit(Literal::Bool(false)))
                }
                "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "ARRAY_AGG" => self.agg_call(&k),
                "UNNEST" => {
                    self.pos += 1;
                    self.expect(&Token::LParen)?;
                    let e = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(QExpr::Unnest(Box::new(e)))
                }
                other => Err(self.err(format!("unexpected keyword {other} in expression"))),
            },
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                // function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(QExpr::Call { name: name.to_ascii_lowercase(), args });
                }
                // qualified column / field access chain
                let mut expr = QExpr::Column { qualifier: None, name };
                while self.eat(&Token::Dot) {
                    let field = self.ident()?;
                    expr = match expr {
                        QExpr::Column { qualifier: None, name } => {
                            QExpr::Column { qualifier: Some(name), name: field }
                        }
                        other => QExpr::FieldAccess { base: Box::new(other), field },
                    };
                }
                Ok(expr)
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn agg_call(&mut self, kw: &str) -> ParseResult<QExpr> {
        self.pos += 1;
        self.expect(&Token::LParen)?;
        if kw == "COUNT" && self.eat(&Token::Star) {
            self.expect(&Token::RParen)?;
            return Ok(QExpr::Agg { func: QAggFunc::CountStar, arg: None, distinct: false });
        }
        let distinct = self.eat_kw("DISTINCT");
        let arg = self.expr()?;
        self.expect(&Token::RParen)?;
        let func = match kw {
            "COUNT" => QAggFunc::Count,
            "SUM" => QAggFunc::Sum,
            "AVG" => QAggFunc::Avg,
            "MIN" => QAggFunc::Min,
            "MAX" => QAggFunc::Max,
            "ARRAY_AGG" => QAggFunc::ArrayAgg,
            _ => unreachable!("caller checked"),
        };
        Ok(QExpr::Agg { func, arg: Some(Box::new(arg)), distinct })
    }

    fn literal(&mut self) -> ParseResult<Literal> {
        match self.advance() {
            Some(Token::Int(n)) => Ok(Literal::Int(n)),
            Some(Token::Float(x)) => Ok(Literal::Float(x)),
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Literal::Null),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Literal::Bool(true)),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Literal::Bool(false)),
            Some(Token::Minus) => match self.advance() {
                Some(Token::Int(n)) => Ok(Literal::Int(-n)),
                Some(Token::Float(x)) => Ok(Literal::Float(-x)),
                other => Err(self.err(format!("expected number after '-', found {other:?}"))),
            },
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_entity_with_composite_and_multivalued() {
        let stmt = parse_single(
            "CREATE ENTITY person (
                id int KEY,
                name text TAG 'pii',
                address (street text, city text) NULLABLE,
                phone text MULTIVALUED
            ) PARTIAL DISJOINT DESCRIPTION 'people'",
        )
        .unwrap();
        match stmt {
            Statement::CreateEntity(ce) => {
                assert_eq!(ce.name, "person");
                assert_eq!(ce.attributes.len(), 4);
                assert!(ce.attributes[0].key);
                assert_eq!(ce.attributes[1].tags, vec!["pii"]);
                assert!(matches!(ce.attributes[2].ty, AttrDefType::Composite(ref f) if f.len() == 2));
                assert!(ce.attributes[3].multi_valued);
                assert_eq!(ce.total, Some(false));
                assert_eq!(ce.disjoint, Some(true));
                assert_eq!(ce.description.as_deref(), Some("people"));
                let es = ce.to_entity_set().unwrap();
                assert_eq!(es.key, vec!["id"]);
            }
            other => panic!("expected CreateEntity, got {other:?}"),
        }
    }

    #[test]
    fn parse_subclass_and_weak_entity() {
        let stmts = parse(
            "CREATE ENTITY instructor EXTENDS person (rank text NULLABLE);
             CREATE WEAK ENTITY section OWNED BY course VIA sec_of (sec_id int KEY);",
        )
        .unwrap();
        match &stmts[0] {
            Statement::CreateEntity(ce) => assert_eq!(ce.parent.as_deref(), Some("person")),
            other => panic!("unexpected {other:?}"),
        }
        match &stmts[1] {
            Statement::CreateEntity(ce) => {
                assert_eq!(ce.weak, Some(("course".to_string(), "sec_of".to_string())));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn weak_without_owner_rejected() {
        assert!(parse("CREATE WEAK ENTITY s (x int KEY)").is_err());
    }

    #[test]
    fn parse_relationship() {
        let stmt = parse_single(
            "CREATE RELATIONSHIP takes FROM student MANY TO section MANY (grade text NULLABLE)",
        )
        .unwrap();
        match stmt {
            Statement::CreateRelationship(cr) => {
                assert!(cr.from.many && cr.to.many);
                assert_eq!(cr.attributes.len(), 1);
                let r = cr.to_relationship().unwrap();
                assert!(r.is_many_to_many());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_relationship_with_roles_and_participation() {
        let stmt = parse_single(
            "CREATE RELATIONSHIP manages FROM emp ROLE report MANY TOTAL TO emp ROLE boss ONE",
        )
        .unwrap();
        match stmt {
            Statement::CreateRelationship(cr) => {
                assert_eq!(cr.from.role.as_deref(), Some("report"));
                assert!(cr.from.total);
                assert!(!cr.to.many);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_select_with_via_and_nest() {
        let stmt = parse_single(
            "SELECT d.dept_name, NEST(c.course_id, c.title AS t) AS courses
             FROM department d
             JOIN course c VIA offered_by
             WHERE d.building = 'X' AND c.credits >= 3
             ORDER BY d.dept_name DESC
             LIMIT 10",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.items.len(), 2);
                assert!(matches!(&s.items[1], SelectItem::Nest { items, alias }
                    if items.len() == 2 && alias.as_deref() == Some("courses")));
                assert_eq!(s.joins.len(), 1);
                assert_eq!(s.joins[0].via.as_deref(), Some("offered_by"));
                assert!(s.where_clause.is_some());
                assert!(s.order_by[0].desc);
                assert_eq!(s.limit, Some(10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_aggregates_and_inferred_grouping() {
        let stmt = parse_single(
            "SELECT i.id, AVG(s.tot_credits) FROM instructor i JOIN student s VIA advisor",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(matches!(&s.items[1], SelectItem::Expr { expr, .. } if expr.contains_aggregate()));
                assert!(s.group_by.is_empty(), "group by left for inference");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_count_star_and_distinct() {
        let e = parse_expression("COUNT(*)").unwrap();
        assert_eq!(e, QExpr::Agg { func: QAggFunc::CountStar, arg: None, distinct: false });
        let e = parse_expression("COUNT(DISTINCT x)").unwrap();
        assert!(matches!(e, QExpr::Agg { func: QAggFunc::Count, distinct: true, .. }));
    }

    #[test]
    fn parse_unnest_and_functions() {
        let stmt =
            parse_single("SELECT r.r_id, UNNEST(r.r_mv1) FROM R r WHERE array_len(r.r_mv2) > 2")
                .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(matches!(&s.items[1], SelectItem::Expr { expr, .. } if expr.contains_unnest()));
                assert!(matches!(&s.where_clause, Some(QExpr::Binary { .. })));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_in_list_and_is_null() {
        let e = parse_expression("x IN (1, 2, 3)").unwrap();
        assert!(matches!(e, QExpr::InList { list, .. } if list.len() == 3));
        let e = parse_expression("a.b IS NOT NULL").unwrap();
        assert!(matches!(e, QExpr::IsNotNull(_)));
    }

    #[test]
    fn field_access_chain() {
        let e = parse_expression("p.address.city").unwrap();
        match e {
            QExpr::FieldAccess { base, field } => {
                assert_eq!(field, "city");
                assert_eq!(*base, QExpr::qualified("p", "address"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let e = parse_expression("1 + 2 * 3 = 7 AND NOT FALSE").unwrap();
        // Shape: ((1 + (2*3)) = 7) AND (NOT FALSE)
        match e {
            QExpr::Binary { op: QBinOp::And, left, right } => {
                assert!(matches!(*left, QExpr::Binary { op: QBinOp::Eq, .. }));
                assert!(matches!(*right, QExpr::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_variants() {
        let stmt = parse_single("SELECT *, s.* FROM S s").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(matches!(&s.items[0], SelectItem::Wildcard { qualifier: None }));
                assert!(
                    matches!(&s.items[1], SelectItem::Wildcard { qualifier: Some(q) } if q == "s")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn left_join_and_on() {
        let stmt =
            parse_single("SELECT * FROM a LEFT JOIN b ON a.x = b.y JOIN c VIA r").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(s.joins[0].left);
                assert!(s.joins[0].on.is_some());
                assert!(!s.joins[1].left);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(err.offset > 0);
    }

    #[test]
    fn drop_statements() {
        let stmts = parse("DROP ENTITY x; DROP RELATIONSHIP y;").unwrap();
        assert_eq!(stmts[0], Statement::DropEntity("x".into()));
        assert_eq!(stmts[1], Statement::DropRelationship("y".into()));
    }

    #[test]
    fn group_by_explicit() {
        let stmt = parse_single("SELECT x, COUNT(*) FROM t GROUP BY x").unwrap();
        match stmt {
            Statement::Select(s) => assert_eq!(s.group_by.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn copy_from_values() {
        let stmt = parse_single(
            "COPY student (sid, name, gpa, active) FROM VALUES \
             (1, 'ada', 3.9, TRUE), (-2, 'bob', NULL, FALSE)",
        )
        .unwrap();
        let Statement::Copy(c) = stmt else { panic!("expected COPY") };
        assert_eq!(c.entity, "student");
        assert_eq!(c.columns, vec!["sid", "name", "gpa", "active"]);
        assert_eq!(
            c.rows,
            vec![
                vec![
                    Literal::Int(1),
                    Literal::Str("ada".into()),
                    Literal::Float(3.9),
                    Literal::Bool(true)
                ],
                vec![
                    Literal::Int(-2),
                    Literal::Str("bob".into()),
                    Literal::Null,
                    Literal::Bool(false)
                ],
            ]
        );
    }

    #[test]
    fn copy_rejects_ragged_tuples() {
        let err = parse_single("COPY s (a, b) FROM VALUES (1, 2), (3)").unwrap_err();
        assert!(err.to_string().contains("expected 2"), "{err}");
    }
}
