//! Parse errors.

use std::fmt;

/// A lexing or parsing failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl ParseError {
    pub fn new(message: impl Into<String>, offset: usize) -> ParseError {
        ParseError { message: message.into(), offset }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for erbium_model::DbError {
    fn from(e: ParseError) -> Self {
        erbium_model::DbError::Parse(e.to_string())
    }
}

/// Result alias for parsing.
pub type ParseResult<T> = Result<T, ParseError>;
