//! Hand-written lexer for ERQL.

use crate::error::{ParseError, ParseResult};

/// Token kinds. Keywords are recognized case-insensitively and carried as
/// `Keyword` with an upper-cased payload; everything else that looks like a
/// name is an `Ident`.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(String),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // punctuation
    LParen,
    RParen,
    Comma,
    Semi,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Positional parameter placeholder `?` (prepared statements).
    Qmark,
}

/// A token plus its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "JOIN", "LEFT", "VIA", "ON", "WHERE", "AND", "OR", "NOT",
    "ORDER", "GROUP", "BY", "ASC", "DESC", "LIMIT", "AS", "NEST", "IN", "IS", "NULL", "TRUE",
    "FALSE", "CREATE", "DROP", "ENTITY", "WEAK", "OWNED", "EXTENDS", "RELATIONSHIP", "TO",
    "ONE", "MANY", "TOTAL", "PARTIAL", "DISJOINT", "OVERLAPPING", "KEY", "MULTIVALUED",
    "NULLABLE", "DESCRIPTION", "TAG", "ROLE", "COUNT", "SUM", "AVG", "MIN", "MAX", "ARRAY_AGG",
    "UNNEST", "EXPLAIN", "INSTALL", "MAPPING", "DEFAULT", "COPY", "VALUES",
];

/// Tokenize the whole input.
pub fn lex(input: &str) -> ParseResult<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned { token: Token::LParen, offset: i });
                i += 1;
            }
            ')' => {
                out.push(Spanned { token: Token::RParen, offset: i });
                i += 1;
            }
            ',' => {
                out.push(Spanned { token: Token::Comma, offset: i });
                i += 1;
            }
            ';' => {
                out.push(Spanned { token: Token::Semi, offset: i });
                i += 1;
            }
            '.' => {
                out.push(Spanned { token: Token::Dot, offset: i });
                i += 1;
            }
            '*' => {
                out.push(Spanned { token: Token::Star, offset: i });
                i += 1;
            }
            '+' => {
                out.push(Spanned { token: Token::Plus, offset: i });
                i += 1;
            }
            '-' => {
                out.push(Spanned { token: Token::Minus, offset: i });
                i += 1;
            }
            '/' => {
                out.push(Spanned { token: Token::Slash, offset: i });
                i += 1;
            }
            '%' => {
                out.push(Spanned { token: Token::Percent, offset: i });
                i += 1;
            }
            '=' => {
                out.push(Spanned { token: Token::Eq, offset: i });
                i += 1;
            }
            '?' => {
                out.push(Spanned { token: Token::Qmark, offset: i });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Spanned { token: Token::Ne, offset: i });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { token: Token::Le, offset: i });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Spanned { token: Token::Ne, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Lt, offset: i });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { token: Token::Ge, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Gt, offset: i });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::new("unterminated string literal", start)),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned { token: Token::Str(s), offset: start });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let token = if is_float {
                    Token::Float(
                        text.parse()
                            .map_err(|_| ParseError::new(format!("bad float '{text}'"), start))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| ParseError::new(format!("bad integer '{text}'"), start))?,
                    )
                };
                out.push(Spanned { token, offset: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                let token = if KEYWORDS.contains(&upper.as_str()) {
                    Token::Keyword(upper)
                } else {
                    Token::Ident(word.to_string())
                };
                out.push(Spanned { token, offset: start });
            }
            other => {
                return Err(ParseError::new(format!("unexpected character '{other}'"), i));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex("select Select SELECT sel").unwrap();
        assert_eq!(toks[0].token, Token::Keyword("SELECT".into()));
        assert_eq!(toks[1].token, Token::Keyword("SELECT".into()));
        assert_eq!(toks[2].token, Token::Keyword("SELECT".into()));
        assert_eq!(toks[3].token, Token::Ident("sel".into()));
    }

    #[test]
    fn numbers_and_strings() {
        let toks = lex("42 3.25 'it''s'").unwrap();
        assert_eq!(toks[0].token, Token::Int(42));
        assert_eq!(toks[1].token, Token::Float(3.25));
        assert_eq!(toks[2].token, Token::Str("it's".into()));
    }

    #[test]
    fn operators() {
        let toks = lex("= != <> <= >= < >").unwrap();
        let kinds: Vec<&Token> = toks.iter().map(|t| &t.token).collect();
        assert_eq!(
            kinds,
            vec![&Token::Eq, &Token::Ne, &Token::Ne, &Token::Le, &Token::Ge, &Token::Lt, &Token::Gt]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("a -- comment\n b").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn question_mark_placeholder() {
        let toks = lex("a = ?").unwrap();
        assert_eq!(toks[2].token, Token::Qmark);
    }

    #[test]
    fn minus_vs_comment() {
        let toks = lex("1 - 2").unwrap();
        assert_eq!(toks[1].token, Token::Minus);
    }
}
