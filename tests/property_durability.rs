//! Crash-recovery fault injection: for a sequence of committed CRUD
//! transactions against a durable database, truncating (or corrupting) the
//! WAL at *every* byte offset and reopening must always recover a
//! committed-prefix state — never a torn write, never a panic — and the
//! recovered database must still satisfy the mapping invariants, across all
//! six preset mappings of the paper's Section 6.

use erbiumdb::core::Database;
use erbiumdb::mapping::{validate::validate, CoFormat, Mapping};
use erbiumdb::model::ErSchema;
use erbiumdb::storage::Value;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

/// The Figure-4 experiment schema, expressed as ERQL DDL (matching
/// `erbium_model::fixtures::experiment`): a 5-set hierarchy, two weak
/// entity sets, and three relationships including the M6 co-location
/// target `r2_s1`.
const EXPERIMENT_DDL: &str = "
    CREATE ENTITY R (r_id int KEY, r_a text, r_b int,
        r_mv1 int MULTIVALUED, r_mv2 int MULTIVALUED,
        r_mv3 text MULTIVALUED) PARTIAL DISJOINT;
    CREATE ENTITY R1 EXTENDS R (r1_a int NULLABLE, r1_b text NULLABLE) PARTIAL DISJOINT;
    CREATE ENTITY R2 EXTENDS R (r2_a int NULLABLE, r2_b text NULLABLE) PARTIAL DISJOINT;
    CREATE ENTITY R3 EXTENDS R1 (r3_a int NULLABLE);
    CREATE ENTITY R4 EXTENDS R2 (r4_a text NULLABLE);
    CREATE ENTITY S (s_id int KEY, s_a text, s_b int);
    CREATE RELATIONSHIP s_s1 FROM S1 MANY TOTAL TO S ONE;
    CREATE RELATIONSHIP s_s2 FROM S2 MANY TOTAL TO S ONE;
    CREATE WEAK ENTITY S1 OWNED BY S VIA s_s1
        (s1_no int KEY, s1_a int NULLABLE, s1_b text NULLABLE);
    CREATE WEAK ENTITY S2 OWNED BY S VIA s_s2 (s2_no int KEY, s2_a text NULLABLE);
    CREATE RELATIONSHIP r_s FROM R MANY TO S ONE;
    CREATE RELATIONSHIP r2_s1 FROM R2 MANY TO S1 MANY;
    CREATE RELATIONSHIP r1_r3 FROM R1 ROLE src MANY TO R3 ROLE dst MANY;
";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("erbium-dur-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Content fingerprint of the catalog: every table's live rows (with their
/// row ids) plus every factorized table's members and link pairs, in a
/// canonical order. Statistics and free lists are deliberately excluded —
/// they are not part of the durable state contract.
fn fingerprint(db: &Database) -> String {
    use std::fmt::Write as _;
    let cat = db.catalog();
    let mut out = String::new();
    let mut names = cat.table_names();
    names.sort();
    for name in names {
        let t = cat.table(&name).unwrap();
        let mut rows: Vec<String> =
            t.scan().map(|(rid, r)| format!("{}:{r:?}", rid.0)).collect();
        rows.sort();
        writeln!(out, "T {name} {rows:?}").unwrap();
    }
    let mut names = cat.factorized_names();
    names.sort();
    for name in names {
        let f = cat.factorized(&name).unwrap();
        let mut left: Vec<String> =
            f.left().scan().map(|(rid, r)| format!("{}:{r:?}", rid.0)).collect();
        left.sort();
        let mut right: Vec<String> =
            f.right().scan().map(|(rid, r)| format!("{}:{r:?}", rid.0)).collect();
        right.sort();
        let mut pairs: Vec<String> = f.enumerate_join().iter().map(|r| format!("{r:?}")).collect();
        pairs.sort();
        writeln!(out, "F {name} L{left:?} R{right:?} J{pairs:?}").unwrap();
    }
    out
}

/// One logical operation; indices are resolved against the shadow state so
/// generated sequences are always applicable (or skipped).
#[derive(Debug, Clone)]
enum Op {
    InsertS { b: i64 },
    InsertS1 { owner: usize, a: i64 },
    InsertR2 { b: i64, mv: Vec<i64> },
    LinkR2S1 { r2: usize, s1: usize },
    UpdateS { which: usize, b: i64 },
    DeleteR2 { which: usize },
    UnlinkR2S1 { which: usize },
}

/// Tracks which keys exist so ops can be validated before they are issued.
#[derive(Default)]
struct Shadow {
    s_ids: Vec<i64>,
    s1_keys: Vec<(i64, i64)>, // (owner s_id, s1_no)
    r2_ids: Vec<i64>,
    links: Vec<(i64, (i64, i64))>,
    next_s: i64,
    next_s1: i64,
    next_r: i64,
}

/// Apply one op as one committed transaction. Returns `false` when the op
/// is inapplicable in the current state (nothing touches the database).
fn apply(db: &mut Database, sh: &mut Shadow, op: &Op) -> bool {
    match op {
        Op::InsertS { b } => {
            let id = sh.next_s;
            sh.next_s += 1;
            db.insert(
                "S",
                &[
                    ("s_id", Value::Int(id)),
                    ("s_a", Value::str(format!("s{id}"))),
                    ("s_b", Value::Int(*b)),
                ],
            )
            .unwrap();
            sh.s_ids.push(id);
            true
        }
        Op::InsertS1 { owner, a } => {
            if sh.s_ids.is_empty() {
                return false;
            }
            let owner = sh.s_ids[owner % sh.s_ids.len()];
            let no = sh.next_s1;
            sh.next_s1 += 1;
            // Weak entities carry their owner's key as part of the data
            // (the identifying relationship is implied).
            db.insert(
                "S1",
                &[
                    ("s_id", Value::Int(owner)),
                    ("s1_no", Value::Int(no)),
                    ("s1_a", Value::Int(*a)),
                ],
            )
            .unwrap();
            sh.s1_keys.push((owner, no));
            true
        }
        Op::InsertR2 { b, mv } => {
            let id = sh.next_r;
            sh.next_r += 1;
            db.insert(
                "R2",
                &[
                    ("r_id", Value::Int(id)),
                    ("r_a", Value::str(format!("r{id}"))),
                    ("r_b", Value::Int(*b)),
                    ("r_mv1", Value::Array(mv.iter().map(|v| Value::Int(*v)).collect())),
                    ("r_mv2", Value::Array(vec![])),
                    ("r_mv3", Value::Array(vec![])),
                ],
            )
            .unwrap();
            sh.r2_ids.push(id);
            true
        }
        Op::LinkR2S1 { r2, s1 } => {
            if sh.r2_ids.is_empty() || sh.s1_keys.is_empty() {
                return false;
            }
            let r = sh.r2_ids[r2 % sh.r2_ids.len()];
            let sk = sh.s1_keys[s1 % sh.s1_keys.len()];
            if sh.links.contains(&(r, sk)) {
                return false;
            }
            db.link("r2_s1", &[Value::Int(r)], &[Value::Int(sk.0), Value::Int(sk.1)], &[])
                .unwrap();
            sh.links.push((r, sk));
            true
        }
        Op::UpdateS { which, b } => {
            if sh.s_ids.is_empty() {
                return false;
            }
            let id = sh.s_ids[which % sh.s_ids.len()];
            db.update_entity("S", &[Value::Int(id)], &[("s_b", Value::Int(*b))]).unwrap();
            true
        }
        Op::DeleteR2 { which } => {
            if sh.r2_ids.is_empty() {
                return false;
            }
            let id = sh.r2_ids.remove(which % sh.r2_ids.len());
            db.delete_entity("R2", &[Value::Int(id)]).unwrap();
            sh.links.retain(|(r, _)| *r != id);
            true
        }
        Op::UnlinkR2S1 { which } => {
            if sh.links.is_empty() {
                return false;
            }
            let (r, sk) = sh.links.remove(which % sh.links.len());
            db.unlink("r2_s1", &[Value::Int(r)], &[Value::Int(sk.0), Value::Int(sk.1)])
                .unwrap();
            true
        }
    }
}

/// Build a durable database under `mapping_of(schema)`, commit `ops` (one
/// transaction each), then crash at every WAL byte offset and verify the
/// recovered state is exactly one of the committed-prefix fingerprints.
fn crash_at_every_offset(ops: &[Op], mapping_of: &dyn Fn(&ErSchema) -> Mapping, tag: &str) {
    let dir = tmpdir(tag);
    let mut db = Database::open(&dir).unwrap();
    db.execute(EXPERIMENT_DDL).unwrap();
    let mapping = mapping_of(&db.schema().clone());
    db.install(mapping).unwrap();

    let mut prefixes = vec![fingerprint(&db)];
    let mut sh = Shadow::default();
    for op in ops {
        if apply(&mut db, &mut sh, op) {
            prefixes.push(fingerprint(&db));
        }
    }
    drop(db);

    let wal = fs::read(dir.join("wal.erb")).unwrap();
    let crash_dir = tmpdir(&format!("{tag}-crash"));
    fs::copy(dir.join("snapshot.erb"), crash_dir.join("snapshot.erb")).unwrap();
    for cut in 0..=wal.len() {
        fs::write(crash_dir.join("wal.erb"), &wal[..cut]).unwrap();
        let rdb = Database::open(&crash_dir)
            .unwrap_or_else(|e| panic!("[{tag}] open after cut at {cut}: {e}"));
        let fp = fingerprint(&rdb);
        assert!(
            prefixes.contains(&fp),
            "[{tag}] cut at byte {cut}/{}: recovered state is not a committed prefix",
            wal.len(),
        );
        validate(rdb.schema(), rdb.mapping().expect("mapping survives recovery"))
            .unwrap_or_else(|e| panic!("[{tag}] cut at {cut}: mapping invariants broken: {e}"));
        if cut == wal.len() {
            assert_eq!(fp, *prefixes.last().unwrap(), "[{tag}] full WAL = final state");
        }
    }
    // Single-byte corruption anywhere in the log must likewise yield a
    // committed prefix (the CRC catches the damage), never a panic.
    for flip in (0..wal.len()).step_by(7) {
        let mut bytes = wal.clone();
        bytes[flip] ^= 0x40;
        fs::write(crash_dir.join("wal.erb"), &bytes).unwrap();
        let rdb = Database::open(&crash_dir)
            .unwrap_or_else(|e| panic!("[{tag}] open after flip at {flip}: {e}"));
        assert!(
            prefixes.contains(&fingerprint(&rdb)),
            "[{tag}] flip at byte {flip}: recovered state is not a committed prefix",
        );
    }
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&crash_dir).ok();
}

/// A fixed sequence exercising every op kind (including factorized link /
/// unlink and a cascading delete).
fn mixed_ops() -> Vec<Op> {
    vec![
        Op::InsertS { b: 10 },
        Op::InsertS1 { owner: 0, a: 1 },
        Op::InsertR2 { b: 20, mv: vec![7, 8] },
        Op::InsertR2 { b: 21, mv: vec![] },
        Op::LinkR2S1 { r2: 0, s1: 0 },
        Op::LinkR2S1 { r2: 1, s1: 0 },
        Op::UpdateS { which: 0, b: 99 },
        Op::UnlinkR2S1 { which: 0 },
        Op::DeleteR2 { which: 0 },
    ]
}

/// Deterministic sweep: all six Section-6 preset mappings (plus the
/// factorized M6 variant) survive crash-at-every-offset recovery.
#[test]
fn crash_recovery_prefix_consistent_across_m1_to_m6() {
    use erbiumdb::mapping::presets::paper;
    type MapFn = Box<dyn Fn(&ErSchema) -> Mapping>;
    let mappings: Vec<(&str, MapFn)> = vec![
        ("m1", Box::new(paper::m1)),
        ("m2", Box::new(paper::m2)),
        ("m3", Box::new(paper::m3)),
        ("m4", Box::new(paper::m4)),
        ("m5", Box::new(|s| paper::m5(s).unwrap())),
        ("m6d", Box::new(|s| paper::m6(s, CoFormat::Denormalized).unwrap())),
        ("m6f", Box::new(|s| paper::m6(s, CoFormat::Factorized).unwrap())),
    ];
    let ops = mixed_ops();
    for (tag, mk) in &mappings {
        crash_at_every_offset(&ops, mk.as_ref(), tag);
    }
}

/// Aborted transactions never reach the log: a rolled-back multi-op group
/// is invisible after reopen, while the committed groups around it survive.
#[test]
fn aborted_transaction_is_invisible_after_restart() {
    let dir = tmpdir("abort");
    let mut db = Database::open(&dir).unwrap();
    db.execute(EXPERIMENT_DDL).unwrap();
    db.install_default().unwrap();
    db.insert("S", &[("s_id", Value::Int(1)), ("s_a", Value::str("keep")), ("s_b", Value::Int(0))])
        .unwrap();
    let err = db.transaction(|tx| {
        tx.insert(
            "S",
            &[("s_id", Value::Int(2)), ("s_a", Value::str("phantom")), ("s_b", Value::Int(0))],
        )?;
        Err::<(), _>(erbiumdb::core::DbError::Parse("abort".into()))
    });
    assert!(err.is_err());
    db.insert("S", &[("s_id", Value::Int(3)), ("s_a", Value::str("keep2")), ("s_b", Value::Int(0))])
        .unwrap();
    drop(db);

    let db = Database::open(&dir).unwrap();
    assert!(db.get("S", &[Value::Int(1)]).unwrap().is_some());
    assert!(db.get("S", &[Value::Int(2)]).unwrap().is_none(), "aborted insert resurrected");
    assert!(db.get("S", &[Value::Int(3)]).unwrap().is_some());
    fs::remove_dir_all(&dir).ok();
}

/// Checkpoint truncates the log and recovery proceeds from the snapshot;
/// groups committed after the checkpoint replay on top of it.
#[test]
fn checkpoint_then_wal_suffix_recovers() {
    let dir = tmpdir("ckpt");
    let mut db = Database::open(&dir).unwrap();
    db.execute(EXPERIMENT_DDL).unwrap();
    db.install_default().unwrap();
    let mut sh = Shadow::default();
    for op in mixed_ops().iter().take(5) {
        apply(&mut db, &mut sh, op);
    }
    db.checkpoint().unwrap();
    assert_eq!(fs::metadata(dir.join("wal.erb")).unwrap().len(), 0, "checkpoint truncates");
    for op in mixed_ops().iter().skip(5) {
        apply(&mut db, &mut sh, op);
    }
    let expect = fingerprint(&db);
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(fingerprint(&db), expect);
    // The reopened database stays writable and queryable.
    let mut db = db;
    db.insert("S", &[("s_id", Value::Int(900)), ("s_a", Value::str("post")), ("s_b", Value::Int(1))])
        .unwrap();
    assert_eq!(db.query("SELECT s.s_id FROM S s WHERE s.s_id = 900").unwrap().rows.len(), 1);
    fs::remove_dir_all(&dir).ok();
}

/// PR-9: crash-at-every-byte across an `ERBSNAP2` base+delta checkpoint
/// chain. The durable prefix is the base snapshot plus two delta files;
/// the WAL carries only the post-chain suffix. Recovery must (a) be
/// prefix-consistent for every WAL cut and every single-byte WAL flip on
/// top of the chain, and (b) ignore a torn `snapshot.delta.tmp` at every
/// byte — the crash window of the checkpoint writer is entirely inside
/// the tmp file, since the final delta only appears via atomic rename.
#[test]
fn crash_at_every_byte_across_base_delta_chains() {
    let dir = tmpdir("chain");
    let mut db = Database::open(&dir).unwrap();
    db.execute(EXPERIMENT_DDL).unwrap();
    db.install_default().unwrap(); // structural → full base snapshot
    let mut sh = Shadow::default();
    let ops = mixed_ops();
    for op in &ops[..3] {
        apply(&mut db, &mut sh, op);
    }
    db.checkpoint().unwrap(); // delta 1
    for op in &ops[3..6] {
        apply(&mut db, &mut sh, op);
    }
    db.checkpoint().unwrap(); // delta 2
    let mut prefixes = vec![fingerprint(&db)];
    for op in &ops[6..] {
        if apply(&mut db, &mut sh, op) {
            prefixes.push(fingerprint(&db));
        }
    }
    drop(db);
    assert!(dir.join("snapshot.delta.1.erb").exists(), "chain was actually built");
    assert!(dir.join("snapshot.delta.2.erb").exists(), "chain was actually built");

    let wal = fs::read(dir.join("wal.erb")).unwrap();
    assert!(!wal.is_empty(), "suffix ops are in the WAL, not the chain");
    let crash_dir = tmpdir("chain-crash");
    for f in ["snapshot.erb", "snapshot.delta.1.erb", "snapshot.delta.2.erb"] {
        fs::copy(dir.join(f), crash_dir.join(f)).unwrap();
    }
    for cut in 0..=wal.len() {
        fs::write(crash_dir.join("wal.erb"), &wal[..cut]).unwrap();
        let rdb = Database::open(&crash_dir)
            .unwrap_or_else(|e| panic!("open after cut at {cut}: {e}"));
        let fp = fingerprint(&rdb);
        assert!(
            prefixes.contains(&fp),
            "cut at byte {cut}/{}: chained recovery is not a committed prefix",
            wal.len(),
        );
        if cut == wal.len() {
            assert_eq!(fp, *prefixes.last().unwrap(), "full WAL = final state");
        }
    }
    for flip in (0..wal.len()).step_by(7) {
        let mut bytes = wal.clone();
        bytes[flip] ^= 0x40;
        fs::write(crash_dir.join("wal.erb"), &bytes).unwrap();
        let rdb = Database::open(&crash_dir)
            .unwrap_or_else(|e| panic!("open after flip at {flip}: {e}"));
        assert!(
            prefixes.contains(&fingerprint(&rdb)),
            "flip at byte {flip}: chained recovery is not a committed prefix",
        );
    }

    // Crash mid-checkpoint: the writer dies with the next delta partially
    // written to its tmp file. Whatever length the tmp reached, recovery
    // ignores it and the full-WAL state is intact.
    fs::write(crash_dir.join("wal.erb"), &wal).unwrap();
    let delta_bytes = fs::read(dir.join("snapshot.delta.2.erb")).unwrap();
    for cut in (0..=delta_bytes.len()).step_by(3).chain([delta_bytes.len()]) {
        fs::write(crash_dir.join("snapshot.delta.tmp"), &delta_bytes[..cut]).unwrap();
        let rdb = Database::open(&crash_dir)
            .unwrap_or_else(|e| panic!("open with torn delta tmp at {cut}: {e}"));
        assert_eq!(
            fingerprint(&rdb),
            *prefixes.last().unwrap(),
            "torn tmp at byte {cut}/{} must not affect recovery",
            delta_bytes.len(),
        );
    }
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&crash_dir).ok();
}

/// Corruption never panics: flipping a byte at *every* position of the
/// base snapshot, a delta checkpoint, and the WAL must leave recovery
/// either succeeding (flip in a slack region — the result must then be a
/// committed prefix) or failing with a recovery error. Decode paths that
/// `unwrap`/`expect` on attacker-shaped bytes show up here as unwinds, so
/// each reopen runs under `catch_unwind`.
#[test]
fn byte_flip_corruption_never_panics_recovery() {
    let dir = tmpdir("flip");
    let mut db = Database::open(&dir).unwrap();
    db.execute(EXPERIMENT_DDL).unwrap();
    db.install_default().unwrap(); // structural → full base snapshot
    let mut sh = Shadow::default();
    let ops = mixed_ops();
    let mut prefixes = vec![fingerprint(&db)];
    for op in &ops[..3] {
        if apply(&mut db, &mut sh, op) {
            prefixes.push(fingerprint(&db));
        }
    }
    db.checkpoint().unwrap(); // delta 1
    for op in &ops[3..6] {
        if apply(&mut db, &mut sh, op) {
            prefixes.push(fingerprint(&db));
        }
    }
    drop(db);

    let files = ["snapshot.erb", "snapshot.delta.1.erb", "wal.erb"];
    let crash_dir = tmpdir("flip-crash");
    for f in files {
        fs::copy(dir.join(f), crash_dir.join(f)).unwrap();
    }
    for f in files {
        let orig = fs::read(dir.join(f)).unwrap();
        assert!(!orig.is_empty(), "[{f}] fixture file is non-trivial");
        for flip in 0..orig.len() {
            let mut bytes = orig.clone();
            bytes[flip] ^= 0x40;
            fs::write(crash_dir.join(f), &bytes).unwrap();
            let opened = std::panic::catch_unwind(|| Database::open(&crash_dir))
                .unwrap_or_else(|_| {
                    panic!("[{f}] flip at byte {flip}/{} panicked recovery", orig.len())
                });
            if let Ok(rdb) = opened {
                assert!(
                    prefixes.contains(&fingerprint(&rdb)),
                    "[{f}] flip at byte {flip}: recovered state is not a committed prefix",
                );
            }
        }
        fs::write(crash_dir.join(f), &orig).unwrap();
    }
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&crash_dir).ok();
}

/// Crash-at-every-byte under a tiny buffer-pool budget. A bulk load spans
/// more row pages than the two-frame budget, so the workload itself evicts
/// and writes back dirty pages; every recovery likewise streams base +
/// WAL redo through the bounded pool. The recovered state must be exactly
/// a committed prefix — bit-identical to what an unbounded pool recovers.
#[test]
fn crash_at_every_byte_with_tiny_frame_budget() {
    use erbiumdb::core::{BulkEntity, DurabilityOptions};
    let opts = DurabilityOptions { buffer_pool_frames: Some(2), ..Default::default() };
    let dir = tmpdir("pool");
    let mut db = Database::open_with(&dir, opts.clone()).unwrap();
    db.execute(EXPERIMENT_DDL).unwrap();
    db.install_default().unwrap();
    // Three pages of S rows (256 rows/page for this schema) in one bulk
    // group: past the budget, so the load must spill mid-workload.
    let batch: Vec<BulkEntity> = (1000..1640)
        .map(|i| {
            BulkEntity::new(&[
                ("s_id", Value::Int(i)),
                ("s_a", Value::str(format!("bulk{i}"))),
                ("s_b", Value::Int(i % 7)),
            ])
        })
        .collect();
    db.copy_from("S", &batch).unwrap();
    let stats = db.buffer_pool_stats();
    assert!(stats.evictions > 0, "the bulk load overflowed the two-frame budget: {stats:?}");
    assert!(stats.dirty_writebacks > 0, "cold dirty pages were written back: {stats:?}");
    db.checkpoint().unwrap();

    // A short WAL suffix of row ops on top of the checkpoint.
    let mut sh = Shadow::default();
    let mut prefixes = vec![fingerprint(&db)];
    for op in mixed_ops().iter().take(6) {
        if apply(&mut db, &mut sh, op) {
            prefixes.push(fingerprint(&db));
        }
    }
    drop(db);

    let wal = fs::read(dir.join("wal.erb")).unwrap();
    assert!(!wal.is_empty(), "suffix ops are in the WAL");
    let crash_dir = tmpdir("pool-crash");
    for entry in fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name();
        let s = name.to_string_lossy().to_string();
        if s.starts_with("snapshot") {
            fs::copy(dir.join(&s), crash_dir.join(&s)).unwrap();
        }
    }
    for cut in 0..=wal.len() {
        fs::write(crash_dir.join("wal.erb"), &wal[..cut]).unwrap();
        let rdb = Database::open_with(&crash_dir, opts.clone())
            .unwrap_or_else(|e| panic!("bounded open after cut at {cut}: {e}"));
        let fp = fingerprint(&rdb);
        assert!(
            prefixes.contains(&fp),
            "cut at byte {cut}/{}: bounded recovery is not a committed prefix",
            wal.len(),
        );
        if cut == wal.len() {
            assert_eq!(fp, *prefixes.last().unwrap(), "full WAL = final state");
            // Bounded and unbounded recovery agree bit-for-bit.
            let unbounded = Database::open(&crash_dir).unwrap();
            assert_eq!(fingerprint(&unbounded), fp, "frame budget must not change recovery");
        }
    }
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&crash_dir).ok();
}

/// Clean shutdown under `SyncPolicy::EveryN`: commits still below the sync
/// threshold are flushed by the WAL's `Drop` handler, so dropping the
/// database loses nothing. The fsync itself is asserted through the
/// observability histogram — on a healthy filesystem the file *contents*
/// cannot distinguish a buffered write from a synced one, but the fsync
/// count can.
#[test]
fn clean_shutdown_under_everyn_flushes_the_tail() {
    use erbiumdb::core::DurabilityOptions;
    use erbiumdb::storage::SyncPolicy;
    let fsyncs = || {
        erbiumdb::core::obs::Registry::global()
            .histogram("erbium_wal_fsync_seconds", "")
            .count()
    };
    let opts = DurabilityOptions { sync: SyncPolicy::EveryN(1000), ..Default::default() };
    let dir = tmpdir("everyn");
    let mut db = Database::open_with(&dir, opts.clone()).unwrap();
    db.execute(EXPERIMENT_DDL).unwrap();
    db.install_default().unwrap();
    let mut sh = Shadow::default();
    for op in mixed_ops() {
        apply(&mut db, &mut sh, &op);
    }
    let expect = fingerprint(&db);
    let before = fsyncs();
    drop(db); // fewer than 1000 commits ⇒ the tail is unsynced until Drop
    assert!(fsyncs() > before, "Drop must fsync the unsynced EveryN tail");

    let db = Database::open_with(&dir, opts).unwrap();
    assert_eq!(fingerprint(&db), expect, "clean EveryN shutdown loses nothing");
    fs::remove_dir_all(&dir).ok();
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..7, 0usize..8, 0usize..8, 0i64..100, prop::collection::vec(0i64..20, 0..3)).prop_map(
        |(kind, i, j, n, mv)| match kind {
            0 => Op::InsertS { b: n },
            1 => Op::InsertS1 { owner: i, a: n },
            2 => Op::InsertR2 { b: n, mv },
            3 => Op::LinkR2S1 { r2: i, s1: j },
            4 => Op::UpdateS { which: i, b: n },
            5 => Op::DeleteR2 { which: i },
            _ => Op::UnlinkR2S1 { which: i },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Random op sequences: recovery is prefix-consistent at every WAL
    /// offset under both the fully normalized mapping and the factorized
    /// co-location (the two structurally extreme presets).
    #[test]
    fn random_ops_crash_recovery_is_prefix_consistent(
        ops in prop::collection::vec(op_strategy(), 1..10),
        fact in any::<bool>(),
    ) {
        use erbiumdb::mapping::presets::paper;
        if fact {
            crash_at_every_offset(
                &ops,
                &|s: &ErSchema| paper::m6(s, CoFormat::Factorized).unwrap(),
                "prop-m6f",
            );
        } else {
            crash_at_every_offset(&ops, &|s: &ErSchema| paper::m1(s), "prop-m1");
        }
    }
}

// ---- WAL group commit (PR-7) -----------------------------------------------

/// Build a shared, durable database under `SyncPolicy::Always` with a
/// group-commit dally window, ready for concurrent committers.
fn shared_always_db(dir: &std::path::Path) -> erbiumdb::core::SharedDatabase {
    use erbiumdb::core::DurabilityOptions;
    use erbiumdb::storage::SyncPolicy;
    let opts = DurabilityOptions {
        sync: SyncPolicy::Always,
        group_commit_window: std::time::Duration::from_millis(25),
        ..Default::default()
    };
    let mut db = Database::open_with(dir, opts).unwrap();
    db.execute("CREATE ENTITY acct (id int KEY, batch int, score int)").unwrap();
    db.install_default().unwrap();
    db.into_shared()
}

/// One committed group per batch: two rows, all-or-nothing.
fn commit_batch(db: &erbiumdb::core::SharedDatabase, b: i64) {
    db.transaction(|tx| {
        tx.insert(
            "acct",
            &[("id", Value::Int(2 * b)), ("batch", Value::Int(b)), ("score", Value::Int(50))],
        )?;
        tx.insert(
            "acct",
            &[("id", Value::Int(2 * b + 1)), ("batch", Value::Int(b)), ("score", Value::Int(50))],
        )
    })
    .unwrap();
}

/// K concurrent small transactions under group commit must share fsyncs:
/// strictly fewer than K fsyncs for K commits (measured through the same
/// `erbium_wal_fsync_seconds` histogram the per-commit path ticks), while
/// every commit still reaches disk.
#[test]
fn k_concurrent_commits_take_fewer_than_k_fsyncs() {
    const K: i64 = 8;
    let fsyncs = || {
        erbiumdb::core::obs::Registry::global()
            .histogram("erbium_wal_fsync_seconds", "")
            .count()
    };
    let dir = tmpdir("group-fsync");
    let db = shared_always_db(&dir);
    let before = fsyncs();
    std::thread::scope(|s| {
        for b in 0..K {
            let db = db.clone();
            s.spawn(move || commit_batch(&db, b));
        }
    });
    let spent = fsyncs() - before;
    assert!(spent >= 1, "commits must fsync");
    assert!(spent < K as u64, "{K} concurrent commits took {spent} fsyncs — no batching");
    let (batches, commits) = db.group_commit_stats().expect("group commit active");
    assert_eq!(commits, K as u64);
    assert!(batches < commits, "batches={batches} commits={commits}");
    // Nothing was traded away for the batching: all K groups are durable.
    drop(db);
    let rdb = Database::open(&dir).unwrap();
    let rows = rdb.query("SELECT a.batch, COUNT(*) AS n FROM acct a GROUP BY a.batch").unwrap();
    assert_eq!(rows.rows.len(), K as usize);
    fs::remove_dir_all(&dir).ok();
}

/// Crash-at-every-byte over a WAL written by concurrent group-committed
/// transactions: recovery must always see whole commit groups — for every
/// batch either both rows or neither, never one — and the full WAL must
/// recover every batch.
#[test]
fn crash_mid_group_loses_or_keeps_whole_groups() {
    const K: i64 = 6;
    let dir = tmpdir("group-crash");
    let db = shared_always_db(&dir);
    std::thread::scope(|s| {
        for b in 0..K {
            let db = db.clone();
            s.spawn(move || commit_batch(&db, b));
        }
    });
    drop(db);

    let wal = fs::read(dir.join("wal.erb")).unwrap();
    let crash_dir = tmpdir("group-crash-cut");
    fs::copy(dir.join("snapshot.erb"), crash_dir.join("snapshot.erb")).unwrap();
    for cut in 0..=wal.len() {
        fs::write(crash_dir.join("wal.erb"), &wal[..cut]).unwrap();
        let rdb = Database::open(&crash_dir)
            .unwrap_or_else(|e| panic!("open after cut at {cut}: {e}"));
        let rows = rdb
            .query("SELECT a.batch, COUNT(*) AS n FROM acct a GROUP BY a.batch")
            .unwrap()
            .rows;
        for row in &rows {
            assert_eq!(
                row[1],
                Value::Int(2),
                "cut at byte {cut}/{}: batch {:?} recovered torn (a partial commit group)",
                wal.len(),
                row[0],
            );
        }
        if cut == wal.len() {
            assert_eq!(rows.len(), K as usize, "full WAL recovers all {K} groups");
        }
    }
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&crash_dir).ok();
}
