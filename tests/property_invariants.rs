//! Property-based tests of the system invariants listed in DESIGN.md:
//! mapping reversibility, query equivalence across mappings, and
//! engine-operator agreement with reference semantics — on *randomized*
//! instances, not just the handcrafted ones.

use erbiumdb::mapping::presets::paper;
use erbiumdb::mapping::rewrite::run_query;
use erbiumdb::mapping::{CoFormat, EntityData, EntityStore, Lowering, Mapping};
use erbiumdb::model::fixtures;
use erbiumdb::model::ErSchema;
use erbiumdb::storage::{Catalog, Row, Transaction, Value};
use proptest::prelude::*;

/// A randomized logical instance of the experiment schema.
#[derive(Debug, Clone)]
struct Instance {
    s: Vec<(i64, String, i64)>,
    s1: Vec<(usize, i64, i64)>,          // (owner index, s1_a, s1_no assigned later)
    r: Vec<RInst>,
    r2_s1_links: Vec<(usize, usize)>,    // (r2 index into r, s1 index)
}

#[derive(Debug, Clone)]
struct RInst {
    ty: u8, // 0..5 => R..R4
    r_b: i64,
    mv1: Vec<i64>,
    mv2: Vec<i64>,
    s_target: usize,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    let s = prop::collection::vec((0i64..50, "[a-z]{1,6}", 0i64..5), 1..6);
    let s1 = prop::collection::vec((0usize..8, 0i64..100, Just(0i64)), 0..8);
    let r = prop::collection::vec(
        (0u8..5, 0i64..7, prop::collection::vec(0i64..20, 0..4),
         prop::collection::vec(0i64..20, 0..4), 0usize..8)
            .prop_map(|(ty, r_b, mv1, mv2, s_target)| RInst { ty, r_b, mv1, mv2, s_target }),
        1..12,
    );
    let links = prop::collection::vec((0usize..12, 0usize..8), 0..6);
    (s, s1, r, links).prop_map(|(s, s1, r, r2_s1_links)| Instance { s, s1, r, r2_s1_links })
}

/// Populate a catalog with the instance; returns false if the instance is
/// degenerate for this step (e.g. duplicate keys), which we simply skip.
fn populate(inst: &Instance, cat: &mut Catalog, lw: &Lowering) {
    let store = EntityStore::new(lw);
    let mut txn = Transaction::new();
    let data = |pairs: &[(&str, Value)]| -> EntityData {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    };
    let n_s = inst.s.len() as i64;
    for (i, (sb, sa, _)) in inst.s.iter().enumerate() {
        store
            .insert(
                cat,
                &mut txn,
                "S",
                &data(&[
                    ("s_id", Value::Int(i as i64)),
                    ("s_a", Value::str(sa)),
                    ("s_b", Value::Int(*sb)),
                ]),
                &[],
            )
            .unwrap();
    }
    let mut s1_keys: Vec<(i64, i64)> = Vec::new();
    let mut per_owner = vec![0i64; inst.s.len()];
    for (owner, a, _) in &inst.s1 {
        let owner = owner % inst.s.len();
        let no = per_owner[owner];
        per_owner[owner] += 1;
        store
            .insert(
                cat,
                &mut txn,
                "S1",
                &data(&[
                    ("s_id", Value::Int(owner as i64)),
                    ("s1_no", Value::Int(no)),
                    ("s1_a", Value::Int(*a)),
                    ("s1_b", Value::str("w")),
                ]),
                &[],
            )
            .unwrap();
        s1_keys.push((owner as i64, no));
    }
    let types = ["R", "R1", "R2", "R3", "R4"];
    let mut r2s: Vec<i64> = Vec::new();
    for (i, ri) in inst.r.iter().enumerate() {
        let ty = types[(ri.ty % 5) as usize];
        let mut d = data(&[
            ("r_id", Value::Int(i as i64)),
            ("r_a", Value::str(format!("r{i}"))),
            ("r_b", Value::Int(ri.r_b)),
            ("r_mv1", Value::Array(ri.mv1.iter().map(|&v| Value::Int(v)).collect())),
            ("r_mv2", Value::Array(ri.mv2.iter().map(|&v| Value::Int(v)).collect())),
            ("r_mv3", Value::Array(vec![])),
        ]);
        match ty {
            "R1" | "R3" => {
                d.insert("r1_a".into(), Value::Int(1));
                d.insert("r1_b".into(), Value::str("x"));
            }
            "R2" | "R4" => {
                d.insert("r2_a".into(), Value::Int(2));
                d.insert("r2_b".into(), Value::str("y"));
                r2s.push(i as i64);
            }
            _ => {}
        }
        if ty == "R3" {
            d.insert("r3_a".into(), Value::Int(3));
        }
        if ty == "R4" {
            d.insert("r4_a".into(), Value::str("z"));
        }
        let target = (ri.s_target as i64) % n_s;
        store.insert(cat, &mut txn, ty, &d, &[("r_s", vec![Value::Int(target)])]).unwrap();
    }
    let mut seen = std::collections::HashSet::new();
    for (ri, s1i) in &inst.r2_s1_links {
        if r2s.is_empty() || s1_keys.is_empty() {
            break;
        }
        let r2 = r2s[ri % r2s.len()];
        let (o, n) = s1_keys[s1i % s1_keys.len()];
        if !seen.insert((r2, o, n)) {
            continue; // duplicate links are a user error; skip
        }
        store
            .link(
                cat,
                &mut txn,
                "r2_s1",
                &[Value::Int(r2)],
                &[Value::Int(o), Value::Int(n)],
                &EntityData::default(),
            )
            .unwrap();
    }
    txn.commit();
}

fn mappings(schema: &ErSchema) -> Vec<Mapping> {
    vec![
        paper::m1(schema),
        paper::m2(schema),
        paper::m3(schema),
        paper::m4(schema),
        paper::m5(schema).unwrap(),
        paper::m6(schema, CoFormat::Denormalized).unwrap(),
        paper::m6(schema, CoFormat::Factorized).unwrap(),
    ]
}

fn canon_rows(mut rows: Vec<Row>) -> Vec<Row> {
    for r in rows.iter_mut() {
        for v in r.iter_mut() {
            if let Value::Array(a) = v {
                a.sort();
                if a.is_empty() {
                    *v = Value::Null;
                }
            }
        }
    }
    rows.sort();
    rows
}

type CanonRow = Vec<(String, Value)>;

fn canon_extent(store: &EntityStore<'_>, cat: &Catalog, entity: &str) -> Vec<CanonRow> {
    let mut out: Vec<CanonRow> = store
        .extract_entities(cat, entity)
        .unwrap()
        .into_iter()
        .map(|d| {
            let mut kv: Vec<(String, Value)> = d
                .into_iter()
                .map(|(k, mut v)| {
                    if let Value::Array(a) = &mut v {
                        a.sort();
                    }
                    (k, v)
                })
                .collect();
            kv.sort();
            kv
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// DESIGN.md invariant 1: extents round-trip identically under every
    /// mapping, for arbitrary instances.
    #[test]
    fn random_instances_roundtrip_across_mappings(inst in instance_strategy()) {
        let schema = fixtures::experiment();
        let mut reference: Option<Vec<Vec<CanonRow>>> = None;
        for m in mappings(&schema) {
            let name = m.name.clone();
            let lw = Lowering::build(&schema, &m).unwrap();
            let mut cat = Catalog::new();
            lw.install(&mut cat).unwrap();
            populate(&inst, &mut cat, &lw);
            let store = EntityStore::new(&lw);
            let snapshot: Vec<_> = ["R", "R2", "R3", "S", "S1"]
                .iter()
                .map(|e| canon_extent(&store, &cat, e))
                .collect();
            match &reference {
                None => reference = Some(snapshot),
                Some(r) => prop_assert_eq!(r, &snapshot, "extent drift under {}", name),
            }
        }
    }

    /// DESIGN.md invariant 2 (logical data independence): the same query
    /// answers identically under every mapping, for arbitrary instances.
    #[test]
    fn random_instances_query_equivalence(inst in instance_strategy()) {
        let schema = fixtures::experiment();
        let queries = [
            "SELECT r.r_id, r.r_mv1 FROM R r",
            "SELECT r.r_id, s.s_a FROM R r JOIN S s VIA r_s",
            "SELECT r.r_id, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1",
            "SELECT s.s_id, COUNT(*) AS n FROM S s JOIN S1 w VIA s_s1",
            "SELECT r.r_b, COUNT(*) AS n FROM R r GROUP BY r.r_b",
        ];
        let mut reference: Option<Vec<Vec<Row>>> = None;
        for m in mappings(&schema) {
            let name = m.name.clone();
            let lw = Lowering::build(&schema, &m).unwrap();
            let mut cat = Catalog::new();
            lw.install(&mut cat).unwrap();
            populate(&inst, &mut cat, &lw);
            let results: Vec<Vec<Row>> = queries
                .iter()
                .map(|q| canon_rows(run_query(&lw, &cat, q).unwrap().1))
                .collect();
            match &reference {
                None => reference = Some(results),
                Some(r) => prop_assert_eq!(r, &results, "query drift under {}", name),
            }
        }
    }

    /// Deleting an instance then re-extracting equals never inserting it
    /// (up to generated content), under the normalized mapping.
    #[test]
    fn delete_is_inverse_of_insert(inst in instance_strategy()) {
        prop_assume!(inst.r.len() >= 2);
        let schema = fixtures::experiment();
        let lw = Lowering::build(&schema, &paper::m1(&schema)).unwrap();
        let mut cat = Catalog::new();
        lw.install(&mut cat).unwrap();
        populate(&inst, &mut cat, &lw);
        let store = EntityStore::new(&lw);
        let n_before = store.extent_keys(&cat, "R").unwrap().len();
        let mut txn = Transaction::new();
        store.delete(&mut cat, &mut txn, "R", &[Value::Int(0)]).unwrap();
        txn.commit();
        prop_assert_eq!(store.extent_keys(&cat, "R").unwrap().len(), n_before - 1);
        prop_assert!(store.get(&cat, "R", &[Value::Int(0)]).unwrap().is_none());
        // No dangling relationship instances: the deleted hierarchy key
        // must not appear on any R-side end.
        let gone = vec![Value::Int(0)];
        for rel in ["r_s", "r2_s1", "r1_r3"] {
            for i in store.extract_relationship(&cat, rel).unwrap() {
                prop_assert!(i.from_key != gone, "dangling {} from-link", rel);
                if rel == "r1_r3" {
                    prop_assert!(i.to_key != gone, "dangling {} to-link", rel);
                }
            }
        }
    }
}
