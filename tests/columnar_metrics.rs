//! Columnar-execution observability: proves that projection pruning
//! really does keep untouched columns unmaterialized, using the
//! `erbium-obs` counters the vectorized kernels publish.
//!
//! The key assertion is on `engine_columnar_cells_total`: the scan
//! gather increments it by `selected_rows × pruned_arity`, so a query
//! that reads one column of a five-column table must move exactly
//! `rows × 1` cells — not `rows × 5`. No other instrumentation can
//! distinguish "cloned then discarded" from "never touched"; the cell
//! counter can.
//!
//! Counters are process-global, which is why this lives in its own
//! integration-test binary (one process) and in a single `#[test]`:
//! deltas would race against any concurrently running columnar query.

use erbiumdb::core::obs::Registry;
use erbiumdb::engine::{
    execute_with_metrics, optimizer::optimize, AggCall, AggFunc, ExecContext, Expr, JoinKind,
    Plan,
};
use erbiumdb::storage::{Catalog, Column, DataType, Table, TableSchema, Value};

fn counters() -> (u64, u64, u64) {
    let r = Registry::global();
    (
        r.counter("engine_columnar_batches_total", "").get(),
        r.counter("engine_fallback_row_batches_total", "").get(),
        r.counter("engine_columnar_cells_total", "").get(),
    )
}

#[test]
fn pruned_columns_are_never_materialized() {
    const ROWS: u64 = 1000;
    let mut cat = Catalog::new();
    let mut t = Table::new(TableSchema::new(
        "w",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
            Column::new("wide", DataType::Text),
            Column::new("huge", DataType::Text),
        ],
        vec![0],
    ));
    for i in 0..ROWS as i64 {
        t.insert(vec![
            Value::Int(i),
            Value::Int(i % 97),
            Value::Int(i * 3),
            Value::str(format!("wide-{i}")),
            Value::str("x".repeat(64)),
        ])
        .unwrap();
    }
    cat.create_table(t).unwrap();

    // SELECT a FROM w WHERE a >= 0 — the optimizer folds the filter into
    // the scan (table column space) and prunes the scan to one column.
    let plan = Plan::scan(&cat, "w")
        .unwrap()
        .filter(Expr::binary(erbiumdb::engine::BinOp::Ge, Expr::col(1), Expr::lit(0i64)))
        .project(vec![(Expr::col(1), "a".into())]);
    let plan = optimize(plan, &cat).unwrap();
    let explain = plan.explain();
    assert!(explain.contains("[cols=a]"), "pruned set surfaced in EXPLAIN:\n{explain}");

    let ctx = ExecContext::default(); // columnar on by default
    let (b0, f0, c0) = counters();
    let (rows, metrics) = execute_with_metrics(&plan, &cat, &ctx).unwrap();
    let (b1, f1, c1) = counters();

    assert_eq!(rows.len(), ROWS as usize);
    assert!(rows.iter().all(|r| r.len() == 1), "one pruned column per row");
    let scan = metrics.find("Scan w").expect("scan node in metrics tree");
    assert!(scan.columnar, "scan ran on the columnar path:\n{}", metrics.render());
    assert!(b1 > b0, "columnar batch counter must move");
    assert_eq!(f1, f0, "an eligible pipeline records no row-batch fallbacks");
    // The non-materialization proof: exactly rows × 1 cells gathered,
    // although the table is five columns wide.
    assert_eq!(c1 - c0, ROWS, "cells moved = rows × pruned arity (1), not × 5");

    // Same query, columnar disabled: the kernels never run, so neither
    // counter moves and the metrics tree carries no [columnar] marker.
    let (b0, _, c0) = counters();
    let (rows_off, metrics_off) =
        execute_with_metrics(&plan, &cat, &ctx.clone().with_columnar(false)).unwrap();
    let (b1, _, c1) = counters();
    assert_eq!(rows_off, rows, "row path agrees bit-for-bit");
    assert_eq!((b1, c1), (b0, c0), "row path touches no columnar counters");
    assert!(!metrics_off.find("Scan w").unwrap().columnar);

    // A multi-key self-join cannot use the single-key columnar build:
    // with columnar mode on, the drained row-batch build is counted as a
    // fallback so the miss is observable.
    let join = Plan::scan(&cat, "w").unwrap().join(
        Plan::scan(&cat, "w").unwrap(),
        JoinKind::Inner,
        vec![Expr::col(1), Expr::col(2)],
        vec![Expr::col(1), Expr::col(2)],
    );
    let (_, f0, _) = counters();
    let (joined, _) = execute_with_metrics(&join, &cat, &ctx).unwrap();
    let (_, f1, _) = counters();
    assert_eq!(joined.len(), ROWS as usize, "unique (a,b) pairs self-join 1:1");
    assert!(f1 > f0, "ineligible build side is counted as a row-batch fallback");

    // The single-key columnar aggregate reads only the columns the
    // grouping and aggregates touch: rows × 2 cells here, table arity 5.
    let agg = Plan::scan(&cat, "w").unwrap().aggregate(
        vec![(Expr::col(1), "a".into())],
        vec![(AggCall::new(AggFunc::Sum, Expr::col(2)), "s".into())],
    );
    let agg = optimize(agg, &cat).unwrap();
    let (b0, _, c0) = counters();
    let (groups, am) = execute_with_metrics(&agg, &cat, &ctx).unwrap();
    let (b1, _, c1) = counters();
    assert_eq!(groups.len(), 97);
    assert!(am.find("Aggregate").unwrap().columnar, "{}", am.render());
    assert!(b1 > b0);
    assert_eq!(c1 - c0, ROWS * 2, "aggregate reads only its two input columns");
}
