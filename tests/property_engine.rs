//! Property tests of the relational substrate: operators agree with naive
//! reference implementations, and the optimizer never changes results.

use erbiumdb::engine::{execute, execute_optimized, AggCall, AggFunc, BinOp, Expr, JoinKind, Plan};
use erbiumdb::storage::{Catalog, Column, DataType, Row, Table, TableSchema, Value};
use proptest::prelude::*;

fn table_from(rows: &[(i64, i64, Option<i64>)], name: &str) -> Table {
    let mut t = Table::new(TableSchema::new(
        name,
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ],
        vec![0],
    ));
    for (i, (_, k, v)) in rows.iter().enumerate() {
        t.insert(vec![
            Value::Int(i as i64),
            Value::Int(*k),
            v.map(Value::Int).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
    t
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64, Option<i64>)>> {
    prop::collection::vec((0i64..20, 0i64..6, prop::option::of(0i64..10)), 0..25)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Hash join ≡ nested-loop reference (NULL keys never match).
    #[test]
    fn join_matches_nested_loop(a in rows_strategy(), b in rows_strategy()) {
        let mut cat = Catalog::new();
        cat.create_table(table_from(&a, "a")).unwrap();
        cat.create_table(table_from(&b, "b")).unwrap();
        let plan = Plan::scan(&cat, "a").unwrap().join(
            Plan::scan(&cat, "b").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(2)],
            vec![Expr::col(2)],
        );
        let got = sorted(execute(&plan, &cat).unwrap());

        let mut expect = Vec::new();
        for (i, (_, ak, av)) in a.iter().enumerate() {
            for (j, (_, bk, bv)) in b.iter().enumerate() {
                if av.is_some() && av == bv {
                    expect.push(vec![
                        Value::Int(i as i64),
                        Value::Int(*ak),
                        Value::Int(av.unwrap()),
                        Value::Int(j as i64),
                        Value::Int(*bk),
                        Value::Int(bv.unwrap()),
                    ]);
                }
            }
        }
        prop_assert_eq!(got, sorted(expect));
    }

    /// LEFT join row count = matches + unmatched-left.
    #[test]
    fn left_join_counts(a in rows_strategy(), b in rows_strategy()) {
        let mut cat = Catalog::new();
        cat.create_table(table_from(&a, "a")).unwrap();
        cat.create_table(table_from(&b, "b")).unwrap();
        let plan = Plan::scan(&cat, "a").unwrap().join(
            Plan::scan(&cat, "b").unwrap(),
            JoinKind::Left,
            vec![Expr::col(2)],
            vec![Expr::col(2)],
        );
        let got = execute(&plan, &cat).unwrap();
        let mut expect = 0usize;
        for (_, _, av) in &a {
            let matches = b.iter().filter(|(_, _, bv)| av.is_some() && av == bv).count();
            expect += matches.max(1);
        }
        prop_assert_eq!(got.len(), expect);
    }

    /// SUM/COUNT grouping agrees with a reference fold.
    #[test]
    fn aggregate_matches_reference(a in rows_strategy()) {
        let mut cat = Catalog::new();
        cat.create_table(table_from(&a, "a")).unwrap();
        let plan = Plan::scan(&cat, "a").unwrap().aggregate(
            vec![(Expr::col(1), "k".into())],
            vec![
                (AggCall::new(AggFunc::Sum, Expr::col(2)), "sum".into()),
                (AggCall::new(AggFunc::Count, Expr::col(2)), "cnt".into()),
            ],
        );
        let got = sorted(execute(&plan, &cat).unwrap());
        let mut map: std::collections::BTreeMap<i64, (Option<i64>, i64)> = Default::default();
        for (_, k, v) in &a {
            let e = map.entry(*k).or_insert((None, 0));
            if let Some(v) = v {
                e.0 = Some(e.0.unwrap_or(0) + v);
                e.1 += 1;
            }
        }
        let expect: Vec<Row> = map
            .into_iter()
            .map(|(k, (s, c))| {
                vec![Value::Int(k), s.map(Value::Int).unwrap_or(Value::Null), Value::Int(c)]
            })
            .collect();
        prop_assert_eq!(got, sorted(expect));
    }

    /// The optimizer (pushdown + folding + index selection) never changes
    /// results, for arbitrary comparison filters over joins.
    #[test]
    fn optimizer_preserves_semantics(
        a in rows_strategy(),
        b in rows_strategy(),
        lit in 0i64..10,
        on_left in any::<bool>(),
        lt in any::<bool>(),
    ) {
        let mut cat = Catalog::new();
        cat.create_table(table_from(&a, "a")).unwrap();
        cat.create_table(table_from(&b, "b")).unwrap();
        let col = if on_left { 1 } else { 4 };
        let op = if lt { BinOp::Lt } else { BinOp::Eq };
        let plan = Plan::scan(&cat, "a")
            .unwrap()
            .join(
                Plan::scan(&cat, "b").unwrap(),
                JoinKind::Inner,
                vec![Expr::col(2)],
                vec![Expr::col(2)],
            )
            .filter(Expr::binary(op, Expr::col(col), Expr::lit(lit)))
            .project_columns(&[0, 3]);
        let plain = sorted(execute(&plan, &cat).unwrap());
        let optimized = sorted(execute_optimized(&plan, &cat).unwrap());
        prop_assert_eq!(plain, optimized);
    }

    /// Unnest over arrays built by array_agg recovers the original
    /// multiset per key (nest ∘ unnest identity).
    #[test]
    fn nest_unnest_identity(a in rows_strategy()) {
        let mut cat = Catalog::new();
        cat.create_table(table_from(&a, "a")).unwrap();
        // nest: k -> array_agg(v)
        let nested = Plan::scan(&cat, "a").unwrap().aggregate(
            vec![(Expr::col(1), "k".into())],
            vec![(AggCall::new(AggFunc::ArrayAgg, Expr::col(2)), "vs".into())],
        );
        let unnested = nested.unnest(1).unwrap();
        let got = sorted(execute(&unnested, &cat).unwrap());
        let mut expect: Vec<Row> = a
            .iter()
            .filter_map(|(_, k, v)| v.map(|v| vec![Value::Int(*k), Value::Int(v)]))
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Index lookups equal filtered scans for point predicates.
    #[test]
    fn index_lookup_equals_scan(a in rows_strategy(), key in 0i64..25) {
        let mut cat = Catalog::new();
        cat.create_table(table_from(&a, "a")).unwrap();
        let plan = Plan::scan(&cat, "a")
            .unwrap()
            .filter(Expr::eq(Expr::col(0), Expr::lit(key)));
        let scanned = sorted(execute(&plan, &cat).unwrap());
        let optimized = sorted(execute_optimized(&plan, &cat).unwrap());
        prop_assert_eq!(scanned, optimized);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// The lexer never panics and either tokenizes or reports an error
    /// with a sane offset, for arbitrary input.
    #[test]
    fn lexer_total(input in ".{0,80}") {
        match erbiumdb::query::parser::parse(&input) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.offset <= input.len() + 1),
        }
    }

    /// Storage values have a total order consistent with hashing:
    /// a == b ⇒ hash(a) == hash(b).
    #[test]
    fn value_ord_hash_consistent(x in -5i64..5, y in -5.0f64..5.0) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Value::Int(x);
        let b = Value::Float(y);
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        if a == b {
            prop_assert_eq!(hash(&a), hash(&b));
        }
        // Antisymmetry.
        if a < b {
            prop_assert!(b > a);
        }
    }
}
