//! Cross-crate integration: the full pipeline from DDL text to governed,
//! evolved, re-mapped query answers.

use erbiumdb::advisor::Workload;
use erbiumdb::core::AccessPolicy;
use erbiumdb::evolve::{EvolutionOp, MvPlacement};
use erbiumdb::mapping::presets::{self, paper};
use erbiumdb::model::fixtures;
use erbium_datagen::{experiment_database, university_database, ExperimentConfig};
use erbiumdb::storage::Value;

#[test]
fn full_lifecycle_on_university() {
    let mut db = university_database(6, 60, 99).unwrap();

    // Query across three layers of the schema.
    let q = "SELECT d.dept_name, COUNT(*) AS n \
             FROM department d JOIN instructor i VIA member_of \
             ORDER BY n DESC";
    let baseline = db.query(q).unwrap();
    assert!(!baseline.rows.is_empty());
    let total: i64 = baseline.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(total, 6);

    // Remap twice; the answer never changes.
    let m2 = presets::inline_all_multivalued(presets::normalized(db.schema()), db.schema());
    db.remap(m2).unwrap();
    assert_eq!(db.query(q).unwrap().rows, baseline.rows);
    let m3 = presets::merge_hierarchy(presets::normalized(db.schema()), db.schema(), "person");
    db.remap(m3).unwrap();
    assert_eq!(db.query(q).unwrap().rows, baseline.rows);

    // Evolve: phones per person become single-valued.
    db.evolve(EvolutionOp::MakeSingleValued {
        entity: "person".into(),
        attribute: "phone".into(),
        policy: erbiumdb::evolve::ConflictPolicy::KeepFirst,
    })
    .unwrap();
    assert_eq!(db.query(q).unwrap().rows, baseline.rows);

    // Governance: erase a student and verify the links went with them.
    let takes_before = db
        .query("SELECT COUNT(*) AS n FROM student s JOIN section x VIA takes")
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    db.erase("person", &[Value::Int(10_000)]).unwrap();
    let takes_after = db
        .query("SELECT COUNT(*) AS n FROM student s JOIN section x VIA takes")
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    assert!(takes_after < takes_before);

    // Version log saw everything.
    let log = db.versions().unwrap();
    assert!(log.versions().len() >= 4, "{:?}", log.versions().len());
}

#[test]
fn experiment_database_runs_all_section6_queries_under_every_mapping() {
    let cfg = ExperimentConfig { n_r: 300, mv_avg: 3, seed: 5 };
    let schema = fixtures::experiment();
    let mappings = vec![
        paper::m1(&schema),
        paper::m2(&schema),
        paper::m3(&schema),
        paper::m4(&schema),
        paper::m5(&schema).unwrap(),
        paper::m6(&schema, erbiumdb::mapping::CoFormat::Denormalized).unwrap(),
        paper::m6(&schema, erbiumdb::mapping::CoFormat::Factorized).unwrap(),
    ];
    let queries = [
        "SELECT r.r_id, r.r_mv1, r.r_mv2, r.r_mv3 FROM R r",
        "SELECT UNNEST(r.r_mv1) FROM R r",
        "SELECT r.r_mv1 FROM R r WHERE r.r_id = 150",
        "SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r",
        "SELECT r.r_id, s.s_id FROM R r JOIN S s VIA r_s WHERE r.r_b < 10 AND s.s_b < 5",
        "SELECT w.s_id, w.s1_no, r.r_id, r.r_a FROM S1 w JOIN R2 r VIA r2_s1",
        "SELECT r.r_id, r.r2_a, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1",
    ];
    let mut reference: Option<Vec<usize>> = None;
    for m in mappings {
        let name = m.name.clone();
        let db = experiment_database(&m, &cfg).unwrap();
        let counts: Vec<usize> =
            queries.iter().map(|q| db.query(q).unwrap().rows.len()).collect();
        match &reference {
            None => reference = Some(counts),
            Some(r) => assert_eq!(r, &counts, "row counts differ under {name}"),
        }
    }
}

#[test]
fn advisor_recommendation_is_installable_and_correct() {
    let cfg = ExperimentConfig { n_r: 400, mv_avg: 3, seed: 1 };
    let schema = fixtures::experiment();
    let mut db = experiment_database(&paper::m1(&schema), &cfg).unwrap();
    let wl = Workload::new()
        .weighted("SELECT r.r_mv1 FROM R r WHERE r.r_id = 100", 50.0)
        .unwrap()
        .query("SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r")
        .unwrap();
    let check = "SELECT r.r_id, r.r_mv1 FROM R r WHERE r.r_b < 3";
    let mut before = db.query(check).unwrap().rows;
    let rec = db.advise(&wl).unwrap();
    db.remap(rec.mapping).unwrap();
    let mut after = db.query(check).unwrap().rows;
    // Arrays may come back in a different order.
    for rows in [&mut before, &mut after] {
        for r in rows.iter_mut() {
            if let Value::Array(a) = &mut r[1] {
                a.sort();
            }
        }
        rows.sort();
    }
    assert_eq!(before, after);
}

#[test]
fn policy_applies_across_mappings() {
    let mut db = university_database(3, 10, 3).unwrap();
    db.set_policy(Some(AccessPolicy::deny_tag("pii")));
    assert!(db.query("SELECT p.name FROM person p").is_err());
    // The policy lives at the logical layer: remapping does not bypass it.
    let m = presets::merge_hierarchy(presets::normalized(db.schema()), db.schema(), "person");
    db.remap(m).unwrap();
    assert!(db.query("SELECT p.name FROM person p").is_err());
    assert!(db.query("SELECT s.tot_credits FROM student s").is_ok());
}

#[test]
fn evolve_make_multivalued_respects_placement() {
    let mut db = university_database(2, 5, 4).unwrap();
    db.evolve(EvolutionOp::MakeMultiValued {
        entity: "course".into(),
        attribute: "title".into(),
        placement: MvPlacement::SideTable,
    })
    .unwrap();
    assert!(db.catalog().has_table("course__title"));
    let r = db.query("SELECT c.course_id, UNNEST(c.title) AS t FROM course c LIMIT 3").unwrap();
    assert_eq!(r.rows.len(), 3);
}
