//! Parallel-execution invariance: the streaming executor guarantees
//! **bit-identical** results regardless of thread count, morsel size,
//! batch size, pipeline fusion, or columnar execution (see `DESIGN.md`
//! §9 — morsel-ordered reassembly, chunk-ordered aggregate merges over
//! fixed chunk boundaries — and §11 — vectorized kernels reproduce the
//! row path's visit order and `Value::cmp` semantics exactly). This
//! sweep pins that guarantee across every parallel operator family on
//! the paper's mappings M1–M6:
//!
//! * scan + fused Filter/Project chains,
//! * hash-join build and morsel-partitioned probe,
//! * partial aggregation with and without GROUP BY (COUNT/SUM/AVG/MIN/MAX
//!   and the group-order-sensitive single-key fast path),
//! * LIMIT early-exit above a parallel scan,
//! * cancellation mid-wave,
//!
//! plus a many-threads stress test hammering one `Database` from
//! concurrent `query_with` callers.

use erbium_datagen::{experiment_database, ExperimentConfig};
use erbiumdb::core::Database;
use erbiumdb::engine::{EngineError, ExecContext};
use erbiumdb::mapping::presets::paper;
use erbiumdb::mapping::CoFormat;
use erbiumdb::model::fixtures;
use erbiumdb::storage::Value;

fn databases() -> Vec<(String, Database)> {
    let cfg = ExperimentConfig { n_r: 150, mv_avg: 3, seed: 11 };
    let schema = fixtures::experiment();
    let mappings = vec![
        paper::m1(&schema),
        paper::m2(&schema),
        paper::m3(&schema),
        paper::m4(&schema),
        paper::m5(&schema).unwrap(),
        paper::m6(&schema, CoFormat::Denormalized).unwrap(),
        paper::m6(&schema, CoFormat::Factorized).unwrap(),
    ];
    mappings
        .into_iter()
        .map(|m| {
            let name = m.name.clone();
            (name, experiment_database(&m, &cfg).unwrap())
        })
        .collect()
}

/// One query per parallel operator family.
const QUERIES: &[(&str, &str)] = &[
    // Scan with a Filter/Project chain fused into the morsel workers.
    ("fusion", "SELECT r.r_id, r.r_a FROM R r WHERE r.r_b < 10"),
    // Hash-join build + morsel-partitioned probe (E6 class).
    (
        "probe",
        "SELECT r.r_id, s.s_id FROM R r JOIN S s VIA r_s \
         WHERE r.r_b < 10 AND s.s_b < 5",
    ),
    // 3-way join (E5 class): factorized under M5/M6f, hash joins elsewhere.
    ("join3", "SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r"),
    // Grouped partial aggregation: output *order* (first-seen group order)
    // and float AVG must both be invariant; exercises the single-key fast
    // path.
    (
        "agg_group",
        "SELECT r.r_b, COUNT(*) AS n, SUM(r.r_id) AS s, AVG(r.r_id) AS a \
         FROM R r GROUP BY r.r_b",
    ),
    // Global (no GROUP BY) aggregation.
    (
        "agg_global",
        "SELECT COUNT(*) AS n, SUM(r.r_b) AS s, AVG(r.r_b) AS a, \
         MIN(r.r_a) AS lo, MAX(r.r_a) AS hi FROM R r",
    ),
    // Array reassembly + unnest above a parallel scan.
    ("unnest", "SELECT UNNEST(r.r_mv1) FROM R r"),
    // LIMIT early-exit above a parallel scan: which 7 rows come out must
    // not depend on the execution config.
    ("limit", "SELECT r.r_id, r.r_b FROM R r LIMIT 7"),
];

#[test]
fn results_are_bit_identical_across_thread_morsel_batch_fusion_and_columnar_configs() {
    for (mapping, db) in databases() {
        for &(family, sql) in QUERIES {
            // The reference is the serial, row-at-a-time interpreter: one
            // thread, columnar kernels off. Every other configuration —
            // including the vectorized path — must reproduce it bit for bit.
            let reference = db
                .query_with(sql, &ExecContext::default().with_threads(1).with_columnar(false))
                .unwrap_or_else(|e| panic!("{mapping}/{family}: {e}"))
                .rows;
            assert!(!reference.is_empty(), "{mapping}/{family}: fixture should produce rows");
            for threads in [1usize, 2, 4, 8] {
                for morsel in [1usize, 7, 4096] {
                    for batch in [3usize, 1024] {
                        for fusion in [true, false] {
                            for columnar in [true, false] {
                                let ctx = ExecContext::default()
                                    .with_threads(threads)
                                    .with_morsel_size(morsel)
                                    .with_batch_size(batch)
                                    .with_fusion(fusion)
                                    .with_columnar(columnar);
                                let rows = db.query_with(sql, &ctx).unwrap().rows;
                                assert_eq!(
                                    rows, reference,
                                    "{mapping}/{family}: threads={threads} morsel={morsel} \
                                     batch={batch} fusion={fusion} columnar={columnar} \
                                     diverged from the serial row-path reference"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn limit_early_exit_holds_under_parallel_scan() {
    let cfg = ExperimentConfig { n_r: 500, mv_avg: 2, seed: 3 };
    let db = experiment_database(&paper::m1(&fixtures::experiment()), &cfg).unwrap();
    let ctx = ExecContext::default().with_threads(2).with_morsel_size(16).with_batch_size(16);
    let res = db.query_with("SELECT r.r_id FROM R r LIMIT 5", &ctx).unwrap();
    assert_eq!(res.rows.len(), 5);
    let m = res.metrics.expect("query_with returns metrics");
    let scan = m.leaves()[0];
    assert!(
        scan.rows_in < 500,
        "LIMIT must stop the parallel scan early; examined {} rows\n{}",
        scan.rows_in,
        m.render()
    );
}

#[test]
fn cancellation_mid_wave_surfaces_cancelled() {
    let cfg = ExperimentConfig { n_r: 300, mv_avg: 2, seed: 5 };
    let db = experiment_database(&paper::m1(&fixtures::experiment()), &cfg).unwrap();
    let plan = db.plan("SELECT r.r_id, s.s_id FROM R r JOIN S s VIA r_s").unwrap();
    let ctx = ExecContext::default().with_threads(4).with_morsel_size(8).with_batch_size(1);
    let mut stream =
        erbiumdb::engine::execute_streaming(&plan, db.catalog(), &ctx).unwrap();
    assert!(stream.next_batch().unwrap().is_some(), "first batch should arrive");
    ctx.cancel();
    let err = loop {
        match stream.next_batch() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("stream completed despite cancellation"),
            Err(e) => break e,
        }
    };
    assert_eq!(err, EngineError::Cancelled);
}

/// Property sweep over **every `Value` variant** the storage layer can
/// hold: the columnar kernels must agree bit-for-bit with the row-path
/// interpreter on a table that mixes NULLs, booleans, extreme and
/// ordinary integers, adversarial floats (NaN, ±0.0, ±∞ — compared via
/// `f64::total_cmp`), dictionary-encoded strings (duplicates, the empty
/// string), and the fallback `Other` column kinds (arrays, structs).
/// Predicates cover every comparison operator, literal-first mirroring,
/// cross-type rank comparisons, NULL literals, IS [NOT] NULL, residual
/// (non-vectorizable) conjuncts, projection pruning, hash-join builds
/// keyed on each scalar type, and grouped/global aggregation.
#[test]
fn all_value_variants_bit_identical_columnar_on_off() {
    use erbiumdb::engine::{
        execute_with_metrics, AggCall, AggFunc, BinOp, Expr, Plan, ScalarFunc,
    };
    use erbiumdb::storage::{Catalog, Column, DataType, Table, TableSchema};

    // Deterministic xorshift so the fixture is reproducible yet messy.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut cat = Catalog::new();
    let mut t = Table::new(TableSchema::new(
        "z",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("i", DataType::Int),
            Column::new("f", DataType::Float),
            Column::new("b", DataType::Bool),
            Column::new("s", DataType::Text),
            Column::new("a", DataType::Array(Box::new(DataType::Int))),
            Column::new("st", DataType::Struct(vec![("x".into(), DataType::Int)])),
        ],
        vec![0],
    ));
    let floats = [
        f64::NAN,
        -f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        0.0,
        1.5,
        -2.5,
        f64::MIN_POSITIVE,
        f64::EPSILON,
    ];
    let ints = [i64::MIN, i64::MAX, -1, 0, 1, 7, 42];
    let words = ["", "a", "ab", "b", "zig", "zag", "zig"]; // dups exercise the dictionary
    for id in 0..240i64 {
        let r = rng();
        let i = if r % 11 == 0 { Value::Null } else { Value::Int(ints[(r % 7) as usize]) };
        let f = match r % 13 {
            0 => Value::Null,
            // Int into a Float column: ingest canonicalizes to Float,
            // keeping the column vector type-pure.
            1 => Value::Int((r % 5) as i64),
            _ => Value::Float(floats[(r % 10) as usize]),
        };
        let b = match r % 5 {
            0 => Value::Null,
            n => Value::Bool(n % 2 == 0),
        };
        let s = if r % 9 == 0 { Value::Null } else { Value::str(words[(r % 7) as usize]) };
        let a = if r % 6 == 0 {
            Value::Null
        } else {
            Value::Array(vec![Value::Int((r % 3) as i64), Value::Null])
        };
        let st = if r % 8 == 0 {
            Value::Null
        } else {
            Value::Struct(vec![Value::Int((r % 4) as i64)])
        };
        t.insert(vec![Value::Int(id), i, f, b, s, a, st]).unwrap();
    }
    // Deleted slots leave tombstones the live bitmap must skip.
    for slot in [3u64, 77, 201] {
        t.delete(erbiumdb::storage::RowId(slot)).unwrap();
    }
    cat.create_table(t).unwrap();

    let scan = |cat: &Catalog| Plan::scan(cat, "z").unwrap();
    let cmp_ops = [BinOp::Lt, BinOp::Le, BinOp::Eq, BinOp::Ne, BinOp::Ge, BinOp::Gt];
    let mut plans: Vec<(String, Plan)> = Vec::new();
    for op in cmp_ops {
        // Typed comparisons on every vectorizable column, plus the
        // literal-first mirrored form.
        plans.push((format!("i {op:?} 1"), scan(&cat).filter(Expr::binary(op, Expr::col(1), Expr::lit(1i64)))));
        plans.push((format!("1 {op:?} i"), scan(&cat).filter(Expr::binary(op, Expr::lit(1i64), Expr::col(1)))));
        plans.push((format!("f {op:?} 0.0"), scan(&cat).filter(Expr::binary(op, Expr::col(2), Expr::lit(0.0f64)))));
        plans.push((format!("f {op:?} NaN"), scan(&cat).filter(Expr::binary(op, Expr::col(2), Expr::lit(f64::NAN)))));
        plans.push((format!("f {op:?} 2 (int lit)"), scan(&cat).filter(Expr::binary(op, Expr::col(2), Expr::lit(2i64)))));
        plans.push((format!("i {op:?} 1.5 (float lit)"), scan(&cat).filter(Expr::binary(op, Expr::col(1), Expr::lit(1.5f64)))));
        plans.push((format!("s {op:?} 'b'"), scan(&cat).filter(Expr::binary(op, Expr::col(4), Expr::lit(Value::str("b"))))));
        plans.push((format!("b {op:?} true"), scan(&cat).filter(Expr::binary(op, Expr::col(3), Expr::lit(true)))));
        // Cross-type rank comparison (Int column vs Str literal) and a
        // NULL literal (selects nothing).
        plans.push((format!("i {op:?} 'x'"), scan(&cat).filter(Expr::binary(op, Expr::col(1), Expr::lit(Value::str("x"))))));
        plans.push((format!("i {op:?} NULL"), scan(&cat).filter(Expr::binary(op, Expr::col(1), Expr::lit(Value::Null)))));
        // Arrays and structs are `Other` columns: the conjunct stays
        // residual and row-evaluates in selection order.
        plans.push((format!("a {op:?} [1,NULL]"), scan(&cat).filter(Expr::binary(op, Expr::col(5), Expr::lit(Value::Array(vec![Value::Int(1), Value::Null]))))));
        plans.push((format!("st {op:?} {{2}}"), scan(&cat).filter(Expr::binary(op, Expr::col(6), Expr::lit(Value::Struct(vec![Value::Int(2)]))))));
    }
    for c in 1..=6usize {
        plans.push((format!("col{c} IS NULL"), scan(&cat).filter(Expr::IsNull(Box::new(Expr::col(c))))));
        plans.push((format!("col{c} IS NOT NULL"), scan(&cat).filter(Expr::IsNotNull(Box::new(Expr::col(c))))));
    }
    // Vectorizable prefix + residual arithmetic conjunct, then a pruned
    // projection on top.
    plans.push((
        "prefix+residual+prune".into(),
        scan(&cat)
            .filter(Expr::and(
                Expr::binary(BinOp::Ge, Expr::col(1), Expr::lit(0i64)),
                Expr::eq(Expr::binary(BinOp::Mod, Expr::col(0), Expr::lit(3i64)), Expr::lit(1i64)),
            ))
            .project(vec![(Expr::col(4), "s".into()), (Expr::col(2), "f".into())]),
    ));
    plans.push((
        "scalar func over floats".into(),
        scan(&cat).project(vec![(Expr::func(ScalarFunc::Abs, vec![Expr::col(2)]), "af".into())]),
    ));
    // Hash-join build keyed on each scalar type (NULL keys never join);
    // the single-key columnar build must match the drained-stream build.
    for (name, key) in [("int", 1usize), ("float", 2), ("bool", 3), ("str", 4), ("array", 5)] {
        plans.push((
            format!("self-join on {name}"),
            scan(&cat).join(scan(&cat), erbiumdb::engine::JoinKind::Inner, vec![Expr::col(key)], vec![Expr::col(key)]),
        ));
    }
    // Aggregation: global, single-key (dict / bool / float keys — the
    // columnar fast path), and multi-key (row fallback).
    plans.push((
        "global aggs".into(),
        scan(&cat).aggregate(
            vec![],
            vec![
                (AggCall::count_star(), "n".into()),
                (AggCall::new(AggFunc::Sum, Expr::col(2)), "sf".into()),
                (AggCall::new(AggFunc::Avg, Expr::col(1)), "ai".into()),
                (AggCall::new(AggFunc::Min, Expr::col(2)), "lo".into()),
                (AggCall::new(AggFunc::Max, Expr::col(2)), "hi".into()),
            ],
        ),
    ));
    for (name, key) in [("str", 4usize), ("bool", 3), ("float", 2), ("int", 1)] {
        plans.push((
            format!("group by {name}"),
            scan(&cat).aggregate(
                vec![(Expr::col(key), "k".into())],
                vec![(AggCall::count_star(), "n".into()), (AggCall::new(AggFunc::Sum, Expr::col(0)), "s".into())],
            ),
        ));
    }
    plans.push((
        "group by two keys".into(),
        scan(&cat).aggregate(
            vec![(Expr::col(3), "b".into()), (Expr::col(4), "s".into())],
            vec![(AggCall::new(AggFunc::Min, Expr::col(2)), "lo".into())],
        ),
    ));

    for (name, plan) in &plans {
        let reference = execute_with_metrics(
            plan,
            &cat,
            &ExecContext::default().with_threads(1).with_columnar(false),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .0;
        for threads in [1usize, 4] {
            for morsel in [7usize, 4096] {
                for fusion in [true, false] {
                    for columnar in [true, false] {
                        let ctx = ExecContext::default()
                            .with_threads(threads)
                            .with_morsel_size(morsel)
                            .with_batch_size(64)
                            .with_fusion(fusion)
                            .with_columnar(columnar);
                        let (rows, _) = execute_with_metrics(plan, &cat, &ctx).unwrap();
                        // Vec<Value> equality is bit-faithful for floats
                        // only via to_bits; compare a rendered form that
                        // distinguishes NaN payload sign and -0.0.
                        assert_eq!(
                            bits(&rows),
                            bits(&reference),
                            "{name}: threads={threads} morsel={morsel} fusion={fusion} \
                             columnar={columnar} diverged"
                        );
                    }
                }
            }
        }
    }

    /// Render rows with floats expanded to raw bit patterns so NaN vs
    /// NaN and -0.0 vs +0.0 mismatches are caught, not masked.
    fn bits(rows: &[Vec<Value>]) -> Vec<String> {
        fn one(v: &Value, out: &mut String) {
            match v {
                Value::Float(f) => out.push_str(&format!("F:{:016x}", f.to_bits())),
                Value::Array(xs) | Value::Struct(xs) => {
                    out.push('[');
                    for x in xs {
                        one(x, out);
                        out.push(',');
                    }
                    out.push(']');
                }
                other => out.push_str(&format!("{other:?}")),
            }
        }
        rows.iter()
            .map(|r| {
                let mut s = String::new();
                for v in r {
                    one(v, &mut s);
                    s.push('|');
                }
                s
            })
            .collect()
    }
}

/// Many concurrent `query_with` callers against one shared `Database`,
/// each itself requesting parallel execution — the global worker pool is
/// shared by every wave of every query, and nested submission must never
/// deadlock or cross-contaminate results.
#[test]
fn concurrent_parallel_queries_share_the_pool_without_interference() {
    let cfg = ExperimentConfig { n_r: 200, mv_avg: 3, seed: 9 };
    let db = experiment_database(&paper::m1(&fixtures::experiment()), &cfg).unwrap();
    let expected: Vec<Vec<Vec<Value>>> = QUERIES
        .iter()
        .map(|(_, sql)| db.query_with(sql, &ExecContext::default().with_threads(1)).unwrap().rows)
        .collect();
    std::thread::scope(|s| {
        for caller in 0..8usize {
            let db = &db;
            let expected = &expected;
            s.spawn(move || {
                for round in 0..4usize {
                    for (qi, (family, sql)) in QUERIES.iter().enumerate() {
                        let ctx = ExecContext::default()
                            .with_threads(1 + (caller + round) % 8)
                            .with_morsel_size([1, 7, 64, 4096][(caller + qi) % 4]);
                        let rows = db.query_with(sql, &ctx).unwrap().rows;
                        assert_eq!(
                            &rows, &expected[qi],
                            "caller {caller} round {round} family {family} diverged"
                        );
                    }
                }
            });
        }
    });
}

// ---- snapshot isolation ----------------------------------------------------
//
// PR-7: `SharedDatabase` gives every reader a pinned, immutable snapshot
// while one writer commits underneath. Isolation is structural (the writer
// detaches copy-on-write tables instead of mutating shared memory), so the
// invariant to pin is absolute: a snapshot's results never change, no
// matter what commits after it was acquired — on the row path and the
// columnar path alike.

fn shared_acct_db(batches: i64) -> erbiumdb::core::SharedDatabase {
    let mut db = Database::new();
    db.execute("CREATE ENTITY acct (id int KEY, batch int, score int)").unwrap();
    db.install_default().unwrap();
    let db = db.into_shared();
    for b in 0..batches {
        seed_batch(&db, b);
    }
    db
}

/// One atomic transaction inserting the two accounts of batch `b`, scores
/// summing to 100 — the unit readers must see all-or-nothing.
fn seed_batch(db: &erbiumdb::core::SharedDatabase, b: i64) {
    db.transaction(|tx| {
        tx.insert(
            "acct",
            &[("id", Value::Int(2 * b)), ("batch", Value::Int(b)), ("score", Value::Int(50))],
        )?;
        tx.insert(
            "acct",
            &[("id", Value::Int(2 * b + 1)), ("batch", Value::Int(b)), ("score", Value::Int(50))],
        )
    })
    .unwrap();
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

#[test]
fn pinned_snapshot_ignores_concurrent_insert_update_delete() {
    let db = shared_acct_db(10);
    const ALL: &str = "SELECT a.id, a.batch, a.score FROM acct a";
    let reference = sorted(db.query(ALL).unwrap().rows);
    let snap = db.snapshot();

    // Writer commits an insert, an update, and a delete after the pin.
    seed_batch(&db, 77);
    db.update_entity("acct", &[Value::Int(0)], &[("score", Value::Int(999))]).unwrap();
    db.delete_entity("acct", &[Value::Int(3)]).unwrap();

    // The pinned snapshot still sees the pre-write state — identically on
    // the row path and the columnar path.
    for columnar in [false, true] {
        let ctx = ExecContext::default().with_columnar(columnar);
        assert_eq!(
            sorted(snap.query_with(ALL, &ctx).unwrap().rows),
            reference,
            "snapshot drifted under concurrent writes (columnar={columnar})"
        );
    }
    // A fresh snapshot does see all three writes.
    let now = sorted(db.query(ALL).unwrap().rows);
    assert_ne!(now, reference);
    assert_eq!(now.len(), reference.len() + 2 - 1, "insert of 2 and delete of 1 visible");
    assert!(now.iter().any(|r| r[2] == Value::Int(999)), "update visible to new snapshots");
    assert!(snap.epoch() < db.epoch(), "writes advanced the catalog epoch past the pin");
}

#[test]
fn aborted_transaction_is_never_visible() {
    let db = shared_acct_db(4);
    const ALL: &str = "SELECT a.id, a.batch, a.score FROM acct a";
    let reference = sorted(db.query(ALL).unwrap().rows);
    let err = db
        .transaction(|tx| {
            tx.insert(
                "acct",
                &[("id", Value::Int(900)), ("batch", Value::Int(90)), ("score", Value::Int(1))],
            )?;
            tx.update_entity("acct", &[Value::Int(0)], &[("score", Value::Int(-5))])?;
            Err::<(), _>(erbiumdb::core::DbError::Parse("abort".into()))
        })
        .unwrap_err();
    assert!(matches!(err, erbiumdb::core::DbError::Parse(_)));
    assert_eq!(
        sorted(db.query(ALL).unwrap().rows),
        reference,
        "rolled-back writes leaked into post-abort snapshots"
    );
}

/// Concurrent readers against a continuously committing writer: every
/// snapshot must show only whole transactions (each batch has exactly 2
/// accounts summing to 100, despite the writer moving points between them),
/// the same snapshot must answer identically twice, and the final state
/// must equal the same operations applied serially to a plain `Database`.
#[test]
fn concurrent_readers_see_only_whole_transactions() {
    const SEED_BATCHES: i64 = 8;
    const WRITE_ROUNDS: i64 = 40;
    let db = shared_acct_db(SEED_BATCHES);
    const AGG: &str =
        "SELECT a.batch, COUNT(*) AS n, SUM(a.score) AS s FROM acct a GROUP BY a.batch";

    std::thread::scope(|s| {
        let writer = {
            let db = db.clone();
            s.spawn(move || {
                for round in 0..WRITE_ROUNDS {
                    // Move points between the two accounts of one batch —
                    // atomically, so per-batch SUM stays 100.
                    let b = round % SEED_BATCHES;
                    let d = 1 + round % 7;
                    db.transaction(|tx| {
                        tx.update_entity(
                            "acct",
                            &[Value::Int(2 * b)],
                            &[("score", Value::Int(50 - d))],
                        )?;
                        tx.update_entity(
                            "acct",
                            &[Value::Int(2 * b + 1)],
                            &[("score", Value::Int(50 + d))],
                        )
                    })
                    .unwrap();
                    // And grow the table by one whole batch.
                    seed_batch(&db, SEED_BATCHES + round);
                }
            })
        };
        for reader in 0..4usize {
            let db = db.clone();
            s.spawn(move || {
                for iter in 0..30usize {
                    let snap = db.snapshot();
                    let columnar = (reader + iter) % 2 == 0;
                    let ctx = ExecContext::default().with_columnar(columnar);
                    let rows = snap.query_with(AGG, &ctx).unwrap().rows;
                    assert!(!rows.is_empty());
                    for row in &rows {
                        assert_eq!(
                            (&row[1], &row[2]),
                            (&Value::Int(2), &Value::Int(100)),
                            "reader {reader} iter {iter} saw a torn batch: {row:?}"
                        );
                    }
                    // Snapshot stability: the same pin answers identically.
                    assert_eq!(
                        snap.query_with(AGG, &ctx).unwrap().rows,
                        rows,
                        "reader {reader} iter {iter}: snapshot result changed under it"
                    );
                }
            });
        }
        writer.join().unwrap();
    });

    // Serial reference: the same operations on a plain single-caller
    // Database produce the same final state.
    let mut serial = Database::new();
    serial.execute("CREATE ENTITY acct (id int KEY, batch int, score int)").unwrap();
    serial.install_default().unwrap();
    let ins = |db: &mut Database, b: i64| {
        db.transaction(|tx| {
            tx.insert(
                "acct",
                &[("id", Value::Int(2 * b)), ("batch", Value::Int(b)), ("score", Value::Int(50))],
            )?;
            tx.insert(
                "acct",
                &[
                    ("id", Value::Int(2 * b + 1)),
                    ("batch", Value::Int(b)),
                    ("score", Value::Int(50)),
                ],
            )
        })
        .unwrap();
    };
    for b in 0..SEED_BATCHES {
        ins(&mut serial, b);
    }
    for round in 0..WRITE_ROUNDS {
        let (b, d) = (round % SEED_BATCHES, 1 + round % 7);
        serial
            .update_entity("acct", &[Value::Int(2 * b)], &[("score", Value::Int(50 - d))])
            .unwrap();
        serial
            .update_entity("acct", &[Value::Int(2 * b + 1)], &[("score", Value::Int(50 + d))])
            .unwrap();
        ins(&mut serial, SEED_BATCHES + round);
    }
    const ALL: &str = "SELECT a.id, a.batch, a.score FROM acct a";
    assert_eq!(
        sorted(db.query(ALL).unwrap().rows),
        sorted(serial.query(ALL).unwrap().rows),
        "concurrent execution diverged from the serial reference"
    );
}
