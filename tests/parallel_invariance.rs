//! Parallel-execution invariance: the streaming executor guarantees
//! **bit-identical** results regardless of thread count, morsel size,
//! batch size, or pipeline fusion (see `DESIGN.md` §9 — morsel-ordered
//! reassembly, chunk-ordered aggregate merges over fixed chunk
//! boundaries). This sweep pins that guarantee across every parallel
//! operator family on the paper's mappings M1–M6:
//!
//! * scan + fused Filter/Project chains,
//! * hash-join build and morsel-partitioned probe,
//! * partial aggregation with and without GROUP BY (COUNT/SUM/AVG/MIN/MAX
//!   and the group-order-sensitive single-key fast path),
//! * LIMIT early-exit above a parallel scan,
//! * cancellation mid-wave,
//!
//! plus a many-threads stress test hammering one `Database` from
//! concurrent `query_with` callers.

use erbium_datagen::{experiment_database, ExperimentConfig};
use erbiumdb::core::Database;
use erbiumdb::engine::{EngineError, ExecContext};
use erbiumdb::mapping::presets::paper;
use erbiumdb::mapping::CoFormat;
use erbiumdb::model::fixtures;
use erbiumdb::storage::Value;

fn databases() -> Vec<(String, Database)> {
    let cfg = ExperimentConfig { n_r: 150, mv_avg: 3, seed: 11 };
    let schema = fixtures::experiment();
    let mappings = vec![
        paper::m1(&schema),
        paper::m2(&schema),
        paper::m3(&schema),
        paper::m4(&schema),
        paper::m5(&schema).unwrap(),
        paper::m6(&schema, CoFormat::Denormalized).unwrap(),
        paper::m6(&schema, CoFormat::Factorized).unwrap(),
    ];
    mappings
        .into_iter()
        .map(|m| {
            let name = m.name.clone();
            (name, experiment_database(&m, &cfg).unwrap())
        })
        .collect()
}

/// One query per parallel operator family.
const QUERIES: &[(&str, &str)] = &[
    // Scan with a Filter/Project chain fused into the morsel workers.
    ("fusion", "SELECT r.r_id, r.r_a FROM R r WHERE r.r_b < 10"),
    // Hash-join build + morsel-partitioned probe (E6 class).
    (
        "probe",
        "SELECT r.r_id, s.s_id FROM R r JOIN S s VIA r_s \
         WHERE r.r_b < 10 AND s.s_b < 5",
    ),
    // 3-way join (E5 class): factorized under M5/M6f, hash joins elsewhere.
    ("join3", "SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r"),
    // Grouped partial aggregation: output *order* (first-seen group order)
    // and float AVG must both be invariant; exercises the single-key fast
    // path.
    (
        "agg_group",
        "SELECT r.r_b, COUNT(*) AS n, SUM(r.r_id) AS s, AVG(r.r_id) AS a \
         FROM R r GROUP BY r.r_b",
    ),
    // Global (no GROUP BY) aggregation.
    (
        "agg_global",
        "SELECT COUNT(*) AS n, SUM(r.r_b) AS s, AVG(r.r_b) AS a, \
         MIN(r.r_a) AS lo, MAX(r.r_a) AS hi FROM R r",
    ),
    // Array reassembly + unnest above a parallel scan.
    ("unnest", "SELECT UNNEST(r.r_mv1) FROM R r"),
    // LIMIT early-exit above a parallel scan: which 7 rows come out must
    // not depend on the execution config.
    ("limit", "SELECT r.r_id, r.r_b FROM R r LIMIT 7"),
];

#[test]
fn results_are_bit_identical_across_thread_morsel_batch_and_fusion_configs() {
    for (mapping, db) in databases() {
        for &(family, sql) in QUERIES {
            let reference = db
                .query_with(sql, &ExecContext::default().with_threads(1))
                .unwrap_or_else(|e| panic!("{mapping}/{family}: {e}"))
                .rows;
            assert!(!reference.is_empty(), "{mapping}/{family}: fixture should produce rows");
            for threads in [1usize, 2, 4, 8] {
                for morsel in [1usize, 7, 4096] {
                    for batch in [3usize, 1024] {
                        for fusion in [true, false] {
                            let ctx = ExecContext::default()
                                .with_threads(threads)
                                .with_morsel_size(morsel)
                                .with_batch_size(batch)
                                .with_fusion(fusion);
                            let rows = db.query_with(sql, &ctx).unwrap().rows;
                            assert_eq!(
                                rows, reference,
                                "{mapping}/{family}: threads={threads} morsel={morsel} \
                                 batch={batch} fusion={fusion} diverged from single-threaded"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn limit_early_exit_holds_under_parallel_scan() {
    let cfg = ExperimentConfig { n_r: 500, mv_avg: 2, seed: 3 };
    let db = experiment_database(&paper::m1(&fixtures::experiment()), &cfg).unwrap();
    let ctx = ExecContext::default().with_threads(2).with_morsel_size(16).with_batch_size(16);
    let res = db.query_with("SELECT r.r_id FROM R r LIMIT 5", &ctx).unwrap();
    assert_eq!(res.rows.len(), 5);
    let m = res.metrics.expect("query_with returns metrics");
    let scan = m.leaves()[0];
    assert!(
        scan.rows_in < 500,
        "LIMIT must stop the parallel scan early; examined {} rows\n{}",
        scan.rows_in,
        m.render()
    );
}

#[test]
fn cancellation_mid_wave_surfaces_cancelled() {
    let cfg = ExperimentConfig { n_r: 300, mv_avg: 2, seed: 5 };
    let db = experiment_database(&paper::m1(&fixtures::experiment()), &cfg).unwrap();
    let plan = db.plan("SELECT r.r_id, s.s_id FROM R r JOIN S s VIA r_s").unwrap();
    let ctx = ExecContext::default().with_threads(4).with_morsel_size(8).with_batch_size(1);
    let mut stream =
        erbiumdb::engine::execute_streaming(&plan, db.catalog(), &ctx).unwrap();
    assert!(stream.next_batch().unwrap().is_some(), "first batch should arrive");
    ctx.cancel();
    let err = loop {
        match stream.next_batch() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("stream completed despite cancellation"),
            Err(e) => break e,
        }
    };
    assert_eq!(err, EngineError::Cancelled);
}

/// Many concurrent `query_with` callers against one shared `Database`,
/// each itself requesting parallel execution — the global worker pool is
/// shared by every wave of every query, and nested submission must never
/// deadlock or cross-contaminate results.
#[test]
fn concurrent_parallel_queries_share_the_pool_without_interference() {
    let cfg = ExperimentConfig { n_r: 200, mv_avg: 3, seed: 9 };
    let db = experiment_database(&paper::m1(&fixtures::experiment()), &cfg).unwrap();
    let expected: Vec<Vec<Vec<Value>>> = QUERIES
        .iter()
        .map(|(_, sql)| db.query_with(sql, &ExecContext::default().with_threads(1)).unwrap().rows)
        .collect();
    std::thread::scope(|s| {
        for caller in 0..8usize {
            let db = &db;
            let expected = &expected;
            s.spawn(move || {
                for round in 0..4usize {
                    for (qi, (family, sql)) in QUERIES.iter().enumerate() {
                        let ctx = ExecContext::default()
                            .with_threads(1 + (caller + round) % 8)
                            .with_morsel_size([1, 7, 64, 4096][(caller + qi) % 4]);
                        let rows = db.query_with(sql, &ctx).unwrap().rows;
                        assert_eq!(
                            &rows, &expected[qi],
                            "caller {caller} round {round} family {family} diverged"
                        );
                    }
                }
            });
        }
    });
}
