//! Figure 2 of the paper, executable: three different covers of the same
//! university E/R graph, the physical tables each one lowers to, and proof
//! that one query returns identical results under all of them.
//!
//! ```text
//! cargo run --example mapping_covers
//! ```

use erbiumdb::core::Database;
use erbiumdb::mapping::{presets, Fragment, Mapping};
use erbiumdb::model::fixtures;
use erbium_datagen::populate_university;
use erbium_storage::Value;

fn show(mapping: &Mapping, schema: &erbiumdb::model::ErSchema) {
    println!("--- mapping '{}' ---", mapping.name);
    for frag in &mapping.fragments {
        let nodes = frag.nodes(schema).expect("valid fragment");
        let kind = match frag {
            Fragment::Entity { .. } => "entity  ",
            Fragment::MultiValued { .. } => "multival",
            Fragment::Relationship { .. } => "relation",
            Fragment::CoLocated { .. } => "co-locat",
        };
        println!(
            "  [{kind}] {:<22} covers {} E/R-graph nodes",
            frag.table(),
            nodes.len()
        );
    }
    println!();
}

fn main() {
    let schema = fixtures::university();

    // Cover 1: fully normalized (the paper's first Figure-2 mapping).
    let m1 = presets::normalized(&schema);
    // Cover 2: arrays inline + hierarchy merged (second mapping: fewer
    // structures, unnest instead of joins).
    let m2 = presets::merge_hierarchy(
        presets::inline_all_multivalued(presets::normalized(&schema), &schema),
        &schema,
        "person",
    );
    // Cover 3: sections folded into courses (the weak-entity fold).
    let m3 = presets::fold_weak(presets::normalized(&schema), &schema, "section")
        .expect("section is weak");

    show(&m1, &schema);
    show(&m2, &schema);
    show(&m3, &schema);

    // One query, three physical designs, one answer.
    let q = "SELECT c.course_id, COUNT(*) AS sections \
             FROM course c JOIN section s VIA sec_of";
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for mapping in [m1, m2, m3] {
        let name = mapping.name.clone();
        let mut db = Database::with_schema(schema.clone()).unwrap();
        db.install(mapping).unwrap();
        populate_university(&mut db, 6, 40, 7).unwrap();
        let mut rows = db.query(q).unwrap().rows;
        rows.sort();
        println!("'{name}': {} result rows", rows.len());
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(r, &rows, "results must not depend on the mapping"),
        }
    }
    println!("\nidentical results under all three covers ✔");
}
