//! Entity-centric data governance (Section 1.1(2) of the paper):
//! PII inventory from schema tags, tag-based query policies, and
//! GDPR-style erasure that provably removes every physical trace of a
//! person — whatever the installed mapping is.
//!
//! ```text
//! cargo run --example governance
//! ```

use erbiumdb::core::governance::pii_inventory;
use erbiumdb::core::{AccessPolicy, Database};
use erbium_datagen::university_database;
use erbium_storage::Value;

fn main() {
    let mut db: Database = university_database(5, 50, 11).unwrap();

    // 1. The schema knows where personal data lives.
    println!("PII inventory:");
    for entry in pii_inventory(db.schema()) {
        println!("  {}.{} tags={:?}", entry.entity, entry.attribute, entry.tags);
    }
    println!();

    // 2. Attribute-level access control, enforced at query-rewrite time.
    db.set_policy(Some(AccessPolicy::deny_tag("pii")));
    match db.query("SELECT p.name FROM person p") {
        Err(e) => println!("analyst query blocked: {e}"),
        Ok(_) => unreachable!("policy must block PII"),
    }
    let ok = db.query("SELECT s.tot_credits FROM student s LIMIT 3").unwrap();
    println!("non-PII analytics still work ({} rows)\n", ok.rows.len());
    db.set_policy(None);

    // 3. Erasure: all data of one person, across every physical structure.
    let victim = Value::Int(10_000);
    let before = db
        .query("SELECT COUNT(*) AS n FROM student s JOIN section x VIA takes")
        .unwrap()
        .rows[0][0]
        .clone();
    // Erasure rides the atomic transaction API: every physical delete in
    // the cascade commits as one group (and, for a durable database, as a
    // single WAL commit record).
    let report = db.transaction(|tx| tx.erase("person", std::slice::from_ref(&victim))).unwrap();
    println!(
        "erased person {victim}: {} physical operations, {} rows removed",
        report.physical_operations, report.rows_removed
    );
    assert!(db.get("person", &[victim]).unwrap().is_none());
    let after = db
        .query("SELECT COUNT(*) AS n FROM student s JOIN section x VIA takes")
        .unwrap()
        .rows[0][0]
        .clone();
    println!("takes-links before/after erasure: {before} -> {after}");

    // 4. The same erasure call works under a different mapping, because
    //    the mapping layer knows where the data moved.
    let inline = erbiumdb::mapping::presets::inline_all_multivalued(
        erbiumdb::mapping::presets::normalized(db.schema()),
        db.schema(),
    );
    db.remap(inline).unwrap();
    let report = db.erase("person", &[Value::Int(10_001)]).unwrap();
    println!(
        "after remap, erased person 10001: {} physical operations, {} rows removed",
        report.physical_operations, report.rows_removed
    );
}
