//! Section 3 of the paper, executable: the schema changes that are painful
//! in a bare relational schema but local under the E/R abstraction —
//! single→multi-valued attributes and many-to-one→many-to-many
//! relationships — plus native versioning and rollback.
//!
//! ```text
//! cargo run --example schema_evolution
//! ```

use erbiumdb::evolve::{ConflictPolicy, EvolutionOp, MvPlacement};
use erbium_datagen::university_database;
use erbium_storage::Value;

fn main() {
    let mut db = university_database(4, 25, 3).unwrap();

    // The paper's canary query: "average credits per advisee for each
    // instructor ... does not require any modifications if the
    // relationship cardinalities were to be modified".
    let canary = "SELECT i.id, AVG(s.tot_credits) AS avg_credits \
                  FROM instructor i JOIN student s VIA advisor";
    let before = db.query(canary).unwrap();
    println!("canary query before any evolution:\n{}", before.to_table());

    // 1. Single-valued → multi-valued ("moving from a single city to
    //    multiple cities"): building becomes a set of buildings.
    let report = db
        .evolve(EvolutionOp::MakeMultiValued {
            entity: "department".into(),
            attribute: "building".into(),
            placement: MvPlacement::SideTable,
        })
        .unwrap();
    println!("evolved: {} ({} entities migrated)", report.description, report.entities_migrated);
    db.update_entity(
        "department",
        &[Value::str("cs")],
        &[("building", Value::Array(vec![Value::str("AVW"), Value::str("IRB")]))],
    )
    .unwrap();
    // The localized query change the paper describes:
    //   SELECT dept_name, building  →  SELECT dept_name, UNNEST(building)
    let r = db
        .query("SELECT d.dept_name, UNNEST(d.building) AS building FROM department d")
        .unwrap();
    println!("departments after widening:\n{}", r.to_table());

    // 2. Many-to-one → many-to-many: students may now have co-advisors.
    db.evolve(EvolutionOp::MakeManyToMany { relationship: "advisor".into() }).unwrap();
    db.link("advisor", &[Value::Int(10_000)], &[Value::Int(1)], &[]).unwrap_or(());
    let after = db.query(canary).unwrap();
    println!("canary query after the cardinality change (unchanged SQL):\n{}", after.to_table());

    // 3. Back to many-to-one, keeping the first advisor.
    db.evolve(EvolutionOp::MakeManyToOne {
        relationship: "advisor".into(),
        policy: ConflictPolicy::KeepFirst,
    })
    .unwrap();

    // 4. The version log recorded every step; roll all the way back.
    let log = db.versions().unwrap();
    println!("version history:");
    for v in log.versions() {
        println!("  v{} — {}", v.number, v.description);
    }
    db.rollback_to(1).unwrap();
    let restored = db.query(canary).unwrap();
    println!("\ncanary after rollback to v1:\n{}", restored.to_table());
    let r = db.query("SELECT d.dept_name, d.building FROM department d LIMIT 2").unwrap();
    println!("building is single-valued again:\n{}", r.to_table());
}
