//! Quickstart: the paper's Figure 1 in runnable form.
//!
//! Defines the university E/R schema with ERQL DDL (composite address,
//! multi-valued phone, an ISA hierarchy, a weak entity set), installs the
//! default mapping, inserts a few entities, and runs the paper's example
//! query shapes — including a relationship join (`VIA`) and a nested
//! output (`NEST`). Writes go through the atomic `transaction` API; for
//! a database opened with `Database::open(dir)` the same closure is also
//! logged to the write-ahead log as one durable commit group.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use erbiumdb::core::Database;
use erbium_storage::Value;

fn main() {
    let mut db = Database::new();

    // Figure 1(ii): DDL against the E/R model.
    db.execute(
        "CREATE ENTITY person (
             id int KEY,
             name text TAG 'pii',
             address (street text, city text) NULLABLE TAG 'pii',
             phone text MULTIVALUED TAG 'pii'
         ) PARTIAL DISJOINT DESCRIPTION 'people on campus';

         CREATE ENTITY instructor EXTENDS person (rank text NULLABLE);
         CREATE ENTITY student EXTENDS person (tot_credits int NULLABLE);

         CREATE ENTITY department (dept_name text KEY, building text NULLABLE);
         CREATE ENTITY course (course_id text KEY, title text, credits int);

         CREATE RELATIONSHIP sec_of FROM section MANY TOTAL TO course ONE;
         CREATE WEAK ENTITY section OWNED BY course VIA sec_of (
             sec_id int KEY, semester text KEY, year int KEY
         );

         CREATE RELATIONSHIP advisor FROM student MANY TO instructor ONE;
         CREATE RELATIONSHIP member_of FROM instructor MANY TOTAL TO department ONE;
         CREATE RELATIONSHIP takes FROM student MANY TO section MANY (grade text NULLABLE);
         CREATE RELATIONSHIP teaches FROM instructor MANY TO section MANY;",
    )
    .expect("valid DDL");

    // Install the default (fully normalized) physical mapping.
    db.install_default().expect("schema is valid");
    println!("physical tables: {:?}\n", db.catalog().table_names());

    // Entity-centric inserts.
    db.insert("department", &[("dept_name", Value::str("cs")), ("building", Value::str("AVW"))])
        .unwrap();
    db.insert_linked(
        "instructor",
        &[
            ("id", Value::Int(1)),
            ("name", Value::str("Ada")),
            ("address", Value::Struct(vec![Value::str("1 Main St"), Value::str("College Park")])),
            ("phone", Value::Array(vec![Value::str("555-0100"), Value::str("555-0101")])),
            ("rank", Value::str("professor")),
        ],
        &[("member_of", vec![Value::str("cs")])],
    )
    .unwrap();
    // Multi-entity writes compose atomically: every operation inside the
    // closure commits together, or none of them do.
    db.transaction(|tx| {
        for (id, name, credits) in [(2, "Bob", 30i64), (3, "Carol", 90), (4, "Dan", 60)] {
            tx.insert_linked(
                "student",
                &[
                    ("id", Value::Int(id)),
                    ("name", Value::str(name)),
                    ("phone", Value::Array(vec![])),
                    ("tot_credits", Value::Int(credits)),
                ],
                &[("advisor", vec![Value::Int(1)])],
            )?;
        }
        Ok(())
    })
    .unwrap();

    // A course, one of its sections, and Carol's enrollment — inserted as
    // one atomic group, with the relationship attribute on the link itself.
    db.transaction(|tx| {
        tx.insert(
            "course",
            &[
                ("course_id", Value::str("CS101")),
                ("title", Value::str("Databases")),
                ("credits", Value::Int(4)),
            ],
        )?;
        tx.insert(
            "section",
            &[
                ("course_id", Value::str("CS101")),
                ("sec_id", Value::Int(1)),
                ("semester", Value::str("Fall")),
                ("year", Value::Int(2025)),
            ],
        )?;
        tx.link(
            "takes",
            &[Value::Int(3)],
            &[Value::str("CS101"), Value::Int(1), Value::str("Fall"), Value::Int(2025)],
            &[("grade", Value::str("A"))],
        )
    })
    .unwrap();

    // An error anywhere in the closure rolls back every operation in it.
    let failed: Result<(), _> = db.transaction(|tx| {
        tx.insert("department", &[("dept_name", Value::str("ee")), ("building", Value::Null)])?;
        tx.insert("department", &[("dept_name", Value::str("cs"))]) // duplicate key
    });
    assert!(failed.is_err());
    assert!(db.get("department", &[Value::str("ee")]).unwrap().is_none());
    println!("failed transaction rolled back cleanly\n");

    // A relationship join spelled with VIA — no key equalities, no
    // knowledge of the physical layout.
    let result = db
        .query(
            "SELECT i.name, AVG(s.tot_credits) AS avg_credits, COUNT(*) AS advisees
             FROM instructor i JOIN student s VIA advisor",
        )
        .unwrap();
    println!("advisor workload:\n{}", result.to_table());

    // Figure 1(iii)-style nested output.
    let result = db
        .query(
            "SELECT i.name, NEST(s.name AS student, s.tot_credits AS credits) AS advisees
             FROM instructor i JOIN student s VIA advisor",
        )
        .unwrap();
    println!("nested output:\n{}", result.to_table());

    // The same query text works under a completely different physical
    // design — that is the logical data independence the paper argues for.
    println!(
        "plan under the normalized mapping:\n{}",
        db.explain("SELECT p.phone FROM person p WHERE p.id = 1").unwrap()
    );
    let inline = erbiumdb::mapping::presets::inline_all_multivalued(
        erbiumdb::mapping::presets::normalized(db.schema()),
        db.schema(),
    );
    db.remap(inline).unwrap();
    println!(
        "same query after remapping to inline arrays:\n{}",
        db.explain("SELECT p.phone FROM person p WHERE p.id = 1").unwrap()
    );
}
