//! The mapping advisor: the paper's "natural optimization problem ...
//! automatically identify the best mapping for a given schema and data and
//! query workload", end to end — gather statistics from the live database,
//! search the cover space analytically, migrate to the winner, and measure
//! the actual speedup.
//!
//! ```text
//! cargo run --release --example advisor_demo
//! ```

use erbiumdb::advisor::Workload;
use erbiumdb::mapping::presets::paper;
use erbiumdb::model::fixtures;
use erbium_datagen::{experiment_database, ExperimentConfig};
use std::time::Instant;

fn main() {
    let schema = fixtures::experiment();
    let cfg = ExperimentConfig { n_r: 8_000, mv_avg: 3, seed: 42 };
    println!("building the experiment instance under the normalized mapping ...");
    let mut db = experiment_database(&paper::m1(&schema), &cfg).unwrap();

    // An array-heavy, point-lookup-heavy workload with a hierarchy scan.
    let workload = Workload::new()
        .weighted("SELECT r.r_id, r.r_mv1, r.r_mv2, r.r_mv3 FROM R r", 1.0)
        .unwrap()
        .weighted("SELECT r.r_mv1 FROM R r WHERE r.r_id = 4000", 500.0)
        .unwrap()
        .weighted("SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r", 20.0)
        .unwrap();

    println!("gathering logical statistics + searching the cover space ...");
    let rec = db.advise(&workload).unwrap();
    println!(
        "evaluated {} candidates; estimated cost {:.0} vs normalized {:.0} ({:.1}x better)\n",
        rec.candidates_evaluated,
        rec.cost,
        rec.baseline_cost,
        rec.baseline_cost / rec.cost.max(1.0)
    );
    println!("chosen design:");
    for choice in &rec.choices {
        println!("  {choice:?}");
    }
    println!("\nper-query estimates under the recommendation:");
    for (sql, cost) in &rec.per_query {
        println!("  {cost:>12.0}  {sql}");
    }

    // Measure reality: run the workload before and after migrating.
    let run_all = |db: &erbiumdb::core::Database| {
        let t = Instant::now();
        for q in &workload.queries {
            for _ in 0..(q.weight as usize).clamp(1, 50) {
                db.query(&q.sql).unwrap();
            }
        }
        t.elapsed()
    };
    let before = run_all(&db);
    println!("\nworkload wall-clock under normalized mapping: {before:?}");
    let t = Instant::now();
    let report = db.remap(rec.mapping.clone()).unwrap();
    println!(
        "migration to the recommended mapping took {:?} ({} entities, {} links)",
        t.elapsed(),
        report.entities_migrated,
        report.links_migrated
    );
    let after = run_all(&db);
    println!("workload wall-clock under recommended mapping: {after:?}");
    println!(
        "measured speedup: {:.1}x",
        before.as_secs_f64() / after.as_secs_f64().max(1e-9)
    );
}
