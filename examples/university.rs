//! A fuller tour on the Figure-1 university schema: generated data, the
//! paper's query extensions, EXPLAIN across mappings, and schema
//! self-documentation.
//!
//! ```text
//! cargo run --example university
//! ```

use erbium_datagen::university_database;
use erbiumdb::core::Database;

fn main() {
    let mut db: Database = university_database(8, 120, 2026).unwrap();

    // Generated documentation from DDL descriptions and tags.
    println!("{}", db.describe_schema());

    // Relationship joins, aggregation with inferred GROUP BY.
    let r = db
        .query(
            "SELECT d.dept_name, COUNT(*) AS faculty \
             FROM department d JOIN instructor i VIA member_of \
             ORDER BY faculty DESC",
        )
        .unwrap();
    println!("faculty per department:\n{}", r.to_table());

    // Weak entities through their identifying relationship + NEST.
    let r = db
        .query(
            "SELECT c.course_id, c.title, NEST(s.sec_id, s.semester, s.year) AS sections \
             FROM course c JOIN section s VIA sec_of \
             ORDER BY course_id LIMIT 4",
        )
        .unwrap();
    println!("courses with nested sections:\n{}", r.to_table());

    // A three-entity chain: who teaches the sections my advisees take?
    let r = db
        .query(
            "SELECT i.name, COUNT(*) AS load \
             FROM instructor i JOIN section x VIA teaches \
             ORDER BY load DESC LIMIT 5",
        )
        .unwrap();
    println!("teaching load:\n{}", r.to_table());

    // Composite attribute field access.
    let r = db
        .query(
            "SELECT p.address.city AS city, COUNT(*) AS people \
             FROM person p WHERE p.address IS NOT NULL \
             ORDER BY people DESC",
        )
        .unwrap();
    println!("people per city:\n{}", r.to_table());

    // Physical transparency: the same query under two mappings.
    let q = "SELECT c.course_id, s.sec_id FROM course c JOIN section s VIA sec_of \
             WHERE c.course_id = 'C003'";
    println!("plan (normalized):\n{}", db.explain(q).unwrap());
    let folded = erbiumdb::mapping::presets::fold_weak(
        erbiumdb::mapping::presets::normalized(db.schema()),
        db.schema(),
        "section",
    )
    .unwrap();
    db.remap(folded).unwrap();
    println!("plan (sections folded into courses):\n{}", db.explain(q).unwrap());
    let r = db.query(q).unwrap();
    println!("result unchanged:\n{}", r.to_table());
}
