#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
# Mirrors ROADMAP.md's tier-1 definition. `--offline` is deliberate: the
# build environment has no registry access, and every dependency is either
# vendored in the workspace or already in the local cargo cache.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# Durability fault-injection suite (simulated crash at every WAL byte
# offset, M1–M6, plus corruption — and, since PR 9, crash sweeps across
# base + delta snapshot chains including torn delta tmp files). It
# already ran above as part of the workspace tests; the named re-run
# makes a recovery regression visible at a glance and keeps the suite
# from being silently filtered out.
cargo test -q --offline --test property_durability
# Bulk-ingest suite: copy_from / COPY FROM atomicity (a duplicate key
# anywhere rolls back the whole batch), plan-cache generation semantics
# (exactly one invalidation per batch, none without ANALYZE-time stats),
# and delta-checkpoint kinds + recovery chaining after bulk loads.
cargo test -q --offline -p erbium-core --test bulk_ingest
# Parallel-execution invariance sweep (bit-identical results across
# columnar × threads × morsel × batch × fusion on M1–M6, an all-Value-
# variant property fixture, + concurrent-query stress). The M6f arms
# expand factorized joins through the CSR adjacency view, so this sweep
# also gates CSR-vs-row bit-identity.
cargo test -q --offline --test parallel_invariance
# Columnar observability: EXPLAIN [cols=...], [columnar] metrics marker,
# and the non-materialization proof via engine_columnar_cells_total
# (pruned scans gather rows × pruned arity, not × table arity).
cargo test -q --offline --test columnar_metrics
# Observability suite: tracing spans over the full query lifecycle,
# Prometheus export coverage, slow-query log, and the stats-survive-
# recovery regression (optimizer statistics must outlive a checkpoint +
# reopen; see DESIGN.md §10). Runs as part of the workspace tests too;
# the named re-run keeps the regression visible at a glance.
cargo test -q --offline -p erbium-core --test observability
cargo test -q --offline -p erbium-obs
# Overhead sentinel: with tracing disabled (the default), the
# instrumentation added along the hot path must stay within run-to-run
# noise of the PR-4 baseline on the morsel_waves bench (~9.7 ms).
# Criterion flags regressions against its saved baseline when run; the
# gate only requires the bench to compile (running is opt-in, slow):
#   cargo bench --offline -p erbium-bench --bench engine_micro -- morsel_waves
# The persistent worker pool must be the engine's only thread-spawn site:
# no operator may spawn (or scope) threads per wave.
if grep -rn "thread::spawn\|thread::scope\|thread::Builder" crates/engine/src \
    --include='*.rs' | grep -v "^crates/engine/src/pool.rs:" | grep -v "^ *//"; then
    echo "ERROR: thread spawn outside crates/engine/src/pool.rs" >&2
    exit 1
fi
# The vectorized kernels must stay vectorized: vector.rs operates on raw
# column slices and selection vectors, so a per-row `Value` enum match
# arm appearing there means someone re-introduced scalar dispatch into
# the hot loop (decompose the enum once per predicate in vplan.rs
# instead). Constructing values (Value::Int(x)) is fine; matching on
# them (`Value::Int(x) =>`) is not.
if grep -n "Value::[A-Za-z_]*\s*(\?[^)]*)\?\s*=>" crates/engine/src/vector.rs \
    | grep -v "^ *[0-9]*: *//"; then
    echo "ERROR: per-row Value enum match in crates/engine/src/vector.rs" >&2
    exit 1
fi
# Multi-client smoke: 2 writer threads churn insert/update/delete
# transactions while 4 readers assert transactional invariants on live
# reads and pinned snapshots. Fails on any error, a torn transaction, an
# unstable snapshot answer, or a plan cache that served zero hits.
cargo run -q --release --offline -p erbium-bench --bin multi_client_smoke
# Bounded-memory smoke: the experiment workload under every paper mapping
# with a 4-frame buffer pool on a dataset spanning ~25 row pages. Asserts
# the pool evicted / wrote back / re-faulted pages, the resident count is
# back under budget after reclaim, process peak RSS stays under a fixed
# ceiling, and the M1–M6 answers (plus a full row-store fingerprint) are
# bit-identical to an unbounded reopen of the same database.
cargo run -q --release --offline -p erbium-bench --bin bounded_memory_smoke
# Server smoke: the same workload, same invariants, through real TCP
# sockets — an in-process ERSP server on an ephemeral port, every thread
# dialing its own RemoteClient. Additionally asserts the server drains
# to zero sessions after the clients disconnect.
cargo run -q --release --offline -p erbium-bench --bin multi_client_smoke -- --remote
# The client crate must stay thin: linking erbium-client pulls in the
# model (values, errors, the Connection trait) and the query parser (for
# eager client-side syntax checks) — never storage or the engine. A new
# dependency here means server code is leaking into clients.
if grep "^erbium-" crates/client/Cargo.toml | grep -v "^erbium-model \|^erbium-query "; then
    echo "ERROR: crates/client may depend only on erbium-model and erbium-query" >&2
    exit 1
fi
cargo clippy --offline --workspace --all-targets -- -D warnings
# Benches must at least compile; running them is opt-in (slow).
cargo bench --offline --workspace --no-run

echo "tier-1 gate: OK"
