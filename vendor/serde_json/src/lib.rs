//! Vendored, dependency-free stand-in for the `serde_json` crate.
//!
//! Re-exports the JSON-shaped data model that lives in the vendored
//! `serde` facade and provides the four entry points the workspace uses:
//! [`to_value`], [`from_value`], [`to_string`], and [`from_str`].

pub use serde::json::{Map, Number, Value};
pub use serde::Error;

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Render any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Reconstruct a value from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_string())
}

/// Serialize a value to pretty-printed JSON text.
///
/// The vendored emitter is compact-only; pretty output is not needed for
/// self-consistency, so this simply forwards to [`to_string`].
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    to_string(value)
}

/// Parse JSON text and reconstruct a value.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    T::from_json_value(&serde::json::parse(s)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_through_text() {
        let v = Value::Array(vec![
            Value::Number(Number::I(1)),
            Value::String("x".into()),
            Value::Null,
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<(String, i64)> = vec![("a".into(), 1), ("b".into(), -2)];
        let j = to_value(&v).unwrap();
        let back: Vec<(String, i64)> = from_value(j).unwrap();
        assert_eq!(v, back);
    }
}
