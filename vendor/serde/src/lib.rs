//! Vendored, dependency-free stand-in for the `serde` crate.
//!
//! This workspace builds fully offline, so the external crates it uses are
//! vendored with API-compatible minimal implementations. This `serde`
//! substitute collapses the serializer/deserializer abstraction to a single
//! JSON-shaped data model ([`json::Value`]): [`Serialize`] renders a value
//! into the model and [`Deserialize`] reads it back. The companion
//! `serde_json` crate re-exports the model and provides
//! `to_value`/`from_value`/`to_string`/`from_str`; the companion
//! `serde_derive` crate derives both traits for plain structs and enums.
//!
//! Only self-consistency is required (everything this workspace serializes
//! it also deserializes itself); wire compatibility with upstream serde is
//! a non-goal.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Prefix the error with a location context (used by derived impls).
    pub fn ctx(self, at: &str) -> Self {
        Error(format!("{at}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the JSON-shaped data model.
pub trait Serialize {
    fn to_json_value(&self) -> json::Value;
}

/// A type that can reconstruct itself from the JSON-shaped data model.
pub trait Deserialize: Sized {
    fn from_json_value(v: &json::Value) -> Result<Self, Error>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// Owned deserialization marker; blanket-implemented for every
    /// [`crate::Deserialize`] type (this vendored model has no borrowed
    /// deserialization, so the two traits coincide).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
    pub use crate::Error;
}

/// Compatibility module mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::Number(json::Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &json::Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_json_value(&self) -> json::Value {
        json::Value::Number(json::Number::from_u64(*self))
    }
}

impl Deserialize for u64 {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        v.as_u64().ok_or_else(|| Error::custom("expected non-negative integer for u64"))
    }
}

impl Serialize for u128 {
    fn to_json_value(&self) -> json::Value {
        // Stored as a decimal string: preserves full range.
        json::Value::String(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        match v {
            json::Value::String(s) => {
                s.parse().map_err(|_| Error::custom("invalid u128 string"))
            }
            _ => v
                .as_u64()
                .map(u128::from)
                .ok_or_else(|| Error::custom("expected u128")),
        }
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> json::Value {
        json::Value::Number(json::Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number for f64"))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> json::Value {
        json::Value::Number(json::Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected number for f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        match v {
            json::Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        match v {
            json::Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> json::Value {
        json::Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(_v: &json::Value) -> Result<Self, Error> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> json::Value {
        match self {
            None => json::Value::Null,
            Some(v) => v.to_json_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        match v {
            json::Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl Serialize for Arc<str> {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Deserialize for Arc<str> {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        match v {
            json::Value::String(s) => Ok(Arc::from(s.as_str())),
            _ => Err(Error::custom("expected string for Arc<str>")),
        }
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Arc::new)
    }
}

// Maps serialize as arrays of [key, value] pairs: this works for arbitrary
// serializable key types (JSON objects would restrict keys to strings) and
// is deterministic for BTreeMap. Only self-consistency is required.
impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> json::Value {
        let mut pairs: Vec<json::Value> = self
            .iter()
            .map(|(k, v)| json::Value::Array(vec![k.to_json_value(), v.to_json_value()]))
            .collect();
        // Deterministic output regardless of hasher iteration order.
        pairs.sort_by(json::cmp_values);
        json::Value::Array(pairs)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        deserialize_pairs(v)?.into_iter().collect::<Result<_, _>>()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(
            self.iter()
                .map(|(k, v)| json::Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        deserialize_pairs(v)?.into_iter().collect::<Result<_, _>>()
    }
}

type PairResults<K, V> = Vec<Result<(K, V), Error>>;

fn deserialize_pairs<K: Deserialize, V: Deserialize>(
    v: &json::Value,
) -> Result<PairResults<K, V>, Error> {
    match v {
        json::Value::Array(items) => Ok(items
            .iter()
            .map(|item| match item {
                json::Value::Array(kv) if kv.len() == 2 => {
                    Ok((K::from_json_value(&kv[0])?, V::from_json_value(&kv[1])?))
                }
                _ => Err(Error::custom("expected [key, value] pair")),
            })
            .collect()),
        _ => Err(Error::custom("expected array of pairs for map")),
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for std::collections::HashSet<T, S> {
    fn to_json_value(&self) -> json::Value {
        let mut items: Vec<json::Value> = self.iter().map(Serialize::to_json_value).collect();
        items.sort_by(json::cmp_values);
        json::Value::Array(items)
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        match v {
            json::Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::custom("expected array for set")),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        match v {
            json::Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::custom("expected array for set")),
        }
    }
}

// Tuples up to arity 4 (the workspace uses at most (String, T) pairs).
macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> json::Value {
                json::Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &json::Value) -> Result<Self, Error> {
                match v {
                    json::Value::Array(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_json_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::custom("expected tuple array")),
                }
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// The data model serializes itself (identity): lets `json::Value` be used
// anywhere a `Serialize`/`Deserialize` bound appears.
impl Serialize for json::Value {
    fn to_json_value(&self) -> json::Value {
        self.clone()
    }
}

impl Deserialize for json::Value {
    fn from_json_value(v: &json::Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
