//! The JSON-shaped data model shared by the vendored `serde` facade and
//! `serde_json`: a [`Value`] tree, a lossless [`Number`], and a text
//! emitter/parser pair (`to_string`-style rendering and a recursive-descent
//! reader).

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: sorted keys give deterministic text output.
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

/// A JSON number that keeps integers exact (i64/u64) and floats as f64.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    pub fn from_i64(v: i64) -> Self {
        Number::I(v)
    }

    pub fn from_u64(v: u64) -> Self {
        if let Ok(i) = i64::try_from(v) {
            Number::I(i)
        } else {
            Number::U(v)
        }
    }

    pub fn from_f64(v: f64) -> Self {
        Number::F(v)
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I(v) => u64::try_from(v).ok(),
            Number::U(v) => Some(v),
            Number::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::I(v) => Some(v as f64),
            Number::U(v) => Some(v as f64),
            Number::F(v) => Some(v),
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// Total ordering over values (used for deterministic map serialization).
pub fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Number(x), Value::Number(y)) => x
            .as_f64()
            .unwrap_or(f64::NAN)
            .partial_cmp(&y.as_f64().unwrap_or(f64::NAN))
            .unwrap_or(Ordering::Equal),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xv, yv) in x.iter().zip(y.iter()) {
                let c = cmp_values(xv, yv);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            for ((xk, xv), (yk, yv)) in x.iter().zip(y.iter()) {
                let c = xk.cmp(yk);
                if c != Ordering::Equal {
                    return c;
                }
                let c = cmp_values(xv, yv);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

// ---------------------------------------------------------------------------
// Text rendering
// ---------------------------------------------------------------------------

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Number(Number::I(v)) => write!(f, "{v}"),
            Value::Number(Number::U(v)) => write!(f, "{v}"),
            Value::Number(Number::F(v)) => {
                if v.is_finite() {
                    // Ensure floats re-parse as floats.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/Inf; mirror lossy-null behaviour.
                    f.write_str("null")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

// ---------------------------------------------------------------------------
// Text parsing
// ---------------------------------------------------------------------------

/// Parse a JSON document from text.
pub fn parse(input: &str) -> Result<Value, crate::Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(crate::Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> crate::Error {
        crate::Error::custom(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), crate::Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, crate::Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, crate::Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, crate::Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, crate::Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, crate::Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.pos += 1; // consume the final hex digit position
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("expected low surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("expected low surrogate"));
                                }
                                let lo = self.hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.checked_sub(0xDC00).ok_or_else(|| {
                                        self.err("invalid low surrogate")
                                    })?);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Reads the 4 hex digits after `\u`; leaves `pos` on the last digit.
    fn hex4(&mut self) -> Result<u32, crate::Error> {
        // self.pos currently points at 'u'.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, crate::Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let mut obj = Map::new();
        obj.insert("a".to_string(), Value::Number(Number::I(-3)));
        obj.insert("b".to_string(), Value::Array(vec![Value::Null, Value::Bool(true)]));
        obj.insert("s".to_string(), Value::String("he\"llo\n\\".to_string()));
        obj.insert("f".to_string(), Value::Number(Number::F(1.5)));
        let v = Value::Object(obj);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_integral_value_reparses_as_float() {
        let v = Value::Number(Number::F(2.0));
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::String("é😀".to_string()));
    }
}
